/**
 * @file
 * cbws-ctl — client for the cbws-served daemon.
 *
 * Subcommands (first positional):
 *   submit    send an experiment-matrix job, stream progress, print
 *             the sealed report (byte-identical to a serial run)
 *   status    one-line queue/worker summary
 *   result    fetch the sealed report of a job key
 *   ping      liveness check
 *   shutdown  ask the daemon to drain and exit
 *
 * Examples:
 *   cbws-ctl submit --socket /tmp/cbws.sock \
 *       --workload stencil-default --workload nw \
 *       --scheme none --scheme CBWS --insts 120000 --output out.json
 *   cbws-ctl submit --local --workload nw --scheme CBWS   # no daemon:
 *       run the same job serially in-process (the byte-identity
 *       reference the chaos CI check diffs the daemon against)
 *   cbws-ctl status --socket /tmp/cbws.sock
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "base/argparse.hh"
#include "base/json.hh"
#include "base/socket.hh"
#include "serve/jobqueue.hh"
#include "serve/protocol.hh"
#include "serve/worker.hh"
#include "sim/report.hh"

using namespace cbws;
using namespace cbws::serve;

namespace
{

int
fail(const std::string &message)
{
    std::fprintf(stderr, "cbws-ctl: %s\n", message.c_str());
    return 1;
}

/** Write @p text to @p path, or stdout when the path is empty. */
int
emit(const std::string &path, const std::string &text)
{
    if (path.empty()) {
        std::printf("%s\n", text.c_str());
        return 0;
    }
    Result<void> wrote = writeFileAtomic(path, text + "\n");
    if (!wrote.ok())
        return fail(wrote.error().str());
    return 0;
}

JobSpec
specFromArgs(const ArgParser &args)
{
    JobSpec spec;
    spec.workloads = args.getAll("workload");
    spec.schemes = args.getAll("scheme");
    spec.insts = args.getUint("insts", spec.insts);
    spec.seed = args.getUint("seed", spec.seed);
    spec.cores = static_cast<unsigned>(args.getUint("cores", 1));
    spec.dramBackend = args.get("dram");
    spec.pfOpts = args.getAll("pf-opt");
    return spec;
}

/**
 * Round-trip the spec through the same parse/validate gate the daemon
 * applies, canonicalising scheme names in the process — --local and
 * remote submissions of one command line must agree on the job key.
 */
Result<JobSpec>
validateSpec(const JobSpec &raw)
{
    Result<JsonValue> parsed =
        parseJson(jobSpecJson(raw), protocolJsonLimits());
    if (!parsed.ok())
        return parsed.error();
    return parseJobSpec(parsed.value());
}

struct Connection
{
    OwnedFd fd;
    LineChannel channel;
    std::vector<std::string> pending;

    /** Block until the next event line. */
    Result<std::string>
    nextEvent()
    {
        while (pending.empty()) {
            Result<void> read = channel.readLines(pending);
            if (!read.ok())
                return read.error();
            if (channel.eof() && pending.empty())
                return Error(Errc::IoError,
                             "daemon closed the connection");
        }
        std::string line = pending.front();
        pending.erase(pending.begin());
        return line;
    }
};

Result<Connection>
connect(const std::string &socket_arg)
{
    Result<SocketAddr> addr = parseSocketAddr(socket_arg);
    if (!addr.ok())
        return addr.error();
    BackoffSchedule backoff;
    backoff.baseMs = 25;
    backoff.maxMs = 1000;
    backoff.seed = faultSeedFromEnv();
    Result<OwnedFd> fd = connectWithRetry(addr.value(), 20, backoff);
    if (!fd.ok())
        return fd.error();
    Connection conn;
    conn.fd = std::move(fd).value();
    conn.channel.attach(conn.fd.fd());
    // The daemon greets every connection; swallow the hello.
    Result<std::string> hello = conn.nextEvent();
    if (!hello.ok())
        return hello.error();
    return conn;
}

Result<void>
sendRequest(Connection &conn, const Request &request)
{
    return conn.channel.writeLine(requestLine(request));
}

/** "event" member of a protocol line ("" when unparseable). */
std::string
eventKind(const std::string &line)
{
    Result<JsonValue> parsed = parseJson(line, JsonLimits());
    if (!parsed.ok() || !parsed.value().isObject())
        return "";
    return parsed.value().strOr("event");
}

/** Scheduling-throughput record for the BENCH trend artifact. */
void
writeBenchRecord(const std::string &path, const std::string &job,
                 const JsonValue &sealed)
{
    const std::uint64_t wall_ms = sealed.uintOr("wall_ms");
    const std::uint64_t cells = sealed.uintOr("cells");
    const std::uint64_t insts = sealed.uintOr("insts");
    JsonWriter w;
    w.beginObject();
    w.field("bench", "served_scheduling");
    w.field("job", job);
    w.field("cells", cells);
    w.field("wall_ms", wall_ms);
    w.field("insts", insts);
    w.field("respawns", sealed.uintOr("respawns"));
    w.field("cells_per_sec",
            wall_ms ? 1000.0 * static_cast<double>(cells) /
                          static_cast<double>(wall_ms)
                    : 0.0);
    w.field("minsts_per_sec",
            wall_ms ? static_cast<double>(insts) / 1000.0 /
                          static_cast<double>(wall_ms)
                    : 0.0);
    w.endObject();
    Result<void> wrote = writeFileAtomic(path, w.str() + "\n");
    if (!wrote.ok())
        std::fprintf(stderr, "cbws-ctl: --bench: %s\n",
                     wrote.error().str().c_str());
}

int
runSubmit(const ArgParser &args)
{
    Result<JobSpec> validated = validateSpec(specFromArgs(args));
    if (!validated.ok())
        return fail(validated.error().str());
    const JobSpec spec = validated.value();

    if (args.getFlag("local")) {
        // The serial in-process reference: same cells, same
        // serialisation path, no daemon. What the daemon seals must
        // be byte-identical to this output.
        Result<std::vector<SimResult>> cells = runJobSerial(spec);
        if (!cells.ok())
            return fail(cells.error().str());
        return emit(args.get("output"), resultJson(cells.value()));
    }

    Result<Connection> connected = connect(args.get("socket"));
    if (!connected.ok())
        return fail(connected.error().str());
    Connection conn = std::move(connected).value();

    Request request;
    request.op = Request::Op::Submit;
    request.spec = spec;
    Result<void> sent = sendRequest(conn, request);
    if (!sent.ok())
        return fail(sent.error().str());

    const bool verbose = args.getFlag("verbose");
    const bool no_wait = args.getFlag("no-wait");
    for (;;) {
        Result<std::string> line = conn.nextEvent();
        if (!line.ok())
            return fail(line.error().str());
        const std::string kind = eventKind(line.value());
        if (kind == "error")
            return fail(line.value());
        if (kind == "ack") {
            if (verbose)
                std::fprintf(stderr, "%s\n", line.value().c_str());
            if (no_wait) {
                std::printf("%s\n", line.value().c_str());
                return 0;
            }
            continue;
        }
        if (kind == "cell" || kind == "worker" || kind == "stats") {
            if (verbose)
                std::fprintf(stderr, "%s\n", line.value().c_str());
            continue;
        }
        if (kind == "failed")
            return fail(line.value());
        if (kind == "sealed") {
            Result<std::string> result =
                extractSealedResult(line.value());
            if (!result.ok())
                return fail(result.error().str());
            if (!args.get("bench").empty()) {
                Result<JsonValue> sealed =
                    parseJson(line.value(), JsonLimits());
                if (sealed.ok())
                    writeBenchRecord(args.get("bench"),
                                     jobKey(spec), sealed.value());
            }
            return emit(args.get("output"), result.value());
        }
        // hello/bye/unknown: ignore.
    }
}

int
runSimple(const ArgParser &args, Request::Op op)
{
    Result<Connection> connected = connect(args.get("socket"));
    if (!connected.ok())
        return fail(connected.error().str());
    Connection conn = std::move(connected).value();
    Request request;
    request.op = op;
    request.job = args.get("job");
    Result<void> sent = sendRequest(conn, request);
    if (!sent.ok())
        return fail(sent.error().str());
    Result<std::string> line = conn.nextEvent();
    if (!line.ok())
        return fail(line.error().str());
    if (eventKind(line.value()) == "error")
        return fail(line.value());
    if (op == Request::Op::Result) {
        Result<std::string> result =
            extractSealedResult(line.value());
        if (!result.ok())
            return fail(result.error().str());
        return emit(args.get("output"), result.value());
    }
    std::printf("%s\n", line.value().c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ArgParser args("cbws-ctl",
                   "Client for cbws-served: submit experiment "
                   "matrices, stream progress, fetch sealed "
                   "results.");
    args.addPositional("command",
                       "submit | status | result | ping | shutdown");
    args.addOption("socket", "daemon address (unix:/path or "
                             "tcp:host:port)",
                   "cbws-served.sock");
    args.addRepeatable("workload", "workload to include (repeat)");
    args.addRepeatable("scheme", "scheme to include (repeat)");
    args.addOption("insts", "instruction budget per cell", "120000");
    args.addOption("seed", "workload synthesis seed", "42");
    args.addOption("cores", "cores per cell (rate mode)", "1");
    args.addOption("dram", "DRAM backend registry name", "fixed");
    args.addRepeatable("pf-opt", "key=value prefetcher override "
                                 "(repeat)");
    args.addOption("job", "job key (result)");
    args.addOption("output", "write the report here instead of "
                             "stdout");
    args.addOption("bench", "append a scheduling-throughput record "
                            "(BENCH_served.json)");
    args.addFlag("local", "run the job serially in-process instead "
                          "of submitting (byte-identity reference)");
    args.addFlag("no-wait", "print the ack and exit instead of "
                            "streaming to the sealed result");
    args.addFlag("verbose", "stream progress events to stderr");
    if (!args.parse(argc, argv))
        return 2;
    if (args.helpRequested()) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }
    if (args.positionals().empty())
        return fail("missing command (submit | status | result | "
                    "ping | shutdown)");
    const std::string command = args.positionals().front();

    if (command == "submit")
        return runSubmit(args);
    if (command == "status")
        return runSimple(args, Request::Op::Status);
    if (command == "ping")
        return runSimple(args, Request::Op::Ping);
    if (command == "shutdown")
        return runSimple(args, Request::Op::Shutdown);
    if (command == "result") {
        if (args.get("job").empty())
            return fail("result needs --job <key>");
        return runSimple(args, Request::Op::Result);
    }
    return fail("unknown command '" + command + "'");
}
