/**
 * @file
 * cbws-sim — command-line simulation driver.
 *
 * Runs one workload (or a trace file) through one or all prefetcher
 * configurations on the Table II system, with every interesting knob
 * exposed as a flag. Human-readable or CSV output.
 *
 * Examples:
 *   cbws-sim --list
 *   cbws-sim --workload sgemm-medium --prefetcher all
 *   cbws-sim --workload nw --prefetcher CBWS --insts 200000 --csv
 *   cbws-sim --workload fft-simlarge --cbws-table-entries 64
 *   cbws-sim --workload stencil-default --save-trace stencil.cbt
 *   cbws-sim --load-trace stencil.cbt --prefetcher CBWS+SMS
 *   cbws-sim --workload radix-simlarge --auto-annotate
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "base/argparse.hh"
#include "base/debug.hh"
#include "base/faultinject.hh"
#include "base/metrics.hh"
#include "base/profiler.hh"
#include "base/table.hh"
#include "mem/dram/backend.hh"
#include "prefetch/registry.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/simmetrics.hh"
#include "sim/snapshot.hh"
#include "sim/statsdump.hh"
#include "sim/tracefmt.hh"
#include "trace/loop_annotator.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

/**
 * `--scheme help`: the registry's schemes with descriptions, then
 * every scheme's tunable parameters (the describe() seam) with their
 * types and Table II defaults, ready for `--pf-opt key=value`.
 */
void
listSchemes()
{
    TextTable t;
    t.header({"scheme", "description"});
    for (const auto &name : prefetcherRegistry().names())
        t.row({name, prefetcherRegistry().describe(name)});
    std::printf("%s", t.render().c_str());
    std::printf("\nnames are case-insensitive; 'all' runs the "
                "paper's seven schemes\n");
    std::printf("\nparameters (override with --pf-opt key=value, "
                "repeatable):\n");
    for (const auto &name : prefetcherRegistry().names()) {
        const auto keys = prefetcherRegistry().describeParams(name);
        if (keys.empty()) {
            std::printf("\n%s: no tunable parameters\n",
                        name.c_str());
            continue;
        }
        std::printf("\n%s:\n", name.c_str());
        TextTable params;
        params.header({"key", "type", "default", "meaning"});
        for (const auto &k : keys)
            params.row({k.key, k.type, k.defaultValue, k.help});
        std::printf("%s", params.render().c_str());
    }
}

/** `--dram help`: the registered DRAM timing backends. */
void
listDramBackends()
{
    TextTable t;
    t.header({"backend", "description"});
    for (const auto &name : dramBackendRegistry().names())
        t.row({name, dramBackendRegistry().describe(name)});
    std::printf("%s", t.render().c_str());
    std::printf("\nnames are case-insensitive; the default is "
                "'fixed'\n");
}

void
listWorkloads()
{
    TextTable t;
    t.header({"benchmark", "suite", "group"});
    for (const auto &w : allWorkloads()) {
        t.row({w->name(), w->suite(),
               w->memoryIntensive() ? "memory-intensive"
                                    : "low-MPKI"});
    }
    std::printf("%s", t.render().c_str());
}

void
applyOverrides(const ArgParser &args, SystemConfig &config)
{
    if (args.provided("cbws-table-entries")) {
        config.cbws.tableEntries = static_cast<unsigned>(
            args.getUint("cbws-table-entries", 16));
    }
    if (args.provided("cbws-max-members")) {
        config.cbws.maxVectorMembers = static_cast<unsigned>(
            args.getUint("cbws-max-members", 16));
    }
    if (args.provided("cbws-steps")) {
        config.cbws.numSteps =
            static_cast<unsigned>(args.getUint("cbws-steps", 4));
    }
    if (args.getFlag("cbws-train-misses-only"))
        config.cbws.trainOnHits = false;
    if (args.provided("l2-kb")) {
        config.mem.l2.sizeBytes =
            args.getUint("l2-kb", 2048) * 1024;
    }
    if (args.provided("l2-banks")) {
        config.mem.l2Banks = static_cast<unsigned>(
            args.getUint("l2-banks", 4));
    }
    if (args.provided("dram"))
        config.mem.dramBackend = args.get("dram");
    if (args.provided("dram-latency")) {
        config.mem.dramLatency =
            args.getUint("dram-latency", 300);
    }
    if (args.provided("dram-min-interval")) {
        config.mem.dramMinInterval =
            args.getUint("dram-min-interval", 0);
    }
    if (args.provided("dram-tburst")) {
        config.mem.ddr.tBURST = args.getUint("dram-tburst", 8);
    }
    if (args.provided("l1d-mshrs")) {
        config.mem.l1d.mshrs = static_cast<unsigned>(
            args.getUint("l1d-mshrs", 4));
    }
    if (args.provided("rob")) {
        config.core.robSize =
            static_cast<unsigned>(args.getUint("rob", 128));
    }
}

void
applyCoreModel(const ArgParser &args, SystemConfig &config)
{
    if (args.getFlag("inorder"))
        config.coreModel = CoreModel::InOrder;
}

void
printHuman(const SimResult &r)
{
    // Aggregate loopCycles sums every core's count while cycles is
    // the slowest core's, so re-derive the fraction over the summed
    // per-core cycles for multi-core runs.
    double loop_fraction = r.core.loopFraction();
    if (r.cores > 1) {
        std::uint64_t total_cycles = 0;
        for (const auto &s : r.perCore)
            total_cycles += s.core.cycles;
        loop_fraction =
            total_cycles ? static_cast<double>(r.core.loopCycles) /
                               static_cast<double>(total_cycles)
                         : 0.0;
    }
    std::printf("%-12s ipc=%.4f cycles=%llu insts=%llu mpki=%.2f "
                "l1d-miss%%=%.1f\n",
                r.prefetcher.c_str(), r.ipc(),
                static_cast<unsigned long long>(r.core.cycles),
                static_cast<unsigned long long>(
                    r.core.instructions),
                r.mpki(),
                r.mem.l1dAccesses
                    ? 100.0 * r.mem.l1dMisses / r.mem.l1dAccesses
                    : 0.0);
    std::printf(
        "             timely=%.1f%% shorter=%.1f%% nontimely=%.1f%% "
        "missing=%.1f%% wrong=%.1f%%\n",
        100 * r.classFraction(DemandClass::Timely),
        100 * r.classFraction(DemandClass::Shorter),
        100 * r.classFraction(DemandClass::NonTimely),
        100 * r.classFraction(DemandClass::Missing),
        100 * r.wrongFraction());
    std::printf("             pf: req=%llu issued=%llu filtered=%llu "
                "dropped=%llu; dram=%.2f MB read / %.2f MB written; "
                "loop=%.1f%%; bp-miss=%llu\n",
                static_cast<unsigned long long>(
                    r.mem.prefetchesRequested),
                static_cast<unsigned long long>(
                    r.mem.prefetchesIssued),
                static_cast<unsigned long long>(
                    r.mem.prefetchesFiltered),
                static_cast<unsigned long long>(
                    r.mem.prefetchesDropped),
                r.mem.dramBytesRead / 1e6,
                r.mem.dramBytesWritten / 1e6,
                100 * loop_fraction,
                static_cast<unsigned long long>(
                    r.core.branchMispredicts));
    if (r.cores > 1) {
        for (std::size_t c = 0; c < r.perCore.size(); ++c) {
            const CoreSliceResult &s = r.perCore[c];
            std::printf(
                "             core%zu %-12s ipc=%.4f mpki=%.2f "
                "llc-miss=%llu pollution(victim=%llu caused=%llu) "
                "l2-lines=%llu\n",
                c, s.workload.c_str(), s.ipc(), s.mpki(),
                static_cast<unsigned long long>(
                    s.mem.llcDemandMisses),
                static_cast<unsigned long long>(
                    s.mem.pollutionVictimMisses),
                static_cast<unsigned long long>(
                    s.mem.pollutionCausedMisses),
                static_cast<unsigned long long>(
                    s.mem.l2ResidentLines));
        }
        std::printf("             interference: "
                    "cross-core-pollution=%llu "
                    "l2-bank-conflicts=%llu\n",
                    static_cast<unsigned long long>(
                        r.mem.crossCorePollutionMisses),
                    static_cast<unsigned long long>(
                        r.mem.l2BankConflicts));
    }
}

void
printCsvHeader()
{
    std::printf("workload,prefetcher,insts,cycles,ipc,mpki,"
                "timely,shorter,nontimely,missing,wrong,"
                "pf_issued,dram_read_bytes,loop_fraction\n");
}

void
printCsv(const SimResult &r)
{
    std::printf("%s,%s,%llu,%llu,%.6f,%.4f,%.4f,%.4f,%.4f,%.4f,"
                "%.4f,%llu,%llu,%.4f\n",
                r.workload.c_str(), r.prefetcher.c_str(),
                static_cast<unsigned long long>(
                    r.core.instructions),
                static_cast<unsigned long long>(r.core.cycles),
                r.ipc(), r.mpki(),
                r.classFraction(DemandClass::Timely),
                r.classFraction(DemandClass::Shorter),
                r.classFraction(DemandClass::NonTimely),
                r.classFraction(DemandClass::Missing),
                r.wrongFraction(),
                static_cast<unsigned long long>(
                    r.mem.prefetchesIssued),
                static_cast<unsigned long long>(
                    r.mem.dramBytesRead),
                r.core.loopFraction());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ArgParser args("cbws-sim",
                   "run the CBWS reproduction's simulator");
    args.addFlag("list", "list the available benchmarks and exit");
    args.addOption("workload", "benchmark to run",
                   "stencil-default");
    args.addOption("prefetcher",
                   "scheme name as in the paper's figures, or 'all' "
                   "('help' lists the registered schemes)",
                   "CBWS+SMS");
    args.addOption("scheme",
                   "alias of --prefetcher (registry name, 'all', or "
                   "'help')",
                   "");
    args.addRepeatable("pf-opt",
                       "scheme parameter override as key=value (e.g. "
                       "degree=4, cbws.table-entries=32); see "
                       "--scheme help for the accepted keys");
    args.addOption("insts", "committed-instruction budget", "120000");
    args.addOption("warmup",
                   "instructions whose statistics are discarded "
                   "(default: insts/4)",
                   "");
    args.addOption("seed", "workload synthesis seed", "42");
    args.addOption("save-trace",
                   "write the generated trace to this file", "");
    args.addOption("load-trace",
                   "replay a trace file instead of a workload", "");
    args.addFlag("auto-annotate",
                 "strip kernel markers and re-annotate with the "
                 "automatic loop detector");
    args.addFlag("csv", "machine-readable CSV output");
    args.addFlag("json", "machine-readable JSON output");
    args.addFlag("stats", "gem5-style full statistics dump");
    args.addFlag("inorder",
                 "use the scalar in-order core model (extension)");
    args.addOption("cores",
                   "cores sharing the L2 and DRAM (multi-core mode "
                   "when > 1)",
                   "1");
    args.addOption("core-workloads",
                   "comma-separated per-core benchmarks, assigned "
                   "round-robin when fewer than --cores (default: "
                   "--workload on every core)",
                   "");
    args.addOption("l2-banks",
                   "L2 banks arbitrating multi-core accesses", "");
    args.addOption("cbws-table-entries",
                   "CBWS differential table entries", "");
    args.addOption("cbws-max-members",
                   "CBWS max working-set members", "");
    args.addOption("cbws-steps", "CBWS prediction depth", "");
    args.addFlag("cbws-train-misses-only",
                 "CBWS tracks only L1 misses inside blocks");
    args.addOption("l2-kb", "L2 capacity in KB", "");
    args.addOption("dram",
                   "DRAM timing backend ('help' lists them)",
                   "fixed");
    args.addOption("dram-latency", "memory latency in cycles", "");
    args.addOption("dram-min-interval",
                   "DEPRECATED flat throttle: min cycles between "
                   "DRAM issues (fixed backend only)",
                   "");
    args.addOption("dram-tburst",
                   "ddr backend data-bus cycles per 64 B line "
                   "(bandwidth = 64/tBURST B/cycle)",
                   "");
    args.addOption("l1d-mshrs", "L1D MSHR count", "");
    args.addOption("rob", "reorder-buffer entries", "");
    args.addOption("stats-file",
                   "write the gem5-style statistics dump here "
                   "(implies --stats semantics for the file)",
                   "");
    args.addOption("debug-flags",
                   "comma-separated trace flags (e.g. Cache,CBWS; "
                   "'help' lists them); printed to stderr",
                   "");
    args.addOption("debug-start",
                   "first cycle at which debug flags print", "0");
    args.addOption("debug-end",
                   "first cycle at which debug printing stops", "");
    args.addOption("snapshot-interval",
                   "emit a JSONL stats snapshot every N committed "
                   "instructions (0 = off)",
                   "0");
    args.addOption("snapshot-file",
                   "snapshot destination ('-' = stdout)", "-");
    args.addOption("chrome-trace",
                   "write a Chrome trace-event JSON timeline here "
                   "(single-prefetcher runs only)",
                   "");
    args.addOption("trace-start",
                   "first cycle recorded in the Chrome trace", "0");
    args.addOption("trace-end",
                   "first cycle not recorded in the Chrome trace",
                   "");
    args.addOption("trace-max-events",
                   "Chrome trace event cap", "500000");
    args.addFlag("profile",
                 "host-side self-profiler: attribute the simulator's "
                 "own wall time to phases and print the breakdown "
                 "(also honours CBWS_PROFILE=1)");
    args.addOption("profile-json",
                   "profile artifact destination (implies --profile)",
                   "BENCH_profile.json");
    args.addFlag("provenance",
                 "stamp the --json report with build provenance "
                 "(git SHA, compiler, build type)");
    args.addFlag("metrics",
                 "export the hierarchical metrics registry: a "
                 "'metrics' section in --json reports, scheme gauges "
                 "after the human summary, and counter samples in "
                 "--chrome-trace output");

    if (!args.parse(argc, argv))
        return 1;
    if (args.helpRequested())
        return 0;
    if (args.getFlag("list")) {
        listWorkloads();
        return 0;
    }

    // Start the self-profiler before any profiled work (trace
    // synthesis is a phase) so the calibration window covers it.
    if (args.getFlag("profile") || args.provided("profile-json"))
        prof::enable();
    prof::enableFromEnv();

    // Deterministic fault injection for robustness testing
    // (CBWS_FAULT / CBWS_FAULT_SEED, see base/faultinject.hh).
    {
        Result<void> faults =
            FaultInjector::instance().configureFromEnv();
        if (!faults.ok()) {
            std::fprintf(stderr, "CBWS_FAULT: %s\n",
                         faults.error().str().c_str());
            return 1;
        }
    }

    // --scheme is an alias of --prefetcher; 'help' lists schemes.
    const std::string scheme = args.provided("scheme")
                                   ? args.get("scheme")
                                   : args.get("prefetcher");
    if (scheme == "help") {
        listSchemes();
        return 0;
    }
    if (args.get("dram") == "help") {
        listDramBackends();
        return 0;
    }
    if (!dramBackendRegistry().contains(args.get("dram"))) {
        std::fprintf(stderr,
                     "--dram: unknown backend '%s' (try --dram "
                     "help)\n",
                     args.get("dram").c_str());
        return 1;
    }

    const std::uint64_t insts = args.getUint("insts", 120000);
    const std::uint64_t warmup =
        args.provided("warmup") ? args.getUint("warmup", 0)
                                : insts / 4;

    // Multi-core mode: cache line owners are tracked in a byte, and
    // trace/save flags operate on the one single-core trace.
    const unsigned num_cores =
        static_cast<unsigned>(args.getUint("cores", 1));
    if (num_cores == 0 || num_cores > 255) {
        std::fprintf(stderr, "--cores: need 1..255\n");
        return 1;
    }
    if (num_cores > 1) {
        if (args.getFlag("inorder")) {
            std::fprintf(stderr,
                         "--cores > 1 needs the out-of-order core "
                         "model (drop --inorder)\n");
            return 1;
        }
        if (args.provided("load-trace") ||
            args.provided("save-trace") ||
            args.getFlag("auto-annotate")) {
            std::fprintf(stderr,
                         "--load-trace/--save-trace/--auto-annotate "
                         "apply to single-core runs only\n");
            return 1;
        }
    } else if (args.provided("core-workloads")) {
        std::fprintf(stderr, "--core-workloads needs --cores > 1\n");
        return 1;
    }

    if (args.provided("debug-flags")) {
        const std::string csv = args.get("debug-flags");
        if (csv == "help") {
            std::printf("trace flags:");
            for (const auto &name : debug::flagNames())
                std::printf(" %s", name.c_str());
            std::printf("\n");
            return 0;
        }
        std::string err;
        if (!debug::setFlags(csv, &err)) {
            std::fprintf(stderr, "--debug-flags: %s\n", err.c_str());
            return 1;
        }
        debug::setWindow(args.getUint("debug-start", 0),
                         args.provided("debug-end")
                             ? args.getUint("debug-end", 0)
                             : ~Cycle(0));
    }

    // Obtain the trace(s): load, or synthesise from workloads.
    Trace trace;
    std::string workload_name;
    std::vector<std::string> core_names;    // multi-core only
    std::vector<Trace> core_storage;        // one per distinct name
    std::vector<const Trace *> core_traces; // one per core
    if (num_cores > 1) {
        std::vector<std::string> requested;
        std::string cur;
        for (char ch : args.get("core-workloads")) {
            if (ch == ',') {
                if (!cur.empty())
                    requested.push_back(cur);
                cur.clear();
            } else {
                cur += ch;
            }
        }
        if (!cur.empty())
            requested.push_back(cur);
        if (requested.empty())
            requested.push_back(args.get("workload"));
        // Round-robin the requested list over the cores, then
        // synthesise each distinct workload exactly once.
        std::vector<std::string> uniq;
        std::vector<std::size_t> trace_of(num_cores);
        for (unsigned c = 0; c < num_cores; ++c) {
            const std::string &name =
                requested[c % requested.size()];
            core_names.push_back(name);
            std::size_t u = 0;
            while (u < uniq.size() && uniq[u] != name)
                ++u;
            if (u == uniq.size())
                uniq.push_back(name);
            trace_of[c] = u;
        }
        core_storage.resize(uniq.size());
        for (std::size_t u = 0; u < uniq.size(); ++u) {
            auto found = findWorkloadChecked(uniq[u]);
            if (!found.ok()) {
                std::fprintf(stderr, "%s\n",
                             found.error().str().c_str());
                return 1;
            }
            auto workload = std::move(found).value();
            WorkloadParams params;
            params.maxInstructions = insts;
            params.seed = args.getUint("seed", 42);
            PROF_SCOPE(prof::Phase::TraceSynthesis);
            workload->generate(core_storage[u], params);
        }
        for (unsigned c = 0; c < num_cores; ++c)
            core_traces.push_back(&core_storage[trace_of[c]]);
        workload_name = core_names[0];
        for (unsigned c = 1; c < num_cores; ++c)
            workload_name += "+" + core_names[c];
    } else if (args.provided("load-trace")) {
        Result<void> loaded = trace.loadFrom(args.get("load-trace"));
        if (!loaded.ok()) {
            std::fprintf(stderr, "--load-trace: %s\n",
                         loaded.error().str().c_str());
            return 1;
        }
        workload_name = args.get("load-trace");
    } else {
        auto workload = findWorkload(args.get("workload"));
        if (!workload) {
            std::fprintf(stderr,
                         "unknown benchmark '%s' (use --list)\n",
                         args.get("workload").c_str());
            return 1;
        }
        WorkloadParams params;
        params.maxInstructions = insts;
        params.seed = args.getUint("seed", 42);
        {
            PROF_SCOPE(prof::Phase::TraceSynthesis);
            workload->generate(trace, params);
        }
        workload_name = workload->name();
    }

    if (args.getFlag("auto-annotate")) {
        Trace raw;
        for (const auto &rec : trace)
            if (!isBlockMarker(rec.cls))
                raw.append(rec);
        LoopAnnotator annotator;
        trace = annotator.annotate(raw);
        if (!args.getFlag("csv")) {
            std::printf("auto-annotation found %zu tight innermost "
                        "loop(s)\n",
                        annotator.loops().size());
        }
    }

    if (args.provided("save-trace")) {
        Result<void> saved = trace.saveTo(args.get("save-trace"));
        if (!saved.ok()) {
            std::fprintf(stderr, "--save-trace: %s\n",
                         saved.error().str().c_str());
            return 1;
        }
        if (!args.getFlag("csv")) {
            std::printf("saved %zu records to %s\n", trace.size(),
                        args.get("save-trace").c_str());
        }
    }

    // Select the schemes (string registry keys, case-insensitive).
    std::vector<std::string> schemes;
    if (scheme == "all") {
        schemes = allSchemeNames();
    } else {
        if (!prefetcherRegistry().contains(scheme)) {
            std::fprintf(stderr, "unknown prefetcher '%s'; one of:",
                         scheme.c_str());
            for (const auto &name : prefetcherRegistry().names())
                std::fprintf(stderr, " '%s'", name.c_str());
            std::fprintf(stderr,
                         " or 'all' ('help' lists details)\n");
            return 1;
        }
        schemes.push_back(
            prefetcherRegistry().canonicalName(scheme));
    }

    // Fail fast on bad --pf-opt strings: every key must be accepted
    // by at least one selected scheme and every value must parse.
    const std::vector<std::string> pf_opts = args.getAll("pf-opt");
    {
        Result<void> valid =
            prefetcherRegistry().validateOptions(schemes, pf_opts);
        if (!valid.ok()) {
            std::fprintf(stderr, "--pf-opt: %s\n",
                         valid.error().str().c_str());
            return 1;
        }
    }

    const bool quiet = args.getFlag("csv") || args.getFlag("json");
    if (args.getFlag("csv"))
        printCsvHeader();
    else if (!quiet) {
        if (num_cores > 1)
            std::printf("%s: %u cores, %llu insts/core "
                        "(%llu warmup)\n\n",
                        workload_name.c_str(), num_cores,
                        static_cast<unsigned long long>(insts),
                        static_cast<unsigned long long>(warmup));
        else
            std::printf("%s: %zu records, %llu insts "
                        "(%llu warmup)\n\n",
                        workload_name.c_str(), trace.size(),
                        static_cast<unsigned long long>(insts),
                        static_cast<unsigned long long>(warmup));
    }

    // Observability attachments shared by the runs.
    std::unique_ptr<SnapshotWriter> snapshot;
    const std::uint64_t snap_interval =
        args.getUint("snapshot-interval", 0);
    if (snap_interval > 0 || args.provided("snapshot-file")) {
        snapshot = std::make_unique<SnapshotWriter>(
            args.get("snapshot-file"), snap_interval);
        if (!snapshot->ok())
            return 1;
        snapshot->setWorkload(workload_name);
    }

    std::unique_ptr<ChromeTraceWriter> chrome;
    if (args.provided("chrome-trace")) {
        if (schemes.size() > 1) {
            std::fprintf(stderr,
                         "--chrome-trace needs a single prefetcher "
                         "(not 'all'); skipping timeline export\n");
        } else {
            chrome = std::make_unique<ChromeTraceWriter>(
                args.get("chrome-trace"),
                args.getUint("trace-start", 0),
                args.provided("trace-end")
                    ? args.getUint("trace-end", 0)
                    : ~Cycle(0),
                args.getUint("trace-max-events", 500000));
            if (!chrome->ok())
                return 1;
        }
    }

    std::ofstream stats_file;
    if (args.provided("stats-file")) {
        stats_file.open(args.get("stats-file"));
        if (!stats_file) {
            std::fprintf(stderr, "cannot open '%s' for writing\n",
                         args.get("stats-file").c_str());
            return 1;
        }
    }

    ReportOptions report_options;
    report_options.provenance = args.getFlag("provenance");
    report_options.metrics = args.getFlag("metrics");

    std::vector<SimResult> results;
    for (const std::string &scheme_name : schemes) {
        SystemConfig config;
        config.scheme = scheme_name;
        config.pfOpts = pf_opts;
        applyOverrides(args, config);
        applyCoreModel(args, config);
        MetricsRegistry scheme_metrics;
        SimProbes probes;
        probes.snapshot = snapshot.get();
        probes.trace = chrome.get();
        if (args.getFlag("metrics"))
            probes.schemeMetrics = &scheme_metrics;
        SimResult r;
        if (num_cores > 1) {
            config.mem.numCores = num_cores;
            r = simulateMulti(core_traces, core_names, config,
                              insts, probes, warmup);
        } else {
            r = simulate(trace, config, insts, probes, warmup);
        }
        r.workload = workload_name;
        if (stats_file.is_open())
            dumpStats(stats_file, r);
        if (chrome && args.getFlag("metrics")) {
            chrome->writeMetricCounters(simMetrics(r),
                                        r.core.cycles);
            chrome->writeMetricCounters(scheme_metrics,
                                        r.core.cycles);
        }
        if (args.getFlag("json")) {
            results.push_back(std::move(r));
        } else if (args.getFlag("csv")) {
            printCsv(r);
        } else if (args.getFlag("stats")) {
            dumpStats(std::cout, r);
        } else {
            printHuman(r);
            if (args.getFlag("metrics") && !scheme_metrics.empty()) {
                std::printf("\nscheme metrics:\n");
                scheme_metrics.dumpText(std::cout);
            }
        }
    }
    // Merge host-profiler time into the Chrome trace before the
    // footer is written.
    prof::Report profile_report;
    if (prof::enabled()) {
        profile_report = prof::report();
        if (chrome)
            chrome->writeHostPhases(profile_report);
    }
    if (chrome)
        chrome->close();
    if (args.getFlag("json"))
        std::printf("%s\n", toJson(results, report_options).c_str());
    if (prof::enabled()) {
        // Keep machine-readable stdout (csv/json) clean: the table
        // goes to stderr there, stdout otherwise.
        const std::string table = prof::renderTable(profile_report);
        std::fputs(table.c_str(), quiet ? stderr : stdout);
        const std::string profile_path = args.get("profile-json");
        if (!prof::writeJsonFile(profile_path, profile_report)) {
            std::fprintf(stderr,
                         "--profile: cannot write '%s'\n",
                         profile_path.c_str());
            return 1;
        }
        if (!quiet)
            std::printf("profile written to %s\n",
                        profile_path.c_str());
    }
    return 0;
}
