/**
 * @file
 * cbws-trace — trace inspection tool.
 *
 * Generates, saves, loads and summarises instruction traces: record
 * mix, block-marker structure, per-block working-set size
 * distribution, hottest PCs and the cache-line footprint.
 *
 * Examples:
 *   cbws-trace --workload nw --insts 50000
 *   cbws-trace --workload sgemm-medium --save sgemm.cbt
 *   cbws-trace --load sgemm.cbt --blocks
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "base/argparse.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "workloads/registry.hh"

using namespace cbws;

namespace
{

void
summarise(const Trace &trace, bool show_blocks)
{
    std::printf("records: %zu\n", trace.size());

    TextTable mix;
    mix.header({"class", "count", "share"});
    struct ClassRow
    {
        InstClass cls;
        const char *name;
    };
    const ClassRow classes[] = {
        {InstClass::IntAlu, "int-alu"},
        {InstClass::IntMul, "int-mul"},
        {InstClass::FpAlu, "fp-alu"},
        {InstClass::Load, "load"},
        {InstClass::Store, "store"},
        {InstClass::Branch, "branch"},
        {InstClass::BlockBegin, "block-begin"},
        {InstClass::BlockEnd, "block-end"},
    };
    for (const auto &row : classes) {
        const std::size_t n = trace.countClass(row.cls);
        mix.row({row.name, std::to_string(n),
                 TextTable::num(trace.size()
                                    ? 100.0 * n / trace.size()
                                    : 0.0,
                                1) +
                     "%"});
    }
    std::printf("%s\n", mix.render().c_str());

    // Line footprint and hottest memory PCs.
    std::set<LineAddr> lines;
    std::map<Addr, std::uint64_t> pc_counts;
    for (const auto &rec : trace) {
        if (!isMemory(rec.cls))
            continue;
        lines.insert(rec.line());
        ++pc_counts[rec.pc];
    }
    std::printf("memory footprint: %zu distinct lines (%.2f MB)\n",
                lines.size(), lines.size() * 64.0 / 1e6);

    std::vector<std::pair<std::uint64_t, Addr>> hot;
    for (const auto &[pc, count] : pc_counts)
        hot.emplace_back(count, pc);
    std::sort(hot.rbegin(), hot.rend());
    std::printf("hottest memory PCs:");
    for (std::size_t i = 0; i < 5 && i < hot.size(); ++i)
        std::printf(" %#llx(x%llu)",
                    static_cast<unsigned long long>(hot[i].second),
                    static_cast<unsigned long long>(hot[i].first));
    std::printf("\n");

    // Block structure.
    Histogram ws_sizes(33, 1.0);
    std::uint64_t blocks = 0, over16 = 0;
    std::set<LineAddr> block_lines;
    bool in_block = false;
    for (const auto &rec : trace) {
        if (rec.cls == InstClass::BlockBegin) {
            block_lines.clear();
            in_block = true;
        } else if (rec.cls == InstClass::BlockEnd && in_block) {
            ws_sizes.sample(static_cast<double>(block_lines.size()));
            over16 += block_lines.size() > 16;
            ++blocks;
            in_block = false;
        } else if (in_block && isMemory(rec.cls)) {
            block_lines.insert(rec.line());
        }
    }
    if (blocks) {
        std::printf("\nannotated blocks: %llu; working sets over 16 "
                    "lines: %.2f%% (paper: <2%% typical)\n",
                    static_cast<unsigned long long>(blocks),
                    100.0 * over16 / blocks);
        if (show_blocks) {
            std::printf("working-set size distribution "
                        "(lines : blocks):\n");
            for (std::size_t b = 0; b < ws_sizes.numBuckets(); ++b) {
                if (ws_sizes.bucket(b)) {
                    std::printf("  %2zu%s : %llu\n", b,
                                b + 1 == ws_sizes.numBuckets() ? "+"
                                                               : " ",
                                static_cast<unsigned long long>(
                                    ws_sizes.bucket(b)));
                }
            }
        }
    } else {
        std::printf("\nno annotated blocks in this trace\n");
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ArgParser args("cbws-trace", "inspect CBWS instruction traces");
    args.addOption("workload", "benchmark to synthesise", "");
    args.addOption("insts", "records to generate", "50000");
    args.addOption("seed", "synthesis seed", "42");
    args.addOption("save", "write the trace to this file", "");
    args.addOption("load", "load a trace file instead", "");
    args.addFlag("blocks",
                 "print the per-block working-set size histogram");

    if (!args.parse(argc, argv))
        return 1;
    if (args.helpRequested())
        return 0;

    Trace trace;
    if (args.provided("load")) {
        Result<void> loaded = trace.loadFrom(args.get("load"));
        if (!loaded.ok()) {
            std::fprintf(stderr, "--load: %s\n",
                         loaded.error().str().c_str());
            return 1;
        }
        std::printf("loaded %s\n\n", args.get("load").c_str());
    } else if (args.provided("workload")) {
        auto workload = findWorkload(args.get("workload"));
        if (!workload) {
            std::fprintf(stderr, "unknown benchmark '%s'\n",
                         args.get("workload").c_str());
            return 1;
        }
        WorkloadParams params;
        params.maxInstructions = args.getUint("insts", 50000);
        params.seed = args.getUint("seed", 42);
        workload->generate(trace, params);
        std::printf("synthesised %s\n\n",
                    workload->name().c_str());
    } else {
        std::fprintf(stderr,
                     "need --workload <name> or --load <file>\n");
        return 1;
    }

    if (args.provided("save")) {
        Result<void> saved = trace.saveTo(args.get("save"));
        if (!saved.ok()) {
            std::fprintf(stderr, "--save: %s\n",
                         saved.error().str().c_str());
            return 1;
        }
        std::printf("saved to %s\n\n", args.get("save").c_str());
    }

    summarise(trace, args.getFlag("blocks"));
    return 0;
}
