/**
 * @file
 * cbws-served — the simulation-as-a-service daemon.
 *
 * Listens on a unix-domain (and optionally TCP) socket for
 * line-delimited JSON requests (docs/SERVING.md), maintains a
 * persistent experiment-matrix job queue under --data-dir, shards the
 * running job's cells across a pool of forked worker processes, and
 * streams per-cell results, worker lifecycle and scheduling stats to
 * subscribed clients. Sealed results dedup identical resubmissions
 * without re-simulating, and a SIGKILLed worker is respawned to
 * resume its shard checkpoint — the merged report stays byte-
 * identical to a serial in-process run.
 *
 * Examples:
 *   cbws-served --socket /tmp/cbws.sock --data-dir /tmp/cbws-data
 *   cbws-served --socket unix:/run/cbws.sock --tcp 127.0.0.1:7420 \
 *               --workers 4 --verbose
 */

#include <cstdio>
#include <string>

#include "base/argparse.hh"
#include "base/faultinject.hh"
#include "serve/server.hh"

using namespace cbws;

int
main(int argc, char **argv)
{
    ArgParser args("cbws-served",
                   "Experiment-matrix serving daemon: queue, shard "
                   "and stream simulation jobs over a socket.");
    args.addOption("socket",
                   "unix socket to listen on (unix:/path or bare "
                   "path)",
                   "cbws-served.sock");
    args.addOption("tcp",
                   "additionally listen on tcp:host:port (e.g. "
                   "127.0.0.1:7420)");
    args.addOption("data-dir",
                   "queue spools, shard checkpoints and sealed "
                   "results",
                   "served-data");
    args.addOption("workers", "worker processes per job", "2");
    args.addOption("max-respawns",
                   "respawns allowed per shard before a job fails",
                   "8");
    args.addFlag("verbose", "log client connects and job detail");
    if (!args.parse(argc, argv))
        return 2;
    if (args.helpRequested()) {
        std::printf("%s", args.usage().c_str());
        return 0;
    }

    // CBWS_FAULT chaos scenarios (serve-worker-kill@n, ...) are
    // inherited by the forked workers: configure early so a typo is a
    // startup error, not a silent no-op mid-job.
    {
        Result<void> faults =
            FaultInjector::instance().configureFromEnv();
        if (!faults.ok()) {
            std::fprintf(stderr, "cbws-served: %s\n",
                         faults.error().str().c_str());
            return 2;
        }
    }

    serve::Server::Options options;
    options.dataDir = args.get("data-dir");
    options.workers =
        static_cast<unsigned>(args.getUint("workers", 2));
    options.maxRespawns =
        static_cast<unsigned>(args.getUint("max-respawns", 8));
    options.verbose = args.getFlag("verbose");

    Result<SocketAddr> addr = parseSocketAddr(args.get("socket"));
    if (!addr.ok()) {
        std::fprintf(stderr, "cbws-served: --socket: %s\n",
                     addr.error().str().c_str());
        return 2;
    }
    options.listen.push_back(addr.value());
    if (!args.get("tcp").empty()) {
        std::string spec = args.get("tcp");
        if (spec.rfind("tcp:", 0) != 0)
            spec = "tcp:" + spec;
        Result<SocketAddr> tcp = parseSocketAddr(spec);
        if (!tcp.ok() || !tcp.value().tcp) {
            std::fprintf(stderr,
                         "cbws-served: --tcp: expected host:port\n");
            return 2;
        }
        options.listen.push_back(tcp.value());
    }

    serve::Server server;
    Result<void> ready = server.init(options);
    if (!ready.ok()) {
        std::fprintf(stderr, "cbws-served: %s\n",
                     ready.error().str().c_str());
        return 1;
    }
    // Machine-readable ready line on stdout: scripts (and the chaos
    // CI job) wait for this before connecting.
    for (const auto &bound : server.boundAddresses())
        std::printf("READY %s\n", bound.c_str());
    std::fflush(stdout);
    return server.run();
}
