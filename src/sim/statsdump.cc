#include "sim/statsdump.hh"

#include <iomanip>

namespace cbws
{

namespace
{

class Dumper
{
  public:
    explicit Dumper(std::ostream &out) : out_(out) {}

    void
    line(const std::string &name, std::uint64_t value,
         const std::string &desc)
    {
        out_ << std::left << std::setw(40) << name << std::right
             << std::setw(16) << value << "  # " << desc << "\n";
    }

    void
    line(const std::string &name, double value,
         const std::string &desc)
    {
        out_ << std::left << std::setw(40) << name << std::right
             << std::setw(16) << std::fixed << std::setprecision(6)
             << value << "  # " << desc << "\n";
    }

  private:
    std::ostream &out_;
};

} // anonymous namespace

void
dumpStats(std::ostream &out, const SimResult &r)
{
    Dumper d(out);
    out << "---------- Begin Simulation Statistics ----------\n";
    out << "# workload: " << r.workload
        << "  prefetcher: " << r.prefetcher << "\n";

    d.line("sim.instructions", r.core.instructions,
           "committed instructions (markers included)");
    d.line("sim.cycles", r.core.cycles, "simulated cycles");
    d.line("sim.ipc", r.ipc(), "committed IPC");

    d.line("core.memInstructions", r.core.memInstructions,
           "committed loads + stores");
    d.line("core.branches", r.core.branches, "committed branches");
    d.line("core.branchMispredicts", r.core.branchMispredicts,
           "direction or target mispredictions");
    d.line("core.loopCycles", r.core.loopCycles,
           "cycles attributed to annotated blocks");
    d.line("core.loopFraction", r.core.loopFraction(),
           "fraction of runtime in tight loops (Fig. 1)");
    d.line("core.robFullStalls", r.core.robFullStalls,
           "dispatch stalls on a full ROB");
    d.line("core.lsqFullStalls", r.core.lsqFullStalls,
           "dispatch stalls on a full LDQ/STQ");

    d.line("l1d.accesses", r.mem.l1dAccesses, "demand accesses");
    d.line("l1d.misses", r.mem.l1dMisses, "demand misses");
    d.line("l1i.accesses", r.mem.l1iAccesses, "fetch accesses");
    d.line("l1i.misses", r.mem.l1iMisses, "fetch misses");
    d.line("l2.demandAccesses", r.mem.demandL2Accesses,
           "data-side demand accesses reaching the L2");
    d.line("l2.demandMisses", r.mem.llcDemandMisses,
           "primary demand misses (drives Fig. 12 MPKI)");
    d.line("l2.mpki", r.mpki(), "LLC misses per kilo-instruction");
    d.line("l2.mshrStalls", r.mem.mshrStalls,
           "accesses rejected by a full MSHR file");

    d.line("pf.requested", r.mem.prefetchesRequested,
           "prefetch requests from the prefetcher");
    d.line("pf.issued", r.mem.prefetchesIssued,
           "prefetches issued to memory");
    d.line("pf.filtered", r.mem.prefetchesFiltered,
           "requests dropped as cached/in-flight");
    d.line("pf.dropped", r.mem.prefetchesDropped,
           "requests lost to queue overflow");
    d.line("pf.wrong", r.mem.wrongPrefetches,
           "prefetched lines never used (Fig. 13 'wrong')");
    d.line("pf.timelyFraction",
           r.classFraction(DemandClass::Timely),
           "demand L2 accesses served by a completed prefetch");
    d.line("pf.shorterFraction",
           r.classFraction(DemandClass::Shorter),
           "demand L2 accesses merged into in-flight prefetches");
    d.line("pf.nonTimelyFraction",
           r.classFraction(DemandClass::NonTimely),
           "demand beat the queued prefetch");
    d.line("pf.missingFraction",
           r.classFraction(DemandClass::Missing),
           "demand misses with no prefetch help");
    d.line("pf.storageBits", r.prefetcherStorageBits,
           "hardware budget of the scheme (Table III)");

    // Per-source lifecycle accounting: one group per prefetcher
    // component that issued at least one request this run.
    for (unsigned s = 0; s < NumPfSources; ++s) {
        const PrefetchLifecycle &life = r.mem.pfLife[s];
        if (life.issued == 0 && life.filled == 0)
            continue;
        const std::string p =
            std::string("pf.") + toString(static_cast<PfSource>(s));
        d.line(p + ".issued", life.issued,
               "requests tagged by this component");
        d.line(p + ".merged", life.merged,
               "subsumed by a resident/in-flight copy or a demand");
        d.line(p + ".dropped", life.dropped,
               "lost to queue overflow / end of run");
        d.line(p + ".filled", life.filled,
               "lines this component brought into the L2");
        d.line(p + ".demandHitTimely", life.demandHitTimely,
               "fills demanded after arriving (fully hidden)");
        d.line(p + ".demandHitLate", life.demandHitLate,
               "fills demanded while still in flight");
        d.line(p + ".evictedUnused", life.evictedUnused,
               "fills evicted without a demand hit (pollution)");
        d.line(p + ".residentAtEnd", life.residentAtEnd,
               "unused fills still resident at the end");
        d.line(p + ".accuracy", life.accuracy(),
               "demand-hit fraction of filled lines");
        d.line(p + ".lateFraction", life.lateFraction(),
               "useful fills that arrived after the demand");
        d.line(p + ".pollutionRate", life.pollutionRate(),
               "filled lines that only polluted the cache");
        d.line(p + ".latenessCycles", life.latenessCycles,
               "total cycles demands waited on late fills");
    }
    {
        // Coverage: fraction of would-be LLC misses removed by
        // prefetching (timely hits over timely hits + actual misses).
        const PrefetchLifecycle total = r.mem.pfLifeTotal();
        const std::uint64_t covered = total.demandHitTimely;
        const std::uint64_t coverage_den =
            covered + r.mem.llcDemandMisses;
        d.line("pf.accuracy", total.accuracy(),
               "all sources: demand-hit fraction of fills");
        d.line("pf.coverage",
               coverage_den ? static_cast<double>(covered) /
                                  static_cast<double>(coverage_den)
                            : 0.0,
               "misses removed by completed prefetches");
        d.line("pf.lateFraction", total.lateFraction(),
               "all sources: useful fills arriving late");
        d.line("pf.pollutionRate", total.pollutionRate(),
               "all sources: fills that only polluted");
    }

    d.line("dram.bytesRead", r.mem.dramBytesRead,
           "bytes fetched from memory");
    d.line("dram.bytesWritten", r.mem.dramBytesWritten,
           "writeback bytes to memory");

    // Multi-core runs only: the interference counters and one group
    // per core. Single-core dumps are unchanged byte-for-byte.
    if (r.cores > 1) {
        d.line("sys.cores", static_cast<std::uint64_t>(r.cores),
               "cores sharing the L2 and DRAM");
        d.line("l2.crossCorePollutionMisses",
               r.mem.crossCorePollutionMisses,
               "demand misses on lines evicted by another core's "
               "prefetch");
        d.line("l2.bankConflicts", r.mem.l2BankConflicts,
               "L2 accesses delayed by bank arbitration");
        for (std::size_t c = 0; c < r.perCore.size(); ++c) {
            const CoreSliceResult &slice = r.perCore[c];
            const std::string p =
                "core" + std::to_string(c) + ".";
            d.line(p + "workloadIpc", slice.ipc(),
                   "committed IPC of " + slice.workload);
            d.line(p + "mpki", slice.mpki(),
                   "LLC demand misses per kilo-instruction");
            d.line(p + "llcDemandMisses",
                   slice.mem.llcDemandMisses,
                   "primary demand misses from this core");
            d.line(p + "pollutionVictimMisses",
                   slice.mem.pollutionVictimMisses,
                   "this core's misses caused by others' prefetches");
            d.line(p + "pollutionCausedMisses",
                   slice.mem.pollutionCausedMisses,
                   "other cores' misses this core's prefetches "
                   "caused");
            d.line(p + "l2ResidentLines", slice.mem.l2ResidentLines,
                   "L2 lines owned by this core at the end");
        }
    }
    out << "---------- End Simulation Statistics   ----------\n";
}

} // namespace cbws
