#include "sim/statsdump.hh"

#include "sim/simmetrics.hh"

namespace cbws
{

void
dumpStats(std::ostream &out, const SimResult &r)
{
    // Everything between the banner lines renders from the metrics
    // registry — statsdump no longer owns a serializer of its own.
    // MetricsRegistry::dumpText emits the historical line format
    // byte-for-byte (Vector/Histogram entries are JSON-only).
    const MetricsRegistry reg = simMetrics(r);
    out << "---------- Begin Simulation Statistics ----------\n";
    out << "# workload: " << r.workload
        << "  prefetcher: " << r.prefetcher << "\n";
    reg.dumpText(out);
    out << "---------- End Simulation Statistics   ----------\n";
}

} // namespace cbws
