/**
 * @file
 * Top-level simulation driver: wires the OoO core, the memory
 * hierarchy and the configured prefetcher together and reports the
 * metrics the paper's figures are built from.
 */

#ifndef CBWS_SIM_SIMULATOR_HH
#define CBWS_SIM_SIMULATOR_HH

#include <string>
#include <vector>

#include "base/stats.hh"
#include "cpu/core.hh"
#include "mem/hierarchy.hh"
#include "sim/config.hh"
#include "workloads/workload.hh"

namespace cbws
{

/** Per-core slice of a multi-core simulation run. */
struct CoreSliceResult
{
    /** Workload trace this core executed. */
    std::string workload;
    CoreStats core;
    CoreMemStats mem;

    double ipc() const { return core.ipc(); }

    /** This core's misses-per-kilo-instruction in the shared LLC. */
    double
    mpki() const
    {
        return core.instructions
                   ? 1000.0 * static_cast<double>(mem.llcDemandMisses) /
                     static_cast<double>(core.instructions)
                   : 0.0;
    }
};

/** Everything measured by one simulation run. */
struct SimResult
{
    std::string workload;
    std::string prefetcher;
    /** DRAM backend the run used (registry name; "fixed" default). */
    std::string dramBackend = "fixed";
    /** Cores simulated (1 = the paper's single-core system). */
    unsigned cores = 1;
    CoreStats core;
    HierarchyStats mem;
    /** Per-core slices; empty unless cores > 1. In multi-core runs
     *  `core` holds the aggregate (instructions summed, cycles =
     *  slowest core) and `workload` joins the per-core names. */
    std::vector<CoreSliceResult> perCore;
    std::uint64_t prefetcherStorageBits = 0;

    double ipc() const { return core.ipc(); }

    /** Last-level-cache misses per kilo-instruction (Fig. 12). */
    double
    mpki() const
    {
        return core.instructions
                   ? 1000.0 * static_cast<double>(mem.llcDemandMisses) /
                     static_cast<double>(core.instructions)
                   : 0.0;
    }

    /** Fraction of demand L2 accesses in @p cls (Fig. 13). */
    double
    classFraction(DemandClass cls) const
    {
        return mem.demandL2Accesses
                   ? static_cast<double>(mem.classCount(cls)) /
                     static_cast<double>(mem.demandL2Accesses)
                   : 0.0;
    }

    /** Wrong prefetches as a fraction of demand L2 accesses. */
    double
    wrongFraction() const
    {
        return mem.demandL2Accesses
                   ? static_cast<double>(mem.wrongPrefetches) /
                     static_cast<double>(mem.demandL2Accesses)
                   : 0.0;
    }

    /** IPC per DRAM byte read (Fig. 15, before normalisation). */
    double
    perfPerByte() const
    {
        return mem.dramBytesRead
                   ? ipc() / static_cast<double>(mem.dramBytesRead)
                   : 0.0;
    }
};

class MetricsRegistry;
class SnapshotWriter;
class TraceSink;

/** Optional instrumentation attached to a run. */
struct SimProbes
{
    /** Samples the identity of every 1-step CBWS differential
     *  (Fig. 5); only honoured by CBWS-based configurations. */
    FrequencyCounter *differentials = nullptr;

    /** Periodic JSONL statistics snapshots (sim/snapshot.hh). */
    SnapshotWriter *snapshot = nullptr;

    /** Timeline-event sink (e.g., the Chrome trace exporter);
     *  attached to the hierarchy and the core for the run. */
    TraceSink *trace = nullptr;

    /**
     * When set, the run's prefetcher(s) register their scheme-internal
     * gauges here at the end of the run, under "pf.scheme" (multi-core
     * runs use "coreN.pf.scheme" per instance). Scheme gauges live
     * outside SimResult on purpose: they never enter the checkpoint or
     * report serialisation, so enabling them cannot perturb goldens.
     */
    MetricsRegistry *schemeMetrics = nullptr;
};

/**
 * Run @p trace through a system configured by @p config.
 *
 * @param warmup_insts committed instructions whose statistics are
 *        discarded (caches and predictors stay warm) — stands in for
 *        the paper's region-of-interest fast-forwarding.
 */
SimResult simulate(const Trace &trace, const SystemConfig &config,
                   std::uint64_t max_insts,
                   const SimProbes &probes = SimProbes(),
                   std::uint64_t warmup_insts = 0);

/**
 * Convenience wrapper: synthesise @p workload's trace, then simulate
 * it. max_insts defaults to the workload's generation budget.
 */
SimResult simulateWorkload(const Workload &workload,
                           const SystemConfig &config,
                           const WorkloadParams &params,
                           const SimProbes &probes = SimProbes(),
                           std::uint64_t warmup_insts = 0);

/**
 * Multi-core run: one core per entry of @p traces (with the matching
 * display name in @p workload_names), all sharing the L2 + DRAM
 * backend of one Hierarchy, each with a private prefetcher instance.
 * Cores are stepped in lockstep, core 0 first each cycle, so results
 * are deterministic. config.mem.numCores is overridden to
 * traces.size(). With a single trace this degenerates to simulate()
 * (bit-identical to the single-core path). Requires the out-of-order
 * core model.
 *
 * @param warmup_insts per-core warmup window; the shared hierarchy
 *        statistics reset when the *last* core crosses its boundary.
 */
SimResult simulateMulti(const std::vector<const Trace *> &traces,
                        const std::vector<std::string> &workload_names,
                        const SystemConfig &config,
                        std::uint64_t max_insts,
                        const SimProbes &probes = SimProbes(),
                        std::uint64_t warmup_insts = 0);

} // namespace cbws

#endif // CBWS_SIM_SIMULATOR_HH
