#include "sim/experiment.hh"

#include <cstdlib>

#include "base/debug.hh"
#include "base/logging.hh"
#include "base/threadpool.hh"

namespace cbws
{

void
ExperimentMatrix::indexKinds()
{
    std::size_t max_kind = 0;
    for (PrefetcherKind kind : kinds)
        max_kind = std::max(max_kind,
                            static_cast<std::size_t>(kind));
    kindIndex.assign(max_kind + 1, -1);
    for (std::size_t k = 0; k < kinds.size(); ++k)
        kindIndex[static_cast<std::size_t>(kinds[k])] =
            static_cast<std::int16_t>(k);
}

const SimResult &
ExperimentMatrix::result(std::size_t row, PrefetcherKind kind) const
{
    if (!kindIndex.empty()) {
        const auto i = static_cast<std::size_t>(kind);
        if (i < kindIndex.size() && kindIndex[i] >= 0)
            return rows.at(row).byPrefetcher.at(
                static_cast<std::size_t>(kindIndex[i]));
        panic("prefetcher kind not in matrix");
    }
    // Unindexed (hand-assembled) matrix: scan.
    for (std::size_t k = 0; k < kinds.size(); ++k)
        if (kinds[k] == kind)
            return rows.at(row).byPrefetcher.at(k);
    panic("prefetcher kind not in matrix");
}

ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<PrefetcherKind> &kinds,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed, const MatrixOptions &options)
{
    ExperimentMatrix matrix;
    matrix.kinds = kinds;
    matrix.indexKinds();

    unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::jobsFromEnv(1);
    if (jobs > 1 && debug::state.anyEnabled) {
        // The trace-flag facility is global (gem5-style, one traced
        // run per process): parallel cells would interleave lines and
        // race on the cycle gate. Tracing a matrix implies studying
        // one run anyway, so degrade to serial rather than garble.
        warn("runMatrix: debug trace flags are enabled; "
             "forcing jobs=1 for coherent trace output");
        jobs = 1;
    }

    WorkloadParams params;
    params.maxInstructions = max_insts;
    params.seed = seed;

    const std::size_t num_workloads = workloads.size();
    const std::size_t num_kinds = kinds.size();

    // Phase 1: synthesise (or load from the trace cache) every
    // workload's trace, one cell per workload. Each trace is written
    // exactly once and only read afterwards, so the simulation phase
    // shares them without copies or locks.
    std::vector<Trace> traces(num_workloads);
    parallelFor(jobs, num_workloads, [&](std::size_t w) {
        Trace &trace = traces[w];
        const TraceCache::Key key{workloads[w]->name(), max_insts,
                                  seed};
        if (options.traceCache &&
            options.traceCache->load(key, trace)) {
            return;
        }
        trace.reserve(max_insts + 512);
        workloads[w]->generate(trace, params);
        if (options.traceCache)
            options.traceCache->store(key, trace);
    });

    matrix.rows.resize(num_workloads);
    for (std::size_t w = 0; w < num_workloads; ++w) {
        matrix.rows[w].workload = workloads[w]->name();
        matrix.rows[w].memoryIntensive =
            workloads[w]->memoryIntensive();
        matrix.rows[w].byPrefetcher.resize(num_kinds);
    }

    // Phase 2: the workloads x kinds cells, each an independent
    // simulated system replaying a shared read-only trace into its
    // preassigned result slot. A quarter of the budget warms caches
    // and predictors (the paper fast-forwards past initialisation
    // instead).
    const std::uint64_t warmup = max_insts / 4;
    parallelFor(jobs, num_workloads * num_kinds, [&](std::size_t i) {
        const std::size_t w = i / num_kinds;
        const std::size_t k = i % num_kinds;
        SystemConfig config = base_config;
        config.prefetcher = kinds[k];
        SimResult res = simulate(traces[w], config, max_insts,
                                 SimProbes(), warmup);
        res.workload = matrix.rows[w].workload;
        matrix.rows[w].byPrefetcher[k] = std::move(res);
    });
    return matrix;
}

std::uint64_t
benchInstructionBudget(std::uint64_t fallback)
{
    if (const char *env = std::getenv("CBWS_BENCH_INSTS")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

} // namespace cbws
