#include "sim/experiment.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace cbws
{

const SimResult &
ExperimentMatrix::result(std::size_t row, PrefetcherKind kind) const
{
    for (std::size_t k = 0; k < kinds.size(); ++k)
        if (kinds[k] == kind)
            return rows.at(row).byPrefetcher.at(k);
    panic("prefetcher kind not in matrix");
}

ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<PrefetcherKind> &kinds,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed)
{
    ExperimentMatrix matrix;
    matrix.kinds = kinds;

    WorkloadParams params;
    params.maxInstructions = max_insts;
    params.seed = seed;

    for (const auto &workload : workloads) {
        WorkloadRow row;
        row.workload = workload->name();
        row.memoryIntensive = workload->memoryIntensive();

        // Synthesise the trace once; replay it under every scheme so
        // all configurations see the identical access stream.
        Trace trace;
        trace.reserve(max_insts + 512);
        workload->generate(trace, params);

        // A quarter of the budget warms caches and predictors (the
        // paper fast-forwards past initialisation instead).
        const std::uint64_t warmup = max_insts / 4;
        for (PrefetcherKind kind : kinds) {
            SystemConfig config = base_config;
            config.prefetcher = kind;
            SimResult res = simulate(trace, config, max_insts,
                                     SimProbes(), warmup);
            res.workload = workload->name();
            row.byPrefetcher.push_back(std::move(res));
        }
        matrix.rows.push_back(std::move(row));
    }
    return matrix;
}

std::uint64_t
benchInstructionBudget(std::uint64_t fallback)
{
    if (const char *env = std::getenv("CBWS_BENCH_INSTS")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

} // namespace cbws
