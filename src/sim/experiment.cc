#include "sim/experiment.hh"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include "base/debug.hh"
#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/profiler.hh"
#include "base/progress.hh"
#include "base/threadpool.hh"
#include "base/tuning.hh"
#include "sim/checkpoint.hh"

namespace cbws
{

namespace
{

/**
 * Run @p count cells at @p jobs, tolerating pool-level failures: if
 * the parallel pass dies (e.g. an injected PoolJob fault), the cells
 * that never completed — tracked via @p done flags the body must set
 * — are retried serially so the matrix still finishes. The body is
 * deterministic per cell, so the fallback changes nothing but time.
 */
template <typename Fn>
void
runCells(unsigned jobs, std::size_t count, std::vector<char> &done,
         const char *what, Fn &&body)
{
    try {
        parallelFor(jobs, count, body);
        return;
    } catch (const FaultInjectedError &e) {
        warn("runMatrix: %s pool failed (%s); retrying remaining "
             "cells serially",
             what, e.what());
    }
    for (std::size_t i = 0; i < count; ++i)
        if (!done[i])
            body(i);
}

} // anonymous namespace

namespace
{

/** Set from the SIGINT/SIGTERM handler; checked at cell boundaries.
 *  Lock-free atomic, so the handler write is async-signal-safe. */
std::atomic<bool> g_matrix_interrupt{false};

extern "C" void
matrixSignalHandler(int)
{
    g_matrix_interrupt.store(true, std::memory_order_relaxed);
}

} // anonymous namespace

void
installMatrixSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = matrixSignalHandler;
    sigemptyset(&sa.sa_mask);
    // One-shot: the first signal requests the graceful drain, a
    // second one gets the default disposition and kills the process
    // outright — an escape hatch from a wedged cell.
    sa.sa_flags = SA_RESETHAND;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

void
requestMatrixInterrupt()
{
    g_matrix_interrupt.store(true, std::memory_order_relaxed);
}

bool
matrixInterruptRequested()
{
    return g_matrix_interrupt.load(std::memory_order_relaxed);
}

void
clearMatrixInterrupt()
{
    g_matrix_interrupt.store(false, std::memory_order_relaxed);
}

namespace
{

/** Case-insensitive scheme-name comparison (registry canon rule). */
bool
sameScheme(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const char ca = a[i] >= 'A' && a[i] <= 'Z'
                            ? static_cast<char>(a[i] - 'A' + 'a')
                            : a[i];
        const char cb = b[i] >= 'A' && b[i] <= 'Z'
                            ? static_cast<char>(b[i] - 'A' + 'a')
                            : b[i];
        if (ca != cb)
            return false;
    }
    return true;
}

} // anonymous namespace

std::size_t
ExperimentMatrix::column(const std::string &scheme) const
{
    for (std::size_t k = 0; k < schemes.size(); ++k)
        if (sameScheme(schemes[k], scheme))
            return k;
    panic("scheme '%s' not in matrix", scheme.c_str());
}

const SimResult &
ExperimentMatrix::result(std::size_t row,
                         const std::string &scheme) const
{
    return rows.at(row).byPrefetcher.at(column(scheme));
}

const SimResult &
ExperimentMatrix::result(std::size_t row, PrefetcherKind kind) const
{
    return result(row, std::string(toString(kind)));
}

ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<PrefetcherKind> &kinds,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed, const MatrixOptions &options)
{
    std::vector<std::string> schemes;
    schemes.reserve(kinds.size());
    for (PrefetcherKind kind : kinds)
        schemes.emplace_back(toString(kind));
    return runMatrix(workloads, schemes, base_config, max_insts,
                     seed, options);
}

ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<std::string> &scheme_args,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed, const MatrixOptions &options)
{
    // Fail fast, before any trace is synthesised: unknown schemes or
    // bad --pf-opt strings are user errors, not per-cell surprises.
    {
        Result<void> valid = prefetcherRegistry().validateOptions(
            scheme_args, base_config.pfOpts);
        if (!valid.ok())
            fatal("runMatrix: %s", valid.error().str().c_str());
    }
    // Canonicalise to the registry's display names ("cbws+sms" ->
    // "CBWS+SMS"): result() lookups, checkpoint cell keys and report
    // columns all use the canonical spelling.
    std::vector<std::string> schemes;
    schemes.reserve(scheme_args.size());
    for (const auto &name : scheme_args)
        schemes.push_back(prefetcherRegistry().canonicalName(name));

    ExperimentMatrix matrix;
    matrix.schemes = schemes;

    unsigned jobs =
        options.jobs ? options.jobs : ThreadPool::jobsFromEnv(1);
    if (jobs > 1 && debug::state.anyEnabled) {
        // The trace-flag facility is global (gem5-style, one traced
        // run per process): parallel cells would interleave lines and
        // race on the cycle gate. Tracing a matrix implies studying
        // one run anyway, so degrade to serial rather than garble.
        warn("runMatrix: debug trace flags are enabled; "
             "forcing jobs=1 for coherent trace output");
        jobs = 1;
    }

    const bool progress =
        options.progress || ProgressMeter::enabledFromEnv();

    WorkloadParams params;
    params.maxInstructions = max_insts;
    params.seed = seed;

    const std::size_t num_workloads = workloads.size();
    const std::size_t num_kinds = schemes.size();

    // Crash-safe resume: cells already recorded in the checkpoint are
    // loaded instead of re-simulated.
    Checkpoint checkpoint;
    if (!options.checkpointPath.empty()) {
        std::vector<std::string> workload_names;
        for (const auto &w : workloads)
            workload_names.push_back(w->name());
        Checkpoint::Header header;
        header.insts = max_insts;
        header.seed = seed;
        // The DRAM backend changes every completion cycle, the core
        // count changes every counter, and pf-opts change the
        // prefetchers themselves, so checkpoints from differently
        // configured runs must never cross-resume.
        std::string config_tag = base_config.mem.dramBackend;
        if (base_config.mem.numCores > 1)
            config_tag += "+cores" +
                          std::to_string(base_config.mem.numCores);
        if (!base_config.pfOpts.empty()) {
            std::vector<std::string> opts = base_config.pfOpts;
            std::sort(opts.begin(), opts.end());
            config_tag += "+opt:";
            for (const auto &opt : opts)
                config_tag += opt + ",";
        }
        header.fingerprint = checkpointFingerprint(
            workload_names, schemes, config_tag);
        Result<void> opened =
            checkpoint.open(options.checkpointPath, header);
        // A bad checkpoint is a user error (wrong path or stale
        // file), never something to silently run over.
        if (!opened.ok())
            fatal("runMatrix: %s", opened.error().str().c_str());
        // Status goes to stderr (via warn) so resumed runs keep
        // byte-identical stdout reports — the resume acceptance
        // check literally diffs them.
        if (checkpoint.resumedCells())
            warn("runMatrix: resuming, %zu of %zu cells restored "
                 "from %s",
                 checkpoint.resumedCells(),
                 num_workloads * num_kinds,
                 options.checkpointPath.c_str());
    }

    // Phase 1: synthesise (or load from the trace cache) every
    // workload's trace, one cell per workload. Each trace is written
    // exactly once and only read afterwards, so the simulation phase
    // shares them without copies or locks. The SoA pre-decode is
    // built here too — by the single worker that owns the trace —
    // because Trace::ensureDecoded() is not safe to race from the
    // simulation phase's concurrent cells; afterwards all kinds of a
    // row replay the same read-only buffers.
    const bool batch_decode = Tuning::get().batchDecode;
    std::vector<Trace> traces(num_workloads);
    std::vector<char> trace_done(num_workloads, 0);
    {
        ProgressMeter meter("trace synthesis", num_workloads,
                            progress);
        runCells(jobs, num_workloads, trace_done, "trace synthesis",
                 [&](std::size_t w) {
            if (matrixInterruptRequested())
                return; // draining: skip, phase 2 is skipped too
            Trace &trace = traces[w];
            const TraceCache::Key key{workloads[w]->name(), max_insts,
                                      seed};
            if (options.traceCache &&
                options.traceCache->load(key, trace).ok()) {
                if (batch_decode)
                    trace.ensureDecoded();
                trace_done[w] = 1;
                meter.advance(true);
                return;
            }
            {
                PROF_SCOPE(prof::Phase::TraceSynthesis);
                trace.reserve(max_insts + 512);
                workloads[w]->generate(trace, params);
            }
            if (options.traceCache)
                options.traceCache->store(key, trace);
            if (batch_decode)
                trace.ensureDecoded();
            trace_done[w] = 1;
            meter.advance(false);
        });
    }

    matrix.rows.resize(num_workloads);
    for (std::size_t w = 0; w < num_workloads; ++w) {
        matrix.rows[w].workload = workloads[w]->name();
        matrix.rows[w].memoryIntensive =
            workloads[w]->memoryIntensive();
        matrix.rows[w].byPrefetcher.resize(num_kinds);
    }

    // Phase 2: the workloads x kinds cells, each an independent
    // simulated system replaying a shared read-only trace into its
    // preassigned result slot. A quarter of the budget warms caches
    // and predictors (the paper fast-forwards past initialisation
    // instead).
    const std::uint64_t warmup = max_insts / 4;
    std::vector<char> cell_done(num_workloads * num_kinds, 0);
    ProgressMeter meter("simulation", num_workloads * num_kinds,
                        progress);
    runCells(jobs, num_workloads * num_kinds, cell_done,
             "simulation", [&](std::size_t i) {
        // Graceful interrupt: launch nothing new; in-flight cells
        // finish (and checkpoint) normally, then the drain below
        // seals the file.
        if (matrixInterruptRequested())
            return;
        const std::size_t w = i / num_kinds;
        const std::size_t k = i % num_kinds;
        if (checkpoint.isOpen()) {
            const SimResult *restored = checkpoint.find(
                matrix.rows[w].workload, schemes[k]);
            if (restored) {
                matrix.rows[w].byPrefetcher[k] = *restored;
                cell_done[i] = 1;
                meter.advance(true);
                return;
            }
        }
        SystemConfig config = base_config;
        config.scheme = schemes[k];
        SimResult res;
        if (config.mem.numCores > 1) {
            // Rate mode: every core replays its own copy of the same
            // workload trace, contending for the shared L2/DRAM.
            const std::vector<const Trace *> core_traces(
                config.mem.numCores, &traces[w]);
            const std::vector<std::string> core_names(
                config.mem.numCores, matrix.rows[w].workload);
            res = simulateMulti(core_traces, core_names, config,
                                max_insts, SimProbes(), warmup);
        } else {
            res = simulate(traces[w], config, max_insts, SimProbes(),
                           warmup);
        }
        res.workload = matrix.rows[w].workload;
        if (checkpoint.isOpen()) {
            Result<void> appended = checkpoint.append(res);
            if (!appended.ok())
                warn("runMatrix: cell (%s, %s) not checkpointed "
                     "(%s); continuing without it",
                     res.workload.c_str(), res.prefetcher.c_str(),
                     appended.error().str().c_str());
        }
        meter.addInstructions(res.core.instructions);
        matrix.rows[w].byPrefetcher[k] = std::move(res);
        cell_done[i] = 1;
        meter.advance(false);
    });
    meter.finish();
    // Seal: every appended cell is already flushed line-by-line, the
    // final fsync makes the tail durable against power loss too. On
    // interrupt this is what guarantees a resumed run never loses a
    // completed cell.
    if (checkpoint.isOpen()) {
        Result<void> sealed = checkpoint.sync();
        if (!sealed.ok())
            warn("runMatrix: checkpoint seal failed (%s)",
                 sealed.error().str().c_str());
    }
    if (matrixInterruptRequested()) {
        matrix.interrupted = true;
        if (checkpoint.isOpen())
            warn("runMatrix: interrupted; %zu of %zu cells sealed in "
                 "%s; rerun with the same checkpoint to resume",
                 checkpoint.cellCount(), num_workloads * num_kinds,
                 options.checkpointPath.c_str());
        else
            warn("runMatrix: interrupted with no checkpoint; "
                 "completed cells are lost");
        if (options.onInterrupt ==
            MatrixOptions::OnInterrupt::ExitProcess)
            std::exit(130);
    }
    return matrix;
}

std::uint64_t
benchInstructionBudget(std::uint64_t fallback)
{
    if (const char *env = std::getenv("CBWS_BENCH_INSTS")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return fallback;
}

} // namespace cbws
