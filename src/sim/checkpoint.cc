#include "sim/checkpoint.hh"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <unistd.h>

#include "base/faultinject.hh"
#include "base/json.hh"
#include "base/jsonparse.hh"
#include "base/logging.hh"
#include "base/profiler.hh"
#include "base/retry.hh"
#include "base/version.hh"

namespace cbws
{

namespace
{

constexpr std::uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t FnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(const std::string &text, std::uint64_t hash = FnvOffset)
{
    for (char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= FnvPrime;
    }
    return hash;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * Seal a JSON object line with its own checksum: the crc member holds
 * FNV-1a over the object text *without* that member. Verification
 * strips the crc member back out and re-hashes.
 */
std::string
sealLine(const std::string &object_text)
{
    const std::uint64_t crc = fnv1a(object_text);
    std::string out = object_text;
    out.insert(out.size() - 1, ",\"crc\":\"" + hex16(crc) + "\"");
    return out;
}

bool
verifySeal(const std::string &line, std::string &object_text)
{
    const std::string marker = ",\"crc\":\"";
    const std::size_t at = line.rfind(marker);
    if (at == std::string::npos)
        return false;
    const std::size_t hex_at = at + marker.size();
    // ...,"crc":"0123456789abcdef"}
    if (line.size() != hex_at + 16 + 2 || line.back() != '}' ||
        line[line.size() - 2] != '"')
        return false;
    const std::string hex = line.substr(hex_at, 16);
    object_text = line.substr(0, at) + "}";
    return hex == hex16(fnv1a(object_text));
}

void
writeLifecycle(JsonWriter &w, const PrefetchLifecycle &life)
{
    w.beginArray();
    w.value(life.issued);
    w.value(life.dropped);
    w.value(life.merged);
    w.value(life.filled);
    w.value(life.demandHitTimely);
    w.value(life.demandHitLate);
    w.value(life.evictedUnused);
    w.value(life.residentAtEnd);
    w.value(life.latenessCycles);
    w.endArray();
}

bool
readLifecycle(const JsonValue &v, PrefetchLifecycle &life)
{
    if (v.type != JsonValue::Type::Array || v.array.size() != 9)
        return false;
    std::uint64_t *fields[] = {
        &life.issued,        &life.dropped,
        &life.merged,        &life.filled,
        &life.demandHitTimely, &life.demandHitLate,
        &life.evictedUnused, &life.residentAtEnd,
        &life.latenessCycles,
    };
    for (std::size_t i = 0; i < 9; ++i) {
        if (v.array[i].type != JsonValue::Type::Uint)
            return false;
        *fields[i] = v.array[i].uintValue;
    }
    return true;
}

template <std::size_t N>
bool
readUintArray(const JsonValue *v, std::uint64_t (&out)[N])
{
    if (!v || v->type != JsonValue::Type::Array || v->array.size() != N)
        return false;
    for (std::size_t i = 0; i < N; ++i) {
        if (v->array[i].type != JsonValue::Type::Uint)
            return false;
        out[i] = v->array[i].uintValue;
    }
    return true;
}

std::string
headerLine(const Checkpoint::Header &header)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version",
            static_cast<std::uint64_t>(CheckpointSchemaVersion));
    w.field("type", "header");
    w.field("format", "cbws-checkpoint");
    w.field("insts", header.insts);
    w.field("seed", header.seed);
    w.field("fingerprint", hex16(header.fingerprint));
    w.endObject();
    return sealLine(w.str());
}

/**
 * Sealed informational record stamping which build wrote the file.
 * Readers skip it silently (it is never part of resume state), so a
 * checkpoint written by one build resumes fine under another — the
 * header fingerprint, not the provenance, decides compatibility.
 */
std::string
provenanceLine()
{
    const BuildInfo &info = buildInfo();
    JsonWriter w;
    w.beginObject();
    w.field("schema_version",
            static_cast<std::uint64_t>(CheckpointSchemaVersion));
    w.field("type", "provenance");
    w.field("git_sha", info.gitSha);
    w.field("compiler", info.compiler);
    w.field("build_type", info.buildType);
    w.endObject();
    return sealLine(w.str());
}

} // anonymous namespace

std::string
checkpointCellLine(const SimResult &r)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version",
            static_cast<std::uint64_t>(CheckpointSchemaVersion));
    w.field("type", "cell");
    w.field("workload", r.workload);
    w.field("prefetcher", r.prefetcher);
    w.field("storage_bits", r.prefetcherStorageBits);

    w.key("core");
    w.beginArray();
    w.value(r.core.cycles);
    w.value(r.core.instructions);
    w.value(r.core.memInstructions);
    w.value(r.core.branches);
    w.value(r.core.branchMispredicts);
    w.value(r.core.loopCycles);
    w.value(r.core.robFullStalls);
    w.value(r.core.lsqFullStalls);
    w.endArray();

    w.key("mem");
    w.beginArray();
    w.value(r.mem.l1dAccesses);
    w.value(r.mem.l1dMisses);
    w.value(r.mem.l1iAccesses);
    w.value(r.mem.l1iMisses);
    w.value(r.mem.demandL2Accesses);
    w.value(r.mem.llcDemandMisses);
    w.value(r.mem.wrongPrefetches);
    w.value(r.mem.prefetchesRequested);
    w.value(r.mem.prefetchesIssued);
    w.value(r.mem.prefetchesFiltered);
    w.value(r.mem.prefetchesDropped);
    w.value(r.mem.dramBytesRead);
    w.value(r.mem.dramBytesWritten);
    w.value(r.mem.mshrStalls);
    w.value(r.mem.crossCorePollutionMisses);
    w.value(r.mem.l2BankConflicts);
    w.endArray();

    if (r.cores > 1) {
        w.field("cores", static_cast<std::uint64_t>(r.cores));
        w.key("per_core");
        w.beginArray();
        for (const auto &slice : r.perCore) {
            w.beginObject();
            w.field("workload", slice.workload);
            w.key("core");
            w.beginArray();
            w.value(slice.core.cycles);
            w.value(slice.core.instructions);
            w.value(slice.core.memInstructions);
            w.value(slice.core.branches);
            w.value(slice.core.branchMispredicts);
            w.value(slice.core.loopCycles);
            w.value(slice.core.robFullStalls);
            w.value(slice.core.lsqFullStalls);
            w.endArray();
            w.key("mem");
            w.beginArray();
            w.value(slice.mem.l1dAccesses);
            w.value(slice.mem.l1dMisses);
            w.value(slice.mem.l1iAccesses);
            w.value(slice.mem.l1iMisses);
            w.value(slice.mem.demandL2Accesses);
            w.value(slice.mem.llcDemandMisses);
            w.value(slice.mem.prefetchesRequested);
            w.value(slice.mem.prefetchesIssued);
            w.value(slice.mem.pollutionVictimMisses);
            w.value(slice.mem.pollutionCausedMisses);
            w.value(slice.mem.l2ResidentLines);
            w.endArray();
            w.endObject();
        }
        w.endArray();
    }

    w.key("class_counts");
    w.beginArray();
    for (std::uint64_t c : r.mem.classCounts)
        w.value(c);
    w.endArray();

    w.key("lateness_hist");
    w.beginArray();
    for (std::uint64_t c : r.mem.latenessHist)
        w.value(c);
    w.endArray();

    w.key("pf_life");
    w.beginArray();
    for (const auto &life : r.mem.pfLife)
        writeLifecycle(w, life);
    w.endArray();

    // DRAM backend counters (per-bank vectors are diagnostics and
    // intentionally not checkpointed; they reset to zero on resume).
    w.field("dram_backend", r.dramBackend);
    w.key("dram");
    w.beginArray();
    w.value(r.mem.dram.reads);
    w.value(r.mem.dram.writes);
    w.value(r.mem.dram.rowHits);
    w.value(r.mem.dram.rowMisses);
    w.value(r.mem.dram.rowClosed);
    w.value(r.mem.dram.activates);
    w.value(r.mem.dram.fawStalls);
    w.value(r.mem.dram.refreshStalls);
    w.value(r.mem.dram.prefetchesDeferred);
    w.value(r.mem.dram.deferralCycles);
    w.value(r.mem.dram.readQueueFullStalls);
    w.value(r.mem.dram.writeDrains);
    w.value(r.mem.dram.busBusyCycles);
    w.value(r.mem.dram.readQueueDepthSum);
    w.value(r.mem.dram.writeQueueDepthSum);
    w.endArray();

    w.endObject();
    return sealLine(w.str());
}

Result<SimResult>
parseCheckpointCell(const std::string &line)
{
    std::string object_text;
    if (!verifySeal(line, object_text))
        return Error(Errc::Corrupt, "checkpoint cell checksum mismatch");

    Result<JsonValue> parsed = parseJson(object_text);
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &v = parsed.value();

    if (v.uintOr("schema_version", 0) != CheckpointSchemaVersion)
        return Error(Errc::VersionMismatch,
                     "checkpoint cell schema_version " +
                         std::to_string(v.uintOr("schema_version", 0)) +
                         " (expected " +
                         std::to_string(CheckpointSchemaVersion) + ")");
    if (v.strOr("type", "") != "cell")
        return Error(Errc::Corrupt, "not a checkpoint cell line");

    SimResult r;
    r.workload = v.strOr("workload", "");
    r.prefetcher = v.strOr("prefetcher", "");
    if (r.workload.empty() || r.prefetcher.empty())
        return Error(Errc::Corrupt, "checkpoint cell missing keys");
    r.prefetcherStorageBits = v.uintOr("storage_bits", 0);

    const JsonValue *core = v.find("core");
    std::uint64_t core_fields[8];
    if (!readUintArray(core, core_fields))
        return Error(Errc::Corrupt, "checkpoint cell bad core array");
    r.core.cycles = core_fields[0];
    r.core.instructions = core_fields[1];
    r.core.memInstructions = core_fields[2];
    r.core.branches = core_fields[3];
    r.core.branchMispredicts = core_fields[4];
    r.core.loopCycles = core_fields[5];
    r.core.robFullStalls = core_fields[6];
    r.core.lsqFullStalls = core_fields[7];

    const JsonValue *mem = v.find("mem");
    std::uint64_t mem_fields[16];
    if (!readUintArray(mem, mem_fields))
        return Error(Errc::Corrupt, "checkpoint cell bad mem array");
    r.mem.l1dAccesses = mem_fields[0];
    r.mem.l1dMisses = mem_fields[1];
    r.mem.l1iAccesses = mem_fields[2];
    r.mem.l1iMisses = mem_fields[3];
    r.mem.demandL2Accesses = mem_fields[4];
    r.mem.llcDemandMisses = mem_fields[5];
    r.mem.wrongPrefetches = mem_fields[6];
    r.mem.prefetchesRequested = mem_fields[7];
    r.mem.prefetchesIssued = mem_fields[8];
    r.mem.prefetchesFiltered = mem_fields[9];
    r.mem.prefetchesDropped = mem_fields[10];
    r.mem.dramBytesRead = mem_fields[11];
    r.mem.dramBytesWritten = mem_fields[12];
    r.mem.mshrStalls = mem_fields[13];
    r.mem.crossCorePollutionMisses = mem_fields[14];
    r.mem.l2BankConflicts = mem_fields[15];

    r.cores = static_cast<unsigned>(v.uintOr("cores", 1));
    if (r.cores > 1) {
        const JsonValue *per_core = v.find("per_core");
        if (!per_core || per_core->type != JsonValue::Type::Array ||
            per_core->array.size() != r.cores)
            return Error(Errc::Corrupt,
                         "checkpoint cell bad per_core array");
        r.mem.perCore.resize(r.cores);
        r.perCore.resize(r.cores);
        for (unsigned c = 0; c < r.cores; ++c) {
            const JsonValue &pc = per_core->array[c];
            CoreSliceResult &slice = r.perCore[c];
            slice.workload = pc.strOr("workload", "");
            std::uint64_t cf[8];
            if (!readUintArray(pc.find("core"), cf))
                return Error(Errc::Corrupt,
                             "checkpoint cell bad per_core core "
                             "array");
            slice.core.cycles = cf[0];
            slice.core.instructions = cf[1];
            slice.core.memInstructions = cf[2];
            slice.core.branches = cf[3];
            slice.core.branchMispredicts = cf[4];
            slice.core.loopCycles = cf[5];
            slice.core.robFullStalls = cf[6];
            slice.core.lsqFullStalls = cf[7];
            std::uint64_t mf[11];
            if (!readUintArray(pc.find("mem"), mf))
                return Error(Errc::Corrupt,
                             "checkpoint cell bad per_core mem "
                             "array");
            slice.mem.l1dAccesses = mf[0];
            slice.mem.l1dMisses = mf[1];
            slice.mem.l1iAccesses = mf[2];
            slice.mem.l1iMisses = mf[3];
            slice.mem.demandL2Accesses = mf[4];
            slice.mem.llcDemandMisses = mf[5];
            slice.mem.prefetchesRequested = mf[6];
            slice.mem.prefetchesIssued = mf[7];
            slice.mem.pollutionVictimMisses = mf[8];
            slice.mem.pollutionCausedMisses = mf[9];
            slice.mem.l2ResidentLines = mf[10];
            r.mem.perCore[c] = slice.mem;
        }
    }

    if (!readUintArray(v.find("class_counts"), r.mem.classCounts))
        return Error(Errc::Corrupt,
                     "checkpoint cell bad class_counts array");
    if (!readUintArray(v.find("lateness_hist"), r.mem.latenessHist))
        return Error(Errc::Corrupt,
                     "checkpoint cell bad lateness_hist array");

    const JsonValue *pf_life = v.find("pf_life");
    if (!pf_life || pf_life->type != JsonValue::Type::Array ||
        pf_life->array.size() != NumPfSources)
        return Error(Errc::Corrupt,
                     "checkpoint cell bad pf_life array");
    for (unsigned s = 0; s < NumPfSources; ++s)
        if (!readLifecycle(pf_life->array[s], r.mem.pfLife[s]))
            return Error(Errc::Corrupt,
                         "checkpoint cell bad pf_life entry");

    r.dramBackend = v.strOr("dram_backend", "fixed");
    std::uint64_t dram_fields[15];
    if (!readUintArray(v.find("dram"), dram_fields))
        return Error(Errc::Corrupt, "checkpoint cell bad dram array");
    r.mem.dram.reads = dram_fields[0];
    r.mem.dram.writes = dram_fields[1];
    r.mem.dram.rowHits = dram_fields[2];
    r.mem.dram.rowMisses = dram_fields[3];
    r.mem.dram.rowClosed = dram_fields[4];
    r.mem.dram.activates = dram_fields[5];
    r.mem.dram.fawStalls = dram_fields[6];
    r.mem.dram.refreshStalls = dram_fields[7];
    r.mem.dram.prefetchesDeferred = dram_fields[8];
    r.mem.dram.deferralCycles = dram_fields[9];
    r.mem.dram.readQueueFullStalls = dram_fields[10];
    r.mem.dram.writeDrains = dram_fields[11];
    r.mem.dram.busBusyCycles = dram_fields[12];
    r.mem.dram.readQueueDepthSum = dram_fields[13];
    r.mem.dram.writeQueueDepthSum = dram_fields[14];
    return r;
}

std::uint64_t
checkpointFingerprint(const std::vector<std::string> &workloads,
                      const std::vector<std::string> &prefetchers,
                      const std::string &config_tag)
{
    std::uint64_t hash = FnvOffset;
    for (const auto &w : workloads)
        hash = fnv1a(w + "\x1f", hash);
    hash = fnv1a("\x1e", hash);
    for (const auto &p : prefetchers)
        hash = fnv1a(p + "\x1f", hash);
    if (!config_tag.empty())
        hash = fnv1a("\x1e" + config_tag, hash);
    return hash;
}

Checkpoint::~Checkpoint()
{
    if (file_)
        std::fclose(file_);
}

Result<void>
Checkpoint::open(const std::string &path, const Header &header)
{
    PROF_SCOPE(prof::Phase::CheckpointIO);
    std::lock_guard<std::mutex> lock(mutex_);
    panic_if(file_, "Checkpoint::open() called twice");

    const std::string expected_header = headerLine(header);

    // Load a previous run's lines, if any.
    bool existing = false;
    {
        std::ifstream in(path);
        std::string line;
        std::size_t lineno = 0;
        bool header_seen = false;
        while (in && std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            existing = true;
            if (!header_seen) {
                // First line must be the matching header. Parse it
                // for a precise diagnostic before the exact compare.
                std::string object_text;
                if (!verifySeal(line, object_text))
                    return Error(Errc::Corrupt,
                                 path + ": checkpoint header "
                                        "checksum mismatch");
                Result<JsonValue> parsed = parseJson(object_text);
                if (!parsed.ok())
                    return Error(Errc::Corrupt,
                                 path + ": " +
                                     parsed.error().message);
                const JsonValue &v = parsed.value();
                if (v.strOr("format", "") != "cbws-checkpoint")
                    return Error(Errc::Corrupt,
                                 path + ": not a cbws-checkpoint "
                                        "file");
                const std::uint64_t ver =
                    v.uintOr("schema_version", 0);
                if (ver != CheckpointSchemaVersion)
                    return Error(
                        Errc::VersionMismatch,
                        path + ": checkpoint schema_version " +
                            std::to_string(ver) + " (this build " +
                            "reads version " +
                            std::to_string(CheckpointSchemaVersion) +
                            ")");
                if (line != expected_header)
                    return Error(
                        Errc::InvalidArgument,
                        path + ": checkpoint belongs to a different "
                               "experiment (budget, seed, workload "
                               "or scheme set differ); delete it or "
                               "pass a fresh --checkpoint path");
                header_seen = true;
                continue;
            }
            // Informational build stamp, not resume state.
            if (line.find("\"type\":\"provenance\"") !=
                std::string::npos) {
                continue;
            }
            Result<SimResult> cell = parseCheckpointCell(line);
            if (!cell.ok()) {
                // Torn tail from a crash mid-append, or bit rot:
                // drop the line, keep the rest. The cell is simply
                // re-simulated.
                warn("%s:%zu: dropping unreadable checkpoint line "
                     "(%s)",
                     path.c_str(), lineno,
                     cell.error().str().c_str());
                continue;
            }
            SimResult r = std::move(cell).value();
            CellKey key{r.workload, r.prefetcher};
            cells_.emplace(std::move(key), std::move(r));
        }
    }
    resumed_ = cells_.size();

    file_ = std::fopen(path.c_str(), existing ? "ab" : "wb");
    if (!file_)
        return Error(Errc::IoError,
                     path + ": cannot open checkpoint for append: " +
                         std::strerror(errno));
    if (!existing) {
        // Header then provenance, both written raw: routing the
        // provenance through append() would advance fault-injection
        // site counts and shift deterministic injection schedules.
        const std::string line =
            expected_header + "\n" + provenanceLine() + "\n";
        if (std::fwrite(line.data(), 1, line.size(), file_) !=
                line.size() ||
            std::fflush(file_) != 0) {
            std::fclose(file_);
            file_ = nullptr;
            return Error(Errc::IoError,
                         path + ": cannot write checkpoint header: " +
                             std::strerror(errno));
        }
    }
    return Result<void>();
}

std::size_t
Checkpoint::cellCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.size();
}

Result<void>
Checkpoint::sync()
{
    PROF_SCOPE(prof::Phase::CheckpointIO);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return Result<void>();
    if (std::fflush(file_) != 0)
        return Error(Errc::IoError,
                     std::string("checkpoint flush failed: ") +
                         std::strerror(errno));
    if (::fsync(fileno(file_)) != 0)
        return Error(Errc::IoError,
                     std::string("checkpoint fsync failed: ") +
                         std::strerror(errno));
    return Result<void>();
}

const SimResult *
Checkpoint::find(const std::string &workload,
                 const std::string &prefetcher) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cells_.find(CellKey{workload, prefetcher});
    return it == cells_.end() ? nullptr : &it->second;
}

Result<void>
Checkpoint::append(const SimResult &result)
{
    PROF_SCOPE(prof::Phase::CheckpointIO);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!file_)
        return Error(Errc::InvalidArgument, "checkpoint not open");
    const CellKey key{result.workload, result.prefetcher};
    if (cells_.count(key))
        return Result<void>(); // resumed cell: already on disk

    const std::string line = checkpointCellLine(result) + "\n";
    // Transient write errors (full disk racing cleanup, injected
    // faults) are retried briefly; persistent failure degrades to
    // running without the checkpoint rather than killing the sweep.
    Result<void> wrote = retryWithBackoff(3, 1, [&]() -> Result<void> {
        if (FaultInjector::instance().shouldFire(
                FaultSite::CheckpointAppend))
            return Error(Errc::FaultInjected,
                         "injected checkpoint append failure");
        if (std::fwrite(line.data(), 1, line.size(), file_) !=
                line.size() ||
            std::fflush(file_) != 0)
            return Error(Errc::IoError,
                         std::string("checkpoint append failed: ") +
                             std::strerror(errno));
        return Result<void>();
    });
    if (!wrote.ok())
        return wrote;
    cells_.emplace(key, result);
    return Result<void>();
}

} // namespace cbws
