/**
 * @file
 * Prefetcher tournament: every registered scheme raced over every
 * workload family at one or more core counts, ranked into a
 * leaderboard by geomean speedup over the No-Prefetch baseline.
 *
 * The tournament is a thin deterministic aggregation over runMatrix:
 * one matrix per core count (sharing the registry scheme columns),
 * then per-(scheme, suite, cores) lifecycle roll-ups and a ranked
 * per-scheme summary. Everything inherits runMatrix's guarantees —
 * results are bit-identical for any job count and across a
 * checkpoint resume — so the leaderboard text and the JSON artifact
 * are byte-stable too.
 */

#ifndef CBWS_SIM_TOURNAMENT_HH
#define CBWS_SIM_TOURNAMENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace cbws
{

/**
 * Version of the BENCH_tournament.json schema (docs/FORMATS.md).
 * Bump when fields are renamed, removed, or change meaning.
 */
constexpr unsigned TournamentSchemaVersion = 1;

/** Execution knobs of runTournament. */
struct TournamentOptions
{
    /**
     * Registry scheme names to race. Empty (the default) races every
     * registered scheme — the zoo. "No-Prefetch" is always included:
     * it is the speedup baseline.
     */
    std::vector<std::string> schemes;

    /** Core counts raced (a matrix per entry). */
    std::vector<unsigned> coreCounts = {1, 2, 4};

    /** Committed-instruction budget per run (per core). */
    std::uint64_t insts = 120000;

    /** Workload synthesis seed. */
    std::uint64_t seed = 42;

    /** Base system config; carries --pf-opt overrides in pfOpts. */
    SystemConfig config;

    /**
     * runMatrix execution options. A non-empty checkpointPath is
     * suffixed ".c<N>" per core count so the per-matrix fingerprints
     * never collide in one file.
     */
    MatrixOptions matrix;
};

/** Aggregate of one (scheme, workload family, core count) group. */
struct TournamentCell
{
    std::string scheme; ///< canonical registry name
    std::string suite;  ///< workload family (Workload::suite())
    unsigned cores = 1;
    std::uint64_t workloads = 0; ///< rows aggregated into this cell
    /** Geomean IPC speedup over No-Prefetch at the same core count. */
    double speedup = 0.0;
    double accuracy = 0.0;  ///< demand hits / filled
    double coverage = 0.0;  ///< timely hits / (timely hits + misses)
    double pollution = 0.0; ///< evicted unused / filled
    std::uint64_t storageBits = 0; ///< single-core scheme storage
};

/** One ranked leaderboard row (a scheme's overall standing). */
struct TournamentEntry
{
    unsigned rank = 0; ///< 1-based; ties broken by name
    std::string scheme;
    /** Geomean speedup over all (workload, core count) runs. */
    double score = 0.0;
    double accuracy = 0.0;
    double coverage = 0.0;
    double pollution = 0.0;
    std::uint64_t storageBits = 0;
};

/** Everything a tournament produced. */
struct TournamentResult
{
    std::uint64_t insts = 0;
    std::uint64_t seed = 0;
    std::vector<unsigned> coreCounts;
    std::vector<std::string> schemes; ///< canonical, column order
    std::vector<std::string> suites;  ///< first-appearance order
    std::vector<TournamentCell> cells;
    /** Sorted: score descending, then scheme name ascending. */
    std::vector<TournamentEntry> leaderboard;
};

/**
 * Race the schemes: one runMatrix per core count, then roll up. The
 * scheme list is validated (with config.pfOpts) before anything
 * runs; unknown names or bad option strings are fatal, exactly as in
 * runMatrix.
 */
TournamentResult
runTournament(const std::vector<WorkloadPtr> &workloads,
              const TournamentOptions &options = TournamentOptions());

/** Render the ranked leaderboard as a text table (golden-diffable). */
std::string leaderboardTable(const TournamentResult &result);

/**
 * Serialise the full result as BENCH_tournament.json (schema
 * docs/FORMATS.md). With @p provenance the build stamp (git SHA,
 * compiler, build type) is embedded; leave it off when the artifact
 * must be byte-comparable across builds.
 */
std::string tournamentJson(const TournamentResult &result,
                           bool provenance = true);

} // namespace cbws

#endif // CBWS_SIM_TOURNAMENT_HH
