/**
 * @file
 * Periodic statistics snapshots.
 *
 * A SnapshotWriter emits one JSON object per line (JSONL) every N
 * committed instructions, sampling the live core/hierarchy counters:
 * IPC and MPKI (cumulative and over the last window), prefetch issue
 * rate, L1D/L2 miss rates, and — when attached — CBWS table occupancy
 * and hit rate. A final record, derived from the finished SimResult,
 * closes each run so consumers can check the last snapshot against
 * the end-of-run aggregates.
 */

#ifndef CBWS_SIM_SNAPSHOT_HH
#define CBWS_SIM_SNAPSHOT_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "base/types.hh"

namespace cbws
{

class Hierarchy;
struct SimResult;

/**
 * JSONL periodic-snapshot emitter. One writer may serve several
 * consecutive runs (begin() rearms it); records are tagged with the
 * run's workload and prefetcher names.
 */
class SnapshotWriter
{
  public:
    /** Live gauges of a CBWS-based prefetcher, sampled per record. */
    struct CbwsGauges
    {
        std::function<std::uint64_t()> occupancy;
        std::function<std::uint64_t()> capacity;
        std::function<std::uint64_t()> tableHits;
        std::function<std::uint64_t()> tableMisses;
    };

    /**
     * @param path output file ("-" or empty selects stdout; otherwise
     *        created/truncated).
     * @param interval committed instructions between records (0
     *        disables periodic records; finalize() still writes the
     *        final one).
     */
    SnapshotWriter(const std::string &path, std::uint64_t interval);
    ~SnapshotWriter();

    SnapshotWriter(const SnapshotWriter &) = delete;
    SnapshotWriter &operator=(const SnapshotWriter &) = delete;

    /** False when the output file could not be opened. */
    bool ok() const { return out_ != nullptr; }

    /** Label the next run's records (simulate() does not know the
     *  workload's name; callers set it before each run). */
    void setWorkload(const std::string &workload)
    {
        workload_ = workload;
    }

    /** Arm the writer for a new run. Resets counters and baselines. */
    void begin(const std::string &prefetcher, const Hierarchy &mem);

    /** Attach (or detach, with a default-constructed value) the CBWS
     *  gauges sampled into every record. */
    void setCbwsGauges(CbwsGauges gauges) { gauges_ = std::move(gauges); }

    /**
     * Cores of the next run. With more than one core, records carry
     * schema v3's "cores" and per-core fields; at 1 (the default) the
     * v2 single-core format is emitted unchanged.
     */
    void setCores(unsigned cores) { cores_ = cores; }

    /** One committed instruction at @p now; emits on interval. */
    void
    onCommit(Cycle now)
    {
        ++insts_;
        if (interval_ && insts_ - lastInsts_ >= interval_)
            emitRecord(now);
    }

    /**
     * The warmup boundary: external stats were reset, so re-baseline
     * cumulative metrics at @p now / instruction count zero.
     */
    void onWarmupBoundary(Cycle now);

    /** Emit the final record from the finished run's aggregates. */
    void finalize(const SimResult &result);

    std::uint64_t recordsWritten() const { return records_; }

  private:
    void emitRecord(Cycle now);

    /** Write + flush one JSONL line, degrading on sink failure. */
    void writeLine(const std::string &line);

    FILE *out_ = nullptr;
    bool owned_ = false;
    std::uint64_t interval_ = 0;
    CbwsGauges gauges_;
    unsigned cores_ = 1;

    const Hierarchy *mem_ = nullptr;
    std::string workload_;
    std::string prefetcher_;
    std::uint64_t records_ = 0;
    std::uint64_t seq_ = 0;

    /** Committed instructions seen since begin()/warmup boundary. */
    std::uint64_t insts_ = 0;
    Cycle baseCycle_ = 0;

    // Last-record baselines for window metrics.
    std::uint64_t lastInsts_ = 0;
    Cycle lastCycle_ = 0;
    std::uint64_t lastLlcMisses_ = 0;
    std::uint64_t lastPfIssued_ = 0;
};

} // namespace cbws

#endif // CBWS_SIM_SNAPSHOT_HH
