#include "sim/simmetrics.hh"

namespace cbws
{

MetricsRegistry
simMetrics(const SimResult &r)
{
    MetricsRegistry reg;

    reg.addScalar("sim.instructions", r.core.instructions,
                  "committed instructions (markers included)");
    reg.addScalar("sim.cycles", r.core.cycles, "simulated cycles");
    reg.addFormula("sim.ipc", r.ipc(),
                   "sim.instructions / sim.cycles", "committed IPC");

    reg.addScalar("core.memInstructions", r.core.memInstructions,
                  "committed loads + stores");
    reg.addScalar("core.branches", r.core.branches,
                  "committed branches");
    reg.addScalar("core.branchMispredicts", r.core.branchMispredicts,
                  "direction or target mispredictions");
    reg.addScalar("core.loopCycles", r.core.loopCycles,
                  "cycles attributed to annotated blocks");
    reg.addFormula("core.loopFraction", r.core.loopFraction(),
                   "core.loopCycles / sim.cycles",
                   "fraction of runtime in tight loops (Fig. 1)");
    reg.addScalar("core.robFullStalls", r.core.robFullStalls,
                  "dispatch stalls on a full ROB");
    reg.addScalar("core.lsqFullStalls", r.core.lsqFullStalls,
                  "dispatch stalls on a full LDQ/STQ");

    reg.addScalar("l1d.accesses", r.mem.l1dAccesses,
                  "demand accesses");
    reg.addScalar("l1d.misses", r.mem.l1dMisses, "demand misses");
    reg.addScalar("l1i.accesses", r.mem.l1iAccesses,
                  "fetch accesses");
    reg.addScalar("l1i.misses", r.mem.l1iMisses, "fetch misses");
    reg.addScalar("l2.demandAccesses", r.mem.demandL2Accesses,
                  "data-side demand accesses reaching the L2");
    reg.addScalar("l2.demandMisses", r.mem.llcDemandMisses,
                  "primary demand misses (drives Fig. 12 MPKI)");
    reg.addFormula("l2.mpki", r.mpki(),
                   "1000 * l2.demandMisses / sim.instructions",
                   "LLC misses per kilo-instruction");
    reg.addScalar("l2.mshrStalls", r.mem.mshrStalls,
                  "accesses rejected by a full MSHR file");

    reg.addScalar("pf.requested", r.mem.prefetchesRequested,
                  "prefetch requests from the prefetcher");
    reg.addScalar("pf.issued", r.mem.prefetchesIssued,
                  "prefetches issued to memory");
    reg.addScalar("pf.filtered", r.mem.prefetchesFiltered,
                  "requests dropped as cached/in-flight");
    reg.addScalar("pf.dropped", r.mem.prefetchesDropped,
                  "requests lost to queue overflow");
    reg.addScalar("pf.wrong", r.mem.wrongPrefetches,
                  "prefetched lines never used (Fig. 13 'wrong')");
    reg.addFormula("pf.timelyFraction",
                   r.classFraction(DemandClass::Timely),
                   "class[timely] / l2.demandAccesses",
                   "demand L2 accesses served by a completed "
                   "prefetch");
    reg.addFormula("pf.shorterFraction",
                   r.classFraction(DemandClass::Shorter),
                   "class[shorter] / l2.demandAccesses",
                   "demand L2 accesses merged into in-flight "
                   "prefetches");
    reg.addFormula("pf.nonTimelyFraction",
                   r.classFraction(DemandClass::NonTimely),
                   "class[nonTimely] / l2.demandAccesses",
                   "demand beat the queued prefetch");
    reg.addFormula("pf.missingFraction",
                   r.classFraction(DemandClass::Missing),
                   "class[missing] / l2.demandAccesses",
                   "demand misses with no prefetch help");
    reg.addScalar("pf.storageBits", r.prefetcherStorageBits,
                  "hardware budget of the scheme (Table III)");

    // Per-source lifecycle accounting: one group per prefetcher
    // component that issued at least one request this run.
    for (unsigned s = 0; s < NumPfSources; ++s) {
        const PrefetchLifecycle &life = r.mem.pfLife[s];
        if (life.issued == 0 && life.filled == 0)
            continue;
        const std::string p =
            std::string("pf.") + toString(static_cast<PfSource>(s));
        reg.addScalar(p + ".issued", life.issued,
                      "requests tagged by this component");
        reg.addScalar(p + ".merged", life.merged,
                      "subsumed by a resident/in-flight copy or a "
                      "demand");
        reg.addScalar(p + ".dropped", life.dropped,
                      "lost to queue overflow / end of run");
        reg.addScalar(p + ".filled", life.filled,
                      "lines this component brought into the L2");
        reg.addScalar(p + ".demandHitTimely", life.demandHitTimely,
                      "fills demanded after arriving (fully hidden)");
        reg.addScalar(p + ".demandHitLate", life.demandHitLate,
                      "fills demanded while still in flight");
        reg.addScalar(p + ".evictedUnused", life.evictedUnused,
                      "fills evicted without a demand hit "
                      "(pollution)");
        reg.addScalar(p + ".residentAtEnd", life.residentAtEnd,
                      "unused fills still resident at the end");
        reg.addFormula(p + ".accuracy", life.accuracy(),
                       "(demandHitTimely + demandHitLate) / filled",
                       "demand-hit fraction of filled lines");
        reg.addFormula(p + ".lateFraction", life.lateFraction(),
                       "demandHitLate / (demandHitTimely + "
                       "demandHitLate)",
                       "useful fills that arrived after the demand");
        reg.addFormula(p + ".pollutionRate", life.pollutionRate(),
                       "evictedUnused / filled",
                       "filled lines that only polluted the cache");
        reg.addScalar(p + ".latenessCycles", life.latenessCycles,
                      "total cycles demands waited on late fills");
    }
    {
        // Coverage: fraction of would-be LLC misses removed by
        // prefetching (timely hits over timely hits + actual misses).
        const PrefetchLifecycle total = r.mem.pfLifeTotal();
        const std::uint64_t covered = total.demandHitTimely;
        const std::uint64_t coverage_den =
            covered + r.mem.llcDemandMisses;
        reg.addFormula("pf.accuracy", total.accuracy(),
                       "(demandHitTimely + demandHitLate) / filled",
                       "all sources: demand-hit fraction of fills");
        reg.addFormula(
            "pf.coverage",
            coverage_den ? static_cast<double>(covered) /
                               static_cast<double>(coverage_den)
                         : 0.0,
            "demandHitTimely / (demandHitTimely + l2.demandMisses)",
            "misses removed by completed prefetches");
        reg.addFormula("pf.lateFraction", total.lateFraction(),
                       "demandHitLate / (demandHitTimely + "
                       "demandHitLate)",
                       "all sources: useful fills arriving late");
        reg.addFormula("pf.pollutionRate", total.pollutionRate(),
                       "evictedUnused / filled",
                       "all sources: fills that only polluted");
    }

    reg.addScalar("dram.bytesRead", r.mem.dramBytesRead,
                  "bytes fetched from memory");
    reg.addScalar("dram.bytesWritten", r.mem.dramBytesWritten,
                  "writeback bytes to memory");

    // Multi-core runs only: the interference counters and one group
    // per core. Single-core dumps are unchanged byte-for-byte.
    if (r.cores > 1) {
        reg.addScalar("sys.cores",
                      static_cast<std::uint64_t>(r.cores),
                      "cores sharing the L2 and DRAM");
        reg.addScalar("l2.crossCorePollutionMisses",
                      r.mem.crossCorePollutionMisses,
                      "demand misses on lines evicted by another "
                      "core's prefetch");
        reg.addScalar("l2.bankConflicts", r.mem.l2BankConflicts,
                      "L2 accesses delayed by bank arbitration");
        for (std::size_t c = 0; c < r.perCore.size(); ++c) {
            const CoreSliceResult &slice = r.perCore[c];
            const std::string p = "core" + std::to_string(c) + ".";
            reg.addFormula(p + "workloadIpc", slice.ipc(),
                           "instructions / cycles",
                           "committed IPC of " + slice.workload);
            reg.addFormula(p + "mpki", slice.mpki(),
                           "1000 * llcDemandMisses / instructions",
                           "LLC demand misses per kilo-instruction");
            reg.addScalar(p + "llcDemandMisses",
                          slice.mem.llcDemandMisses,
                          "primary demand misses from this core");
            reg.addScalar(p + "pollutionVictimMisses",
                          slice.mem.pollutionVictimMisses,
                          "this core's misses caused by others' "
                          "prefetches");
            reg.addScalar(p + "pollutionCausedMisses",
                          slice.mem.pollutionCausedMisses,
                          "other cores' misses this core's "
                          "prefetches caused");
            reg.addScalar(p + "l2ResidentLines",
                          slice.mem.l2ResidentLines,
                          "L2 lines owned by this core at the end");
        }
    }

    // JSON-only extras (Vector kind never renders in the text dump):
    // the raw demand-classification counts and the fill-lateness
    // histogram, until now reachable only through the report schema.
    reg.addVector(
        "l2.classCounts",
        std::vector<std::uint64_t>(
            r.mem.classCounts,
            r.mem.classCounts +
                static_cast<int>(DemandClass::NumClasses)),
        "demand classification counts (per DemandClass)");
    reg.addVector(
        "pf.latenessHist",
        std::vector<std::uint64_t>(
            r.mem.latenessHist, r.mem.latenessHist + LatenessBuckets),
        "fill lateness: bucket 0 timely, b>=1 waited [2^(b-1),2^b) "
        "cycles");

    return reg;
}

} // namespace cbws
