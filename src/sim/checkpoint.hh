/**
 * @file
 * Crash-safe checkpoint/resume for the experiment matrix.
 *
 * Every completed (workload, prefetcher) cell is appended to a JSONL
 * checkpoint file as soon as it finishes: one self-checksummed line
 * per cell, preceded by a header line binding the file to one
 * experiment (instruction budget, seed, workload/scheme sets). A run
 * killed mid-matrix can be restarted with the same checkpoint path;
 * finished cells are loaded instead of re-simulated and the resumed
 * run produces a bit-identical ExperimentMatrix (SimResult counters
 * are all integers, so the round-trip through JSON is exact).
 *
 * Robustness properties:
 *  - Appends are atomic at line granularity and flushed eagerly, so a
 *    SIGKILL can lose at most the cell in flight.
 *  - Every line carries an FNV-1a checksum of its own text; a torn or
 *    corrupted tail line is dropped with a warning, not an error.
 *  - The header records a fingerprint of the experiment; resuming
 *    against a checkpoint from a different experiment or an
 *    incompatible schema_version fails with a clear error instead of
 *    silently mixing results.
 *
 * Format details are documented in docs/FORMATS.md.
 */

#ifndef CBWS_SIM_CHECKPOINT_HH
#define CBWS_SIM_CHECKPOINT_HH

#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "base/result.hh"
#include "sim/simulator.hh"

namespace cbws
{

/** Schema version stamped into checkpoint header and cell lines.
 *  v2: cells carry the DRAM backend name and its counters.
 *  v3: the mem array grew the cross-core interference counters
 *  (cross_core_pollution_misses, l2_bank_conflicts) and multi-core
 *  cells carry "cores" + a "per_core" array. v2 files are rejected on
 *  open (their cells are simply re-simulated from a fresh path).
 *  v4: the per-source pf_life array grew the zoo sources
 *  (multistride/markov/rl), changing its length; older files are
 *  rejected on open for the same reason. */
constexpr unsigned CheckpointSchemaVersion = 4;

/** Serialise one cell result as a checksummed JSONL line (no '\n'). */
std::string checkpointCellLine(const SimResult &result);

/** Parse and checksum-verify one cell line. */
Result<SimResult> parseCheckpointCell(const std::string &line);

/**
 * One experiment's checkpoint file: load-on-open, append-per-cell.
 * Thread-safe: cells may be appended concurrently from pool workers.
 */
class Checkpoint
{
  public:
    /** Identifies the experiment a checkpoint belongs to. */
    struct Header
    {
        std::uint64_t insts = 0;
        std::uint64_t seed = 0;
        /** Hash over workload and scheme names (see fingerprint()). */
        std::uint64_t fingerprint = 0;
    };

    Checkpoint() = default;
    ~Checkpoint();

    Checkpoint(const Checkpoint &) = delete;
    Checkpoint &operator=(const Checkpoint &) = delete;

    /**
     * Open @p path for @p header's experiment. An existing file must
     * carry a matching header (schema, budget, seed, fingerprint) —
     * its intact cell lines are loaded for resume and corrupt ones
     * dropped with a warning. A missing file is created with a fresh
     * header. After open() the file is positioned for appends.
     */
    Result<void> open(const std::string &path, const Header &header);

    /** Result recorded for (workload, prefetcher), else nullptr. */
    const SimResult *find(const std::string &workload,
                          const std::string &prefetcher) const;

    /**
     * Append @p result and flush. Failures degrade gracefully: the
     * error is returned (and the run can continue without
     * checkpointing that cell) — already-appended lines are unharmed.
     * Duplicate cells are ignored so resumed runs never double-write.
     */
    Result<void> append(const SimResult &result);

    /** Cells loaded from a previous run at open() time. */
    std::size_t resumedCells() const { return resumed_; }

    /** Cells currently recorded (resumed + appended this run). */
    std::size_t cellCount() const;

    /**
     * Seal the file against the process dying next instruction:
     * flush libc buffers and fsync the fd, so every appended cell is
     * durable on disk. Called on graceful interrupt (SIGINT/SIGTERM)
     * before exit, and at the end of a completed matrix.
     */
    Result<void> sync();

    bool isOpen() const { return file_ != nullptr; }

  private:
    using CellKey = std::pair<std::string, std::string>;

    mutable std::mutex mutex_;
    std::FILE *file_ = nullptr;
    std::map<CellKey, SimResult> cells_;
    std::size_t resumed_ = 0;
};

/**
 * FNV-1a over the names defining an experiment's cell space, plus an
 * optional configuration tag (e.g. the DRAM backend name) so results
 * produced under different timing models can never cross-resume.
 */
std::uint64_t
checkpointFingerprint(const std::vector<std::string> &workloads,
                      const std::vector<std::string> &prefetchers,
                      const std::string &config_tag = std::string());

} // namespace cbws

#endif // CBWS_SIM_CHECKPOINT_HH
