/**
 * @file
 * Chrome trace-event (Perfetto-compatible) JSON export.
 *
 * Implements the TraceSink interface over the Trace Event Format's
 * JSON array flavour: complete ("X"), instant ("i") and counter ("C")
 * events, one simulated cycle per microsecond of trace time. The
 * export window is bounded in cycles and in event count so a full run
 * cannot produce an unbounded file; load the output in Perfetto or
 * chrome://tracing.
 */

#ifndef CBWS_SIM_TRACEFMT_HH
#define CBWS_SIM_TRACEFMT_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "base/tracesink.hh"
#include "base/types.hh"

namespace cbws
{

class MetricsRegistry;

namespace prof
{
struct Report;
} // namespace prof

/**
 * TraceSink writing Chrome trace-event JSON. Event producers
 * (hierarchy, cores) must check wants() before building events — it
 * is false outside [start, end) and after the event cap is hit, which
 * is what keeps the exporter zero-cost outside the window.
 */
class ChromeTraceWriter : public TraceSink
{
  public:
    /**
     * @param path output file (created/truncated).
     * @param start first cycle recorded.
     * @param end first cycle *not* recorded (~0 = until the cap).
     * @param max_events hard cap on emitted events.
     */
    ChromeTraceWriter(const std::string &path, Cycle start, Cycle end,
                      std::uint64_t max_events = 500000);
    ~ChromeTraceWriter() override;

    ChromeTraceWriter(const ChromeTraceWriter &) = delete;
    ChromeTraceWriter &operator=(const ChromeTraceWriter &) = delete;

    /** False when the output file could not be opened. */
    bool ok() const { return out_ != nullptr; }

    bool
    wants(Cycle ts) const override
    {
        return out_ && !capped_ && ts >= start_ && ts < end_;
    }

    void complete(const char *cat, const char *name, TraceTrack track,
                  Cycle ts, Cycle dur, std::uint64_t arg = 0) override;
    void instant(const char *cat, const char *name, TraceTrack track,
                 Cycle ts, std::uint64_t arg = 0) override;
    void counter(const char *name, Cycle ts,
                 std::uint64_t value) override;

    /**
     * Merge the host-side self-profiler report (base/profiler.hh) into
     * the trace as a separate "cbws-host" process: one span per phase
     * with non-zero time, laid out back-to-back in wall-clock
     * microseconds (the profiler aggregates, so relative order — not
     * true interleaving — is what the track conveys). Call once,
     * before close(). Host events ignore the cycle window but still
     * count against the event cap.
     */
    void writeHostPhases(const prof::Report &report);

    /**
     * Dump every Scalar/Real/Formula metric of @p reg as a Chrome
     * counter sample at cycle @p ts — an end-of-run registry snapshot
     * viewers can pivot on. Vector/Histogram kinds are skipped.
     */
    void writeMetricCounters(const MetricsRegistry &reg, Cycle ts);

    /** Write the JSON footer and close the file (idempotent). */
    void close();

    std::uint64_t eventsWritten() const { return events_; }

  private:
    /** Common prologue; false once the cap is reached. */
    bool admit();
    void writeHeader();

    FILE *out_ = nullptr;
    Cycle start_ = 0;
    Cycle end_ = 0;
    std::uint64_t maxEvents_ = 0;
    std::uint64_t events_ = 0;
    bool capped_ = false;
};

} // namespace cbws

#endif // CBWS_SIM_TRACEFMT_HH
