/**
 * @file
 * Whole-system configuration (Table II) and prefetcher selection.
 */

#ifndef CBWS_SIM_CONFIG_HH
#define CBWS_SIM_CONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "core/cbws_prefetcher.hh"
#include "cpu/core.hh"
#include "mem/params.hh"
#include "prefetch/ampm.hh"
#include "prefetch/ghb.hh"
#include "prefetch/registry.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"

namespace cbws
{

/** The prefetching schemes evaluated by the paper. */
enum class PrefetcherKind
{
    None,
    Stride,
    GhbPcDc,
    GhbGDc,
    Sms,
    Cbws,
    CbwsSms,
    // Extensions beyond the paper's evaluated set:
    Ampm,     ///< related-work baseline (Ishii et al.)
    CbwsAmpm, ///< CBWS as a generic add-on bolted onto AMPM
};

/** Name as used in the paper's figures. */
const char *toString(PrefetcherKind kind);

/** All seven evaluated configurations, in Fig. 12 legend order. */
std::vector<PrefetcherKind> allPrefetcherKinds();

/** The paper's seven plus the extension schemes (AMPM, CBWS+AMPM). */
std::vector<PrefetcherKind> extendedPrefetcherKinds();

/** Which core timing model drives the simulation. */
enum class CoreModel
{
    OutOfOrder, ///< Table II's 4-wide OoO core (the paper's setup)
    InOrder,    ///< scalar stall-on-use core (extension)
};

/**
 * Full simulated-system configuration; defaults reproduce Table II.
 */
struct SystemConfig
{
    CoreModel coreModel = CoreModel::OutOfOrder;
    CoreParams core;
    HierarchyParams mem;
    PrefetcherKind prefetcher = PrefetcherKind::None;
    StrideParams stride;
    GhbParams ghb;
    SmsParams sms;
    CbwsParams cbws;
    AmpmParams ampm;
};

/** Bundle the config's per-scheme parameter structs for the registry. */
ParamSet paramSetFrom(const SystemConfig &config);

/**
 * Instantiate the configured prefetcher.
 *
 * Compat shim over the string-keyed PrefetcherRegistry: resolves the
 * enum to its canonical scheme name and delegates to
 * prefetcherRegistry().create(). Prefer the registry directly for new
 * call sites.
 */
std::unique_ptr<Prefetcher> makePrefetcher(const SystemConfig &config);

} // namespace cbws

#endif // CBWS_SIM_CONFIG_HH
