/**
 * @file
 * Whole-system configuration (Table II) and prefetcher selection.
 */

#ifndef CBWS_SIM_CONFIG_HH
#define CBWS_SIM_CONFIG_HH

#include <memory>
#include <string>
#include <vector>

#include "core/cbws_prefetcher.hh"
#include "cpu/core.hh"
#include "mem/params.hh"
#include "prefetch/ampm.hh"
#include "prefetch/ghb.hh"
#include "prefetch/multistride.hh"
#include "prefetch/pangloss.hh"
#include "prefetch/pythia.hh"
#include "prefetch/registry.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"

namespace cbws
{

/**
 * The prefetching schemes evaluated by the paper.
 *
 * @deprecated Compat shim over the string-keyed PrefetcherRegistry
 * (PR 3): the enum cannot name registry-only schemes (Pangloss,
 * Pythia, Multistride, ...). New call sites should select schemes by
 * registry name — SystemConfig::scheme, runMatrix with a vector of
 * names — and use allSchemeNames()/extendedSchemeNames() instead of
 * the enum lists. The enum survives only for existing users of
 * SystemConfig::prefetcher and is not extended for new schemes.
 */
enum class PrefetcherKind
{
    None,
    Stride,
    GhbPcDc,
    GhbGDc,
    Sms,
    Cbws,
    CbwsSms,
    // Extensions beyond the paper's evaluated set:
    Ampm,     ///< related-work baseline (Ishii et al.)
    CbwsAmpm, ///< CBWS as a generic add-on bolted onto AMPM
};

/** Name as used in the paper's figures. */
const char *toString(PrefetcherKind kind);

/** All seven evaluated configurations, in Fig. 12 legend order.
 *  @deprecated Use allSchemeNames(). */
std::vector<PrefetcherKind> allPrefetcherKinds();

/** The paper's seven plus the extension schemes (AMPM, CBWS+AMPM).
 *  @deprecated Use extendedSchemeNames(). */
std::vector<PrefetcherKind> extendedPrefetcherKinds();

/** Registry names of the paper's seven evaluated configurations, in
 *  Fig. 12 legend order. */
std::vector<std::string> allSchemeNames();

/** The paper's seven plus the extension schemes (AMPM, CBWS+AMPM). */
std::vector<std::string> extendedSchemeNames();

/** Every scheme in the registry (the tournament roster), sorted. */
std::vector<std::string> zooSchemeNames();

/** Which core timing model drives the simulation. */
enum class CoreModel
{
    OutOfOrder, ///< Table II's 4-wide OoO core (the paper's setup)
    InOrder,    ///< scalar stall-on-use core (extension)
};

/**
 * Full simulated-system configuration; defaults reproduce Table II.
 */
struct SystemConfig
{
    CoreModel coreModel = CoreModel::OutOfOrder;
    CoreParams core;
    HierarchyParams mem;

    /**
     * Prefetching scheme as a registry name ("CBWS+SMS", "pangloss",
     * case-insensitive). When non-empty this wins over the deprecated
     * `prefetcher` enum below, and is the only way to select schemes
     * the enum does not know about.
     */
    std::string scheme;

    /**
     * `key=value` parameter overrides applied through the scheme's
     * ParamSchema on top of the struct defaults below (the `--pf-opt`
     * surface). Keys the selected scheme does not accept are skipped
     * by makePrefetcher — multi-scheme drivers validate the full
     * selection up front via PrefetcherRegistry::validateOptions().
     */
    std::vector<std::string> pfOpts;

    /** @deprecated Enum-based selection; prefer `scheme`. */
    PrefetcherKind prefetcher = PrefetcherKind::None;

    StrideParams stride;
    GhbParams ghb;
    SmsParams sms;
    CbwsParams cbws;
    AmpmParams ampm;
    MultistrideParams multistride;
    PanglossParams pangloss;
    PythiaParams pythia;
};

/** The scheme name a config selects (`scheme`, or the enum's name). */
std::string schemeName(const SystemConfig &config);

/** Bundle the config's per-scheme parameter structs for the registry. */
ParamSet paramSetFrom(const SystemConfig &config);

/**
 * Instantiate the configured prefetcher.
 *
 * Compat shim over the string-keyed PrefetcherRegistry: resolves the
 * enum to its canonical scheme name and delegates to
 * prefetcherRegistry().create(). Prefer the registry directly for new
 * call sites.
 */
std::unique_ptr<Prefetcher> makePrefetcher(const SystemConfig &config);

} // namespace cbws

#endif // CBWS_SIM_CONFIG_HH
