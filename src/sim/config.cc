#include "sim/config.hh"

#include "base/logging.hh"
#include "prefetch/registry.hh"

namespace cbws
{

// Every built-in scheme self-registers from its own translation unit.
// Those TUs live in static archives and nothing else references them,
// so pin their anchor symbols here (cbws_sim is first on the link
// line) to keep the linker from dropping the registrations.
CBWS_FORCE_LINK_PREFETCHER(none)
CBWS_FORCE_LINK_PREFETCHER(stride)
CBWS_FORCE_LINK_PREFETCHER(ghb_pc_dc)
CBWS_FORCE_LINK_PREFETCHER(ghb_g_dc)
CBWS_FORCE_LINK_PREFETCHER(sms)
CBWS_FORCE_LINK_PREFETCHER(ampm)
CBWS_FORCE_LINK_PREFETCHER(cbws)
CBWS_FORCE_LINK_PREFETCHER(cbws_sms)
CBWS_FORCE_LINK_PREFETCHER(cbws_ampm)

const char *
toString(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:
        return "No-Prefetch";
      case PrefetcherKind::Stride:
        return "Stride";
      case PrefetcherKind::GhbPcDc:
        return "GHB-PC/DC";
      case PrefetcherKind::GhbGDc:
        return "GHB-G/DC";
      case PrefetcherKind::Sms:
        return "SMS";
      case PrefetcherKind::Cbws:
        return "CBWS";
      case PrefetcherKind::CbwsSms:
        return "CBWS+SMS";
      case PrefetcherKind::Ampm:
        return "AMPM";
      case PrefetcherKind::CbwsAmpm:
        return "CBWS+AMPM";
    }
    return "?";
}

std::vector<PrefetcherKind>
allPrefetcherKinds()
{
    return {PrefetcherKind::None,   PrefetcherKind::Stride,
            PrefetcherKind::GhbPcDc, PrefetcherKind::GhbGDc,
            PrefetcherKind::Sms,    PrefetcherKind::Cbws,
            PrefetcherKind::CbwsSms};
}

std::vector<PrefetcherKind>
extendedPrefetcherKinds()
{
    auto kinds = allPrefetcherKinds();
    kinds.push_back(PrefetcherKind::Ampm);
    kinds.push_back(PrefetcherKind::CbwsAmpm);
    return kinds;
}

ParamSet
paramSetFrom(const SystemConfig &config)
{
    ParamSet params;
    params.set(config.stride);
    params.set(config.ghb);
    params.set(config.sms);
    params.set(config.cbws);
    params.set(config.ampm);
    return params;
}

std::unique_ptr<Prefetcher>
makePrefetcher(const SystemConfig &config)
{
    // Thin compat shim: the enum maps onto the registry's canonical
    // scheme names, so enum-based callers and string-based callers
    // construct identical prefetchers.
    auto result = prefetcherRegistry().create(
        toString(config.prefetcher), paramSetFrom(config));
    if (!result.ok())
        panic("makePrefetcher: %s", result.error().str().c_str());
    return std::move(result).value();
}

} // namespace cbws
