#include "sim/config.hh"

#include "base/logging.hh"
#include "prefetch/addon.hh"
#include "prefetch/composite.hh"

namespace cbws
{

const char *
toString(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:
        return "No-Prefetch";
      case PrefetcherKind::Stride:
        return "Stride";
      case PrefetcherKind::GhbPcDc:
        return "GHB-PC/DC";
      case PrefetcherKind::GhbGDc:
        return "GHB-G/DC";
      case PrefetcherKind::Sms:
        return "SMS";
      case PrefetcherKind::Cbws:
        return "CBWS";
      case PrefetcherKind::CbwsSms:
        return "CBWS+SMS";
      case PrefetcherKind::Ampm:
        return "AMPM";
      case PrefetcherKind::CbwsAmpm:
        return "CBWS+AMPM";
    }
    return "?";
}

std::vector<PrefetcherKind>
allPrefetcherKinds()
{
    return {PrefetcherKind::None,   PrefetcherKind::Stride,
            PrefetcherKind::GhbPcDc, PrefetcherKind::GhbGDc,
            PrefetcherKind::Sms,    PrefetcherKind::Cbws,
            PrefetcherKind::CbwsSms};
}

std::vector<PrefetcherKind>
extendedPrefetcherKinds()
{
    auto kinds = allPrefetcherKinds();
    kinds.push_back(PrefetcherKind::Ampm);
    kinds.push_back(PrefetcherKind::CbwsAmpm);
    return kinds;
}

std::unique_ptr<Prefetcher>
makePrefetcher(const SystemConfig &config)
{
    switch (config.prefetcher) {
      case PrefetcherKind::None:
        return std::make_unique<NullPrefetcher>();
      case PrefetcherKind::Stride:
        return std::make_unique<StridePrefetcher>(config.stride);
      case PrefetcherKind::GhbPcDc:
        return std::make_unique<GhbPrefetcher>(
            GhbPrefetcher::Mode::PcDC, config.ghb);
      case PrefetcherKind::GhbGDc:
        return std::make_unique<GhbPrefetcher>(
            GhbPrefetcher::Mode::GlobalDC, config.ghb);
      case PrefetcherKind::Sms:
        return std::make_unique<SmsPrefetcher>(config.sms);
      case PrefetcherKind::Cbws:
        return std::make_unique<CbwsPrefetcher>(config.cbws);
      case PrefetcherKind::CbwsSms:
        return std::make_unique<CbwsSmsPrefetcher>(config.cbws,
                                                   config.sms);
      case PrefetcherKind::Ampm:
        return std::make_unique<AmpmPrefetcher>(config.ampm);
      case PrefetcherKind::CbwsAmpm:
        return std::make_unique<CbwsAddOnPrefetcher>(
            std::make_unique<AmpmPrefetcher>(config.ampm),
            config.cbws);
    }
    panic("unknown prefetcher kind");
}

} // namespace cbws
