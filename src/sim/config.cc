#include "sim/config.hh"

#include "base/logging.hh"
#include "prefetch/registry.hh"

namespace cbws
{

// Every built-in scheme self-registers from its own translation unit.
// Those TUs live in static archives and nothing else references them,
// so pin their anchor symbols here (cbws_sim is first on the link
// line) to keep the linker from dropping the registrations.
CBWS_FORCE_LINK_PREFETCHER(none)
CBWS_FORCE_LINK_PREFETCHER(stride)
CBWS_FORCE_LINK_PREFETCHER(ghb_pc_dc)
CBWS_FORCE_LINK_PREFETCHER(ghb_g_dc)
CBWS_FORCE_LINK_PREFETCHER(sms)
CBWS_FORCE_LINK_PREFETCHER(ampm)
CBWS_FORCE_LINK_PREFETCHER(cbws)
CBWS_FORCE_LINK_PREFETCHER(cbws_sms)
CBWS_FORCE_LINK_PREFETCHER(cbws_ampm)
CBWS_FORCE_LINK_PREFETCHER(multistride)
CBWS_FORCE_LINK_PREFETCHER(pangloss)
CBWS_FORCE_LINK_PREFETCHER(pythia)

const char *
toString(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None:
        return "No-Prefetch";
      case PrefetcherKind::Stride:
        return "Stride";
      case PrefetcherKind::GhbPcDc:
        return "GHB-PC/DC";
      case PrefetcherKind::GhbGDc:
        return "GHB-G/DC";
      case PrefetcherKind::Sms:
        return "SMS";
      case PrefetcherKind::Cbws:
        return "CBWS";
      case PrefetcherKind::CbwsSms:
        return "CBWS+SMS";
      case PrefetcherKind::Ampm:
        return "AMPM";
      case PrefetcherKind::CbwsAmpm:
        return "CBWS+AMPM";
    }
    return "?";
}

std::vector<PrefetcherKind>
allPrefetcherKinds()
{
    return {PrefetcherKind::None,   PrefetcherKind::Stride,
            PrefetcherKind::GhbPcDc, PrefetcherKind::GhbGDc,
            PrefetcherKind::Sms,    PrefetcherKind::Cbws,
            PrefetcherKind::CbwsSms};
}

std::vector<PrefetcherKind>
extendedPrefetcherKinds()
{
    auto kinds = allPrefetcherKinds();
    kinds.push_back(PrefetcherKind::Ampm);
    kinds.push_back(PrefetcherKind::CbwsAmpm);
    return kinds;
}

std::vector<std::string>
allSchemeNames()
{
    std::vector<std::string> names;
    for (PrefetcherKind kind : allPrefetcherKinds())
        names.push_back(toString(kind));
    return names;
}

std::vector<std::string>
extendedSchemeNames()
{
    std::vector<std::string> names;
    for (PrefetcherKind kind : extendedPrefetcherKinds())
        names.push_back(toString(kind));
    return names;
}

std::vector<std::string>
zooSchemeNames()
{
    return prefetcherRegistry().names();
}

std::string
schemeName(const SystemConfig &config)
{
    return config.scheme.empty() ? toString(config.prefetcher)
                                 : config.scheme;
}

ParamSet
paramSetFrom(const SystemConfig &config)
{
    ParamSet params;
    params.set(config.stride);
    params.set(config.ghb);
    params.set(config.sms);
    params.set(config.cbws);
    params.set(config.ampm);
    params.set(config.multistride);
    params.set(config.pangloss);
    params.set(config.pythia);
    return params;
}

std::unique_ptr<Prefetcher>
makePrefetcher(const SystemConfig &config)
{
    const std::string name = schemeName(config);
    ParamSet params = paramSetFrom(config);
    if (!config.pfOpts.empty()) {
        // Keys this scheme does not accept are skipped: multi-scheme
        // drivers validated every key against the whole selection up
        // front, and a single option may target only some columns
        // ("degree=4" tunes Stride and GHB but not No-Prefetch).
        Result<void> applied = prefetcherRegistry().applyOptions(
            name, params, config.pfOpts, /*ignore_unknown=*/true);
        if (!applied.ok())
            panic("makePrefetcher: %s",
                  applied.error().str().c_str());
    }
    auto result = prefetcherRegistry().create(name, params);
    if (!result.ok())
        panic("makePrefetcher: %s", result.error().str().c_str());
    return std::move(result).value();
}

} // namespace cbws
