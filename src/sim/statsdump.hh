/**
 * @file
 * gem5-style statistics dump: every counter of a SimResult rendered
 * as `name value # description` lines, grouped by component — the
 * format simulation veterans grep.
 */

#ifndef CBWS_SIM_STATSDUMP_HH
#define CBWS_SIM_STATSDUMP_HH

#include <ostream>

#include "sim/simulator.hh"

namespace cbws
{

/** Write the full stats dump for @p result to @p out. */
void dumpStats(std::ostream &out, const SimResult &result);

} // namespace cbws

#endif // CBWS_SIM_STATSDUMP_HH
