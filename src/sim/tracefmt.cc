#include "sim/tracefmt.hh"

#include <cinttypes>

#include "base/logging.hh"

namespace cbws
{

namespace
{

/** Display name of a track's synthetic thread. */
const char *
trackName(TraceTrack track)
{
    switch (track) {
      case TraceTrack::Core:
        return "core";
      case TraceTrack::Cache:
        return "cache";
      case TraceTrack::Prefetch:
        return "prefetch";
      default:
        return "other";
    }
}

} // anonymous namespace

ChromeTraceWriter::ChromeTraceWriter(const std::string &path,
                                     Cycle start, Cycle end,
                                     std::uint64_t max_events)
    : start_(start), end_(end), maxEvents_(max_events)
{
    out_ = std::fopen(path.c_str(), "w");
    if (!out_) {
        warn("chrome-trace: cannot open '%s' for writing",
             path.c_str());
        return;
    }
    writeHeader();
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    close();
}

void
ChromeTraceWriter::writeHeader()
{
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out_);
    // Metadata: name the per-track synthetic threads so the viewer
    // shows "core" / "cache" / "prefetch" rows instead of numbers.
    for (TraceTrack track : {TraceTrack::Core, TraceTrack::Cache,
                             TraceTrack::Prefetch}) {
        std::fprintf(out_,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":"
                     "\"%s\"}},\n",
                     static_cast<int>(track), trackName(track));
    }
    // A counter-track placeholder event keeps the JSON valid even if
    // no simulation event ever lands in the window.
    std::fprintf(out_, "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                       "\"name\":\"process_name\","
                       "\"args\":{\"name\":\"cbws-sim\"}}");
}

bool
ChromeTraceWriter::admit()
{
    if (!out_ || capped_)
        return false;
    if (events_ >= maxEvents_) {
        capped_ = true;
        warn("chrome-trace: event cap (%llu) reached; later events "
             "are dropped",
             static_cast<unsigned long long>(maxEvents_));
        return false;
    }
    ++events_;
    return true;
}

void
ChromeTraceWriter::complete(const char *cat, const char *name,
                            TraceTrack track, Cycle ts, Cycle dur,
                            std::uint64_t arg)
{
    if (!admit())
        return;
    std::fprintf(out_,
                 ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                 "\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%" PRIu64
                 ",\"dur\":%" PRIu64
                 ",\"args\":{\"addr\":\"0x%" PRIx64 "\"}}",
                 static_cast<int>(track), cat, name,
                 static_cast<std::uint64_t>(ts),
                 static_cast<std::uint64_t>(dur ? dur : 1), arg);
}

void
ChromeTraceWriter::instant(const char *cat, const char *name,
                           TraceTrack track, Cycle ts,
                           std::uint64_t arg)
{
    if (!admit())
        return;
    std::fprintf(out_,
                 ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                 "\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%" PRIu64
                 ",\"s\":\"t\",\"args\":{\"addr\":\"0x%" PRIx64
                 "\"}}",
                 static_cast<int>(track), cat, name,
                 static_cast<std::uint64_t>(ts), arg);
}

void
ChromeTraceWriter::counter(const char *name, Cycle ts,
                           std::uint64_t value)
{
    if (!admit())
        return;
    std::fprintf(out_,
                 ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                 "\"ts\":%" PRIu64 ",\"args\":{\"value\":%" PRIu64
                 "}}",
                 name, static_cast<std::uint64_t>(ts),
                 static_cast<std::uint64_t>(value));
}

void
ChromeTraceWriter::close()
{
    if (!out_)
        return;
    std::fputs("\n]}\n", out_);
    std::fclose(out_);
    out_ = nullptr;
}

} // namespace cbws
