#include "sim/tracefmt.hh"

#include <cinttypes>

#include "base/logging.hh"
#include "base/metrics.hh"
#include "base/profiler.hh"

namespace cbws
{

namespace
{

/** Display name of a track's synthetic thread. */
const char *
trackName(TraceTrack track)
{
    switch (track) {
      case TraceTrack::Core:
        return "core";
      case TraceTrack::Cache:
        return "cache";
      case TraceTrack::Prefetch:
        return "prefetch";
      case TraceTrack::Host:
        return "host";
      default:
        return "other";
    }
}

/** Synthetic process id of the host-time track: keeps wall-clock
 *  spans visually separate from the simulated-cycle tracks. */
constexpr int HostPid = 2;

} // anonymous namespace

ChromeTraceWriter::ChromeTraceWriter(const std::string &path,
                                     Cycle start, Cycle end,
                                     std::uint64_t max_events)
    : start_(start), end_(end), maxEvents_(max_events)
{
    out_ = std::fopen(path.c_str(), "w");
    if (!out_) {
        warn("chrome-trace: cannot open '%s' for writing",
             path.c_str());
        return;
    }
    writeHeader();
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    close();
}

void
ChromeTraceWriter::writeHeader()
{
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out_);
    // Metadata: name the per-track synthetic threads so the viewer
    // shows "core" / "cache" / "prefetch" rows instead of numbers.
    for (TraceTrack track : {TraceTrack::Core, TraceTrack::Cache,
                             TraceTrack::Prefetch}) {
        std::fprintf(out_,
                     "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                     "\"name\":\"thread_name\",\"args\":{\"name\":"
                     "\"%s\"}},\n",
                     static_cast<int>(track), trackName(track));
    }
    // A counter-track placeholder event keeps the JSON valid even if
    // no simulation event ever lands in the window.
    std::fprintf(out_, "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                       "\"name\":\"process_name\","
                       "\"args\":{\"name\":\"cbws-sim\"}}");
}

bool
ChromeTraceWriter::admit()
{
    if (!out_ || capped_)
        return false;
    if (events_ >= maxEvents_) {
        capped_ = true;
        warn("chrome-trace: event cap (%llu) reached; later events "
             "are dropped",
             static_cast<unsigned long long>(maxEvents_));
        return false;
    }
    ++events_;
    return true;
}

void
ChromeTraceWriter::complete(const char *cat, const char *name,
                            TraceTrack track, Cycle ts, Cycle dur,
                            std::uint64_t arg)
{
    if (!admit())
        return;
    std::fprintf(out_,
                 ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                 "\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%" PRIu64
                 ",\"dur\":%" PRIu64
                 ",\"args\":{\"addr\":\"0x%" PRIx64 "\"}}",
                 static_cast<int>(track), cat, name,
                 static_cast<std::uint64_t>(ts),
                 static_cast<std::uint64_t>(dur ? dur : 1), arg);
}

void
ChromeTraceWriter::instant(const char *cat, const char *name,
                           TraceTrack track, Cycle ts,
                           std::uint64_t arg)
{
    if (!admit())
        return;
    std::fprintf(out_,
                 ",\n{\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                 "\"cat\":\"%s\",\"name\":\"%s\",\"ts\":%" PRIu64
                 ",\"s\":\"t\",\"args\":{\"addr\":\"0x%" PRIx64
                 "\"}}",
                 static_cast<int>(track), cat, name,
                 static_cast<std::uint64_t>(ts), arg);
}

void
ChromeTraceWriter::counter(const char *name, Cycle ts,
                           std::uint64_t value)
{
    if (!admit())
        return;
    std::fprintf(out_,
                 ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                 "\"ts\":%" PRIu64 ",\"args\":{\"value\":%" PRIu64
                 "}}",
                 name, static_cast<std::uint64_t>(ts),
                 static_cast<std::uint64_t>(value));
}

void
ChromeTraceWriter::writeHostPhases(const prof::Report &report)
{
    if (!out_ || !report.enabled)
        return;
    // Host process metadata (emitted lazily so traces without a
    // profiler report keep their historical bytes).
    std::fprintf(out_,
                 ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                 "\"name\":\"process_name\","
                 "\"args\":{\"name\":\"cbws-host\"}}",
                 HostPid);
    std::fprintf(out_,
                 ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                 "\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"host phases\"}}",
                 HostPid);
    // The profiler aggregates per phase, so true interleaving is gone;
    // back-to-back spans (in wall-clock us) convey the split instead.
    double cursor_us = 0.0;
    for (unsigned i = 0; i < prof::NumPhases; ++i) {
        const double sec = report.phaseSeconds[i];
        if (sec <= 0.0)
            continue;
        if (!admit())
            return;
        std::fprintf(out_,
                     ",\n{\"ph\":\"X\",\"pid\":%d,\"tid\":0,"
                     "\"cat\":\"host\",\"name\":\"%s\",\"ts\":%.0f,"
                     "\"dur\":%.0f,\"args\":{\"entries\":%" PRIu64
                     ",\"seconds\":%.6f}}",
                     HostPid,
                     prof::toString(static_cast<prof::Phase>(i)),
                     cursor_us, sec * 1e6,
                     report.phaseEntries[i], sec);
        cursor_us += sec * 1e6;
    }
    // One thread row per pool worker: busy vs queue-wait vs lock-wait
    // as back-to-back spans, same convention as the phase row.
    for (std::size_t w = 0; w < report.workers.size(); ++w) {
        const prof::WorkerTotals &t = report.workers[w];
        if (t.jobs == 0)
            continue;
        const int tid = static_cast<int>(w) + 1;
        std::fprintf(out_,
                     ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                     "\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"worker %zu\"}}",
                     HostPid, tid, w);
        struct Span
        {
            const char *name;
            double seconds;
        };
        const Span spans[] = {
            {"busy", t.busySeconds},
            {"queue_wait", t.queueWaitSeconds},
            {"lock_wait", t.lockWaitSeconds},
        };
        double w_cursor_us = 0.0;
        for (const Span &s : spans) {
            if (s.seconds <= 0.0)
                continue;
            if (!admit())
                return;
            std::fprintf(out_,
                         ",\n{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                         "\"cat\":\"host\",\"name\":\"%s\","
                         "\"ts\":%.0f,\"dur\":%.0f,"
                         "\"args\":{\"jobs\":%" PRIu64
                         ",\"seconds\":%.6f}}",
                         HostPid, tid, s.name, w_cursor_us,
                         s.seconds * 1e6, t.jobs, s.seconds);
            w_cursor_us += s.seconds * 1e6;
        }
    }
}

void
ChromeTraceWriter::writeMetricCounters(const MetricsRegistry &reg,
                                       Cycle ts)
{
    if (!out_)
        return;
    for (const auto &m : reg.metrics()) {
        switch (m.kind) {
          case MetricsRegistry::Kind::Scalar:
            if (!admit())
                return;
            std::fprintf(out_,
                         ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                         "\"ts\":%" PRIu64
                         ",\"args\":{\"value\":%" PRIu64 "}}",
                         m.path.c_str(),
                         static_cast<std::uint64_t>(ts), m.uintValue);
            break;
          case MetricsRegistry::Kind::Real:
          case MetricsRegistry::Kind::Formula:
            if (!admit())
                return;
            std::fprintf(out_,
                         ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"%s\","
                         "\"ts\":%" PRIu64
                         ",\"args\":{\"value\":%.6g}}",
                         m.path.c_str(),
                         static_cast<std::uint64_t>(ts), m.realValue);
            break;
          default:
            break; // Vector/Histogram have no counter rendering
        }
    }
}

void
ChromeTraceWriter::close()
{
    if (!out_)
        return;
    std::fputs("\n]}\n", out_);
    std::fclose(out_);
    out_ = nullptr;
}

} // namespace cbws
