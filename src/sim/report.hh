/**
 * @file
 * Machine-readable export of simulation results (JSON), used by the
 * cbws-sim tool's --json mode and available to downstream scripts.
 */

#ifndef CBWS_SIM_REPORT_HH
#define CBWS_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace cbws
{

/**
 * Additive report extensions (docs/FORMATS.md). Both default off so
 * the v2/v3 objects stay byte-identical to every previous release —
 * the CI golden diff depends on that.
 */
struct ReportOptions
{
    /** Append a `provenance` object (git SHA, compiler, build type). */
    bool provenance = false;

    /**
     * Append a `metrics` object rendered from the metrics registry
     * (sim/simmetrics.hh): every statsdump counter plus the
     * JSON-only vectors, keyed by dotted path.
     */
    bool metrics = false;
};

/** Serialise one result to a JSON object string. */
std::string toJson(const SimResult &result,
                   const ReportOptions &options = ReportOptions());

/** Serialise a batch of results to a JSON array string. */
std::string toJson(const std::vector<SimResult> &results,
                   const ReportOptions &options = ReportOptions());

} // namespace cbws

#endif // CBWS_SIM_REPORT_HH
