/**
 * @file
 * Machine-readable export of simulation results (JSON), used by the
 * cbws-sim tool's --json mode and available to downstream scripts.
 */

#ifndef CBWS_SIM_REPORT_HH
#define CBWS_SIM_REPORT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace cbws
{

/** Serialise one result to a JSON object string. */
std::string toJson(const SimResult &result);

/** Serialise a batch of results to a JSON array string. */
std::string toJson(const std::vector<SimResult> &results);

} // namespace cbws

#endif // CBWS_SIM_REPORT_HH
