#include "sim/simulator.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/profiler.hh"
#include "base/tuning.hh"
#include "cpu/inorder.hh"
#include "prefetch/composite.hh"
#include "sim/snapshot.hh"

namespace cbws
{

namespace
{

/** Bridges a Prefetcher's requests into the hierarchy. */
class HierarchySink : public PrefetchSink
{
  public:
    explicit HierarchySink(Hierarchy &mem, unsigned core = 0)
        : mem_(mem), core_(core)
    {
    }

    void
    issuePrefetch(LineAddr line, PfSource src) override
    {
        mem_.enqueuePrefetch(line, src, core_);
    }

    bool
    isCached(LineAddr line) const override
    {
        return mem_.isCachedOrInFlightL2(line);
    }

  private:
    Hierarchy &mem_;
    unsigned core_;
};

/** The CBWS component of a prefetcher, if it has one. */
CbwsPrefetcher *
cbwsComponent(Prefetcher *prefetcher)
{
    if (auto *p = dynamic_cast<CbwsPrefetcher *>(prefetcher))
        return p;
    if (auto *c = dynamic_cast<CbwsSmsPrefetcher *>(prefetcher))
        return &c->cbws();
    return nullptr;
}

/**
 * Commit-hook class mask for the standard prefetcher-training hook:
 * it only acts on memory retires and block markers, so everything
 * else can skip the std::function dispatch. A snapshot probe samples
 * *every* commit, so its presence forces the full mask.
 */
std::uint32_t
commitMaskFor(bool has_snapshot)
{
    if (has_snapshot)
        return ~std::uint32_t(0);
    return OooCore::classBit(InstClass::Load) |
           OooCore::classBit(InstClass::Store) |
           OooCore::classBit(InstClass::BlockBegin) |
           OooCore::classBit(InstClass::BlockEnd);
}

} // anonymous namespace

SimResult
simulate(const Trace &trace, const SystemConfig &config,
         std::uint64_t max_insts, const SimProbes &probes,
         std::uint64_t warmup_insts)
{
    Hierarchy mem(config.mem);
    auto prefetcher = makePrefetcher(config);
    HierarchySink sink(mem);

    CbwsPrefetcher *cbws_pf = cbwsComponent(prefetcher.get());

    if (probes.differentials && cbws_pf)
        cbws_pf->setDifferentialProbe(probes.differentials);

    if (probes.trace)
        mem.setTraceSink(probes.trace);

    if (probes.snapshot) {
        probes.snapshot->begin(prefetcher->name(), mem);
        if (cbws_pf) {
            SnapshotWriter::CbwsGauges gauges;
            gauges.occupancy = [cbws_pf] {
                return static_cast<std::uint64_t>(
                    cbws_pf->table().occupancy());
            };
            gauges.capacity = [cbws_pf] {
                return static_cast<std::uint64_t>(
                    cbws_pf->table().capacity());
            };
            gauges.tableHits = [cbws_pf] {
                return cbws_pf->schemeStats().tableHits;
            };
            gauges.tableMisses = [cbws_pf] {
                return cbws_pf->schemeStats().tableMisses;
            };
            probes.snapshot->setCbwsGauges(std::move(gauges));
        } else {
            probes.snapshot->setCbwsGauges(SnapshotWriter::CbwsGauges());
        }
    }

    OooCore core(config.core, mem);
    auto make_context = [](const TraceRecord &rec,
                           const AccessOutcome &out) {
        PrefetchContext ctx;
        ctx.pc = rec.pc;
        ctx.addr = rec.effAddr;
        ctx.line = rec.line();
        ctx.isWrite = rec.cls == InstClass::Store;
        ctx.l1Hit = out.l1Hit;
        ctx.l2Miss = out.cls == DemandClass::Shorter ||
                     out.cls == DemandClass::NonTimely ||
                     out.cls == DemandClass::Missing;
        return ctx;
    };
    auto on_commit = [&](const TraceRecord &rec,
                         const AccessOutcome &out, Cycle now) {
        if (probes.snapshot)
            probes.snapshot->onCommit(now);
        // The scope sits inside the dispatch so commits that never
        // reach the prefetcher (plain ALU/branch retires, i.e. most
        // of the stream) pay nothing while profiling.
        switch (rec.cls) {
          case InstClass::Load:
          case InstClass::Store: {
            PROF_SCOPE_SAMPLED(prof::Phase::PfObserve, 15);
            prefetcher->observe(
                PrefetchEvent{PfStage::Commit, make_context(rec, out)},
                sink);
            break;
          }
          case InstClass::BlockBegin: {
            PROF_SCOPE(prof::Phase::PfObserve);
            prefetcher->blockBegin(rec.blockId, sink);
            break;
          }
          case InstClass::BlockEnd: {
            PROF_SCOPE(prof::Phase::PfObserve);
            prefetcher->blockEnd(rec.blockId, sink);
            break;
          }
          default:
            break;
        }
    };
    auto on_access = [&](const TraceRecord &rec,
                         const AccessOutcome &out, Cycle now) {
        (void)now;
        PROF_SCOPE_SAMPLED(prof::Phase::PfObserve, 15);
        prefetcher->observe(
            PrefetchEvent{PfStage::Access, make_context(rec, out)},
            sink);
    };

    auto on_warmup = [&mem, &probes](Cycle now) {
        mem.resetStats();
        if (probes.snapshot)
            probes.snapshot->onWarmupBoundary(now);
    };

    SimResult result;
    result.prefetcher = prefetcher->name();
    result.dramBackend = mem.dram().name();
    if (config.coreModel == CoreModel::InOrder) {
        InOrderCore inorder(config.core, mem);
        inorder.setTraceSink(probes.trace);
        result.core =
            inorder.run(trace, max_insts, on_commit, on_access,
                        warmup_insts, on_warmup);
    } else {
        core.setTraceSink(probes.trace);
        core.setCommitHookMask(commitMaskFor(probes.snapshot != nullptr));
        result.core =
            core.run(trace, max_insts, on_commit, on_access,
                     warmup_insts, on_warmup);
    }
    mem.finalize();
    result.mem = mem.stats();
    result.prefetcherStorageBits = prefetcher->storageBits();
    if (probes.schemeMetrics)
        prefetcher->exportMetrics(*probes.schemeMetrics, "pf.scheme");
    if (probes.snapshot)
        probes.snapshot->finalize(result);
    return result;
}

SimResult
simulateMulti(const std::vector<const Trace *> &traces,
              const std::vector<std::string> &workload_names,
              const SystemConfig &config, std::uint64_t max_insts,
              const SimProbes &probes, std::uint64_t warmup_insts)
{
    fatal_if(traces.empty(), "simulateMulti: no traces");
    fatal_if(workload_names.size() != traces.size(),
             "simulateMulti: %zu traces but %zu workload names",
             traces.size(), workload_names.size());
    fatal_if(config.coreModel == CoreModel::InOrder,
             "simulateMulti: multi-core requires the out-of-order "
             "core model");

    const unsigned n = static_cast<unsigned>(traces.size());
    if (n == 1) {
        // One core: take the historic single-core path so the result
        // is bit-identical to pre-multicore builds.
        SystemConfig one = config;
        one.mem.numCores = 1;
        SimResult result = simulate(*traces[0], one, max_insts, probes,
                                    warmup_insts);
        result.workload = workload_names[0];
        return result;
    }

    SystemConfig cfg = config;
    cfg.mem.numCores = n;
    Hierarchy mem(cfg.mem);
    if (probes.trace)
        mem.setTraceSink(probes.trace);

    // Private prefetcher instance and core-tagged sink per core.
    std::vector<std::unique_ptr<Prefetcher>> prefetchers;
    std::vector<std::unique_ptr<HierarchySink>> sinks;
    for (unsigned c = 0; c < n; ++c) {
        prefetchers.push_back(makePrefetcher(cfg));
        sinks.push_back(std::make_unique<HierarchySink>(mem, c));
    }

    // Observability probes attach to core 0's prefetcher (snapshots
    // report whole-hierarchy counters either way).
    CbwsPrefetcher *cbws0 = cbwsComponent(prefetchers[0].get());
    if (probes.differentials && cbws0)
        cbws0->setDifferentialProbe(probes.differentials);
    if (probes.snapshot) {
        probes.snapshot->setCores(n);
        probes.snapshot->begin(prefetchers[0]->name(), mem);
        if (cbws0) {
            SnapshotWriter::CbwsGauges gauges;
            gauges.occupancy = [cbws0] {
                return static_cast<std::uint64_t>(
                    cbws0->table().occupancy());
            };
            gauges.capacity = [cbws0] {
                return static_cast<std::uint64_t>(
                    cbws0->table().capacity());
            };
            gauges.tableHits = [cbws0] {
                return cbws0->schemeStats().tableHits;
            };
            gauges.tableMisses = [cbws0] {
                return cbws0->schemeStats().tableMisses;
            };
            probes.snapshot->setCbwsGauges(std::move(gauges));
        } else {
            probes.snapshot->setCbwsGauges(
                SnapshotWriter::CbwsGauges());
        }
    }

    auto make_context = [](const TraceRecord &rec,
                           const AccessOutcome &out) {
        PrefetchContext ctx;
        ctx.pc = rec.pc;
        ctx.addr = rec.effAddr;
        ctx.line = rec.line();
        ctx.isWrite = rec.cls == InstClass::Store;
        ctx.l1Hit = out.l1Hit;
        ctx.l2Miss = out.cls == DemandClass::Shorter ||
                     out.cls == DemandClass::NonTimely ||
                     out.cls == DemandClass::Missing;
        return ctx;
    };

    // The shared hierarchy resets its statistics when the *last* core
    // crosses its warmup boundary (per-core windows are subtracted
    // individually by each core's finish()).
    unsigned warmups_pending = warmup_insts > 0 ? n : 0;
    std::vector<bool> warmup_crossed(n, false);
    auto cross_warmup = [&](unsigned c, Cycle now) {
        if (warmups_pending == 0 || warmup_crossed[c])
            return;
        warmup_crossed[c] = true;
        if (--warmups_pending == 0) {
            mem.resetStats();
            if (probes.snapshot)
                probes.snapshot->onWarmupBoundary(now);
        }
    };

    std::vector<std::unique_ptr<OooCore>> cores;
    for (unsigned c = 0; c < n; ++c) {
        cores.push_back(
            std::make_unique<OooCore>(cfg.core, mem, c));
        cores[c]->setTraceSink(probes.trace);
        cores[c]->setCommitHookMask(
            commitMaskFor(c == 0 && probes.snapshot != nullptr));
        Prefetcher *pf = prefetchers[c].get();
        PrefetchSink *sink = sinks[c].get();
        auto on_commit = [&, c, pf, sink](const TraceRecord &rec,
                                          const AccessOutcome &out,
                                          Cycle now) {
            if (c == 0 && probes.snapshot)
                probes.snapshot->onCommit(now);
            // Scope inside the dispatch: non-memory retires skip it
            // (see the single-core hook above).
            switch (rec.cls) {
              case InstClass::Load:
              case InstClass::Store: {
                PROF_SCOPE_SAMPLED(prof::Phase::PfObserve, 15);
                pf->observe(PrefetchEvent{PfStage::Commit,
                                          make_context(rec, out)},
                            *sink);
                break;
              }
              case InstClass::BlockBegin: {
                PROF_SCOPE(prof::Phase::PfObserve);
                pf->blockBegin(rec.blockId, *sink);
                break;
              }
              case InstClass::BlockEnd: {
                PROF_SCOPE(prof::Phase::PfObserve);
                pf->blockEnd(rec.blockId, *sink);
                break;
              }
              default:
                break;
            }
        };
        auto on_access = [pf, sink, make_context](
                             const TraceRecord &rec,
                             const AccessOutcome &out, Cycle now) {
            (void)now;
            PROF_SCOPE_SAMPLED(prof::Phase::PfObserve, 15);
            pf->observe(PrefetchEvent{PfStage::Access,
                                      make_context(rec, out)},
                        *sink);
        };
        auto on_warmup = [&cross_warmup, c](Cycle now) {
            cross_warmup(c, now);
        };
        cores[c]->begin(*traces[c], max_insts, on_commit, on_access,
                        warmup_insts, on_warmup);
    }

    // ---- Lockstep cycle driver ----
    // All cores step through the same global cycle, core 0 first, so
    // shared-L2 bank arbitration and prefetch-queue interleaving are
    // deterministic. Idle cycles fast-forward only when *every* core
    // is stalled and no prefetch work is pending.
    constexpr Cycle Never = ~Cycle(0);
    const bool skip_ahead = Tuning::get().skipAhead;
    Cycle now = 0;
    const Cycle cycle_limit = cores[0]->cycleLimit();
    std::vector<Cycle> end_cycle(n, 0);
    std::vector<bool> finished(n, false);
    unsigned running = n;
    while (running > 0) {
        mem.tick(now);
        const std::uint64_t mshr_stalls0 = mem.stats().mshrStalls;
        bool worked = false;
        for (unsigned c = 0; c < n; ++c) {
            if (finished[c])
                continue;
            worked = cores[c]->step(now) || worked;
            if (cores[c]->done()) {
                finished[c] = true;
                end_cycle[c] = now;
                --running;
                // A trace that ends before its warmup boundary still
                // releases the shared reset.
                cross_warmup(c, now);
            }
        }
        if (running == 0)
            break;
        if (skip_ahead && !worked && !mem.prefetchWorkPending()) {
            Cycle next_event = mem.nextEventCycle();
            for (unsigned c = 0; c < n; ++c) {
                if (finished[c])
                    continue;
                const Cycle local = cores[c]->nextLocalEvent(now);
                if (local < next_event)
                    next_event = local;
            }
            if (next_event != Never && next_event > now + 1) {
                const Cycle skipped = next_event - now - 1;
                for (unsigned c = 0; c < n; ++c)
                    if (!finished[c])
                        cores[c]->addSkippedCycles(skipped);
                // Replay the failed-retry stall counts the skipped
                // repeats of this frozen cycle would have added.
                mem.addSkippedMshrStalls(
                    (mem.stats().mshrStalls - mshr_stalls0) *
                    skipped);
                now += skipped;
            }
        }
        ++now;
        if (now > cycle_limit) {
            warn("simulateMulti: cycle limit reached (%llu cycles); "
                 "possible livelock",
                 static_cast<unsigned long long>(now));
            break;
        }
    }

    mem.finalize();

    SimResult result;
    result.cores = n;
    result.prefetcher = prefetchers[0]->name();
    result.dramBackend = mem.dram().name();
    result.mem = mem.stats();
    result.prefetcherStorageBits = prefetchers[0]->storageBits();
    result.perCore.resize(n);
    for (unsigned c = 0; c < n; ++c) {
        CoreSliceResult &slice = result.perCore[c];
        slice.workload = workload_names[c];
        slice.core =
            cores[c]->finish(finished[c] ? end_cycle[c] : now);
        if (c < result.mem.perCore.size())
            slice.mem = result.mem.perCore[c];
        // Aggregate: instructions and event counts sum across cores;
        // the run lasts as long as its slowest core.
        result.core.instructions += slice.core.instructions;
        result.core.memInstructions += slice.core.memInstructions;
        result.core.branches += slice.core.branches;
        result.core.branchMispredicts += slice.core.branchMispredicts;
        result.core.loopCycles += slice.core.loopCycles;
        result.core.robFullStalls += slice.core.robFullStalls;
        result.core.lsqFullStalls += slice.core.lsqFullStalls;
        result.core.cycles =
            std::max(result.core.cycles, slice.core.cycles);
        if (c == 0) {
            result.workload = slice.workload;
        } else {
            result.workload += "+" + slice.workload;
        }
    }
    if (probes.schemeMetrics) {
        for (unsigned c = 0; c < n; ++c) {
            prefetchers[c]->exportMetrics(
                *probes.schemeMetrics,
                "core" + std::to_string(c) + ".pf.scheme");
        }
    }
    if (probes.snapshot)
        probes.snapshot->finalize(result);
    return result;
}

SimResult
simulateWorkload(const Workload &workload, const SystemConfig &config,
                 const WorkloadParams &params, const SimProbes &probes,
                 std::uint64_t warmup_insts)
{
    Trace trace;
    trace.reserve(params.maxInstructions + 512);
    {
        PROF_SCOPE(prof::Phase::TraceSynthesis);
        workload.generate(trace, params);
    }
    SimResult result = simulate(trace, config, params.maxInstructions,
                                probes, warmup_insts);
    result.workload = workload.name();
    return result;
}

} // namespace cbws
