#include "sim/simulator.hh"

#include "cpu/inorder.hh"
#include "prefetch/composite.hh"
#include "sim/snapshot.hh"

namespace cbws
{

namespace
{

/** Bridges a Prefetcher's requests into the hierarchy. */
class HierarchySink : public PrefetchSink
{
  public:
    explicit HierarchySink(Hierarchy &mem) : mem_(mem) {}

    void
    issuePrefetch(LineAddr line, PfSource src) override
    {
        mem_.enqueuePrefetch(line, src);
    }

    bool
    isCached(LineAddr line) const override
    {
        return mem_.isCachedOrInFlightL2(line);
    }

  private:
    Hierarchy &mem_;
};

} // anonymous namespace

SimResult
simulate(const Trace &trace, const SystemConfig &config,
         std::uint64_t max_insts, const SimProbes &probes,
         std::uint64_t warmup_insts)
{
    Hierarchy mem(config.mem);
    auto prefetcher = makePrefetcher(config);
    HierarchySink sink(mem);

    CbwsPrefetcher *cbws_pf = nullptr;
    if (auto *p = dynamic_cast<CbwsPrefetcher *>(prefetcher.get()))
        cbws_pf = p;
    else if (auto *c =
                 dynamic_cast<CbwsSmsPrefetcher *>(prefetcher.get()))
        cbws_pf = &c->cbws();

    if (probes.differentials && cbws_pf)
        cbws_pf->setDifferentialProbe(probes.differentials);

    if (probes.trace)
        mem.setTraceSink(probes.trace);

    if (probes.snapshot) {
        probes.snapshot->begin(prefetcher->name(), mem);
        if (cbws_pf) {
            SnapshotWriter::CbwsGauges gauges;
            gauges.occupancy = [cbws_pf] {
                return static_cast<std::uint64_t>(
                    cbws_pf->table().occupancy());
            };
            gauges.capacity = [cbws_pf] {
                return static_cast<std::uint64_t>(
                    cbws_pf->table().capacity());
            };
            gauges.tableHits = [cbws_pf] {
                return cbws_pf->schemeStats().tableHits;
            };
            gauges.tableMisses = [cbws_pf] {
                return cbws_pf->schemeStats().tableMisses;
            };
            probes.snapshot->setCbwsGauges(std::move(gauges));
        } else {
            probes.snapshot->setCbwsGauges(SnapshotWriter::CbwsGauges());
        }
    }

    OooCore core(config.core, mem);
    auto make_context = [](const TraceRecord &rec,
                           const AccessOutcome &out) {
        PrefetchContext ctx;
        ctx.pc = rec.pc;
        ctx.addr = rec.effAddr;
        ctx.line = rec.line();
        ctx.isWrite = rec.cls == InstClass::Store;
        ctx.l1Hit = out.l1Hit;
        ctx.l2Miss = out.cls == DemandClass::Shorter ||
                     out.cls == DemandClass::NonTimely ||
                     out.cls == DemandClass::Missing;
        return ctx;
    };
    auto on_commit = [&](const TraceRecord &rec,
                         const AccessOutcome &out, Cycle now) {
        if (probes.snapshot)
            probes.snapshot->onCommit(now);
        switch (rec.cls) {
          case InstClass::Load:
          case InstClass::Store:
            prefetcher->observe(
                PrefetchEvent{PfStage::Commit, make_context(rec, out)},
                sink);
            break;
          case InstClass::BlockBegin:
            prefetcher->blockBegin(rec.blockId, sink);
            break;
          case InstClass::BlockEnd:
            prefetcher->blockEnd(rec.blockId, sink);
            break;
          default:
            break;
        }
    };
    auto on_access = [&](const TraceRecord &rec,
                         const AccessOutcome &out, Cycle now) {
        (void)now;
        prefetcher->observe(
            PrefetchEvent{PfStage::Access, make_context(rec, out)},
            sink);
    };

    auto on_warmup = [&mem, &probes](Cycle now) {
        mem.resetStats();
        if (probes.snapshot)
            probes.snapshot->onWarmupBoundary(now);
    };

    SimResult result;
    result.prefetcher = prefetcher->name();
    result.dramBackend = mem.dram().name();
    if (config.coreModel == CoreModel::InOrder) {
        InOrderCore inorder(config.core, mem);
        inorder.setTraceSink(probes.trace);
        result.core =
            inorder.run(trace, max_insts, on_commit, on_access,
                        warmup_insts, on_warmup);
    } else {
        core.setTraceSink(probes.trace);
        result.core =
            core.run(trace, max_insts, on_commit, on_access,
                     warmup_insts, on_warmup);
    }
    mem.finalize();
    result.mem = mem.stats();
    result.prefetcherStorageBits = prefetcher->storageBits();
    if (probes.snapshot)
        probes.snapshot->finalize(result);
    return result;
}

SimResult
simulateWorkload(const Workload &workload, const SystemConfig &config,
                 const WorkloadParams &params, const SimProbes &probes,
                 std::uint64_t warmup_insts)
{
    Trace trace;
    trace.reserve(params.maxInstructions + 512);
    workload.generate(trace, params);
    SimResult result = simulate(trace, config, params.maxInstructions,
                                probes, warmup_insts);
    result.workload = workload.name();
    return result;
}

} // namespace cbws
