#include "sim/simulator.hh"

#include "cpu/inorder.hh"
#include "prefetch/composite.hh"

namespace cbws
{

namespace
{

/** Bridges a Prefetcher's requests into the hierarchy. */
class HierarchySink : public PrefetchSink
{
  public:
    explicit HierarchySink(Hierarchy &mem) : mem_(mem) {}

    void
    issuePrefetch(LineAddr line) override
    {
        mem_.enqueuePrefetch(line);
    }

    bool
    isCached(LineAddr line) const override
    {
        return mem_.isCachedOrInFlightL2(line);
    }

  private:
    Hierarchy &mem_;
};

} // anonymous namespace

SimResult
simulate(const Trace &trace, const SystemConfig &config,
         std::uint64_t max_insts, const SimProbes &probes,
         std::uint64_t warmup_insts)
{
    Hierarchy mem(config.mem);
    auto prefetcher = makePrefetcher(config);
    HierarchySink sink(mem);

    if (probes.differentials) {
        if (auto *p = dynamic_cast<CbwsPrefetcher *>(prefetcher.get()))
            p->setDifferentialProbe(probes.differentials);
        else if (auto *c = dynamic_cast<CbwsSmsPrefetcher *>(
                     prefetcher.get()))
            c->cbws().setDifferentialProbe(probes.differentials);
    }

    OooCore core(config.core, mem);
    auto make_context = [](const TraceRecord &rec,
                           const AccessOutcome &out) {
        PrefetchContext ctx;
        ctx.pc = rec.pc;
        ctx.addr = rec.effAddr;
        ctx.line = rec.line();
        ctx.isWrite = rec.cls == InstClass::Store;
        ctx.l1Hit = out.l1Hit;
        ctx.l2Miss = out.cls == DemandClass::Shorter ||
                     out.cls == DemandClass::NonTimely ||
                     out.cls == DemandClass::Missing;
        return ctx;
    };
    auto on_commit = [&](const TraceRecord &rec,
                         const AccessOutcome &out) {
        switch (rec.cls) {
          case InstClass::Load:
          case InstClass::Store:
            prefetcher->observeCommit(make_context(rec, out), sink);
            break;
          case InstClass::BlockBegin:
            prefetcher->blockBegin(rec.blockId, sink);
            break;
          case InstClass::BlockEnd:
            prefetcher->blockEnd(rec.blockId, sink);
            break;
          default:
            break;
        }
    };
    auto on_access = [&](const TraceRecord &rec,
                         const AccessOutcome &out) {
        prefetcher->observeAccess(make_context(rec, out), sink);
    };

    SimResult result;
    result.prefetcher = prefetcher->name();
    if (config.coreModel == CoreModel::InOrder) {
        InOrderCore inorder(config.core, mem);
        result.core =
            inorder.run(trace, max_insts, on_commit, on_access,
                        warmup_insts, [&mem] { mem.resetStats(); });
    } else {
        result.core =
            core.run(trace, max_insts, on_commit, on_access,
                     warmup_insts, [&mem] { mem.resetStats(); });
    }
    mem.finalize();
    result.mem = mem.stats();
    result.prefetcherStorageBits = prefetcher->storageBits();
    return result;
}

SimResult
simulateWorkload(const Workload &workload, const SystemConfig &config,
                 const WorkloadParams &params, const SimProbes &probes,
                 std::uint64_t warmup_insts)
{
    Trace trace;
    trace.reserve(params.maxInstructions + 512);
    workload.generate(trace, params);
    SimResult result = simulate(trace, config, params.maxInstructions,
                                probes, warmup_insts);
    result.workload = workload.name();
    return result;
}

} // namespace cbws
