#include "sim/report.hh"

#include "base/json.hh"

namespace cbws
{

namespace
{

/** Version stamped on every report object (docs/FORMATS.md). */
constexpr std::uint64_t ReportSchemaVersion = 1;

void
writeResult(JsonWriter &w, const SimResult &r)
{
    w.beginObject();
    w.field("schema_version", ReportSchemaVersion);
    w.field("workload", r.workload);
    w.field("prefetcher", r.prefetcher);
    w.field("instructions", r.core.instructions);
    w.field("cycles", r.core.cycles);
    w.field("ipc", r.ipc());
    w.field("mpki", r.mpki());
    w.field("loop_fraction", r.core.loopFraction());
    w.field("branches", r.core.branches);
    w.field("branch_mispredicts", r.core.branchMispredicts);

    w.key("l1d");
    w.beginObject();
    w.field("accesses", r.mem.l1dAccesses);
    w.field("misses", r.mem.l1dMisses);
    w.endObject();

    w.key("llc");
    w.beginObject();
    w.field("demand_accesses", r.mem.demandL2Accesses);
    w.field("demand_misses", r.mem.llcDemandMisses);
    w.endObject();

    w.key("classification");
    w.beginObject();
    w.field("timely", r.classFraction(DemandClass::Timely));
    w.field("shorter", r.classFraction(DemandClass::Shorter));
    w.field("non_timely", r.classFraction(DemandClass::NonTimely));
    w.field("missing", r.classFraction(DemandClass::Missing));
    w.field("wrong", r.wrongFraction());
    w.endObject();

    w.key("prefetch");
    w.beginObject();
    w.field("requested", r.mem.prefetchesRequested);
    w.field("issued", r.mem.prefetchesIssued);
    w.field("filtered", r.mem.prefetchesFiltered);
    w.field("dropped", r.mem.prefetchesDropped);
    w.field("storage_bits", r.prefetcherStorageBits);
    w.endObject();

    w.key("dram");
    w.beginObject();
    w.field("bytes_read", r.mem.dramBytesRead);
    w.field("bytes_written", r.mem.dramBytesWritten);
    w.endObject();
    w.endObject();
}

} // anonymous namespace

std::string
toJson(const SimResult &result)
{
    JsonWriter w;
    writeResult(w, result);
    return w.str();
}

std::string
toJson(const std::vector<SimResult> &results)
{
    JsonWriter w;
    w.beginArray();
    for (const auto &r : results)
        writeResult(w, r);
    w.endArray();
    return w.str();
}

} // namespace cbws
