#include "sim/report.hh"

#include "base/json.hh"
#include "base/version.hh"
#include "sim/simmetrics.hh"

namespace cbws
{

namespace
{

/** Version stamped on every report object (docs/FORMATS.md).
 *  v2: dram section gained backend/timing/queue/deferral fields.
 *  v3: multi-core runs only — adds "cores", a "per_core" array and an
 *  "interference" section; single-core reports stay v2 byte-for-byte
 *  (the CI golden diff depends on this). */
constexpr std::uint64_t ReportSchemaVersion = 2;
constexpr std::uint64_t ReportSchemaVersionMulticore = 3;

void
writeResult(JsonWriter &w, const SimResult &r,
            const ReportOptions &options)
{
    w.beginObject();
    w.field("schema_version", r.cores > 1 ? ReportSchemaVersionMulticore
                                          : ReportSchemaVersion);
    if (r.cores > 1)
        w.field("cores", static_cast<std::uint64_t>(r.cores));
    w.field("workload", r.workload);
    w.field("prefetcher", r.prefetcher);
    w.field("instructions", r.core.instructions);
    w.field("cycles", r.core.cycles);
    w.field("ipc", r.ipc());
    w.field("mpki", r.mpki());
    w.field("loop_fraction", r.core.loopFraction());
    w.field("branches", r.core.branches);
    w.field("branch_mispredicts", r.core.branchMispredicts);

    w.key("l1d");
    w.beginObject();
    w.field("accesses", r.mem.l1dAccesses);
    w.field("misses", r.mem.l1dMisses);
    w.endObject();

    w.key("llc");
    w.beginObject();
    w.field("demand_accesses", r.mem.demandL2Accesses);
    w.field("demand_misses", r.mem.llcDemandMisses);
    w.endObject();

    w.key("classification");
    w.beginObject();
    w.field("timely", r.classFraction(DemandClass::Timely));
    w.field("shorter", r.classFraction(DemandClass::Shorter));
    w.field("non_timely", r.classFraction(DemandClass::NonTimely));
    w.field("missing", r.classFraction(DemandClass::Missing));
    w.field("wrong", r.wrongFraction());
    w.endObject();

    w.key("prefetch");
    w.beginObject();
    w.field("requested", r.mem.prefetchesRequested);
    w.field("issued", r.mem.prefetchesIssued);
    w.field("filtered", r.mem.prefetchesFiltered);
    w.field("dropped", r.mem.prefetchesDropped);
    w.field("storage_bits", r.prefetcherStorageBits);
    w.endObject();

    w.key("dram");
    w.beginObject();
    w.field("backend", r.dramBackend);
    w.field("bytes_read", r.mem.dramBytesRead);
    w.field("bytes_written", r.mem.dramBytesWritten);
    w.field("reads", r.mem.dram.reads);
    w.field("writes", r.mem.dram.writes);
    w.field("row_hit_rate", r.mem.dram.rowHitRate());
    w.field("row_hits", r.mem.dram.rowHits);
    w.field("row_misses", r.mem.dram.rowMisses);
    w.field("row_closed", r.mem.dram.rowClosed);
    w.field("avg_read_queue_depth", r.mem.dram.avgReadQueueDepth());
    w.field("avg_write_queue_depth",
            r.mem.dram.avgWriteQueueDepth());
    w.field("deferred_prefetches", r.mem.dram.prefetchesDeferred);
    w.field("deferral_cycles", r.mem.dram.deferralCycles);
    w.field("faw_stalls", r.mem.dram.fawStalls);
    w.field("refresh_stalls", r.mem.dram.refreshStalls);
    w.field("write_drains", r.mem.dram.writeDrains);
    w.field("bus_utilisation",
            r.core.cycles
                ? static_cast<double>(r.mem.dram.busBusyCycles) /
                      static_cast<double>(r.core.cycles)
                : 0.0);
    w.endObject();

    if (r.cores > 1) {
        w.key("per_core");
        w.beginArray();
        for (const auto &slice : r.perCore) {
            w.beginObject();
            w.field("workload", slice.workload);
            w.field("instructions", slice.core.instructions);
            w.field("cycles", slice.core.cycles);
            w.field("ipc", slice.ipc());
            w.field("mpki", slice.mpki());
            w.field("l1d_accesses", slice.mem.l1dAccesses);
            w.field("l1d_misses", slice.mem.l1dMisses);
            w.field("llc_demand_accesses", slice.mem.demandL2Accesses);
            w.field("llc_demand_misses", slice.mem.llcDemandMisses);
            w.field("prefetches_requested",
                    slice.mem.prefetchesRequested);
            w.field("prefetches_issued", slice.mem.prefetchesIssued);
            w.field("pollution_victim_misses",
                    slice.mem.pollutionVictimMisses);
            w.field("pollution_caused_misses",
                    slice.mem.pollutionCausedMisses);
            w.field("l2_resident_lines", slice.mem.l2ResidentLines);
            w.endObject();
        }
        w.endArray();

        w.key("interference");
        w.beginObject();
        w.field("cross_core_pollution_misses",
                r.mem.crossCorePollutionMisses);
        w.field("l2_bank_conflicts", r.mem.l2BankConflicts);
        w.endObject();
    }

    // Additive, opt-in sections only — with both options off the
    // v2/v3 object above is byte-identical to previous releases.
    if (options.provenance) {
        w.key("provenance");
        writeProvenance(w);
    }
    if (options.metrics) {
        w.key("metrics");
        simMetrics(r).writeJson(w);
    }
    w.endObject();
}

} // anonymous namespace

std::string
toJson(const SimResult &result, const ReportOptions &options)
{
    JsonWriter w;
    writeResult(w, result, options);
    return w.str();
}

std::string
toJson(const std::vector<SimResult> &results,
       const ReportOptions &options)
{
    JsonWriter w;
    w.beginArray();
    for (const auto &r : results)
        writeResult(w, r, options);
    w.endArray();
    return w.str();
}

} // namespace cbws
