/**
 * @file
 * The simulation-result metrics registry: every counter and derived
 * ratio a finished run exposes, registered once under hierarchical
 * dotted paths. sim/statsdump.cc renders its text format from this
 * registry (byte-identical to the historical hand-written dump), the
 * report writer renders the optional `metrics` JSON section from it,
 * and the Chrome-trace exporter dumps its counters from it — one
 * registration site instead of a serializer per surface.
 *
 * Naming convention (docs/OBSERVABILITY.md): lower camelCase leaves
 * under dot-separated component groups — `sim.*` run totals,
 * `core.*` / `coreN.*` pipeline counters, `l1d.* l1i.* l2.*` cache
 * levels, `pf.*` prefetching (with `pf.<source>.*` per-component
 * lifecycle groups), `dram.*` memory, `sys.*` whole-system facts.
 */

#ifndef CBWS_SIM_SIMMETRICS_HH
#define CBWS_SIM_SIMMETRICS_HH

#include "base/metrics.hh"
#include "sim/simulator.hh"

namespace cbws
{

/**
 * Build the full registry for a finished run. Scalar/Real/Formula
 * entries mirror the statsdump line set exactly (same order, names,
 * descriptions); Vector entries (demand classification counts, the
 * prefetch lateness histogram) are JSON-only extras.
 */
MetricsRegistry simMetrics(const SimResult &result);

} // namespace cbws

#endif // CBWS_SIM_SIMMETRICS_HH
