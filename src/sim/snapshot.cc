#include "sim/snapshot.hh"

#include "base/faultinject.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "base/profiler.hh"
#include "mem/hierarchy.hh"
#include "sim/simulator.hh"

namespace cbws
{

namespace
{

/** Version stamped on every snapshot/final line (docs/FORMATS.md).
 *  v2: added the dram_* gauge fields.
 *  v3: multi-core runs only — adds "cores" plus per-core and
 *  interference fields; single-core runs keep emitting v2 unchanged. */
constexpr std::uint64_t SnapshotSchemaVersion = 2;
constexpr std::uint64_t SnapshotSchemaVersionMulticore = 3;

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den ? static_cast<double>(num) / static_cast<double>(den)
               : 0.0;
}

double
perKilo(std::uint64_t num, std::uint64_t den)
{
    return den ? 1000.0 * static_cast<double>(num) /
                     static_cast<double>(den)
               : 0.0;
}

} // anonymous namespace

SnapshotWriter::SnapshotWriter(const std::string &path,
                               std::uint64_t interval)
    : interval_(interval)
{
    if (path.empty() || path == "-") {
        out_ = stdout;
    } else {
        out_ = std::fopen(path.c_str(), "w");
        owned_ = out_ != nullptr;
        if (!out_) {
            warn("snapshot: cannot open '%s' for writing",
                 path.c_str());
        }
    }
}

SnapshotWriter::~SnapshotWriter()
{
    if (out_ && owned_)
        std::fclose(out_);
}

void
SnapshotWriter::begin(const std::string &prefetcher,
                      const Hierarchy &mem)
{
    prefetcher_ = prefetcher;
    mem_ = &mem;
    seq_ = 0;
    insts_ = 0;
    baseCycle_ = 0;
    lastInsts_ = 0;
    lastCycle_ = 0;
    lastLlcMisses_ = 0;
    lastPfIssued_ = 0;
}

void
SnapshotWriter::onWarmupBoundary(Cycle now)
{
    insts_ = 0;
    baseCycle_ = now;
    lastInsts_ = 0;
    lastCycle_ = now;
    lastLlcMisses_ = 0;
    lastPfIssued_ = 0;
}

void
SnapshotWriter::emitRecord(Cycle now)
{
    if (!out_ || !mem_)
        return;
    PROF_SCOPE(prof::Phase::SnapshotIO);
    const HierarchyStats &m = mem_->stats();
    const Cycle cycles = now - baseCycle_;
    const std::uint64_t w_insts = insts_ - lastInsts_;
    const Cycle w_cycles = now - lastCycle_;
    const std::uint64_t w_llc = m.llcDemandMisses - lastLlcMisses_;
    const std::uint64_t w_pf = m.prefetchesIssued - lastPfIssued_;

    JsonWriter w;
    w.beginObject();
    w.field("schema_version", cores_ > 1
                                  ? SnapshotSchemaVersionMulticore
                                  : SnapshotSchemaVersion);
    w.field("type", "snapshot");
    if (cores_ > 1)
        w.field("cores", static_cast<std::uint64_t>(cores_));
    w.field("workload", workload_);
    w.field("prefetcher", prefetcher_);
    w.field("seq", seq_);
    w.field("insts", insts_);
    w.field("cycle", static_cast<std::uint64_t>(now));
    w.field("ipc", ratio(insts_, cycles));
    w.field("ipc_window", ratio(w_insts, w_cycles));
    w.field("mpki", perKilo(m.llcDemandMisses, insts_));
    w.field("mpki_window", perKilo(w_llc, w_insts));
    w.field("pf_issued", m.prefetchesIssued);
    w.field("pf_issue_rate_window", perKilo(w_pf, w_insts));
    w.field("l1d_miss_rate", ratio(m.l1dMisses, m.l1dAccesses));
    w.field("l2_miss_rate",
            ratio(m.llcDemandMisses, m.demandL2Accesses));
    w.field("dram_row_hit_rate", m.dram.rowHitRate());
    w.field("dram_read_q_depth",
            static_cast<std::uint64_t>(
                mem_->dram().readQueueDepth(now)));
    w.field("dram_write_q_depth",
            static_cast<std::uint64_t>(
                mem_->dram().writeQueueDepth(now)));
    w.field("dram_deferred_prefetches", m.dram.prefetchesDeferred);
    if (cores_ > 1 && !m.perCore.empty()) {
        w.field("cross_core_pollution_misses",
                m.crossCorePollutionMisses);
        w.field("l2_bank_conflicts", m.l2BankConflicts);
        w.key("per_core_llc_misses");
        w.beginArray();
        for (const auto &pc : m.perCore)
            w.value(pc.llcDemandMisses);
        w.endArray();
    }
    if (gauges_.occupancy) {
        w.field("cbws_occupancy", gauges_.occupancy());
        if (gauges_.capacity)
            w.field("cbws_capacity", gauges_.capacity());
        if (gauges_.tableHits && gauges_.tableMisses) {
            const std::uint64_t hits = gauges_.tableHits();
            w.field("cbws_table_hit_rate",
                    ratio(hits, hits + gauges_.tableMisses()));
        }
    }
    w.endObject();

    writeLine(w.str() + "\n");
    ++seq_;

    lastInsts_ = insts_;
    lastCycle_ = now;
    lastLlcMisses_ = m.llcDemandMisses;
    lastPfIssued_ = m.prefetchesIssued;
}

void
SnapshotWriter::writeLine(const std::string &line)
{
    // Snapshots are diagnostics: a failing sink (full disk, injected
    // fault) must never kill the simulation it observes. Warn once,
    // drop the stream, and keep simulating.
    const bool injected = FaultInjector::instance().shouldFire(
        FaultSite::SnapshotWrite);
    if (injected ||
        std::fwrite(line.data(), 1, line.size(), out_) !=
            line.size() ||
        std::fflush(out_) != 0) {
        warn("snapshot: write failed%s; disabling further snapshot "
             "output",
             injected ? " (injected fault)" : "");
        if (owned_)
            std::fclose(out_);
        out_ = nullptr;
        owned_ = false;
        return;
    }
    ++records_;
}

void
SnapshotWriter::finalize(const SimResult &result)
{
    if (!out_)
        return;
    PROF_SCOPE(prof::Phase::SnapshotIO);
    const PrefetchLifecycle total = result.mem.pfLifeTotal();
    JsonWriter w;
    w.beginObject();
    w.field("schema_version", result.cores > 1
                                  ? SnapshotSchemaVersionMulticore
                                  : SnapshotSchemaVersion);
    w.field("type", "final");
    if (result.cores > 1)
        w.field("cores", static_cast<std::uint64_t>(result.cores));
    w.field("workload",
            result.workload.empty() ? workload_ : result.workload);
    w.field("prefetcher", result.prefetcher);
    w.field("insts", result.core.instructions);
    w.field("cycles", result.core.cycles);
    w.field("ipc", result.ipc());
    w.field("mpki", result.mpki());
    w.field("pf_issued", result.mem.prefetchesIssued);
    w.field("pf_accuracy", total.accuracy());
    w.field("pf_late_fraction", total.lateFraction());
    w.field("pf_pollution_rate", total.pollutionRate());
    w.field("l1d_miss_rate",
            ratio(result.mem.l1dMisses, result.mem.l1dAccesses));
    w.field("l2_miss_rate", ratio(result.mem.llcDemandMisses,
                                  result.mem.demandL2Accesses));
    w.field("dram_backend", result.dramBackend);
    w.field("dram_row_hit_rate", result.mem.dram.rowHitRate());
    w.field("dram_deferred_prefetches",
            result.mem.dram.prefetchesDeferred);
    if (result.cores > 1) {
        w.field("cross_core_pollution_misses",
                result.mem.crossCorePollutionMisses);
        w.field("l2_bank_conflicts", result.mem.l2BankConflicts);
        w.key("per_core");
        w.beginArray();
        for (const auto &slice : result.perCore) {
            w.beginObject();
            w.field("workload", slice.workload);
            w.field("ipc", slice.ipc());
            w.field("mpki", slice.mpki());
            w.field("llc_demand_misses", slice.mem.llcDemandMisses);
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();

    writeLine(w.str() + "\n");
}

} // namespace cbws
