/**
 * @file
 * Experiment matrix runner shared by the figure-regenerating benches:
 * every workload is synthesised once and replayed through every
 * prefetcher configuration, exactly how the paper compares schemes.
 *
 * The matrix is embarrassingly parallel — each (workload, prefetcher)
 * cell owns its complete simulated system and only shares the
 * read-only input trace — so runMatrix can fan the cells across a
 * thread pool. Results are bit-identical to a serial run for any job
 * count: every cell writes a preallocated slot, and nothing about a
 * simulation depends on which thread (or in what order) it ran.
 */

#ifndef CBWS_SIM_EXPERIMENT_HH
#define CBWS_SIM_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"
#include "trace/tracecache.hh"
#include "workloads/workload.hh"

namespace cbws
{

/** Results for one workload across every prefetcher configuration. */
struct WorkloadRow
{
    std::string workload;
    bool memoryIntensive = false;
    std::vector<SimResult> byPrefetcher; ///< parallel to schemes
};

/** The full workloads x prefetchers matrix. */
struct ExperimentMatrix
{
    /** Registry scheme names, in column order. */
    std::vector<std::string> schemes;
    std::vector<WorkloadRow> rows;

    /**
     * True when runMatrix stopped early on a graceful interrupt
     * (MatrixOptions::onInterrupt == ReturnPartial): the completed
     * cells are sealed in the checkpoint, the rest of the rows hold
     * default-constructed results and must not be consumed.
     */
    bool interrupted = false;

    /** Column of @p scheme (case-insensitive); panics when absent. */
    std::size_t column(const std::string &scheme) const;

    const SimResult &
    result(std::size_t row, const std::string &scheme) const;

    /** @deprecated Enum shim; prefer the registry-name overload. */
    const SimResult &
    result(std::size_t row, PrefetcherKind kind) const;

    /** Arithmetic mean of @p metric over @p rows (MI subset or all). */
    template <typename Fn>
    double
    average(Fn metric, bool mi_only) const
    {
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto &row : rows) {
            if (mi_only && !row.memoryIntensive)
                continue;
            sum += metric(row);
            ++n;
        }
        return n ? sum / static_cast<double>(n) : 0.0;
    }
};

/** Execution knobs of runMatrix (parallelism, trace reuse). */
struct MatrixOptions
{
    /**
     * Worker threads for trace synthesis and the simulation cells.
     * 0 (the default) resolves via the CBWS_JOBS environment
     * variable, falling back to 1 (serial) when it is unset. Any
     * value yields bit-identical results.
     */
    unsigned jobs = 0;

    /** Optional on-disk trace cache consulted before synthesis. */
    TraceCache *traceCache = nullptr;

    /**
     * When non-empty, append each finished cell to this crash-safe
     * checkpoint file (sim/checkpoint.hh) and, on restart, load the
     * recorded cells instead of re-simulating them. The resumed
     * matrix is bit-identical to an uninterrupted run at any job
     * count. Opening a checkpoint written by a different experiment
     * (or schema version) is a fatal error.
     */
    std::string checkpointPath;

    /**
     * Emit a live progress line on stderr (cells done/total,
     * cells/sec, ETA, cache/checkpoint restores) for each matrix
     * phase. Never touches stdout, so reports stay byte-identical.
     */
    bool progress = false;

    /** What runMatrix does after sealing the checkpoint on a
     *  graceful interrupt (see installMatrixSignalHandlers). */
    enum class OnInterrupt
    {
        /**
         * Exit the process with status 130 once the in-flight cells
         * have finished and the checkpoint is sealed. The right
         * behaviour for CLI surfaces: an interrupted bench must not
         * print a half-empty figure and exit 0.
         */
        ExitProcess,
        /**
         * Return the partial matrix with `interrupted` set; the
         * caller owns the consequences. Used by the serve worker
         * (which reports its own exit status) and by tests.
         */
        ReturnPartial,
    };
    OnInterrupt onInterrupt = OnInterrupt::ExitProcess;
};

/**
 * Install SIGINT/SIGTERM handlers that request a graceful matrix
 * interrupt: the running runMatrix stops launching new cells,
 * finishes (and checkpoints) the in-flight ones, seals the checkpoint
 * file, and then exits per MatrixOptions::onInterrupt. Without a
 * checkpoint the signals still stop the matrix early — there is just
 * nothing to seal. Idempotent; a second signal falls back to the
 * default disposition (immediate kill) so a wedged run can always be
 * terminated.
 */
void installMatrixSignalHandlers();

/** Request a graceful interrupt programmatically (what the signal
 *  handler does); visible to the next cell-boundary check. */
void requestMatrixInterrupt();

/** True once an interrupt has been requested and not cleared. */
bool matrixInterruptRequested();

/** Re-arm for another matrix (tests, the serve worker respawn path). */
void clearMatrixInterrupt();

/**
 * Run the matrix: @p workloads x @p schemes (registry names).
 * @param max_insts per-run committed-instruction budget.
 *
 * Scheme names and base_config.pfOpts are validated against the
 * registry before any simulation starts (fatal on unknown schemes,
 * unknown `--pf-opt` keys, or malformed values).
 *
 * When base_config.mem.numCores > 1 each cell becomes a rate-mode
 * multi-core run (every core replays its own copy of the workload's
 * trace through the shared L2/DRAM via simulateMulti); checkpoints
 * carry the core count — and any pf-opts — in their fingerprint so
 * differently-configured matrices can never cross-resume.
 */
ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<std::string> &schemes,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed = 42,
          const MatrixOptions &options = MatrixOptions());

/** @deprecated Enum shim over the registry-name overload above. */
ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<PrefetcherKind> &kinds,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed = 42,
          const MatrixOptions &options = MatrixOptions());

/**
 * Instruction budget for the benches: the CBWS_BENCH_INSTS
 * environment variable, or @p fallback when unset.
 */
std::uint64_t benchInstructionBudget(std::uint64_t fallback = 120000);

} // namespace cbws

#endif // CBWS_SIM_EXPERIMENT_HH
