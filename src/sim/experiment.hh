/**
 * @file
 * Experiment matrix runner shared by the figure-regenerating benches:
 * every workload is synthesised once and replayed through every
 * prefetcher configuration, exactly how the paper compares schemes.
 */

#ifndef CBWS_SIM_EXPERIMENT_HH
#define CBWS_SIM_EXPERIMENT_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace cbws
{

/** Results for one workload across every prefetcher configuration. */
struct WorkloadRow
{
    std::string workload;
    bool memoryIntensive = false;
    std::vector<SimResult> byPrefetcher; ///< parallel to kinds
};

/** The full workloads x prefetchers matrix. */
struct ExperimentMatrix
{
    std::vector<PrefetcherKind> kinds;
    std::vector<WorkloadRow> rows;

    const SimResult &
    result(std::size_t row, PrefetcherKind kind) const;

    /** Arithmetic mean of @p metric over @p rows (MI subset or all). */
    template <typename Fn>
    double
    average(Fn metric, bool mi_only) const
    {
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto &row : rows) {
            if (mi_only && !row.memoryIntensive)
                continue;
            sum += metric(row);
            ++n;
        }
        return n ? sum / static_cast<double>(n) : 0.0;
    }
};

/**
 * Run the matrix: @p workloads x the seven prefetcher kinds.
 * @param max_insts per-run committed-instruction budget.
 */
ExperimentMatrix
runMatrix(const std::vector<WorkloadPtr> &workloads,
          const std::vector<PrefetcherKind> &kinds,
          const SystemConfig &base_config, std::uint64_t max_insts,
          std::uint64_t seed = 42);

/**
 * Instruction budget for the benches: the CBWS_BENCH_INSTS
 * environment variable, or @p fallback when unset.
 */
std::uint64_t benchInstructionBudget(std::uint64_t fallback = 120000);

} // namespace cbws

#endif // CBWS_SIM_EXPERIMENT_HH
