#include "sim/tournament.hh"

#include <algorithm>
#include <cmath>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/table.hh"
#include "base/version.hh"
#include "prefetch/registry.hh"

namespace cbws
{

namespace
{

/** Lifecycle + miss counters accumulated over a group of runs. */
struct Rollup
{
    std::uint64_t filled = 0;
    std::uint64_t demandHits = 0;
    std::uint64_t demandHitTimely = 0;
    std::uint64_t evictedUnused = 0;
    std::uint64_t llcDemandMisses = 0;
    std::uint64_t workloads = 0;
    double logSpeedup = 0.0;   ///< sum of log(ipc / baseline ipc)
    std::uint64_t speedups = 0; ///< runs contributing to the geomean

    void
    addRun(const SimResult &res, const SimResult &baseline)
    {
        const PrefetchLifecycle life = res.mem.pfLifeTotal();
        filled += life.filled;
        demandHits += life.demandHits();
        demandHitTimely += life.demandHitTimely;
        evictedUnused += life.evictedUnused;
        llcDemandMisses += res.mem.llcDemandMisses;
        ++workloads;
        if (res.ipc() > 0 && baseline.ipc() > 0) {
            logSpeedup += std::log(res.ipc() / baseline.ipc());
            ++speedups;
        }
    }

    double
    speedup() const
    {
        return speedups ? std::exp(logSpeedup /
                                   static_cast<double>(speedups))
                        : 0.0;
    }

    double
    accuracy() const
    {
        return filled ? static_cast<double>(demandHits) /
                            static_cast<double>(filled)
                      : 0.0;
    }

    double
    coverage() const
    {
        const std::uint64_t base = demandHitTimely + llcDemandMisses;
        return base ? static_cast<double>(demandHitTimely) /
                          static_cast<double>(base)
                    : 0.0;
    }

    double
    pollution() const
    {
        return filled ? static_cast<double>(evictedUnused) /
                            static_cast<double>(filled)
                      : 0.0;
    }
};

} // anonymous namespace

TournamentResult
runTournament(const std::vector<WorkloadPtr> &workloads,
              const TournamentOptions &options)
{
    TournamentResult result;
    result.insts = options.insts;
    result.seed = options.seed;
    result.coreCounts = options.coreCounts;
    if (result.coreCounts.empty())
        result.coreCounts.push_back(1);

    // Resolve the entrant list: the whole zoo by default, always
    // with the No-Prefetch baseline so speedups are well-defined.
    std::vector<std::string> schemes = options.schemes.empty()
                                           ? zooSchemeNames()
                                           : options.schemes;
    {
        Result<void> valid = prefetcherRegistry().validateOptions(
            schemes, options.config.pfOpts);
        if (!valid.ok())
            fatal("runTournament: %s", valid.error().str().c_str());
    }
    for (auto &name : schemes)
        name = prefetcherRegistry().canonicalName(name);
    const std::string baseline =
        prefetcherRegistry().canonicalName("No-Prefetch");
    if (std::find(schemes.begin(), schemes.end(), baseline) ==
        schemes.end()) {
        schemes.insert(schemes.begin(), baseline);
    }
    result.schemes = schemes;

    // Suite order: first appearance over the workload list, so the
    // report layout is independent of any hash ordering.
    for (const auto &w : workloads) {
        if (std::find(result.suites.begin(), result.suites.end(),
                      w->suite()) == result.suites.end())
            result.suites.push_back(w->suite());
    }
    std::vector<std::string> row_suite;
    row_suite.reserve(workloads.size());
    for (const auto &w : workloads)
        row_suite.push_back(w->suite());

    // One matrix per core count. Checkpoints get a per-matrix file:
    // the fingerprints differ by core count, and one file can only
    // hold one fingerprint.
    std::vector<ExperimentMatrix> matrices;
    matrices.reserve(result.coreCounts.size());
    for (unsigned cores : result.coreCounts) {
        SystemConfig config = options.config;
        config.mem.numCores = cores;
        MatrixOptions mopts = options.matrix;
        if (!mopts.checkpointPath.empty())
            mopts.checkpointPath += ".c" + std::to_string(cores);
        matrices.push_back(runMatrix(workloads, schemes, config,
                                     options.insts, options.seed,
                                     mopts));
    }

    // Roll up per (scheme, suite, cores) and per scheme overall.
    const std::size_t base_col = matrices.empty()
                                     ? 0
                                     : matrices[0].column(baseline);
    std::vector<Rollup> overall(schemes.size());
    for (std::size_t k = 0; k < schemes.size(); ++k) {
        for (std::size_t m = 0; m < matrices.size(); ++m) {
            for (const auto &suite : result.suites) {
                Rollup group;
                for (std::size_t r = 0;
                     r < matrices[m].rows.size(); ++r) {
                    if (row_suite[r] != suite)
                        continue;
                    const auto &row = matrices[m].rows[r];
                    group.addRun(row.byPrefetcher[k],
                                 row.byPrefetcher[base_col]);
                    overall[k].addRun(row.byPrefetcher[k],
                                      row.byPrefetcher[base_col]);
                }
                if (!group.workloads)
                    continue;
                TournamentCell cell;
                cell.scheme = schemes[k];
                cell.suite = suite;
                cell.cores = result.coreCounts[m];
                cell.workloads = group.workloads;
                cell.speedup = group.speedup();
                cell.accuracy = group.accuracy();
                cell.coverage = group.coverage();
                cell.pollution = group.pollution();
                cell.storageBits = matrices[0]
                                       .rows.empty()
                                       ? 0
                                       : matrices[0]
                                             .rows[0]
                                             .byPrefetcher[k]
                                             .prefetcherStorageBits;
                result.cells.push_back(cell);
            }
        }
    }

    result.leaderboard.reserve(schemes.size());
    for (std::size_t k = 0; k < schemes.size(); ++k) {
        TournamentEntry entry;
        entry.scheme = schemes[k];
        entry.score = overall[k].speedup();
        entry.accuracy = overall[k].accuracy();
        entry.coverage = overall[k].coverage();
        entry.pollution = overall[k].pollution();
        entry.storageBits =
            matrices.empty() || matrices[0].rows.empty()
                ? 0
                : matrices[0]
                      .rows[0]
                      .byPrefetcher[k]
                      .prefetcherStorageBits;
        result.leaderboard.push_back(entry);
    }
    std::sort(result.leaderboard.begin(), result.leaderboard.end(),
              [](const TournamentEntry &a, const TournamentEntry &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.scheme < b.scheme;
              });
    for (std::size_t i = 0; i < result.leaderboard.size(); ++i)
        result.leaderboard[i].rank = static_cast<unsigned>(i + 1);
    return result;
}

std::string
leaderboardTable(const TournamentResult &result)
{
    TextTable t;
    t.header({"rank", "scheme", "score", "accuracy", "coverage",
              "pollution", "storage"});
    for (const auto &e : result.leaderboard) {
        t.row({std::to_string(e.rank), e.scheme,
               TextTable::num(e.score, 3),
               TextTable::num(100.0 * e.accuracy, 1) + "%",
               TextTable::num(100.0 * e.coverage, 1) + "%",
               TextTable::num(100.0 * e.pollution, 1) + "%",
               TextTable::num(static_cast<double>(e.storageBits) /
                                  8.0 / 1024.0,
                              2) +
                   " KB"});
    }
    return t.render();
}

std::string
tournamentJson(const TournamentResult &result, bool provenance)
{
    JsonWriter w;
    w.beginObject();
    w.field("schema_version",
            static_cast<std::uint64_t>(TournamentSchemaVersion));
    w.field("bench", "tournament");
    if (provenance) {
        w.key("provenance");
        writeProvenance(w);
    }
    w.field("instructions_per_run", result.insts);
    w.field("seed", result.seed);
    w.key("core_counts");
    w.beginArray();
    for (unsigned cores : result.coreCounts)
        w.value(static_cast<std::uint64_t>(cores));
    w.endArray();
    w.key("schemes");
    w.beginArray();
    for (const auto &name : result.schemes)
        w.value(name);
    w.endArray();
    w.key("suites");
    w.beginArray();
    for (const auto &suite : result.suites)
        w.value(suite);
    w.endArray();
    w.key("cells");
    w.beginArray();
    for (const auto &cell : result.cells) {
        w.beginObject();
        w.field("scheme", cell.scheme);
        w.field("suite", cell.suite);
        w.field("cores", static_cast<std::uint64_t>(cell.cores));
        w.field("workloads", cell.workloads);
        w.field("speedup", cell.speedup);
        w.field("accuracy", cell.accuracy);
        w.field("coverage", cell.coverage);
        w.field("pollution", cell.pollution);
        w.field("storage_bits", cell.storageBits);
        w.endObject();
    }
    w.endArray();
    w.key("leaderboard");
    w.beginArray();
    for (const auto &e : result.leaderboard) {
        w.beginObject();
        w.field("rank", static_cast<std::uint64_t>(e.rank));
        w.field("scheme", e.scheme);
        w.field("score", e.score);
        w.field("accuracy", e.accuracy);
        w.field("coverage", e.coverage);
        w.field("pollution", e.pollution);
        w.field("storage_bits", e.storageBits);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace cbws
