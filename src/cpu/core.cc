#include "cpu/core.hh"

#include <algorithm>
#include <functional>

#include "base/debug.hh"
#include "base/logging.hh"
#include "base/profiler.hh"
#include "base/tuning.hh"

namespace cbws
{

namespace
{

/** Execution latency of a non-memory instruction class. */
Cycle
execLatency(const CoreParams &p, InstClass cls)
{
    switch (cls) {
      case InstClass::IntMul:
        return p.intMulLatency;
      case InstClass::FpAlu:
        return p.fpLatency;
      default:
        return p.intAluLatency;
    }
}

} // anonymous namespace

OooCore::OooCore(const CoreParams &params, Hierarchy &mem,
                 unsigned core_id)
    : params_(params), mem_(mem), bp_(params.branchPred),
      coreId_(core_id)
{
    const std::string prefix =
        core_id == 0 ? "core" : "core" + std::to_string(core_id);
    commitLabel_ = prefix + ".commit";
    robLabel_ = prefix + ".rob";
}

void
OooCore::noteStore(LineAddr line)
{
    ++storeLineFilter_[storeFilterBucket(line)];
}

void
OooCore::retireStore(LineAddr line)
{
    --storeLineFilter_[storeFilterBucket(line)];
}

void
OooCore::pushEvent(Cycle at)
{
    events_.push_back(at);
    std::push_heap(events_.begin(), events_.end(),
                   std::greater<Cycle>());
}

std::size_t
OooCore::appendUnissued(std::size_t begin, std::size_t len,
                        std::size_t n)
{
    std::uint32_t *out = scanBuf_.data();
    const std::size_t end = begin + len;
    std::size_t w = begin >> 6;
    std::uint64_t word =
        unissued_[w] & (~std::uint64_t(0) << (begin & 63));
    for (;;) {
        const std::size_t base = w << 6;
        std::uint64_t m = word;
        if (end - base < 64)
            m &= (std::uint64_t(1) << (end - base)) - 1;
        while (m) {
            out[n++] = static_cast<std::uint32_t>(
                base + __builtin_ctzll(m));
            m &= m - 1;
        }
        if (base + 64 >= end)
            break;
        word = unissued_[++w];
    }
    return n;
}

void
OooCore::begin(const Trace &trace, std::uint64_t max_insts,
               const CommitHook &on_commit, const AccessHook &on_access,
               std::uint64_t warmup_insts,
               const std::function<void(Cycle)> &on_warmup)
{
    static_assert(DecodedTrace::NoProd == NoProducer,
                  "pre-decoded producer sentinel must match the core's");
    records_ = trace.records().data();
    traceSize_ = trace.size();
    decoded_ =
        Tuning::get().batchDecode ? &trace.ensureDecoded() : nullptr;
    maxInsts_ = max_insts;
    warmupInsts_ = warmup_insts;
    onCommit_ = on_commit;
    onAccess_ = on_access;
    onWarmup_ = on_warmup;
    stats_ = CoreStats();
    warmSnapshot_ = CoreStats();
    warmed_ = warmup_insts == 0;
    done_ = false;
    rob_.assign(params_.robSize, RobEntry());
    readyAt_.assign(params_.robSize, 0);
    earliestIssue_.assign(params_.robSize, 0);
    unissued_.assign((params_.robSize + 63) / 64, 0);
    scanBuf_.assign(params_.robSize, 0);
    robHead_ = 0;
    robCount_ = 0;
    fetchQueue_.assign(params_.fetchQueueSize, FetchEntry());
    fqHead_ = 0;
    fqCount_ = 0;
    for (auto &p : regProducer_)
        p = NoProducer;
    headSeq_ = 0;
    traceIdx_ = 0;
    fetchAllowedAt_ = 0;
    lastFetchLine_ = ~LineAddr(0);
    ldqCount_ = 0;
    stqCount_ = 0;
    std::fill(std::begin(storeLineFilter_), std::end(storeLineFilter_),
              std::uint8_t(0));
    fetchInBlock_ = false;
    lastCommittedInBlock_ = false;
    firstUnissued_ = 0;
    events_.clear();
    lastCycleInBlock_ = false;
    cycleRobFullStalls_ = 0;
    cycleLsqFullStalls_ = 0;
    cycleLimit_ = max_insts * 300 + 100000;
}

unsigned
OooCore::commitStage(Cycle now)
{
    // ---- Commit (in order, up to width) ----
    unsigned committed = 0;
    while (robCount_ > 0 && committed < params_.width &&
           stats_.instructions < maxInsts_) {
        RobEntry &head = rob_[robHead_];
        if (isUnissued(robHead_) || readyAt_[robHead_] > now)
            break;
        const TraceRecord &rec = records_[head.idx];
        if (rec.cls == InstClass::Store) {
            // Stores write the memory system at commit, in program
            // order; they never stall the core.
            head.mem = mem_.store(rec.effAddr, now, coreId_);
            if (onAccess_)
                onAccess_(rec, head.mem, now);
            retireStore(decoded_ ? decoded_->effLine[head.idx]
                                 : rec.line());
            --stqCount_;
            ++stats_.memInstructions;
        } else if (rec.cls == InstClass::Load) {
            --ldqCount_;
            ++stats_.memInstructions;
        } else if (rec.cls == InstClass::Branch) {
            ++stats_.branches;
            if (head.mispredicted)
                ++stats_.branchMispredicts;
        }
        if (onCommit_ && (commitHookMask_ & classBit(rec.cls)))
            onCommit_(rec, head.mem, now);
        DPRINTF(Core, "commit seq=%llu pc=%#llx cls=%d",
                static_cast<unsigned long long>(headSeq_),
                static_cast<unsigned long long>(rec.pc),
                static_cast<int>(rec.cls));
        lastCommittedInBlock_ = head.inBlock;
        if (++robHead_ == params_.robSize)
            robHead_ = 0;
        --robCount_;
        ++headSeq_;
        if (firstUnissued_ > 0)
            --firstUnissued_;
        ++stats_.instructions;
        ++committed;
        if (!warmed_ && stats_.instructions >= warmupInsts_) {
            warmed_ = true;
            warmSnapshot_ = stats_;
            warmSnapshot_.cycles = now;
            if (onWarmup_)
                onWarmup_(now);
        }
    }
    return committed;
}

unsigned
OooCore::issueStage(Cycle now)
{
    // ---- Issue / execute ----
    unsigned fu_used = 0;
    unsigned mem_ports_used = 0;
    const std::size_t rob_size = params_.robSize;
    while (firstUnissued_ < robCount_ &&
           !isUnissued(physIndex(firstUnissued_))) {
        ++firstUnissued_;
    }
    if (firstUnissued_ >= robCount_)
        return 0;
    // Collect the window's unissued slots in age order (up to two
    // linear bitmask segments around the ring's wrap point); the scan
    // then touches only real candidates, and blocked ones cost a
    // single earliestIssue_ compare.
    const std::size_t scan_len = std::min<std::size_t>(
        robCount_ - firstUnissued_, params_.issueWindow);
    const std::size_t phys_start = physIndex(firstUnissued_);
    const std::size_t seg = std::min(scan_len, rob_size - phys_start);
    std::size_t num_cand = appendUnissued(phys_start, seg, 0);
    if (seg < scan_len)
        num_cand = appendUnissued(0, scan_len - seg, num_cand);

    for (std::size_t c = 0; c < num_cand; ++c) {
        const std::uint32_t p = scanBuf_[c];
        if (fu_used >= params_.numFUs)
            break;
        if (earliestIssue_[p] > now)
            continue; // known-blocked until then; one compare
        RobEntry &e = rob_[p];
        {
            // Dependence check; on failure remember the soundest
            // wake-up bound the issued producers imply.
            Cycle bound = 0;
            bool blocked = false;
            for (const std::uint32_t seq : {e.src1Seq, e.src2Seq}) {
                if (seq == NoProducer || seq < headSeq_)
                    continue;
                std::size_t pp = robHead_ +
                    static_cast<std::size_t>(seq - headSeq_);
                if (pp >= rob_size)
                    pp -= rob_size;
                if (isUnissued(pp)) {
                    blocked = true;
                    // The producer's own issue bound propagates: it
                    // cannot complete before issuing (>= 1 cycle
                    // latency), so this entry cannot issue before
                    // bound+1. earliestIssue_ values are sound lower
                    // bounds by induction, and a stale (low) bound
                    // only costs an extra re-check.
                    if (earliestIssue_[pp] + 1 > bound)
                        bound = earliestIssue_[pp] + 1;
                } else if (readyAt_[pp] > now) {
                    blocked = true;
                    if (readyAt_[pp] > bound)
                        bound = readyAt_[pp];
                }
            }
            if (blocked) {
                earliestIssue_[p] = bound;
                continue;
            }
        }

        const TraceRecord &rec = records_[e.idx];
        if (rec.cls == InstClass::Load) {
            if (mem_ports_used >= params_.memPortsPerCycle)
                continue;
            // Store-to-load forwarding: an older, uncommitted store
            // to the same line supplies the data. The backward ROB
            // scan only runs when the line counter says some
            // in-flight store touches this line.
            bool forwarded = false;
            bool wait_for_store = false;
            Cycle fwd_ready = 0;
            const LineAddr line =
                decoded_ ? decoded_->effLine[e.idx] : rec.line();
            if (storeLineFilter_[storeFilterBucket(line)]) {
                std::size_t jp = p;
                const std::size_t i = p >= robHead_
                    ? p - robHead_
                    : p + rob_size - robHead_;
                for (std::size_t j = i; j-- > 0;) {
                    jp = (jp == 0 ? rob_size : jp) - 1;
                    const RobEntry &older = rob_[jp];
                    const TraceRecord &orec = records_[older.idx];
                    if (orec.cls != InstClass::Store ||
                        lineOf(orec.effAddr) != line) {
                        continue;
                    }
                    if (isUnissued(jp)) {
                        wait_for_store = true;
                    } else {
                        forwarded = true;
                        fwd_ready = std::max(now, readyAt_[jp]) + 1;
                    }
                    break;
                }
            }
            if (wait_for_store)
                continue;
            if (forwarded) {
                e.mem.ok = true;
                e.mem.l1Hit = true;
                e.mem.readyAt = fwd_ready;
                readyAt_[p] = fwd_ready;
            } else {
                AccessOutcome out =
                    mem_.load(rec.effAddr, now, coreId_);
                if (!out.ok)
                    continue; // MSHR back-pressure: retry next cycle
                e.mem = out;
                readyAt_[p] = out.readyAt;
                if (onAccess_)
                    onAccess_(rec, out, now);
            }
            ++mem_ports_used;
        } else if (rec.cls == InstClass::Store) {
            // Address/data become ready; the write happens at commit.
            readyAt_[p] = now + 1;
        } else if (rec.cls == InstClass::Branch) {
            readyAt_[p] = now + 1;
            if (e.mispredicted) {
                fetchAllowedAt_ =
                    readyAt_[p] + params_.mispredictPenalty;
                DPRINTF(Core, "mispredict pc=%#llx resolved; "
                        "fetch resumes at %llu",
                        static_cast<unsigned long long>(rec.pc),
                        static_cast<unsigned long long>(
                            fetchAllowedAt_));
                if (trace_ && trace_->wants(now)) {
                    trace_->instant("core", "mispredict",
                                    TraceTrack::Core, now, rec.pc);
                }
            }
        } else {
            readyAt_[p] = now + execLatency(params_, rec.cls);
        }
        clearUnissued(p);
        ++fu_used;
        // Completions due in <= 1 cycle are never queried from the
        // future (issuing counts as progress, so no skip starts this
        // cycle); everything else enters the wake-up heap.
        if (readyAt_[p] > now + 1)
            pushEvent(readyAt_[p]);
    }
    return fu_used;
}

unsigned
OooCore::dispatchStage(Cycle now)
{
    // ---- Dispatch (fetch queue -> ROB) ----
    unsigned dispatched = 0;
    while (fqCount_ > 0 && dispatched < params_.width) {
        if (robCount_ >= params_.robSize) {
            ++stats_.robFullStalls;
            if (trace_ && trace_->wants(now)) {
                trace_->instant("core", "rob-full", TraceTrack::Core,
                                now, robCount_);
            }
            break;
        }
        const FetchEntry &fe = fetchQueue_[fqHead_];
        const TraceRecord &rec = records_[fe.idx];
        if (rec.cls == InstClass::Load) {
            if (ldqCount_ >= params_.ldqSize) {
                ++stats_.lsqFullStalls;
                break;
            }
            ++ldqCount_;
        } else if (rec.cls == InstClass::Store) {
            if (stqCount_ >= params_.stqSize) {
                ++stats_.lsqFullStalls;
                break;
            }
            ++stqCount_;
            noteStore(decoded_ ? decoded_->effLine[fe.idx]
                               : rec.line());
        }
        const std::size_t phys = physIndex(robCount_);
        RobEntry &slot = rob_[phys];
        slot = RobEntry();
        slot.idx = fe.idx;
        slot.mispredicted = fe.mispredicted;
        slot.inBlock = fe.inBlock;
        earliestIssue_[phys] = 0;
        if (decoded_) {
            // Rename result precomputed by the SoA decode (the
            // producer's trace index is its sequence number;
            // DecodedTrace::NoProd and NoProducer are the same
            // sentinel, so the values copy straight through).
            slot.src1Seq = decoded_->src1Prod[fe.idx];
            slot.src2Seq = decoded_->src2Prod[fe.idx];
        } else {
            // Rename: capture in-flight producers, then claim the
            // destination register.
            slot.src1Seq = rec.src1 != InvalidReg
                               ? regProducer_[rec.src1]
                               : NoProducer;
            slot.src2Seq = rec.src2 != InvalidReg
                               ? regProducer_[rec.src2]
                               : NoProducer;
            if (rec.dest != InvalidReg)
                regProducer_[rec.dest] = static_cast<std::uint32_t>(
                    headSeq_ + robCount_);
        }
        if (isBlockMarker(rec.cls) || rec.cls == InstClass::Nop) {
            // Markers are architectural no-ops: complete immediately
            // without consuming a functional unit (the unissued bit
            // is never set, so the scan skips them for free).
            readyAt_[phys] = now;
        } else {
            setUnissued(phys);
        }
        ++robCount_;
        if (++fqHead_ == fetchQueue_.size())
            fqHead_ = 0;
        --fqCount_;
        ++dispatched;
    }
    return dispatched;
}

unsigned
OooCore::fetchStage(Cycle now)
{
    // ---- Fetch ----
    unsigned fetched = 0;
    const std::size_t fq_cap = fetchQueue_.size();
    auto push_fetch = [this, fq_cap](const FetchEntry &e) {
        std::size_t pos = fqHead_ + fqCount_;
        if (pos >= fq_cap)
            pos -= fq_cap;
        fetchQueue_[pos] = e;
        ++fqCount_;
    };
    while (fetched < params_.width && fqCount_ < fq_cap &&
           traceIdx_ < traceSize_ && now >= fetchAllowedAt_) {
        const TraceRecord &rec = records_[traceIdx_];
        const LineAddr fetch_line =
            decoded_ ? decoded_->pcLine[traceIdx_] : lineOf(rec.pc);
        if (fetch_line != lastFetchLine_) {
            AccessOutcome out = mem_.fetch(rec.pc, now, coreId_);
            if (!out.ok)
                break;
            lastFetchLine_ = fetch_line;
            if (!out.l1Hit) {
                // I-cache miss: this group still enters the pipeline,
                // but fetch stalls until the fill.
                fetchAllowedAt_ = out.readyAt;
            }
        }

        FetchEntry e;
        e.idx = static_cast<std::uint32_t>(traceIdx_);
        if (decoded_) {
            e.inBlock = (decoded_->flags[traceIdx_] &
                         DecodedTrace::InBlock) != 0;
        } else {
            if (rec.cls == InstClass::BlockBegin)
                fetchInBlock_ = true;
            e.inBlock =
                fetchInBlock_ || rec.cls == InstClass::BlockEnd;
            if (rec.cls == InstClass::BlockEnd)
                fetchInBlock_ = false;
        }

        ++traceIdx_;
        ++fetched;
        if (rec.cls == InstClass::Branch) {
            auto result = bp_.predictAndTrain(rec.pc, rec.taken,
                                              rec.effAddr);
            e.mispredicted = result.mispredict();
            push_fetch(e);
            if (e.mispredicted) {
                // Fetch resumes once the branch executes (set at
                // issue time).
                fetchAllowedAt_ = Never;
                break;
            }
            if (rec.taken) {
                // Taken branch ends the fetch group and redirects the
                // fetch line.
                lastFetchLine_ = ~LineAddr(0);
                break;
            }
        } else {
            push_fetch(e);
        }
    }
    return fetched;
}

bool
OooCore::step(Cycle now)
{
    const std::uint64_t rob_stalls0 = stats_.robFullStalls;
    const std::uint64_t lsq_stalls0 = stats_.lsqFullStalls;
    const unsigned committed = commitStage(now);
    if (trace_ && committed > 0 && trace_->wants(now)) {
        trace_->counter(commitLabel_.c_str(), now, committed);
        trace_->counter(robLabel_.c_str(), now, robCount_);
    }

    if (stats_.instructions >= maxInsts_) {
        done_ = true;
        return committed > 0;
    }
    if (traceIdx_ >= traceSize_ && robCount_ == 0 && fqCount_ == 0) {
        done_ = true;
        return committed > 0;
    }

    const unsigned fu_used = issueStage(now);
    const unsigned dispatched = dispatchStage(now);
    const unsigned fetched = fetchStage(now);

    // ---- Cycle accounting ----
    bool cycle_in_block;
    if (robCount_ > 0)
        cycle_in_block = rob_[robHead_].inBlock;
    else if (fqCount_ > 0)
        cycle_in_block = fetchQueue_[fqHead_].inBlock;
    else
        cycle_in_block = lastCommittedInBlock_;
    lastCycleInBlock_ = cycle_in_block;
    if (cycle_in_block)
        ++stats_.loopCycles;

    cycleRobFullStalls_ = stats_.robFullStalls - rob_stalls0;
    cycleLsqFullStalls_ = stats_.lsqFullStalls - lsq_stalls0;

    return committed > 0 || fu_used > 0 || dispatched > 0 ||
           fetched > 0;
}

Cycle
OooCore::nextLocalEvent(Cycle now) const
{
    // Lazily drop wake-ups that are already in the past (their
    // instruction completed, possibly committed, cycles ago).
    while (!events_.empty() && events_.front() <= now) {
        std::pop_heap(events_.begin(), events_.end(),
                      std::greater<Cycle>());
        events_.pop_back();
    }
    Cycle next = events_.empty() ? Never : events_.front();
    if (fetchAllowedAt_ != Never && fetchAllowedAt_ > now &&
        fetchAllowedAt_ < next) {
        next = fetchAllowedAt_;
    }
    return next;
}

void
OooCore::addSkippedCycles(Cycle skipped)
{
    if (lastCycleInBlock_)
        stats_.loopCycles += skipped;
    // The skipped cycles are exact repeats of the last stepped cycle
    // (the skip precondition is that nothing moved), so they would
    // have re-hit the same full-ROB / full-LSQ dispatch stalls.
    stats_.robFullStalls += cycleRobFullStalls_ * skipped;
    stats_.lsqFullStalls += cycleLsqFullStalls_ * skipped;
}

CoreStats
OooCore::finish(Cycle end)
{
    stats_.cycles = end;
    if (warmupInsts_ > 0 && warmed_) {
        stats_.cycles -= warmSnapshot_.cycles;
        stats_.instructions -= warmSnapshot_.instructions;
        stats_.memInstructions -= warmSnapshot_.memInstructions;
        stats_.branches -= warmSnapshot_.branches;
        stats_.branchMispredicts -= warmSnapshot_.branchMispredicts;
        stats_.loopCycles -= warmSnapshot_.loopCycles;
        stats_.robFullStalls -= warmSnapshot_.robFullStalls;
        stats_.lsqFullStalls -= warmSnapshot_.lsqFullStalls;
    }
    records_ = nullptr;
    traceSize_ = 0;
    decoded_ = nullptr;
    return stats_;
}

CoreStats
OooCore::run(const Trace &trace, std::uint64_t max_insts,
             const CommitHook &on_commit, const AccessHook &on_access,
             std::uint64_t warmup_insts,
             const std::function<void(Cycle)> &on_warmup)
{
    begin(trace, max_insts, on_commit, on_access, warmup_insts,
          on_warmup);

    // One scope for the whole replay loop: core-side work (fetch,
    // rename, scheduling, commit) lands in Decode; the memory-system
    // phases nest inside and claim their own exclusive time.
    PROF_SCOPE(prof::Phase::Decode);

    const bool skip_ahead = Tuning::get().skipAhead;
    Cycle now = 0;
    while (true) {
        mem_.tick(now);
        const std::uint64_t mshr_stalls0 = mem_.stats().mshrStalls;
        const bool worked = step(now);
        if (done_)
            break;

        // ---- Idle fast-forward ----
        // When nothing moved this cycle, the earliest state change is
        // either an execution completing, a memory fill draining, or
        // the post-mispredict fetch restart. Jump there instead of
        // spinning (pure simulation speed; architecturally invisible
        // because no pipeline stage had work to do in between).
        // (A failed memory retry does not inhibit the skip: the retry
        // can only succeed once an MSHR drains, and nextEventCycle()
        // includes exactly those fills. Each skipped cycle would have
        // repeated this cycle's failed retries verbatim, so their
        // stall counts are replayed below.)
        if (skip_ahead && !worked && !mem_.prefetchWorkPending()) {
            Cycle next_event = mem_.nextEventCycle();
            const Cycle local = nextLocalEvent(now);
            if (local < next_event)
                next_event = local;
            if (next_event != Never && next_event > now + 1) {
                const Cycle skipped = next_event - now - 1;
                addSkippedCycles(skipped);
                mem_.addSkippedMshrStalls(
                    (mem_.stats().mshrStalls - mshr_stalls0) *
                    skipped);
                now += skipped;
            }
        }

        ++now;
        if (now > cycleLimit_) {
            warn("core: cycle limit reached (%llu cycles, %llu insts); "
                 "possible livelock",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(stats_.instructions));
            break;
        }
    }

    return finish(now);
}

} // namespace cbws
