#include "cpu/core.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"
#include "base/profiler.hh"

namespace cbws
{

namespace
{

/** Execution latency of a non-memory instruction class. */
Cycle
execLatency(const CoreParams &p, InstClass cls)
{
    switch (cls) {
      case InstClass::IntMul:
        return p.intMulLatency;
      case InstClass::FpAlu:
        return p.fpLatency;
      default:
        return p.intAluLatency;
    }
}

} // anonymous namespace

OooCore::OooCore(const CoreParams &params, Hierarchy &mem,
                 unsigned core_id)
    : params_(params), mem_(mem), bp_(params.branchPred),
      coreId_(core_id)
{
    const std::string prefix =
        core_id == 0 ? "core" : "core" + std::to_string(core_id);
    commitLabel_ = prefix + ".commit";
    robLabel_ = prefix + ".rob";
}

OooCore::RobEntry &
OooCore::robAt(std::size_t offset)
{
    return rob_[(robHead_ + offset) % params_.robSize];
}

const OooCore::RobEntry &
OooCore::robAt(std::size_t offset) const
{
    return rob_[(robHead_ + offset) % params_.robSize];
}

bool
OooCore::producerReady(std::uint64_t seq, Cycle now) const
{
    if (seq == NoProducer || seq < headSeq_)
        return true; // architectural, or producer already committed
    const RobEntry &p = rob_[(robHead_ + (seq - headSeq_)) %
                             params_.robSize];
    return p.issued && p.readyAt <= now;
}

void
OooCore::noteStore(LineAddr line)
{
    ++pendingStoreLines_[line];
}

void
OooCore::retireStore(LineAddr line)
{
    auto it = pendingStoreLines_.find(line);
    if (it != pendingStoreLines_.end() && --it->second == 0)
        pendingStoreLines_.erase(it);
}

void
OooCore::begin(const Trace &trace, std::uint64_t max_insts,
               const CommitHook &on_commit, const AccessHook &on_access,
               std::uint64_t warmup_insts,
               const std::function<void(Cycle)> &on_warmup)
{
    runTrace_ = &trace;
    maxInsts_ = max_insts;
    warmupInsts_ = warmup_insts;
    onCommit_ = on_commit;
    onAccess_ = on_access;
    onWarmup_ = on_warmup;
    stats_ = CoreStats();
    warmSnapshot_ = CoreStats();
    warmed_ = warmup_insts == 0;
    done_ = false;
    rob_.assign(params_.robSize, RobEntry());
    robHead_ = 0;
    robCount_ = 0;
    fetchQueue_.clear();
    for (auto &p : regProducer_)
        p = NoProducer;
    headSeq_ = 0;
    traceIdx_ = 0;
    fetchAllowedAt_ = 0;
    lastFetchLine_ = ~LineAddr(0);
    ldqCount_ = 0;
    stqCount_ = 0;
    pendingStoreLines_.clear();
    fetchInBlock_ = false;
    lastCommittedInBlock_ = false;
    firstUnissued_ = 0;
    lastCycleInBlock_ = false;
    cycleLimit_ = max_insts * 300 + 100000;
}

unsigned
OooCore::commitStage(Cycle now)
{
    // ---- Commit (in order, up to width) ----
    unsigned committed = 0;
    while (robCount_ > 0 && committed < params_.width &&
           stats_.instructions < maxInsts_) {
        RobEntry &head = robAt(0);
        if (!head.issued || head.readyAt > now)
            break;
        if (head.rec.cls == InstClass::Store) {
            // Stores write the memory system at commit, in program
            // order; they never stall the core.
            head.mem = mem_.store(head.rec.effAddr, now, coreId_);
            if (onAccess_)
                onAccess_(head.rec, head.mem, now);
            retireStore(head.rec.line());
            --stqCount_;
            ++stats_.memInstructions;
        } else if (head.rec.cls == InstClass::Load) {
            --ldqCount_;
            ++stats_.memInstructions;
        } else if (head.rec.cls == InstClass::Branch) {
            ++stats_.branches;
            if (head.mispredicted)
                ++stats_.branchMispredicts;
        }
        if (onCommit_)
            onCommit_(head.rec, head.mem, now);
        DPRINTF(Core, "commit seq=%llu pc=%#llx cls=%d",
                static_cast<unsigned long long>(headSeq_),
                static_cast<unsigned long long>(head.rec.pc),
                static_cast<int>(head.rec.cls));
        lastCommittedInBlock_ = head.inBlock;
        robHead_ = (robHead_ + 1) % params_.robSize;
        --robCount_;
        ++headSeq_;
        if (firstUnissued_ > 0)
            --firstUnissued_;
        ++stats_.instructions;
        ++committed;
        if (!warmed_ && stats_.instructions >= warmupInsts_) {
            warmed_ = true;
            warmSnapshot_ = stats_;
            warmSnapshot_.cycles = now;
            if (onWarmup_)
                onWarmup_(now);
        }
    }
    return committed;
}

unsigned
OooCore::issueStage(Cycle now)
{
    // ---- Issue / execute ----
    unsigned fu_used = 0;
    unsigned mem_ports_used = 0;
    while (firstUnissued_ < robCount_ && robAt(firstUnissued_).issued)
        ++firstUnissued_;
    const std::size_t scan_end = std::min<std::size_t>(
        robCount_, firstUnissued_ + params_.issueWindow);
    for (std::size_t i = firstUnissued_;
         i < scan_end && fu_used < params_.numFUs; ++i) {
        RobEntry &e = robAt(i);
        if (e.issued)
            continue;
        if (!producerReady(e.src1Seq, now) ||
            !producerReady(e.src2Seq, now)) {
            continue;
        }

        if (e.rec.cls == InstClass::Load) {
            if (mem_ports_used >= params_.memPortsPerCycle)
                continue;
            // Store-to-load forwarding: an older, uncommitted store
            // to the same line supplies the data. The backward ROB
            // scan only runs when the line counter says some
            // in-flight store touches this line.
            bool forwarded = false;
            bool wait_for_store = false;
            const LineAddr line = e.rec.line();
            if (pendingStoreLines_.count(line)) {
                for (std::size_t j = i; j-- > 0;) {
                    const RobEntry &older = robAt(j);
                    if (older.rec.cls != InstClass::Store ||
                        older.rec.line() != line) {
                        continue;
                    }
                    if (!older.issued) {
                        wait_for_store = true;
                    } else {
                        forwarded = true;
                        e.readyAt = std::max(now, older.readyAt) + 1;
                    }
                    break;
                }
            }
            if (wait_for_store)
                continue;
            if (forwarded) {
                e.mem.ok = true;
                e.mem.l1Hit = true;
                e.mem.readyAt = e.readyAt;
            } else {
                AccessOutcome out =
                    mem_.load(e.rec.effAddr, now, coreId_);
                if (!out.ok)
                    continue; // MSHR back-pressure: retry next cycle
                e.mem = out;
                e.readyAt = out.readyAt;
                if (onAccess_)
                    onAccess_(e.rec, out, now);
            }
            ++mem_ports_used;
        } else if (e.rec.cls == InstClass::Store) {
            // Address/data become ready; the write happens at commit.
            e.readyAt = now + 1;
        } else if (e.rec.cls == InstClass::Branch) {
            e.readyAt = now + 1;
            if (e.mispredicted) {
                fetchAllowedAt_ =
                    e.readyAt + params_.mispredictPenalty;
                DPRINTF(Core, "mispredict pc=%#llx resolved; "
                        "fetch resumes at %llu",
                        static_cast<unsigned long long>(e.rec.pc),
                        static_cast<unsigned long long>(
                            fetchAllowedAt_));
                if (trace_ && trace_->wants(now)) {
                    trace_->instant("core", "mispredict",
                                    TraceTrack::Core, now, e.rec.pc);
                }
            }
        } else {
            e.readyAt = now + execLatency(params_, e.rec.cls);
        }
        e.issued = true;
        ++fu_used;
    }
    return fu_used;
}

unsigned
OooCore::dispatchStage(Cycle now)
{
    // ---- Dispatch (fetch queue -> ROB) ----
    unsigned dispatched = 0;
    while (!fetchQueue_.empty() && dispatched < params_.width) {
        if (robCount_ >= params_.robSize) {
            ++stats_.robFullStalls;
            if (trace_ && trace_->wants(now)) {
                trace_->instant("core", "rob-full", TraceTrack::Core,
                                now, robCount_);
            }
            break;
        }
        RobEntry &fe = fetchQueue_.front();
        if (fe.rec.cls == InstClass::Load) {
            if (ldqCount_ >= params_.ldqSize) {
                ++stats_.lsqFullStalls;
                break;
            }
            ++ldqCount_;
        } else if (fe.rec.cls == InstClass::Store) {
            if (stqCount_ >= params_.stqSize) {
                ++stats_.lsqFullStalls;
                break;
            }
            ++stqCount_;
            noteStore(fe.rec.line());
        }
        RobEntry &slot = rob_[(robHead_ + robCount_) %
                              params_.robSize];
        slot = fe;
        // Rename: capture in-flight producers, then claim the
        // destination register.
        slot.src1Seq = slot.rec.src1 != InvalidReg
                           ? regProducer_[slot.rec.src1]
                           : NoProducer;
        slot.src2Seq = slot.rec.src2 != InvalidReg
                           ? regProducer_[slot.rec.src2]
                           : NoProducer;
        if (slot.rec.dest != InvalidReg)
            regProducer_[slot.rec.dest] = headSeq_ + robCount_;
        if (isBlockMarker(slot.rec.cls) ||
            slot.rec.cls == InstClass::Nop) {
            // Markers are architectural no-ops: complete immediately
            // without consuming a functional unit.
            slot.issued = true;
            slot.readyAt = now;
        }
        ++robCount_;
        fetchQueue_.pop_front();
        ++dispatched;
    }
    return dispatched;
}

unsigned
OooCore::fetchStage(Cycle now)
{
    // ---- Fetch ----
    unsigned fetched = 0;
    const Trace &trace = *runTrace_;
    while (fetched < params_.width &&
           fetchQueue_.size() < params_.fetchQueueSize &&
           traceIdx_ < trace.size() && now >= fetchAllowedAt_) {
        const TraceRecord &rec = trace[traceIdx_];
        const LineAddr fetch_line = lineOf(rec.pc);
        if (fetch_line != lastFetchLine_) {
            AccessOutcome out = mem_.fetch(rec.pc, now, coreId_);
            if (!out.ok)
                break;
            lastFetchLine_ = fetch_line;
            if (!out.l1Hit) {
                // I-cache miss: this group still enters the pipeline,
                // but fetch stalls until the fill.
                fetchAllowedAt_ = out.readyAt;
            }
        }

        RobEntry e;
        e.rec = rec;
        if (rec.cls == InstClass::BlockBegin)
            fetchInBlock_ = true;
        e.inBlock = fetchInBlock_ || rec.cls == InstClass::BlockEnd;
        if (rec.cls == InstClass::BlockEnd)
            fetchInBlock_ = false;

        ++traceIdx_;
        ++fetched;
        if (rec.cls == InstClass::Branch) {
            auto result = bp_.predictAndTrain(rec.pc, rec.taken,
                                              rec.effAddr);
            e.mispredicted = result.mispredict();
            fetchQueue_.push_back(e);
            if (e.mispredicted) {
                // Fetch resumes once the branch executes (set at
                // issue time).
                fetchAllowedAt_ = Never;
                break;
            }
            if (rec.taken) {
                // Taken branch ends the fetch group and redirects the
                // fetch line.
                lastFetchLine_ = ~LineAddr(0);
                break;
            }
        } else {
            fetchQueue_.push_back(e);
        }
    }
    return fetched;
}

bool
OooCore::step(Cycle now)
{
    const unsigned committed = commitStage(now);
    if (trace_ && committed > 0 && trace_->wants(now)) {
        trace_->counter(commitLabel_.c_str(), now, committed);
        trace_->counter(robLabel_.c_str(), now, robCount_);
    }

    if (stats_.instructions >= maxInsts_) {
        done_ = true;
        return committed > 0;
    }
    if (traceIdx_ >= runTrace_->size() && robCount_ == 0 &&
        fetchQueue_.empty()) {
        done_ = true;
        return committed > 0;
    }

    const unsigned fu_used = issueStage(now);
    const unsigned dispatched = dispatchStage(now);
    const unsigned fetched = fetchStage(now);

    // ---- Cycle accounting ----
    bool cycle_in_block;
    if (robCount_ > 0)
        cycle_in_block = robAt(0).inBlock;
    else if (!fetchQueue_.empty())
        cycle_in_block = fetchQueue_.front().inBlock;
    else
        cycle_in_block = lastCommittedInBlock_;
    lastCycleInBlock_ = cycle_in_block;
    if (cycle_in_block)
        ++stats_.loopCycles;

    return committed > 0 || fu_used > 0 || dispatched > 0 ||
           fetched > 0;
}

Cycle
OooCore::nextLocalEvent(Cycle now) const
{
    Cycle next = Never;
    for (std::size_t i = 0; i < robCount_; ++i) {
        const RobEntry &e = robAt(i);
        if (e.issued && e.readyAt > now && e.readyAt < next)
            next = e.readyAt;
    }
    if (fetchAllowedAt_ != Never && fetchAllowedAt_ > now &&
        fetchAllowedAt_ < next) {
        next = fetchAllowedAt_;
    }
    return next;
}

void
OooCore::addSkippedCycles(Cycle skipped)
{
    if (lastCycleInBlock_)
        stats_.loopCycles += skipped;
}

CoreStats
OooCore::finish(Cycle end)
{
    stats_.cycles = end;
    if (warmupInsts_ > 0 && warmed_) {
        stats_.cycles -= warmSnapshot_.cycles;
        stats_.instructions -= warmSnapshot_.instructions;
        stats_.memInstructions -= warmSnapshot_.memInstructions;
        stats_.branches -= warmSnapshot_.branches;
        stats_.branchMispredicts -= warmSnapshot_.branchMispredicts;
        stats_.loopCycles -= warmSnapshot_.loopCycles;
        stats_.robFullStalls -= warmSnapshot_.robFullStalls;
        stats_.lsqFullStalls -= warmSnapshot_.lsqFullStalls;
    }
    runTrace_ = nullptr;
    return stats_;
}

CoreStats
OooCore::run(const Trace &trace, std::uint64_t max_insts,
             const CommitHook &on_commit, const AccessHook &on_access,
             std::uint64_t warmup_insts,
             const std::function<void(Cycle)> &on_warmup)
{
    begin(trace, max_insts, on_commit, on_access, warmup_insts,
          on_warmup);

    // One scope for the whole replay loop: core-side work (fetch,
    // rename, scheduling, commit) lands in Decode; the memory-system
    // phases nest inside and claim their own exclusive time.
    PROF_SCOPE(prof::Phase::Decode);

    Cycle now = 0;
    while (true) {
        mem_.tick(now);
        const bool worked = step(now);
        if (done_)
            break;

        // ---- Idle fast-forward ----
        // When nothing moved this cycle, the earliest state change is
        // either an execution completing, a memory fill draining, or
        // the post-mispredict fetch restart. Jump there instead of
        // spinning (pure simulation speed; architecturally invisible
        // because no pipeline stage had work to do in between).
        // (A failed memory retry does not inhibit the skip: the retry
        // can only succeed once an MSHR drains, and nextEventCycle()
        // includes exactly those fills.)
        if (!worked && !mem_.prefetchWorkPending()) {
            Cycle next_event = mem_.nextEventCycle();
            const Cycle local = nextLocalEvent(now);
            if (local < next_event)
                next_event = local;
            if (next_event != Never && next_event > now + 1) {
                const Cycle skipped = next_event - now - 1;
                addSkippedCycles(skipped);
                now += skipped;
            }
        }

        ++now;
        if (now > cycleLimit_) {
            warn("core: cycle limit reached (%llu cycles, %llu insts); "
                 "possible livelock",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(stats_.instructions));
            break;
        }
    }

    return finish(now);
}

} // namespace cbws
