#include "cpu/core.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "base/debug.hh"
#include "base/logging.hh"

namespace cbws
{

namespace
{

constexpr Cycle Never = ~Cycle(0);

/** Execution latency of a non-memory instruction class. */
Cycle
execLatency(const CoreParams &p, InstClass cls)
{
    switch (cls) {
      case InstClass::IntMul:
        return p.intMulLatency;
      case InstClass::FpAlu:
        return p.fpLatency;
      default:
        return p.intAluLatency;
    }
}

} // anonymous namespace

OooCore::OooCore(const CoreParams &params, Hierarchy &mem)
    : params_(params), mem_(mem), bp_(params.branchPred)
{
}

CoreStats
OooCore::run(const Trace &trace, std::uint64_t max_insts,
             const CommitHook &on_commit, const AccessHook &on_access,
             std::uint64_t warmup_insts,
             const std::function<void(Cycle)> &on_warmup)
{
    CoreStats stats;
    CoreStats warm_snapshot;
    bool warmed = warmup_insts == 0;

    // ROB as a ring buffer so entry offsets stay stable across pops.
    std::vector<RobEntry> rob(params_.robSize);
    std::size_t rob_head = 0;
    std::size_t rob_count = 0;
    auto rob_at = [&](std::size_t offset) -> RobEntry & {
        return rob[(rob_head + offset) % params_.robSize];
    };

    std::deque<RobEntry> fetch_queue;

    // Register renaming: the sequence number of the latest dispatched
    // producer of each architectural register. A consumer captures its
    // producers at dispatch and waits only on them — register reuse
    // (WAR/WAW) never stalls.
    constexpr std::uint64_t NoProducer = ~std::uint64_t(0);
    std::uint64_t reg_producer[NumArchRegs];
    for (auto &p : reg_producer)
        p = NoProducer;
    std::uint64_t head_seq = 0; // sequence number of rob_at(0)

    auto producer_ready = [&](std::uint64_t seq, Cycle now) {
        if (seq == NoProducer || seq < head_seq)
            return true; // architectural, or producer already committed
        const RobEntry &p = rob[(rob_head + (seq - head_seq)) %
                                params_.robSize];
        return p.issued && p.readyAt <= now;
    };

    std::size_t trace_idx = 0;
    Cycle now = 0;
    Cycle fetch_allowed_at = 0;
    LineAddr last_fetch_line = ~LineAddr(0);
    unsigned ldq_count = 0;
    unsigned stq_count = 0;
    // Count of in-flight (dispatched, uncommitted) stores per line:
    // lets the store-to-load forwarding check skip its O(ROB)
    // backward scan for the common load with no matching store —
    // without changing which loads forward (the scan still decides).
    std::unordered_map<LineAddr, unsigned> pending_store_lines;
    auto note_store = [&](LineAddr line) {
        ++pending_store_lines[line];
    };
    auto retire_store = [&](LineAddr line) {
        auto it = pending_store_lines.find(line);
        if (it != pending_store_lines.end() && --it->second == 0)
            pending_store_lines.erase(it);
    };
    bool fetch_in_block = false;
    bool last_committed_in_block = false;
    // First offset in the ROB that may hold an unissued entry; issue
    // never needs to look before it.
    std::size_t first_unissued = 0;

    const Cycle cycle_limit = max_insts * 300 + 100000;

    while (true) {
        mem_.tick(now);

        // ---- Commit (in order, up to width) ----
        unsigned committed = 0;
        while (rob_count > 0 && committed < params_.width &&
               stats.instructions < max_insts) {
            RobEntry &head = rob_at(0);
            if (!head.issued || head.readyAt > now)
                break;
            if (head.rec.cls == InstClass::Store) {
                // Stores write the memory system at commit, in program
                // order; they never stall the core.
                head.mem = mem_.store(head.rec.effAddr, now);
                if (on_access)
                    on_access(head.rec, head.mem, now);
                retire_store(head.rec.line());
                --stq_count;
                ++stats.memInstructions;
            } else if (head.rec.cls == InstClass::Load) {
                --ldq_count;
                ++stats.memInstructions;
            } else if (head.rec.cls == InstClass::Branch) {
                ++stats.branches;
                if (head.mispredicted)
                    ++stats.branchMispredicts;
            }
            if (on_commit)
                on_commit(head.rec, head.mem, now);
            DPRINTF(Core, "commit seq=%llu pc=%#llx cls=%d",
                    static_cast<unsigned long long>(head_seq),
                    static_cast<unsigned long long>(head.rec.pc),
                    static_cast<int>(head.rec.cls));
            last_committed_in_block = head.inBlock;
            rob_head = (rob_head + 1) % params_.robSize;
            --rob_count;
            ++head_seq;
            if (first_unissued > 0)
                --first_unissued;
            ++stats.instructions;
            ++committed;
            if (!warmed && stats.instructions >= warmup_insts) {
                warmed = true;
                warm_snapshot = stats;
                warm_snapshot.cycles = now;
                if (on_warmup)
                    on_warmup(now);
            }
        }
        if (trace_ && committed > 0 && trace_->wants(now)) {
            trace_->counter("core.commit", now, committed);
            trace_->counter("core.rob", now, rob_count);
        }

        if (stats.instructions >= max_insts)
            break;
        if (trace_idx >= trace.size() && rob_count == 0 &&
            fetch_queue.empty()) {
            break;
        }

        // ---- Issue / execute ----
        unsigned fu_used = 0;
        unsigned mem_ports_used = 0;
        bool mem_retry_pending = false;
        while (first_unissued < rob_count &&
               rob_at(first_unissued).issued) {
            ++first_unissued;
        }
        const std::size_t scan_end = std::min<std::size_t>(
            rob_count, first_unissued + params_.issueWindow);
        for (std::size_t i = first_unissued;
             i < scan_end && fu_used < params_.numFUs; ++i) {
            RobEntry &e = rob_at(i);
            if (e.issued)
                continue;
            if (!producer_ready(e.src1Seq, now) ||
                !producer_ready(e.src2Seq, now)) {
                continue;
            }

            if (e.rec.cls == InstClass::Load) {
                if (mem_ports_used >= params_.memPortsPerCycle)
                    continue;
                // Store-to-load forwarding: an older, uncommitted
                // store to the same line supplies the data. The
                // backward ROB scan only runs when the line counter
                // says some in-flight store touches this line.
                bool forwarded = false;
                bool wait_for_store = false;
                const LineAddr line = e.rec.line();
                if (pending_store_lines.count(line)) {
                    for (std::size_t j = i; j-- > 0;) {
                        const RobEntry &older = rob_at(j);
                        if (older.rec.cls != InstClass::Store ||
                            older.rec.line() != line) {
                            continue;
                        }
                        if (!older.issued) {
                            wait_for_store = true;
                        } else {
                            forwarded = true;
                            e.readyAt =
                                std::max(now, older.readyAt) + 1;
                        }
                        break;
                    }
                }
                if (wait_for_store)
                    continue;
                if (forwarded) {
                    e.mem.ok = true;
                    e.mem.l1Hit = true;
                    e.mem.readyAt = e.readyAt;
                } else {
                    AccessOutcome out = mem_.load(e.rec.effAddr, now);
                    if (!out.ok) {
                        mem_retry_pending = true;
                        continue; // MSHR back-pressure: retry
                    }
                    e.mem = out;
                    e.readyAt = out.readyAt;
                    if (on_access)
                        on_access(e.rec, out, now);
                }
                ++mem_ports_used;
            } else if (e.rec.cls == InstClass::Store) {
                // Address/data become ready; the write happens at
                // commit.
                e.readyAt = now + 1;
            } else if (e.rec.cls == InstClass::Branch) {
                e.readyAt = now + 1;
                if (e.mispredicted) {
                    fetch_allowed_at =
                        e.readyAt + params_.mispredictPenalty;
                    DPRINTF(Core, "mispredict pc=%#llx resolved; "
                            "fetch resumes at %llu",
                            static_cast<unsigned long long>(e.rec.pc),
                            static_cast<unsigned long long>(
                                fetch_allowed_at));
                    if (trace_ && trace_->wants(now)) {
                        trace_->instant("core", "mispredict",
                                        TraceTrack::Core, now,
                                        e.rec.pc);
                    }
                }
            } else {
                e.readyAt = now + execLatency(params_, e.rec.cls);
            }
            e.issued = true;
            ++fu_used;
        }

        // ---- Dispatch (fetch queue -> ROB) ----
        unsigned dispatched = 0;
        while (!fetch_queue.empty() && dispatched < params_.width) {
            if (rob_count >= params_.robSize) {
                ++stats.robFullStalls;
                if (trace_ && trace_->wants(now)) {
                    trace_->instant("core", "rob-full",
                                    TraceTrack::Core, now, rob_count);
                }
                break;
            }
            RobEntry &fe = fetch_queue.front();
            if (fe.rec.cls == InstClass::Load) {
                if (ldq_count >= params_.ldqSize) {
                    ++stats.lsqFullStalls;
                    break;
                }
                ++ldq_count;
            } else if (fe.rec.cls == InstClass::Store) {
                if (stq_count >= params_.stqSize) {
                    ++stats.lsqFullStalls;
                    break;
                }
                ++stq_count;
                note_store(fe.rec.line());
            }
            RobEntry &slot = rob[(rob_head + rob_count) %
                                 params_.robSize];
            slot = fe;
            // Rename: capture in-flight producers, then claim the
            // destination register.
            slot.src1Seq = slot.rec.src1 != InvalidReg
                               ? reg_producer[slot.rec.src1]
                               : NoProducer;
            slot.src2Seq = slot.rec.src2 != InvalidReg
                               ? reg_producer[slot.rec.src2]
                               : NoProducer;
            if (slot.rec.dest != InvalidReg)
                reg_producer[slot.rec.dest] = head_seq + rob_count;
            if (isBlockMarker(slot.rec.cls) ||
                slot.rec.cls == InstClass::Nop) {
                // Markers are architectural no-ops: complete
                // immediately without consuming a functional unit.
                slot.issued = true;
                slot.readyAt = now;
            }
            ++rob_count;
            fetch_queue.pop_front();
            ++dispatched;
        }

        // ---- Fetch ----
        unsigned fetched = 0;
        while (fetched < params_.width &&
               fetch_queue.size() < params_.fetchQueueSize &&
               trace_idx < trace.size() && now >= fetch_allowed_at) {
            const TraceRecord &rec = trace[trace_idx];
            const LineAddr fetch_line = lineOf(rec.pc);
            if (fetch_line != last_fetch_line) {
                AccessOutcome out = mem_.fetch(rec.pc, now);
                if (!out.ok)
                    break;
                last_fetch_line = fetch_line;
                if (!out.l1Hit) {
                    // I-cache miss: this group still enters the
                    // pipeline, but fetch stalls until the fill.
                    fetch_allowed_at = out.readyAt;
                }
            }

            RobEntry e;
            e.rec = rec;
            if (rec.cls == InstClass::BlockBegin)
                fetch_in_block = true;
            e.inBlock = fetch_in_block ||
                        rec.cls == InstClass::BlockEnd;
            if (rec.cls == InstClass::BlockEnd)
                fetch_in_block = false;

            ++trace_idx;
            ++fetched;
            if (rec.cls == InstClass::Branch) {
                auto result = bp_.predictAndTrain(rec.pc, rec.taken,
                                                  rec.effAddr);
                e.mispredicted = result.mispredict();
                fetch_queue.push_back(e);
                if (e.mispredicted) {
                    // Fetch resumes once the branch executes (set at
                    // issue time).
                    fetch_allowed_at = Never;
                    break;
                }
                if (rec.taken) {
                    // Taken branch ends the fetch group and redirects
                    // the fetch line.
                    last_fetch_line = ~LineAddr(0);
                    break;
                }
            } else {
                fetch_queue.push_back(e);
            }
        }

        // ---- Cycle accounting ----
        bool cycle_in_block;
        if (rob_count > 0)
            cycle_in_block = rob_at(0).inBlock;
        else if (!fetch_queue.empty())
            cycle_in_block = fetch_queue.front().inBlock;
        else
            cycle_in_block = last_committed_in_block;
        if (cycle_in_block)
            ++stats.loopCycles;

        // ---- Idle fast-forward ----
        // When nothing moved this cycle, the earliest state change is
        // either an execution completing, a memory fill draining, or
        // the post-mispredict fetch restart. Jump there instead of
        // spinning (pure simulation speed; architecturally invisible
        // because no pipeline stage had work to do in between).
        // (A failed memory retry does not inhibit the skip: the retry
        // can only succeed once an MSHR drains, and nextEventCycle()
        // includes exactly those fills.)
        (void)mem_retry_pending;
        if (committed == 0 && fu_used == 0 && dispatched == 0 &&
            fetched == 0 && !mem_.prefetchWorkPending()) {
            Cycle next_event = mem_.nextEventCycle();
            for (std::size_t i = 0; i < rob_count; ++i) {
                const RobEntry &e = rob_at(i);
                if (e.issued && e.readyAt > now &&
                    e.readyAt < next_event) {
                    next_event = e.readyAt;
                }
            }
            if (fetch_allowed_at != Never && fetch_allowed_at > now &&
                fetch_allowed_at < next_event) {
                next_event = fetch_allowed_at;
            }
            if (next_event != Never && next_event > now + 1) {
                const Cycle skipped = next_event - now - 1;
                if (cycle_in_block)
                    stats.loopCycles += skipped;
                now += skipped;
            }
        }

        ++now;
        if (now > cycle_limit) {
            warn("core: cycle limit reached (%llu cycles, %llu insts); "
                 "possible livelock",
                 static_cast<unsigned long long>(now),
                 static_cast<unsigned long long>(stats.instructions));
            break;
        }
    }

    stats.cycles = now;
    if (warmup_insts > 0 && warmed) {
        stats.cycles -= warm_snapshot.cycles;
        stats.instructions -= warm_snapshot.instructions;
        stats.memInstructions -= warm_snapshot.memInstructions;
        stats.branches -= warm_snapshot.branches;
        stats.branchMispredicts -= warm_snapshot.branchMispredicts;
        stats.loopCycles -= warm_snapshot.loopCycles;
        stats.robFullStalls -= warm_snapshot.robFullStalls;
        stats.lsqFullStalls -= warm_snapshot.lsqFullStalls;
    }
    return stats;
}

} // namespace cbws
