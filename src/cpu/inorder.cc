#include "cpu/inorder.hh"

#include <algorithm>

#include "base/profiler.hh"

namespace cbws
{

InOrderCore::InOrderCore(const CoreParams &params, Hierarchy &mem)
    : params_(params), mem_(mem), bp_(params.branchPred)
{
}

CoreStats
InOrderCore::run(const Trace &trace, std::uint64_t max_insts,
                 const OooCore::CommitHook &on_commit,
                 const OooCore::AccessHook &on_access,
                 std::uint64_t warmup_insts,
                 const std::function<void(Cycle)> &on_warmup)
{
    // Whole replay loop: core-side work lands in Decode, the nested
    // memory-system phases claim their own exclusive time.
    PROF_SCOPE(prof::Phase::Decode);

    CoreStats stats;
    CoreStats warm_snapshot;
    bool warmed = warmup_insts == 0;

    Cycle now = 0;
    Cycle reg_ready[NumArchRegs] = {};
    LineAddr last_fetch_line = ~LineAddr(0);
    bool in_block = false;

    auto src_ready = [&](const TraceRecord &rec) {
        Cycle t = now;
        if (rec.src1 != InvalidReg)
            t = std::max(t, reg_ready[rec.src1]);
        if (rec.src2 != InvalidReg)
            t = std::max(t, reg_ready[rec.src2]);
        return t;
    };

    for (std::size_t i = 0;
         i < trace.size() && stats.instructions < max_insts; ++i) {
        const TraceRecord &rec = trace[i];
        const Cycle record_start = now;
        mem_.tick(now);

        // Fetch through the L1I, one line at a time.
        const LineAddr fetch_line = lineOf(rec.pc);
        if (fetch_line != last_fetch_line) {
            auto out = mem_.fetch(rec.pc, now);
            while (!out.ok) {
                ++now;
                mem_.tick(now);
                out = mem_.fetch(rec.pc, now);
            }
            last_fetch_line = fetch_line;
            if (!out.l1Hit)
                now = std::max(now, out.readyAt);
        }

        AccessOutcome mem_out;
        switch (rec.cls) {
          case InstClass::Load: {
            // Stall until address operands are ready, then access;
            // the value becomes ready later (stall-on-use).
            now = std::max(now, src_ready(rec));
            auto out = mem_.load(rec.effAddr, now);
            while (!out.ok) {
                ++now;
                mem_.tick(now);
                out = mem_.load(rec.effAddr, now);
            }
            mem_out = out;
            if (on_access)
                on_access(rec, out, now);
            if (rec.dest != InvalidReg)
                reg_ready[rec.dest] = out.readyAt;
            ++stats.memInstructions;
            ++now;
            break;
          }
          case InstClass::Store: {
            now = std::max(now, src_ready(rec));
            mem_out = mem_.store(rec.effAddr, now);
            if (on_access)
                on_access(rec, mem_out, now);
            ++stats.memInstructions;
            ++now;
            break;
          }
          case InstClass::Branch: {
            now = std::max(now, src_ready(rec));
            auto result =
                bp_.predictAndTrain(rec.pc, rec.taken, rec.effAddr);
            ++stats.branches;
            if (result.mispredict()) {
                ++stats.branchMispredicts;
                now += params_.mispredictPenalty;
            }
            if (rec.taken)
                last_fetch_line = ~LineAddr(0);
            ++now;
            break;
          }
          case InstClass::BlockBegin:
          case InstClass::BlockEnd:
          case InstClass::Nop:
            // Architectural no-ops.
            break;
          default: {
            now = std::max(now, src_ready(rec));
            Cycle lat = params_.intAluLatency;
            if (rec.cls == InstClass::IntMul)
                lat = params_.intMulLatency;
            else if (rec.cls == InstClass::FpAlu)
                lat = params_.fpLatency;
            if (rec.dest != InvalidReg)
                reg_ready[rec.dest] = now + lat;
            ++now;
            break;
          }
        }

        if (rec.cls == InstClass::BlockBegin)
            in_block = true;
        if (in_block || rec.cls == InstClass::BlockEnd)
            stats.loopCycles += now - record_start;
        if (on_commit)
            on_commit(rec, mem_out, now);
        if (trace_ && trace_->wants(now))
            trace_->counter("core.commit", now, 1);
        if (rec.cls == InstClass::BlockEnd)
            in_block = false;

        ++stats.instructions;
        if (!warmed && stats.instructions >= warmup_insts) {
            warmed = true;
            warm_snapshot = stats;
            warm_snapshot.cycles = now;
            if (on_warmup)
                on_warmup(now);
        }
    }

    stats.cycles = now;
    if (warmup_insts > 0 && warmed) {
        stats.cycles -= warm_snapshot.cycles;
        stats.instructions -= warm_snapshot.instructions;
        stats.memInstructions -= warm_snapshot.memInstructions;
        stats.branches -= warm_snapshot.branches;
        stats.branchMispredicts -= warm_snapshot.branchMispredicts;
        stats.loopCycles -= warm_snapshot.loopCycles;
    }
    return stats;
}

} // namespace cbws
