/**
 * @file
 * Tournament branch predictor (local + global + chooser) with a BTB,
 * configured per Table II: 4K predictor entries, 16-bit BTB tags,
 * 11-bit histories.
 */

#ifndef CBWS_CPU_BRANCH_PRED_HH
#define CBWS_CPU_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace cbws
{

/** Configuration of the tournament predictor. */
struct BranchPredParams
{
    unsigned historyBits = 11;   ///< global/local history length
    unsigned globalEntries = 4096;
    unsigned localHistEntries = 1024;
    unsigned localCtrEntries = 2048;
    unsigned choiceEntries = 4096;
    unsigned btbEntries = 4096;
    unsigned btbTagBits = 16;
};

/**
 * Tournament predictor in the Alpha 21264 style: a per-branch local
 * history predictor and a global-history predictor arbitrated by a
 * chooser, plus a direct-mapped tagged BTB for targets.
 */
class TournamentBP
{
  public:
    explicit TournamentBP(const BranchPredParams &params =
                          BranchPredParams());

    /** Outcome of one prediction against the trace's ground truth. */
    struct Result
    {
        bool predTaken = false;
        bool dirMispredict = false;   ///< direction was wrong
        bool targetMispredict = false;///< taken, but BTB missed/stale
        bool mispredict() const
        {
            return dirMispredict || targetMispredict;
        }
    };

    /**
     * Predict branch at @p pc, then train with the actual
     * (@p taken, @p target) from the trace.
     */
    Result predictAndTrain(Addr pc, bool taken, Addr target);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    static void updateCounter(std::uint8_t &ctr, bool taken);

    BranchPredParams params_;
    std::uint32_t globalHistory_ = 0;
    std::uint32_t historyMask_;
    std::vector<std::uint32_t> localHist_;
    std::vector<std::uint8_t> localCtrs_;
    std::vector<std::uint8_t> globalCtrs_;
    std::vector<std::uint8_t> choiceCtrs_;

    struct BtbEntry
    {
        std::uint16_t tag = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb_;

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace cbws

#endif // CBWS_CPU_BRANCH_PRED_HH
