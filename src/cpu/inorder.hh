/**
 * @file
 * Scalar in-order core model — an alternative substrate to the OoO
 * core (the paper's related work discusses prefetching for in-order
 * processors, e.g., B-Fetch).
 *
 * Stall-on-use semantics: instructions issue strictly in order; a
 * consumer waits for its producers, loads access the hierarchy at
 * issue and can overlap (bounded by the L1 MSHRs) until a dependent
 * instruction needs the value. Branches pay the mispredict penalty at
 * issue. Commit equals issue order, so both prefetcher hooks fire in
 * program order.
 *
 * An in-order core cannot hide memory latency with independent work
 * beyond the stall-on-use window, so prefetching matters *more* here
 * — the extension bench quantifies that.
 */

#ifndef CBWS_CPU_INORDER_HH
#define CBWS_CPU_INORDER_HH

#include "cpu/core.hh"

namespace cbws
{

/**
 * The in-order core. Reuses CoreParams (width is ignored: scalar)
 * and CoreStats.
 */
class InOrderCore
{
  public:
    InOrderCore(const CoreParams &params, Hierarchy &mem);

    /** Same contract as OooCore::run(). */
    CoreStats run(const Trace &trace, std::uint64_t max_insts,
                  const OooCore::CommitHook &on_commit = nullptr,
                  const OooCore::AccessHook &on_access = nullptr,
                  std::uint64_t warmup_insts = 0,
                  const std::function<void(Cycle)> &on_warmup =
                      nullptr);

    const TournamentBP &branchPredictor() const { return bp_; }

    /** Attach a timeline-event sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    CoreParams params_;
    Hierarchy &mem_;
    TournamentBP bp_;
    TraceSink *trace_ = nullptr;
};

} // namespace cbws

#endif // CBWS_CPU_INORDER_HH
