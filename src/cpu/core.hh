/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * The core consumes a TraceRecord stream and models a 4-wide OoO
 * pipeline per Table II: 128-entry ROB, 32/32 LDQ/STQ, 6 functional
 * units, a tournament branch predictor, and fetch through the L1I.
 * Scheduling is dependency-driven: each architectural register carries
 * the cycle its value becomes available (ready-cycle scoreboard, which
 * is equivalent to perfect renaming — WAR/WAW hazards do not stall).
 *
 * Traces contain only correct-path instructions, so branch
 * mispredictions are modelled as fetch stalls: fetch is suspended from
 * the mispredicted branch until it executes, plus a fixed redirect
 * penalty — the standard trace-driven approximation.
 *
 * Memory instructions observe the hierarchy at execute (issue) time;
 * *committed* memory operations are handed to the prefetcher in
 * program order, exactly as the paper requires ("the prefetcher
 * obtains the address sequence from the in-order commit stage").
 *
 * The core exposes two driving modes over the same pipeline:
 * run() owns the cycle loop for a single core (the historic API),
 * while begin()/step()/finish() let an external lockstep driver
 * interleave several cores cycle by cycle over a shared hierarchy
 * (sim/simulator.cc's multi-core mode). run() is implemented on top
 * of the step API, so both modes execute identical pipeline code.
 *
 * Replay-speed machinery (all architecturally invisible; see
 * PERFORMANCE.md):
 *  - ROB entries hold a trace *index* instead of a record copy; a
 *    record's sequence number equals its trace index because every
 *    record dispatches exactly once, in program order.
 *  - When the trace carries a SoA pre-decode (trace/decoded.hh,
 *    gated by CBWS_BATCH_DECODE), dispatch reads precomputed source
 *    producers and block membership instead of re-deriving them.
 *  - Issued completion times feed a min-heap so nextLocalEvent() is
 *    O(log n) instead of an O(ROB) scan per idle query.
 *  - All ring-buffer walks use wrap-around index arithmetic; the
 *    hot loops contain no division.
 */

#ifndef CBWS_CPU_CORE_HH
#define CBWS_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cpu/branch_pred.hh"
#include "mem/hierarchy.hh"
#include "trace/decoded.hh"
#include "trace/trace.hh"

namespace cbws
{

/** Core configuration (Table II defaults). */
struct CoreParams
{
    unsigned width = 4;          ///< fetch/dispatch/issue/commit width
    unsigned robSize = 128;
    unsigned ldqSize = 32;
    unsigned stqSize = 32;
    unsigned numFUs = 6;
    unsigned memPortsPerCycle = 2;
    unsigned fetchQueueSize = 16;
    unsigned issueWindow = 48;   ///< how deep issue scans into the ROB
    Cycle mispredictPenalty = 10;///< redirect cycles after resolution
    Cycle intAluLatency = 1;
    Cycle intMulLatency = 4;
    Cycle fpLatency = 3;
    BranchPredParams branchPred;
};

/** Statistics reported by one core run. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0; ///< committed (markers included)
    std::uint64_t memInstructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t loopCycles = 0;   ///< cycles attributed to annotated
                                    ///< blocks (drives Fig. 1)
    std::uint64_t robFullStalls = 0;
    std::uint64_t lsqFullStalls = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                      : 0.0;
    }

    double loopFraction() const
    {
        return cycles ? static_cast<double>(loopCycles) /
                        static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * The out-of-order core.
 */
class OooCore
{
  public:
    /**
     * Observer invoked for every committed instruction, in program
     * order. Memory records carry the execute-time access outcome
     * (for L1-hit/miss-filtered prefetcher training). The cycle of
     * the commit is passed for observability consumers (periodic
     * snapshots, timeline traces).
     */
    using CommitHook = std::function<void(
        const TraceRecord &, const AccessOutcome &, Cycle)>;

    /**
     * Observer invoked when a memory operation accesses the cache:
     * loads at execute (possibly out of program order), stores at
     * commit. Forwarded loads never reach the cache and are not
     * reported. This is where cache-attached prefetchers train.
     */
    using AccessHook = CommitHook;

    /**
     * @param core_id index of this core in a multi-core system; every
     *        memory access is tagged with it (private L1 selection and
     *        interference attribution in the shared hierarchy). 0 for
     *        the historic single-core system.
     */
    OooCore(const CoreParams &params, Hierarchy &mem,
            unsigned core_id = 0);

    /**
     * Simulate @p trace until @p max_insts instructions commit or the
     * trace is exhausted.
     *
     * @param warmup_insts statistics are discarded for the first this
     *        many committed instructions (cache/predictor state is
     *        kept warm); @p on_warmup fires once at the boundary, with
     *        the boundary cycle, so the caller can reset external
     *        stats (e.g., the hierarchy's).
     */
    CoreStats run(const Trace &trace, std::uint64_t max_insts,
                  const CommitHook &on_commit = nullptr,
                  const AccessHook &on_access = nullptr,
                  std::uint64_t warmup_insts = 0,
                  const std::function<void(Cycle)> &on_warmup =
                      nullptr);

    /** Bit for @p cls in a commit-hook class mask. */
    static constexpr std::uint32_t
    classBit(InstClass cls)
    {
        return 1u << static_cast<unsigned>(cls);
    }

    /**
     * Restrict the commit hook to instruction classes whose classBit()
     * is set in @p mask (default: all classes). Callers whose hook
     * ignores plain ALU/branch retires — i.e. the common
     * prefetcher-training hook — set a Load/Store/marker mask so the
     * bulk of the commit stream skips the std::function dispatch
     * entirely. Purely a speed knob: the hook's *behaviour* for masked
     * classes must already be a no-op.
     */
    void setCommitHookMask(std::uint32_t mask) { commitHookMask_ = mask; }

    /**
     * @name Steppable per-cycle API
     * A lockstep multi-core driver calls begin() once, then step()
     * every cycle until done(), then finish(). The driver owns the
     * global clock and the hierarchy tick; step() performs one
     * cycle's worth of commit/issue/dispatch/fetch for this core
     * only. run() is this sequence plus the single-core idle
     * fast-forward.
     */
    ///@{

    /** Arm the pipeline for a run (resets all per-run state). */
    void begin(const Trace &trace, std::uint64_t max_insts,
               const CommitHook &on_commit = nullptr,
               const AccessHook &on_access = nullptr,
               std::uint64_t warmup_insts = 0,
               const std::function<void(Cycle)> &on_warmup = nullptr);

    /**
     * Advance this core's pipeline through global cycle @p now. The
     * caller must have ticked the shared hierarchy to @p now first.
     * @return true when any stage made progress this cycle (used by
     *         the driver's idle fast-forward).
     */
    bool step(Cycle now);

    /** True once the run's end condition was reached by step(). */
    bool done() const { return done_; }

    /**
     * Earliest core-local future event (an issued instruction
     * completing or the post-mispredict fetch restart); a huge
     * sentinel when none is pending. Combined with the hierarchy's
     * nextEventCycle() to bound idle fast-forwards. May
     * conservatively report an already-dead event (the driver then
     * finds nothing to do there and asks again); it never skips over
     * a live one.
     */
    Cycle nextLocalEvent(Cycle now) const;

    /**
     * Account @p skipped idle cycles jumped over by the driver's
     * fast-forward: extends the annotated-block cycle attribution of
     * the last stepped cycle, and replays the per-cycle stall
     * counters (robFullStalls/lsqFullStalls) the skipped repeats of
     * that frozen cycle would have accumulated — a skip-eligible
     * cycle changes no pipeline state, so every skipped cycle
     * increments exactly what the last stepped cycle incremented.
     */
    void addSkippedCycles(Cycle skipped);

    /** Close the run at cycle @p end and return the (warmup-adjusted)
     *  statistics. */
    CoreStats finish(Cycle end);

    /** Instructions committed so far in the current run. */
    std::uint64_t committedInsts() const { return stats_.instructions; }

    /** Livelock guard for the current run's cycle count. */
    Cycle cycleLimit() const { return cycleLimit_; }

    unsigned coreId() const { return coreId_; }

    ///@}

    const TournamentBP &branchPredictor() const { return bp_; }

    /** Attach a timeline-event sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    /**
     * One in-flight instruction. Identified by its trace index (==
     * sequence number); the record itself is read from the trace's
     * contiguous record array on demand.
     */
    struct RobEntry
    {
        AccessOutcome mem;
        /** Sequence numbers (== trace indices, which fit 32 bits by
         *  construction of FetchEntry::idx) of the in-flight
         *  producers of the two source operands (NoProducer when the
         *  value is already architectural). Precomputed by the SoA
         *  decode or captured at dispatch — this is register
         *  renaming, so WAR/WAW reuse of an architectural register
         *  never stalls. */
        std::uint32_t src1Seq = ~std::uint32_t(0);
        std::uint32_t src2Seq = ~std::uint32_t(0);
        std::uint32_t idx = 0; ///< trace index == sequence number
        bool mispredicted = false;
        bool inBlock = false; ///< fetched inside an annotated block
    };

    /** Fetched-but-not-dispatched instruction (ring fetch queue). */
    struct FetchEntry
    {
        std::uint32_t idx = 0;
        bool mispredicted = false;
        bool inBlock = false;
    };

    static constexpr Cycle Never = ~Cycle(0);
    static constexpr std::uint32_t NoProducer = ~std::uint32_t(0);

    /** Physical ROB slot of the entry at logical @p offset from the
     *  head. Valid for offset <= robSize (single conditional wrap,
     *  no division). */
    std::size_t
    physIndex(std::size_t offset) const
    {
        std::size_t p = robHead_ + offset;
        if (p >= params_.robSize)
            p -= params_.robSize;
        return p;
    }

    const TraceRecord &recOf(const RobEntry &e) const
    {
        return records_[e.idx];
    }

    void noteStore(LineAddr line);
    void retireStore(LineAddr line);
    void pushEvent(Cycle at);

    /**
     * @name Unissued-slot bitmask
     * One bit per physical ROB slot, set from dispatch until issue
     * (markers never set it; unoccupied slots are clear). The issue
     * scan walks set bits instead of touching every RobEntry, and a
     * producer's "already issued?" test is one bit probe.
     */
    ///@{
    void setUnissued(std::size_t p)
    {
        unissued_[p >> 6] |= std::uint64_t(1) << (p & 63);
    }
    void clearUnissued(std::size_t p)
    {
        unissued_[p >> 6] &= ~(std::uint64_t(1) << (p & 63));
    }
    bool isUnissued(std::size_t p) const
    {
        return (unissued_[p >> 6] >> (p & 63)) & 1;
    }
    /** Write the physical indices of set bits in [begin, begin+len)
     *  (no wrap) to scanBuf_ starting at @p n; returns the new
     *  count. */
    std::size_t appendUnissued(std::size_t begin, std::size_t len,
                               std::size_t n);
    ///@}

    unsigned commitStage(Cycle now);
    unsigned issueStage(Cycle now);
    unsigned dispatchStage(Cycle now);
    unsigned fetchStage(Cycle now);

    CoreParams params_;
    Hierarchy &mem_;
    TournamentBP bp_;
    TraceSink *trace_ = nullptr;
    unsigned coreId_ = 0;
    /** Counter-track labels ("core.commit" on core 0, "coreN.commit"
     *  otherwise, so single-core traces are unchanged). */
    std::string commitLabel_;
    std::string robLabel_;

    // ---- Per-run pipeline state (valid between begin/finish) ----
    /** Contiguous record array of the running trace. */
    const TraceRecord *records_ = nullptr;
    std::size_t traceSize_ = 0;
    /** SoA pre-decode of the running trace; nullptr in fallback
     *  (per-record) mode. */
    const DecodedTrace *decoded_ = nullptr;
    std::uint64_t maxInsts_ = 0;
    std::uint64_t warmupInsts_ = 0;
    CommitHook onCommit_;
    AccessHook onAccess_;
    std::uint32_t commitHookMask_ = ~std::uint32_t(0);
    std::function<void(Cycle)> onWarmup_;
    CoreStats stats_;
    CoreStats warmSnapshot_;
    bool warmed_ = true;
    bool done_ = false;
    /** ROB as a ring buffer so entry offsets stay stable across
     *  pops. */
    std::vector<RobEntry> rob_;
    std::size_t robHead_ = 0;
    std::size_t robCount_ = 0;
    /** Per-slot completion cycle (valid once the slot issued) and
     *  issue lower bound, split out of RobEntry so the per-cycle
     *  issue scan touches dense arrays instead of scattered structs.
     *  earliestIssue_ is the max readyAt over the slot's
     *  already-issued producers, captured the last time the scan
     *  found it blocked; an issued producer's readyAt never changes,
     *  so skipping the full dependence check until that cycle cannot
     *  delay an issue. 0 = no bound. */
    std::vector<Cycle> readyAt_;
    std::vector<Cycle> earliestIssue_;
    /** One bit per slot: dispatched but not yet issued. */
    std::vector<std::uint64_t> unissued_;
    /** Scratch list of candidate slots for the current issue scan. */
    std::vector<std::uint32_t> scanBuf_;
    /** Fetch queue as a fixed ring (fetchQueueSize entries). */
    std::vector<FetchEntry> fetchQueue_;
    std::size_t fqHead_ = 0;
    std::size_t fqCount_ = 0;
    /** Register renaming (fallback mode only): the sequence number of
     *  the latest dispatched producer of each architectural
     *  register. The batch path reads the same information from the
     *  pre-decode. */
    std::uint32_t regProducer_[NumArchRegs];
    std::uint64_t headSeq_ = 0; ///< sequence number of the ROB head
    std::size_t traceIdx_ = 0;
    Cycle fetchAllowedAt_ = 0;
    LineAddr lastFetchLine_ = ~LineAddr(0);
    unsigned ldqCount_ = 0;
    unsigned stqCount_ = 0;
    /** Counting filter over the lines of in-flight (dispatched,
     *  uncommitted) stores: lets the store-to-load forwarding check
     *  skip its O(ROB) backward scan for the common load with no
     *  matching store — without changing which loads forward (the
     *  scan still decides; a bucket collision merely runs a walk
     *  that finds nothing). Counts cannot saturate: at most stqSize
     *  (32) stores are in flight. */
    static constexpr std::size_t StoreFilterBuckets = 128;
    std::uint8_t storeLineFilter_[StoreFilterBuckets];
    static std::size_t
    storeFilterBucket(LineAddr line)
    {
        return (line * 0x9E3779B97F4A7C15ull) >> 57;
    }
    bool fetchInBlock_ = false;
    bool lastCommittedInBlock_ = false;
    /** First offset in the ROB that may hold an unissued entry; issue
     *  never needs to look before it. */
    std::size_t firstUnissued_ = 0;
    /**
     * Min-heap of known future wake-up cycles (issued completions,
     * fetch restarts). Completions due in <= 1 cycle are not pushed:
     * they are only ever queried from a strictly later cycle, by
     * which point they are already in the past. Entries are popped
     * lazily, so the heap may hold cycles where nothing happens —
     * nextLocalEvent() is conservative, never late. Mutable: lazy
     * cleanup happens inside the const query.
     */
    mutable std::vector<Cycle> events_;
    /** Whether the last stepped cycle was attributed to an annotated
     *  block (extends to skipped idle cycles). */
    bool lastCycleInBlock_ = false;
    /** Stall-counter increments of the last stepped cycle, replayed
     *  by addSkippedCycles() for each skipped idle repeat. */
    std::uint64_t cycleRobFullStalls_ = 0;
    std::uint64_t cycleLsqFullStalls_ = 0;
    Cycle cycleLimit_ = 0;
};

} // namespace cbws

#endif // CBWS_CPU_CORE_HH
