/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * The core consumes a TraceRecord stream and models a 4-wide OoO
 * pipeline per Table II: 128-entry ROB, 32/32 LDQ/STQ, 6 functional
 * units, a tournament branch predictor, and fetch through the L1I.
 * Scheduling is dependency-driven: each architectural register carries
 * the cycle its value becomes available (ready-cycle scoreboard, which
 * is equivalent to perfect renaming — WAR/WAW hazards do not stall).
 *
 * Traces contain only correct-path instructions, so branch
 * mispredictions are modelled as fetch stalls: fetch is suspended from
 * the mispredicted branch until it executes, plus a fixed redirect
 * penalty — the standard trace-driven approximation.
 *
 * Memory instructions observe the hierarchy at execute (issue) time;
 * *committed* memory operations are handed to the prefetcher in
 * program order, exactly as the paper requires ("the prefetcher
 * obtains the address sequence from the in-order commit stage").
 */

#ifndef CBWS_CPU_CORE_HH
#define CBWS_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/branch_pred.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace cbws
{

/** Core configuration (Table II defaults). */
struct CoreParams
{
    unsigned width = 4;          ///< fetch/dispatch/issue/commit width
    unsigned robSize = 128;
    unsigned ldqSize = 32;
    unsigned stqSize = 32;
    unsigned numFUs = 6;
    unsigned memPortsPerCycle = 2;
    unsigned fetchQueueSize = 16;
    unsigned issueWindow = 48;   ///< how deep issue scans into the ROB
    Cycle mispredictPenalty = 10;///< redirect cycles after resolution
    Cycle intAluLatency = 1;
    Cycle intMulLatency = 4;
    Cycle fpLatency = 3;
    BranchPredParams branchPred;
};

/** Statistics reported by one core run. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0; ///< committed (markers included)
    std::uint64_t memInstructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t loopCycles = 0;   ///< cycles attributed to annotated
                                    ///< blocks (drives Fig. 1)
    std::uint64_t robFullStalls = 0;
    std::uint64_t lsqFullStalls = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                      : 0.0;
    }

    double loopFraction() const
    {
        return cycles ? static_cast<double>(loopCycles) /
                        static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * The out-of-order core.
 */
class OooCore
{
  public:
    /**
     * Observer invoked for every committed instruction, in program
     * order. Memory records carry the execute-time access outcome
     * (for L1-hit/miss-filtered prefetcher training). The cycle of
     * the commit is passed for observability consumers (periodic
     * snapshots, timeline traces).
     */
    using CommitHook = std::function<void(
        const TraceRecord &, const AccessOutcome &, Cycle)>;

    /**
     * Observer invoked when a memory operation accesses the cache:
     * loads at execute (possibly out of program order), stores at
     * commit. Forwarded loads never reach the cache and are not
     * reported. This is where cache-attached prefetchers train.
     */
    using AccessHook = CommitHook;

    OooCore(const CoreParams &params, Hierarchy &mem);

    /**
     * Simulate @p trace until @p max_insts instructions commit or the
     * trace is exhausted.
     *
     * @param warmup_insts statistics are discarded for the first this
     *        many committed instructions (cache/predictor state is
     *        kept warm); @p on_warmup fires once at the boundary, with
     *        the boundary cycle, so the caller can reset external
     *        stats (e.g., the hierarchy's).
     */
    CoreStats run(const Trace &trace, std::uint64_t max_insts,
                  const CommitHook &on_commit = nullptr,
                  const AccessHook &on_access = nullptr,
                  std::uint64_t warmup_insts = 0,
                  const std::function<void(Cycle)> &on_warmup =
                      nullptr);

    const TournamentBP &branchPredictor() const { return bp_; }

    /** Attach a timeline-event sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    struct RobEntry
    {
        TraceRecord rec;
        AccessOutcome mem;
        Cycle readyAt = 0;
        /** Sequence numbers of the in-flight producers of the two
         *  source operands (NoProducer when the value is already
         *  architectural). Captured at dispatch — this is register
         *  renaming, so WAR/WAW reuse of an architectural register
         *  never stalls. */
        std::uint64_t src1Seq = ~std::uint64_t(0);
        std::uint64_t src2Seq = ~std::uint64_t(0);
        bool issued = false;
        bool done = false;
        bool mispredicted = false;
        bool inBlock = false; ///< fetched inside an annotated block
    };

    CoreParams params_;
    Hierarchy &mem_;
    TournamentBP bp_;
    TraceSink *trace_ = nullptr;
};

} // namespace cbws

#endif // CBWS_CPU_CORE_HH
