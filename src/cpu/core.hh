/**
 * @file
 * Trace-driven out-of-order core model.
 *
 * The core consumes a TraceRecord stream and models a 4-wide OoO
 * pipeline per Table II: 128-entry ROB, 32/32 LDQ/STQ, 6 functional
 * units, a tournament branch predictor, and fetch through the L1I.
 * Scheduling is dependency-driven: each architectural register carries
 * the cycle its value becomes available (ready-cycle scoreboard, which
 * is equivalent to perfect renaming — WAR/WAW hazards do not stall).
 *
 * Traces contain only correct-path instructions, so branch
 * mispredictions are modelled as fetch stalls: fetch is suspended from
 * the mispredicted branch until it executes, plus a fixed redirect
 * penalty — the standard trace-driven approximation.
 *
 * Memory instructions observe the hierarchy at execute (issue) time;
 * *committed* memory operations are handed to the prefetcher in
 * program order, exactly as the paper requires ("the prefetcher
 * obtains the address sequence from the in-order commit stage").
 *
 * The core exposes two driving modes over the same pipeline:
 * run() owns the cycle loop for a single core (the historic API),
 * while begin()/step()/finish() let an external lockstep driver
 * interleave several cores cycle by cycle over a shared hierarchy
 * (sim/simulator.cc's multi-core mode). run() is implemented on top
 * of the step API, so both modes execute identical pipeline code.
 */

#ifndef CBWS_CPU_CORE_HH
#define CBWS_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/branch_pred.hh"
#include "mem/hierarchy.hh"
#include "trace/trace.hh"

namespace cbws
{

/** Core configuration (Table II defaults). */
struct CoreParams
{
    unsigned width = 4;          ///< fetch/dispatch/issue/commit width
    unsigned robSize = 128;
    unsigned ldqSize = 32;
    unsigned stqSize = 32;
    unsigned numFUs = 6;
    unsigned memPortsPerCycle = 2;
    unsigned fetchQueueSize = 16;
    unsigned issueWindow = 48;   ///< how deep issue scans into the ROB
    Cycle mispredictPenalty = 10;///< redirect cycles after resolution
    Cycle intAluLatency = 1;
    Cycle intMulLatency = 4;
    Cycle fpLatency = 3;
    BranchPredParams branchPred;
};

/** Statistics reported by one core run. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0; ///< committed (markers included)
    std::uint64_t memInstructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t loopCycles = 0;   ///< cycles attributed to annotated
                                    ///< blocks (drives Fig. 1)
    std::uint64_t robFullStalls = 0;
    std::uint64_t lsqFullStalls = 0;

    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                        static_cast<double>(cycles)
                      : 0.0;
    }

    double loopFraction() const
    {
        return cycles ? static_cast<double>(loopCycles) /
                        static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * The out-of-order core.
 */
class OooCore
{
  public:
    /**
     * Observer invoked for every committed instruction, in program
     * order. Memory records carry the execute-time access outcome
     * (for L1-hit/miss-filtered prefetcher training). The cycle of
     * the commit is passed for observability consumers (periodic
     * snapshots, timeline traces).
     */
    using CommitHook = std::function<void(
        const TraceRecord &, const AccessOutcome &, Cycle)>;

    /**
     * Observer invoked when a memory operation accesses the cache:
     * loads at execute (possibly out of program order), stores at
     * commit. Forwarded loads never reach the cache and are not
     * reported. This is where cache-attached prefetchers train.
     */
    using AccessHook = CommitHook;

    /**
     * @param core_id index of this core in a multi-core system; every
     *        memory access is tagged with it (private L1 selection and
     *        interference attribution in the shared hierarchy). 0 for
     *        the historic single-core system.
     */
    OooCore(const CoreParams &params, Hierarchy &mem,
            unsigned core_id = 0);

    /**
     * Simulate @p trace until @p max_insts instructions commit or the
     * trace is exhausted.
     *
     * @param warmup_insts statistics are discarded for the first this
     *        many committed instructions (cache/predictor state is
     *        kept warm); @p on_warmup fires once at the boundary, with
     *        the boundary cycle, so the caller can reset external
     *        stats (e.g., the hierarchy's).
     */
    CoreStats run(const Trace &trace, std::uint64_t max_insts,
                  const CommitHook &on_commit = nullptr,
                  const AccessHook &on_access = nullptr,
                  std::uint64_t warmup_insts = 0,
                  const std::function<void(Cycle)> &on_warmup =
                      nullptr);

    /**
     * @name Steppable per-cycle API
     * A lockstep multi-core driver calls begin() once, then step()
     * every cycle until done(), then finish(). The driver owns the
     * global clock and the hierarchy tick; step() performs one
     * cycle's worth of commit/issue/dispatch/fetch for this core
     * only. run() is this sequence plus the single-core idle
     * fast-forward.
     */
    ///@{

    /** Arm the pipeline for a run (resets all per-run state). */
    void begin(const Trace &trace, std::uint64_t max_insts,
               const CommitHook &on_commit = nullptr,
               const AccessHook &on_access = nullptr,
               std::uint64_t warmup_insts = 0,
               const std::function<void(Cycle)> &on_warmup = nullptr);

    /**
     * Advance this core's pipeline through global cycle @p now. The
     * caller must have ticked the shared hierarchy to @p now first.
     * @return true when any stage made progress this cycle (used by
     *         the driver's idle fast-forward).
     */
    bool step(Cycle now);

    /** True once the run's end condition was reached by step(). */
    bool done() const { return done_; }

    /**
     * Earliest core-local future event (an issued instruction
     * completing or the post-mispredict fetch restart); a huge
     * sentinel when none is pending. Combined with the hierarchy's
     * nextEventCycle() to bound idle fast-forwards.
     */
    Cycle nextLocalEvent(Cycle now) const;

    /**
     * Account @p skipped idle cycles jumped over by the driver's
     * fast-forward (extends the annotated-block cycle attribution of
     * the last stepped cycle).
     */
    void addSkippedCycles(Cycle skipped);

    /** Close the run at cycle @p end and return the (warmup-adjusted)
     *  statistics. */
    CoreStats finish(Cycle end);

    /** Instructions committed so far in the current run. */
    std::uint64_t committedInsts() const { return stats_.instructions; }

    /** Livelock guard for the current run's cycle count. */
    Cycle cycleLimit() const { return cycleLimit_; }

    unsigned coreId() const { return coreId_; }

    ///@}

    const TournamentBP &branchPredictor() const { return bp_; }

    /** Attach a timeline-event sink (nullptr detaches). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

  private:
    struct RobEntry
    {
        TraceRecord rec;
        AccessOutcome mem;
        Cycle readyAt = 0;
        /** Sequence numbers of the in-flight producers of the two
         *  source operands (NoProducer when the value is already
         *  architectural). Captured at dispatch — this is register
         *  renaming, so WAR/WAW reuse of an architectural register
         *  never stalls. */
        std::uint64_t src1Seq = ~std::uint64_t(0);
        std::uint64_t src2Seq = ~std::uint64_t(0);
        bool issued = false;
        bool done = false;
        bool mispredicted = false;
        bool inBlock = false; ///< fetched inside an annotated block
    };

    static constexpr Cycle Never = ~Cycle(0);
    static constexpr std::uint64_t NoProducer = ~std::uint64_t(0);

    RobEntry &robAt(std::size_t offset);
    const RobEntry &robAt(std::size_t offset) const;
    bool producerReady(std::uint64_t seq, Cycle now) const;
    void noteStore(LineAddr line);
    void retireStore(LineAddr line);

    unsigned commitStage(Cycle now);
    unsigned issueStage(Cycle now);
    unsigned dispatchStage(Cycle now);
    unsigned fetchStage(Cycle now);

    CoreParams params_;
    Hierarchy &mem_;
    TournamentBP bp_;
    TraceSink *trace_ = nullptr;
    unsigned coreId_ = 0;
    /** Counter-track labels ("core.commit" on core 0, "coreN.commit"
     *  otherwise, so single-core traces are unchanged). */
    std::string commitLabel_;
    std::string robLabel_;

    // ---- Per-run pipeline state (valid between begin/finish) ----
    const Trace *runTrace_ = nullptr;
    std::uint64_t maxInsts_ = 0;
    std::uint64_t warmupInsts_ = 0;
    CommitHook onCommit_;
    AccessHook onAccess_;
    std::function<void(Cycle)> onWarmup_;
    CoreStats stats_;
    CoreStats warmSnapshot_;
    bool warmed_ = true;
    bool done_ = false;
    /** ROB as a ring buffer so entry offsets stay stable across
     *  pops. */
    std::vector<RobEntry> rob_;
    std::size_t robHead_ = 0;
    std::size_t robCount_ = 0;
    std::deque<RobEntry> fetchQueue_;
    /** Register renaming: the sequence number of the latest
     *  dispatched producer of each architectural register. */
    std::uint64_t regProducer_[NumArchRegs];
    std::uint64_t headSeq_ = 0; ///< sequence number of robAt(0)
    std::size_t traceIdx_ = 0;
    Cycle fetchAllowedAt_ = 0;
    LineAddr lastFetchLine_ = ~LineAddr(0);
    unsigned ldqCount_ = 0;
    unsigned stqCount_ = 0;
    /** Count of in-flight (dispatched, uncommitted) stores per line:
     *  lets the store-to-load forwarding check skip its O(ROB)
     *  backward scan for the common load with no matching store —
     *  without changing which loads forward (the scan still
     *  decides). */
    std::unordered_map<LineAddr, unsigned> pendingStoreLines_;
    bool fetchInBlock_ = false;
    bool lastCommittedInBlock_ = false;
    /** First offset in the ROB that may hold an unissued entry; issue
     *  never needs to look before it. */
    std::size_t firstUnissued_ = 0;
    /** Whether the last stepped cycle was attributed to an annotated
     *  block (extends to skipped idle cycles). */
    bool lastCycleInBlock_ = false;
    Cycle cycleLimit_ = 0;
};

} // namespace cbws

#endif // CBWS_CPU_CORE_HH
