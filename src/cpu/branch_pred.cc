#include "cpu/branch_pred.hh"

#include "base/logging.hh"

namespace cbws
{

TournamentBP::TournamentBP(const BranchPredParams &params)
    : params_(params)
{
    fatal_if(!isPowerOf2(params_.globalEntries) ||
             !isPowerOf2(params_.localHistEntries) ||
             !isPowerOf2(params_.localCtrEntries) ||
             !isPowerOf2(params_.choiceEntries) ||
             !isPowerOf2(params_.btbEntries),
             "branch predictor table sizes must be powers of two");
    historyMask_ = (1u << params_.historyBits) - 1;
    localHist_.assign(params_.localHistEntries, 0);
    // Counters start weakly taken: loop-closing branches converge fast.
    localCtrs_.assign(params_.localCtrEntries, 2);
    globalCtrs_.assign(params_.globalEntries, 2);
    choiceCtrs_.assign(params_.choiceEntries, 1);
    btb_.assign(params_.btbEntries, BtbEntry{});
}

void
TournamentBP::updateCounter(std::uint8_t &ctr, bool taken)
{
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

TournamentBP::Result
TournamentBP::predictAndTrain(Addr pc, bool taken, Addr target)
{
    ++lookups_;

    const std::uint32_t pc_idx = static_cast<std::uint32_t>(pc >> 2);
    const std::uint32_t local_hist_idx =
        pc_idx & (params_.localHistEntries - 1);
    const std::uint32_t local_hist =
        localHist_[local_hist_idx] & historyMask_;
    const std::uint32_t local_idx =
        local_hist & (params_.localCtrEntries - 1);
    const std::uint32_t global_idx =
        globalHistory_ & (params_.globalEntries - 1);
    const std::uint32_t choice_idx =
        globalHistory_ & (params_.choiceEntries - 1);

    const bool local_pred = localCtrs_[local_idx] >= 2;
    const bool global_pred = globalCtrs_[global_idx] >= 2;
    const bool use_global = choiceCtrs_[choice_idx] >= 2;
    const bool pred_taken = use_global ? global_pred : local_pred;

    Result result;
    result.predTaken = pred_taken;
    result.dirMispredict = pred_taken != taken;

    // BTB: a correctly-predicted-taken branch still redirects wrongly
    // when the BTB has no (or a stale) target.
    const std::uint32_t btb_idx = pc_idx & (params_.btbEntries - 1);
    const std::uint16_t btb_tag = static_cast<std::uint16_t>(
        (pc >> 2) >> floorLog2(params_.btbEntries));
    BtbEntry &be = btb_[btb_idx];
    if (taken) {
        const bool btb_hit =
            be.valid && be.tag == btb_tag && be.target == target;
        if (pred_taken && !btb_hit)
            result.targetMispredict = true;
        be.valid = true;
        be.tag = btb_tag;
        be.target = target;
    }

    // Train: chooser learns which side was right; both components
    // always train on the outcome.
    if (local_pred != global_pred)
        updateCounter(choiceCtrs_[choice_idx], global_pred == taken);
    updateCounter(localCtrs_[local_idx], taken);
    updateCounter(globalCtrs_[global_idx], taken);

    localHist_[local_hist_idx] =
        ((local_hist << 1) | (taken ? 1 : 0)) & historyMask_;
    globalHistory_ =
        ((globalHistory_ << 1) | (taken ? 1 : 0)) & historyMask_;

    if (result.mispredict())
        ++mispredicts_;
    return result;
}

} // namespace cbws
