/**
 * @file
 * Hierarchical named metrics registry.
 *
 * One source of truth for everything a run can report: components
 * register values under dotted paths ("core0.l1d.miss_rate") with a
 * kind and a description, and every output surface — the statsdump
 * text format, the report JSON `metrics` section, snapshot records,
 * Chrome-trace counter dumps — renders from the same registry instead
 * of each maintaining its own serializer.
 *
 * Kinds:
 *  - Scalar:    a uint64 counter.
 *  - Real:      a double gauge/ratio.
 *  - Vector:    an ordered list of uint64 (per-class, per-bucket).
 *  - Histogram: base/stats.hh Histogram contents (bucket counts,
 *               width, explicit overflow).
 *  - Formula:   a double derived from other metrics; carries the
 *               expression text so consumers can re-derive it.
 *
 * Rendering rules the goldens depend on: dumpText() emits only
 * Scalar/Real/Formula metrics, in registration order, in the exact
 * historical statsdump line format — Vector/Histogram metrics are
 * JSON-only, so promoting richer data into the registry never
 * changes the text dump's bytes.
 */

#ifndef CBWS_BASE_METRICS_HH
#define CBWS_BASE_METRICS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/stats.hh"

namespace cbws
{

class JsonWriter;

class MetricsRegistry
{
  public:
    enum class Kind
    {
        Scalar,
        Real,
        Vector,
        Histogram,
        Formula,
    };

    struct Metric
    {
        std::string path; ///< dotted hierarchy, e.g. "core0.l1d.misses"
        std::string desc;
        Kind kind = Kind::Scalar;
        std::uint64_t uintValue = 0;              ///< Scalar
        double realValue = 0.0;                   ///< Real / Formula
        std::vector<std::uint64_t> values;        ///< Vector
        std::vector<std::uint64_t> buckets;       ///< Histogram
        double bucketWidth = 0.0;                 ///< Histogram
        std::uint64_t overflow = 0;               ///< Histogram
        std::string expr;                         ///< Formula text
    };

    void addScalar(const std::string &path, std::uint64_t value,
                   const std::string &desc);
    void addReal(const std::string &path, double value,
                 const std::string &desc);
    void addVector(const std::string &path,
                   std::vector<std::uint64_t> values,
                   const std::string &desc);
    void addHistogram(const std::string &path, const Histogram &hist,
                      const std::string &desc);
    void addFormula(const std::string &path, double value,
                    const std::string &expr, const std::string &desc);

    /** All metrics, in registration order. */
    const std::vector<Metric> &metrics() const { return metrics_; }

    std::size_t size() const { return metrics_.size(); }
    bool empty() const { return metrics_.empty(); }

    /** Lookup by exact path; nullptr when absent. */
    const Metric *find(const std::string &path) const;

    /**
     * All metrics under @p prefix ("core0" matches "core0.l1d.x" and
     * "core0" itself, never "core01.x") — the hierarchy operation the
     * dotted paths exist for.
     */
    std::vector<const Metric *>
    subtree(const std::string &prefix) const;

    /**
     * Statsdump text rendering: Scalar/Real/Formula only, one
     * `name  value  # desc` line each, byte-identical to the format
     * sim/statsdump.cc always used.
     */
    void dumpText(std::ostream &out) const;

    /**
     * JSON rendering: an object keyed by path; every kind included.
     * Scalars render as numbers; richer kinds as small objects.
     */
    void writeJson(JsonWriter &w) const;

  private:
    Metric &push(const std::string &path, Kind kind,
                 const std::string &desc);

    std::vector<Metric> metrics_;
};

} // namespace cbws

#endif // CBWS_BASE_METRICS_HH
