#include "base/debug.hh"

#include <cstdarg>
#include <utility>

namespace cbws
{
namespace debug
{

State state;

namespace
{

struct NamedFlag
{
    const char *name;
    Flag flag;
};

constexpr NamedFlag kFlags[] = {
    {"Cache", Flag::Cache},       {"MSHR", Flag::MSHR},
    {"Prefetch", Flag::Prefetch}, {"CBWS", Flag::CBWS},
    {"SMS", Flag::SMS},           {"Core", Flag::Core},
    {"Sim", Flag::Sim},           {"Snapshot", Flag::Snapshot},
    {"DRAM", Flag::DRAM},
};

} // anonymous namespace

std::vector<std::string>
flagNames()
{
    std::vector<std::string> names;
    for (const auto &f : kFlags)
        names.push_back(f.name);
    return names;
}

bool
setFlags(const std::string &csv, std::string *err)
{
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (const auto &f : kFlags) {
            if (name == f.name) {
                state.mask |= static_cast<std::uint32_t>(f.flag);
                found = true;
                break;
            }
        }
        if (!found) {
            if (err)
                *err = "unknown debug flag '" + name + "'";
            state.anyEnabled = state.mask != 0;
            return false;
        }
    }
    state.anyEnabled = state.mask != 0;
    return true;
}

void
setWindow(Cycle start, Cycle end)
{
    state.start = start;
    state.end = end;
}

void
setOutput(std::FILE *out)
{
    state.out = out;
}

void
reset()
{
    state = State();
}

void
print(const char *flag_name, const char *fmt, ...)
{
    char msg[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, args);
    va_end(args);

    // One formatted line, one stdio call: trace lines stay whole even
    // if a future parallel sweep traces from several threads.
    char line[600];
    const int n =
        std::snprintf(line, sizeof(line), "%10llu: %s: %s\n",
                      static_cast<unsigned long long>(state.now),
                      flag_name, msg);
    std::FILE *out = state.out ? state.out : stderr;
    std::fwrite(line, 1, static_cast<std::size_t>(
                             n < static_cast<int>(sizeof(line))
                                 ? n
                                 : static_cast<int>(sizeof(line)) - 1),
                out);
}

} // namespace debug
} // namespace cbws
