#include "base/threadpool.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "base/faultinject.hh"

namespace cbws
{

namespace
{

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

} // anonymous namespace

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers <= 1)
        return; // inline mode
    workerStats_.resize(workers);
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
    if (prof::enabled()) {
        bool observed = false;
        for (const auto &w : workerStats_)
            observed = observed || w.jobs > 0;
        if (observed)
            prof::addPoolStats(workerStats_, jobMicros_);
    }
}

void
ThreadPool::runTask(std::function<void()> &task)
{
    try {
        if (FaultInjector::instance().shouldFire(FaultSite::PoolJob))
            throw FaultInjectedError("injected thread-pool job "
                                     "failure");
        task();
    } catch (...) {
        std::unique_lock<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
ThreadPool::workerLoop(unsigned index)
{
    using clock = std::chrono::steady_clock;
    prof::WorkerTotals &stats = workerStats_[index];
    while (true) {
        // Sampled once per iteration; profiling can only ever switch
        // from off to on, so at worst one job goes untimed.
        const bool timed = prof::enabled();
        std::function<void()> task;
        {
            const auto t0 = timed ? clock::now() : clock::time_point();
            std::unique_lock<std::mutex> lock(mutex_);
            const auto t1 = timed ? clock::now() : clock::time_point();
            wake_.wait(lock, [this] {
                return shutdown_ || !queue_.empty();
            });
            if (timed) {
                const auto t2 = clock::now();
                stats.lockWaitSeconds += secondsBetween(t0, t1);
                stats.queueWaitSeconds += secondsBetween(t1, t2);
            }
            if (queue_.empty())
                return; // shutdown with nothing left to do
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        const auto b0 = timed ? clock::now() : clock::time_point();
        runTask(task);
        const auto b1 = timed ? clock::now() : clock::time_point();
        {
            const auto l0 = timed ? clock::now() : clock::time_point();
            std::unique_lock<std::mutex> lock(mutex_);
            if (timed) {
                stats.lockWaitSeconds +=
                    secondsBetween(l0, clock::now());
                const double busy = secondsBetween(b0, b1);
                stats.busySeconds += busy;
                ++stats.jobs;
                jobMicros_.sample(busy * 1e6);
            }
            if (--inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (threads_.empty()) {
        // Inline mode: same-thread execution, same error contract.
        runTask(task);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this] { return inFlight_ == 0; });
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

unsigned
ThreadPool::hardwareJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

unsigned
ThreadPool::jobsFromEnv(unsigned fallback)
{
    if (const char *env = std::getenv("CBWS_JOBS")) {
        const unsigned long v = std::strtoul(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return fallback ? fallback : hardwareJobs();
}

void
parallelFor(unsigned jobs, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    ThreadPool pool(jobs < count ? jobs
                                 : static_cast<unsigned>(count));
    std::atomic<std::size_t> next{0};
    const unsigned drainers = pool.workers();
    for (unsigned w = 0; w < drainers; ++w) {
        pool.submit([&next, count, &body] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1)) {
                body(i);
            }
        });
    }
    pool.wait();
}

} // namespace cbws
