#include "base/argparse.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cbws
{

void
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &default_value)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.value = default_value;
    options_.push_back(std::move(opt));
}

void
ArgParser::addFlag(const std::string &name, const std::string &help)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.isFlag = true;
    options_.push_back(std::move(opt));
}

void
ArgParser::addRepeatable(const std::string &name,
                         const std::string &help)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.repeatable = true;
    options_.push_back(std::move(opt));
}

void
ArgParser::addPositional(const std::string &name,
                         const std::string &help)
{
    positionals_.emplace_back(name, help);
}

ArgParser::Option *
ArgParser::find(const std::string &name)
{
    for (auto &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

const ArgParser::Option *
ArgParser::find(const std::string &name) const
{
    for (const auto &opt : options_)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

bool
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            helpRequested_ = true;
            std::fputs(usage().c_str(), stdout);
            return true;
        }
        if (arg.rfind("--", 0) != 0) {
            positionalValues_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            value = arg.substr(eq + 1);
            arg = arg.substr(0, eq);
            has_value = true;
        }
        Option *opt = find(arg);
        if (!opt) {
            std::fprintf(stderr, "%s: unknown option --%s\n",
                         program_.c_str(), arg.c_str());
            return false;
        }
        if (opt->isFlag) {
            if (has_value) {
                std::fprintf(stderr,
                             "%s: flag --%s takes no value\n",
                             program_.c_str(), arg.c_str());
                return false;
            }
            opt->set = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "%s: option --%s needs a value\n",
                             program_.c_str(), arg.c_str());
                return false;
            }
            value = argv[++i];
        }
        if (opt->repeatable)
            opt->values.push_back(value);
        opt->value = std::move(value);
        opt->set = true;
    }
    return true;
}

std::string
ArgParser::get(const std::string &name) const
{
    const Option *opt = find(name);
    return opt ? opt->value : std::string();
}

std::uint64_t
ArgParser::getUint(const std::string &name,
                   std::uint64_t fallback) const
{
    const Option *opt = find(name);
    if (!opt || opt->value.empty())
        return fallback;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(opt->value.c_str(), &end, 10);
    if (end == opt->value.c_str() || *end != '\0')
        return fallback;
    return v;
}

std::vector<std::string>
ArgParser::getAll(const std::string &name) const
{
    const Option *opt = find(name);
    return opt ? opt->values : std::vector<std::string>();
}

bool
ArgParser::getFlag(const std::string &name) const
{
    const Option *opt = find(name);
    return opt && opt->set;
}

bool
ArgParser::provided(const std::string &name) const
{
    const Option *opt = find(name);
    return opt && opt->set;
}

std::string
ArgParser::usage() const
{
    std::ostringstream out;
    out << program_ << " - " << description_ << "\n\nusage: "
        << program_ << " [options]";
    for (const auto &[name, help] : positionals_)
        out << " <" << name << ">";
    out << "\n\noptions:\n";
    for (const auto &opt : options_) {
        out << "  --" << opt.name;
        if (!opt.isFlag)
            out << " <value>";
        out << "\n      " << opt.help;
        if (!opt.isFlag && !opt.value.empty())
            out << " (default: " << opt.value << ")";
        if (opt.repeatable)
            out << " (repeatable)";
        out << "\n";
    }
    for (const auto &[name, help] : positionals_)
        out << "  <" << name << ">\n      " << help << "\n";
    return out.str();
}

} // namespace cbws
