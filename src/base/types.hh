/**
 * @file
 * Fundamental scalar types and address arithmetic helpers shared by every
 * module in the CBWS simulator.
 *
 * Addresses are byte-granular 64-bit virtual addresses; the cache
 * hierarchy operates on 64-byte line addresses (Addr >> LineShift),
 * matching Table II of the paper.
 */

#ifndef CBWS_BASE_TYPES_HH
#define CBWS_BASE_TYPES_HH

#include <cstdint>

namespace cbws
{

/** Byte-granular virtual address. */
using Addr = std::uint64_t;

/** Cache-line-granular address (Addr >> LineShift). */
using LineAddr = std::uint64_t;

/** Simulated clock cycle. */
using Cycle = std::uint64_t;

/** Architectural register index (0..NumArchRegs-1). */
using RegIndex = std::uint8_t;

/** Static identifier of an annotated code block (loop body). */
using BlockId = std::uint16_t;

/** log2 of the cache line size: 64-byte lines throughout (Table II). */
constexpr unsigned LineShift = 6;

/** Cache line size in bytes. */
constexpr unsigned LineBytes = 1u << LineShift;

/** Number of architectural registers modelled by the OoO core. */
constexpr unsigned NumArchRegs = 64;

/** Register index used to mean "no register operand". */
constexpr RegIndex InvalidReg = 0xff;

/** Convert a byte address to its cache line address. */
constexpr LineAddr
lineOf(Addr addr)
{
    return addr >> LineShift;
}

/** Convert a cache line address back to the byte address of its base. */
constexpr Addr
lineBase(LineAddr line)
{
    return line << LineShift;
}

/** Offset of a byte address within its cache line. */
constexpr unsigned
lineOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (LineBytes - 1));
}

/**
 * Identity of the component that generated a prefetch request. Travels
 * with the request through the queue, the MSHRs and the cache tags so
 * the lifecycle probe can attribute accuracy/coverage/pollution to the
 * scheme that issued each line (composite schemes issue from several).
 */
enum class PfSource : std::uint8_t
{
    Unknown = 0,
    Stride,
    Ghb,
    Sms,
    Ampm,
    Cbws,
    Multistride, ///< IP-indexed multi-stride hybrid (Blom et al.)
    Markov,      ///< per-page Markov delta chain (Pangloss)
    Rl,          ///< online-RL action issue (Pythia)
    NumSources,
};

/** Number of distinct PfSource values (array-sizing helper). */
constexpr unsigned NumPfSources =
    static_cast<unsigned>(PfSource::NumSources);

/** Short lowercase name of a prefetch source (stats-dump keys). */
constexpr const char *
toString(PfSource src)
{
    switch (src) {
      case PfSource::Stride:
        return "stride";
      case PfSource::Ghb:
        return "ghb";
      case PfSource::Sms:
        return "sms";
      case PfSource::Ampm:
        return "ampm";
      case PfSource::Cbws:
        return "cbws";
      case PfSource::Multistride:
        return "multistride";
      case PfSource::Markov:
        return "markov";
      case PfSource::Rl:
        return "rl";
      default:
        return "unknown";
    }
}

/** True when @p value is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2; undefined for zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

} // namespace cbws

#endif // CBWS_BASE_TYPES_HH
