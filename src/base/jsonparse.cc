#include "base/jsonparse.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace cbws
{

namespace
{

class Parser
{
  public:
    Parser(const std::string &text, const JsonLimits &limits)
        : text_(text), limits_(limits)
    {
    }

    Result<JsonValue>
    parse()
    {
        if (limits_.maxDocumentBytes &&
            text_.size() > limits_.maxDocumentBytes) {
            return Error(Errc::Corrupt,
                         "document exceeds " +
                             std::to_string(limits_.maxDocumentBytes) +
                             " byte limit");
        }
        JsonValue value;
        Result<void> r = parseValue(value);
        if (!r.ok())
            return r.error();
        skipSpace();
        if (pos_ != text_.size())
            return failError("trailing characters after document");
        return value;
    }

  private:
    Error
    failError(const std::string &what) const
    {
        return Error(Errc::Corrupt,
                     what + " at offset " + std::to_string(pos_));
    }

    Result<void> fail(const std::string &what) const
    {
        return failError(what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Result<void>
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseNested(out, true);
          case '[':
            return parseNested(out, false);
          case '"':
            out.type = JsonValue::Type::String;
            return parseString(out.str);
          case 't':
          case 'f':
            return parseKeyword(out);
          case 'n':
            return parseKeyword(out);
          default:
            return parseNumber(out);
        }
    }

    /**
     * Depth-checked wrapper around the two recursive productions: a
     * document nested past maxDepth is rejected with a clean error at
     * the offending bracket instead of recursing towards a stack
     * overflow (protocol input can open a million brackets in a
     * million bytes).
     */
    Result<void>
    parseNested(JsonValue &out, bool object)
    {
        if (limits_.maxDepth && depth_ >= limits_.maxDepth)
            return fail("nesting exceeds depth limit of " +
                        std::to_string(limits_.maxDepth));
        ++depth_;
        Result<void> r = object ? parseObject(out) : parseArray(out);
        --depth_;
        return r;
    }

    Result<void>
    parseObject(JsonValue &out)
    {
        out.type = JsonValue::Type::Object;
        ++pos_; // '{'
        skipSpace();
        if (consume('}'))
            return Result<void>();
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            Result<void> r = parseString(key);
            if (!r.ok())
                return r;
            skipSpace();
            if (!consume(':'))
                return fail("expected ':' after key");
            JsonValue member;
            r = parseValue(member);
            if (!r.ok())
                return r;
            out.object.emplace_back(std::move(key),
                                    std::move(member));
            skipSpace();
            if (consume('}'))
                return Result<void>();
            if (!consume(','))
                return fail("expected ',' or '}' in object");
        }
    }

    Result<void>
    parseArray(JsonValue &out)
    {
        out.type = JsonValue::Type::Array;
        ++pos_; // '['
        skipSpace();
        if (consume(']'))
            return Result<void>();
        while (true) {
            JsonValue element;
            Result<void> r = parseValue(element);
            if (!r.ok())
                return r;
            out.array.push_back(std::move(element));
            skipSpace();
            if (consume(']'))
                return Result<void>();
            if (!consume(','))
                return fail("expected ',' or ']' in array");
        }
    }

    Result<void>
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return Result<void>();
            // Checked only once c is known to be content, so a string
            // of exactly maxStringBytes still closes cleanly.
            if (limits_.maxStringBytes &&
                out.size() >= limits_.maxStringBytes)
                return fail("string exceeds length limit of " +
                            std::to_string(limits_.maxStringBytes));
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (unsigned i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // The writer only escapes control characters; emit
                // the low byte (sufficient for the formats we read).
                out.push_back(static_cast<char>(code & 0xff));
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    Result<void>
    parseKeyword(JsonValue &out)
    {
        auto match = [&](const char *word) {
            const std::size_t len = std::strlen(word);
            if (text_.compare(pos_, len, word) != 0)
                return false;
            pos_ += len;
            return true;
        };
        if (match("true")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = true;
            return Result<void>();
        }
        if (match("false")) {
            out.type = JsonValue::Type::Bool;
            out.boolean = false;
            return Result<void>();
        }
        if (match("null")) {
            out.type = JsonValue::Type::Null;
            return Result<void>();
        }
        return fail("unknown keyword");
    }

    Result<void>
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            integral = false;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a value");
        if (limits_.maxNumberChars &&
            pos_ - start > limits_.maxNumberChars)
            return fail("number token exceeds length limit of " +
                        std::to_string(limits_.maxNumberChars));
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        if (integral) {
            out.type = JsonValue::Type::Uint;
            out.uintValue = std::strtoull(token.c_str(), &end, 10);
            out.number = static_cast<double>(out.uintValue);
        } else {
            out.type = JsonValue::Type::Number;
            out.number = std::strtod(token.c_str(), &end);
        }
        if (!end || *end)
            return fail("malformed number '" + token + "'");
        return Result<void>();
    }

    const std::string &text_;
    const JsonLimits &limits_;
    std::size_t pos_ = 0;
    std::size_t depth_ = 0;
};

} // anonymous namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    for (const auto &member : object)
        if (member.first == key)
            return &member.second;
    return nullptr;
}

std::uint64_t
JsonValue::uintOr(const std::string &key, std::uint64_t fallback) const
{
    const JsonValue *v = find(key);
    return v && v->type == Type::Uint ? v->uintValue : fallback;
}

std::string
JsonValue::strOr(const std::string &key,
                 const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->type == Type::String ? v->str : fallback;
}

Result<JsonValue>
parseJson(const std::string &text)
{
    return parseJson(text, JsonLimits());
}

Result<JsonValue>
parseJson(const std::string &text, const JsonLimits &limits)
{
    return Parser(text, limits).parse();
}

} // namespace cbws
