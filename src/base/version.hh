/**
 * @file
 * Build provenance: which exact build produced an artifact?
 *
 * CMake stamps the git SHA (plus a -dirty marker), compiler id and
 * flags, and build type into a generated version.cc at configure
 * time. Every emitted artifact (reports, snapshots, checkpoints,
 * BENCH_*.json) can then carry a `provenance` object so performance
 * trajectories and golden files stay attributable to a commit.
 *
 * Gating: BENCH_*.json artifacts are never golden-diffed, so they
 * are always stamped. Report/snapshot/statsdump outputs *are*
 * golden-diffed byte-for-byte in CI, so their provenance sections sit
 * behind an explicit opt-in flag (see sim-layer options).
 */

#ifndef CBWS_BASE_VERSION_HH
#define CBWS_BASE_VERSION_HH

#include <string>

namespace cbws
{

class JsonWriter;

/** Configure-time facts about this binary. */
struct BuildInfo
{
    const char *gitSha;    ///< short SHA, "-dirty" suffix if unclean
    const char *compiler;  ///< e.g. "GNU 13.2.0"
    const char *buildType; ///< e.g. "RelWithDebInfo"
    const char *cxxFlags;  ///< base + build-type compile flags
};

/** The stamped facts for the running binary. */
const BuildInfo &buildInfo();

/** "sha (compiler, buildType)" one-liner for banners/logs. */
std::string buildSummary();

/**
 * Emit the provenance object (git_sha, compiler, build_type,
 * cxx_flags) as the value at the writer's current position. The
 * caller supplies the surrounding key and any schema_version field —
 * schema versions belong to the artifact, not the build.
 */
void writeProvenance(JsonWriter &w);

} // namespace cbws

#endif // CBWS_BASE_VERSION_HH
