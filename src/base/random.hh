/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis
 * and the random replacement policies.
 *
 * A simulator must be reproducible run-to-run, so we use a small,
 * self-contained xoshiro256** generator with an explicit seed rather
 * than any global or platform-dependent source of randomness.
 */

#ifndef CBWS_BASE_RANDOM_HH
#define CBWS_BASE_RANDOM_HH

#include <cstdint>

namespace cbws
{

/**
 * xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
 */
class Random
{
  public:
    /** Seed via splitmix64 expansion so any 64-bit seed is usable. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free Lemire reduction is overkill here; modulo bias
        // is negligible for the bounds used by workloads (< 2^40).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return real() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace cbws

#endif // CBWS_BASE_RANDOM_HH
