/**
 * @file
 * Deterministic fault-injection harness.
 *
 * Robustness code is only as good as its failure paths, and failure
 * paths are exactly the code that never runs. This harness plants
 * named fault *sites* at the simulator's I/O and concurrency seams —
 * trace-cache reads/writes, thread-pool jobs, snapshot and checkpoint
 * writes — and fires manufactured failures at them on a deterministic
 * schedule, so every degradation path (fall back to re-synthesis,
 * drop to serial, warn-and-continue) can be exercised in tests and CI
 * with a fixed seed.
 *
 * Determinism: each site keeps an atomic hit counter, and whether hit
 * number n fires is a pure function of (seed, site, n). Under a
 * parallel run the *set* of firing hits is therefore reproducible
 * even though which thread observes them is not.
 *
 * Configuration:
 *  - programmatic (tests): arm()/armAt()/reset() on instance();
 *  - environment (CLI surfaces): CBWS_FAULT holds a comma-separated
 *    list of "site:rate" (probability per hit, e.g.
 *    "trace-cache-corrupt:0.5") and/or "site@n" (fire exactly on hit
 *    n, 1-based) scenarios; CBWS_FAULT_SEED seeds the schedule
 *    (default 1). Unset CBWS_FAULT disables everything at a single
 *    branch per site.
 */

#ifndef CBWS_BASE_FAULTINJECT_HH
#define CBWS_BASE_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "base/result.hh"

namespace cbws
{

/** Seams where a manufactured failure can be planted. */
enum class FaultSite : unsigned
{
    TraceCacheLoad,    ///< I/O error reading a trace-cache file
    TraceCacheStore,   ///< failure writing a trace-cache file
    TraceCacheCorrupt, ///< corrupt a trace-cache file after publish
    PoolJob,           ///< a thread-pool job throws
    SnapshotWrite,     ///< failure appending a stats snapshot record
    CheckpointAppend,  ///< failure appending a checkpoint record
    ServeWorkerKill,   ///< serve worker SIGKILLs itself after a cell
    NumSites,
};

constexpr unsigned NumFaultSites =
    static_cast<unsigned>(FaultSite::NumSites);

/** Stable kebab-case site name (CBWS_FAULT syntax, log lines). */
const char *toString(FaultSite site);

/** Thrown by fault-injected thread-pool jobs. */
class FaultInjectedError : public std::runtime_error
{
  public:
    explicit FaultInjectedError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

class FaultInjector
{
  public:
    /** The process-wide injector every fault site consults. */
    static FaultInjector &instance();

    /** Disarm every site and zero the counters. */
    void reset();

    /**
     * Arm @p site to fire each hit independently with probability
     * @p rate, on a schedule derived from @p seed (deterministic per
     * hit index). rate <= 0 disarms, rate >= 1 fires on every hit.
     */
    void arm(FaultSite site, double rate, std::uint64_t seed = 1);

    /** Arm @p site to fire exactly on the listed hit numbers
     *  (1-based); all other hits pass. */
    void armAt(FaultSite site, std::vector<std::uint64_t> hits);

    /**
     * Parse CBWS_FAULT / CBWS_FAULT_SEED. Returns an error (leaving
     * the injector reset) on malformed syntax or unknown site names;
     * an unset/empty CBWS_FAULT is success with everything disarmed.
     */
    Result<void> configureFromEnv();

    /**
     * Count a hit at @p site and report whether the scheduled fault
     * fires on it. Thread-safe; false in a single load when the site
     * is disarmed.
     */
    bool shouldFire(FaultSite site);

    /** True when any site is armed (cheap global gate). */
    bool anyArmed() const { return anyArmed_.load(); }

    std::uint64_t hits(FaultSite site) const;
    std::uint64_t fired(FaultSite site) const;

  private:
    FaultInjector() = default;

    struct SiteState
    {
        std::atomic<bool> armed{false};
        double rate = 0.0;
        std::uint64_t seed = 1;
        std::set<std::uint64_t> exactHits; ///< 1-based; empty = rate
        std::atomic<std::uint64_t> hits{0};
        std::atomic<std::uint64_t> fired{0};
    };

    SiteState sites_[NumFaultSites];
    std::atomic<bool> anyArmed_{false};
};

namespace faultinject
{

/** How corruptFile() damages its target. */
enum class CorruptMode
{
    Truncate, ///< cut the file roughly in half
    FlipBytes ///< xor a handful of bytes in place
};

/**
 * Deterministically damage the file at @p path (used by the
 * trace-cache corruption site and by tests). NotFound/IoError when
 * the file cannot be opened or rewritten.
 */
Result<void> corruptFile(const std::string &path, CorruptMode mode,
                         std::uint64_t seed);

} // namespace faultinject

} // namespace cbws

#endif // CBWS_BASE_FAULTINJECT_HH
