/**
 * @file
 * Lightweight statistics containers used across the simulator: running
 * scalar summaries and bucketed histograms, plus a frequency counter
 * used to reproduce the differential-vector skew analysis (Fig. 5).
 */

#ifndef CBWS_BASE_STATS_HH
#define CBWS_BASE_STATS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace cbws
{

/**
 * Running mean / variance / min / max / count summary of a stream of
 * samples.
 *
 * The sum uses Kahan compensated summation and the mean/variance use
 * Welford's online update, so billions of small samples added to a
 * large running total do not silently lose precision the way a naive
 * `sum_ += value` accumulator does on long runs.
 */
class RunningStat
{
  public:
    void
    sample(double value)
    {
        ++count_;
        // Kahan: recover the low-order bits the naive add drops.
        const double y = value - comp_;
        const double t = sum_ + y;
        comp_ = (t - sum_) - y;
        sum_ = t;
        // Welford: numerically stable running mean / M2.
        const double delta = value - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (value - mean_);
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Population variance (Welford's M2 / n). */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

    void
    reset()
    {
        *this = RunningStat();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double comp_ = 0.0; ///< Kahan compensation term
    double mean_ = 0.0;
    double m2_ = 0.0;   ///< Welford sum of squared deviations
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width bucketed histogram over [0, buckets*bucketWidth).
 * Overflow samples still accumulate in the last bucket (so total()
 * and cdfAt() see every sample), but the overflow weight is tracked
 * explicitly rather than vanishing into that bucket silently.
 */
class Histogram
{
  public:
    Histogram(std::size_t buckets, double bucket_width)
        : counts_(buckets, 0), bucketWidth_(bucket_width)
    {
    }

    void
    sample(double value, std::uint64_t weight = 1)
    {
        std::size_t idx = value <= 0.0
            ? 0
            : static_cast<std::size_t>(value / bucketWidth_);
        if (idx >= counts_.size()) {
            idx = counts_.size() - 1;
            overflow_ += weight;
        }
        counts_[idx] += weight;
        total_ += weight;
    }

    std::uint64_t bucket(std::size_t idx) const { return counts_.at(idx); }
    std::size_t numBuckets() const { return counts_.size(); }
    double bucketWidth() const { return bucketWidth_; }
    std::uint64_t total() const { return total_; }

    /** Weight of samples beyond the last bucket's upper edge. */
    std::uint64_t overflow() const { return overflow_; }

    /** Fold another histogram of identical shape into this one. */
    void
    merge(const Histogram &other)
    {
        const std::size_t n =
            std::min(counts_.size(), other.counts_.size());
        for (std::size_t i = 0; i < n; ++i)
            counts_[i] += other.counts_[i];
        total_ += other.total_;
        overflow_ += other.overflow_;
    }

    /** Fraction of all samples at or below bucket @p idx. */
    double
    cdfAt(std::size_t idx) const
    {
        if (total_ == 0)
            return 0.0;
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i <= idx && i < counts_.size(); ++i)
            acc += counts_[i];
        return static_cast<double>(acc) / static_cast<double>(total_);
    }

  private:
    std::vector<std::uint64_t> counts_;
    double bucketWidth_;
    std::uint64_t total_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Frequency counter over an arbitrary integral key space.
 *
 * Reproduces the Fig. 5 analysis: given per-key occurrence counts, the
 * coverage CDF reports which fraction of all samples is explained by
 * the most frequent X% of distinct keys.
 */
class FrequencyCounter
{
  public:
    void
    sample(std::uint64_t key, std::uint64_t weight = 1)
    {
        counts_[key] += weight;
        total_ += weight;
    }

    std::size_t distinct() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }

    /**
     * Coverage curve: element i is the fraction of all samples covered
     * by the (i+1) most frequent keys, sorted descending by frequency.
     */
    std::vector<double>
    coverageCurve() const
    {
        std::vector<std::uint64_t> freqs;
        freqs.reserve(counts_.size());
        for (const auto &kv : counts_)
            freqs.push_back(kv.second);
        std::sort(freqs.begin(), freqs.end(),
                  std::greater<std::uint64_t>());
        std::vector<double> curve;
        curve.reserve(freqs.size());
        std::uint64_t acc = 0;
        for (std::uint64_t f : freqs) {
            acc += f;
            curve.push_back(total_ == 0
                            ? 0.0
                            : static_cast<double>(acc) /
                              static_cast<double>(total_));
        }
        return curve;
    }

    /**
     * Fraction of distinct keys needed to cover at least @p fraction of
     * all samples (the "5% of vectors explain 90% of iterations" stat).
     */
    double
    vectorsFractionForCoverage(double fraction) const
    {
        const auto curve = coverageCurve();
        if (curve.empty())
            return 0.0;
        for (std::size_t i = 0; i < curve.size(); ++i) {
            if (curve[i] >= fraction) {
                return static_cast<double>(i + 1) /
                       static_cast<double>(curve.size());
            }
        }
        return 1.0;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace cbws

#endif // CBWS_BASE_STATS_HH
