/**
 * @file
 * Lightweight statistics containers used across the simulator: running
 * scalar summaries and bucketed histograms, plus a frequency counter
 * used to reproduce the differential-vector skew analysis (Fig. 5).
 */

#ifndef CBWS_BASE_STATS_HH
#define CBWS_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

namespace cbws
{

/**
 * Running mean / min / max / count summary of a stream of samples.
 */
class RunningStat
{
  public:
    void
    sample(double value)
    {
        ++count_;
        sum_ += value;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void
    reset()
    {
        *this = RunningStat();
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width bucketed histogram over [0, buckets*bucketWidth), with
 * overflow samples accumulated in the last bucket.
 */
class Histogram
{
  public:
    Histogram(std::size_t buckets, double bucket_width)
        : counts_(buckets, 0), bucketWidth_(bucket_width)
    {
    }

    void
    sample(double value, std::uint64_t weight = 1)
    {
        std::size_t idx = value <= 0.0
            ? 0
            : static_cast<std::size_t>(value / bucketWidth_);
        if (idx >= counts_.size())
            idx = counts_.size() - 1;
        counts_[idx] += weight;
        total_ += weight;
    }

    std::uint64_t bucket(std::size_t idx) const { return counts_.at(idx); }
    std::size_t numBuckets() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }

    /** Fraction of all samples at or below bucket @p idx. */
    double
    cdfAt(std::size_t idx) const
    {
        if (total_ == 0)
            return 0.0;
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i <= idx && i < counts_.size(); ++i)
            acc += counts_[i];
        return static_cast<double>(acc) / static_cast<double>(total_);
    }

  private:
    std::vector<std::uint64_t> counts_;
    double bucketWidth_;
    std::uint64_t total_ = 0;
};

/**
 * Frequency counter over an arbitrary integral key space.
 *
 * Reproduces the Fig. 5 analysis: given per-key occurrence counts, the
 * coverage CDF reports which fraction of all samples is explained by
 * the most frequent X% of distinct keys.
 */
class FrequencyCounter
{
  public:
    void
    sample(std::uint64_t key, std::uint64_t weight = 1)
    {
        counts_[key] += weight;
        total_ += weight;
    }

    std::size_t distinct() const { return counts_.size(); }
    std::uint64_t total() const { return total_; }

    /**
     * Coverage curve: element i is the fraction of all samples covered
     * by the (i+1) most frequent keys, sorted descending by frequency.
     */
    std::vector<double>
    coverageCurve() const
    {
        std::vector<std::uint64_t> freqs;
        freqs.reserve(counts_.size());
        for (const auto &kv : counts_)
            freqs.push_back(kv.second);
        std::sort(freqs.begin(), freqs.end(),
                  std::greater<std::uint64_t>());
        std::vector<double> curve;
        curve.reserve(freqs.size());
        std::uint64_t acc = 0;
        for (std::uint64_t f : freqs) {
            acc += f;
            curve.push_back(total_ == 0
                            ? 0.0
                            : static_cast<double>(acc) /
                              static_cast<double>(total_));
        }
        return curve;
    }

    /**
     * Fraction of distinct keys needed to cover at least @p fraction of
     * all samples (the "5% of vectors explain 90% of iterations" stat).
     */
    double
    vectorsFractionForCoverage(double fraction) const
    {
        const auto curve = coverageCurve();
        if (curve.empty())
            return 0.0;
        for (std::size_t i = 0; i < curve.size(); ++i) {
            if (curve[i] >= fraction) {
                return static_cast<double>(i + 1) /
                       static_cast<double>(curve.size());
            }
        }
        return 1.0;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace cbws

#endif // CBWS_BASE_STATS_HH
