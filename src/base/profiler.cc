#include "base/profiler.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "base/json.hh"
#include "base/table.hh"
#include "base/version.hh"

namespace cbws
{
namespace prof
{

const char *
toString(Phase phase)
{
    switch (phase) {
      case Phase::Other:
        return "other";
      case Phase::TraceSynthesis:
        return "trace_synthesis";
      case Phase::Decode:
        return "decode";
      case Phase::CacheLookup:
        return "cache_lookup";
      case Phase::PfObserve:
        return "pf_observe";
      case Phase::PfIssue:
        return "pf_issue";
      case Phase::Dram:
        return "dram";
      case Phase::SnapshotIO:
        return "snapshot_io";
      case Phase::CheckpointIO:
        return "checkpoint_io";
      case Phase::TraceCacheIO:
        return "trace_cache_io";
      case Phase::DecodeBatch:
        return "decode_batch";
      default:
        return "invalid";
    }
}

const char *
describe(Phase phase)
{
    switch (phase) {
      case Phase::Other:
        return "unattributed (driver loops, setup, teardown)";
      case Phase::TraceSynthesis:
        return "workload kernels synthesising trace records";
      case Phase::Decode:
        return "core fetch/decode/dispatch of trace records";
      case Phase::CacheLookup:
        return "L1-miss / L2 demand processing (L1 hits: decode)";
      case Phase::PfObserve:
        return "prefetcher training (observe, block events)";
      case Phase::PfIssue:
        return "prefetch queue drain into the memory system";
      case Phase::Dram:
        return "MSHR/DRAM fill drain processing";
      case Phase::SnapshotIO:
        return "stats snapshot serialisation and write";
      case Phase::CheckpointIO:
        return "checkpoint append (seal, write, flush)";
      case Phase::TraceCacheIO:
        return "on-disk trace cache load/store";
      case Phase::DecodeBatch:
        return "SoA batch pre-decode of trace records";
      default:
        return "";
    }
}

namespace detail
{

bool enabledFlag = false;

namespace
{

/** Registry of every thread's slab; slabs outlive their threads. */
struct Global
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadSlab>> slabs;

    // Calibration epoch, set by enable().
    std::uint64_t t0Tsc = 0;
    std::chrono::steady_clock::time_point t0Wall;
    double cpu0 = 0.0;

    // Pool worker aggregates (addPoolStats folds pools in).
    std::vector<WorkerTotals> workers;
    std::uint64_t pools = 0;
    Histogram jobMicros{64, 50.0};
};

Global &
global()
{
    static Global g;
    return g;
}

/** Process CPU seconds (user + system); 0.0 where unsupported. */
double
processCpuSeconds()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    auto tv = [](const struct timeval &t) {
        return static_cast<double>(t.tv_sec) +
               static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
    return 0.0;
#endif
}

} // anonymous namespace

thread_local ThreadSlab *tlsSlab = nullptr;

ThreadSlab &
slabSlow()
{
    auto owned = std::make_unique<ThreadSlab>();
    ThreadSlab *mine = owned.get();
    Global &g = global();
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        g.slabs.push_back(std::move(owned));
    }
    tlsSlab = mine;
    return *mine;
}

} // namespace detail

void
enable()
{
    // First-use slab creation takes the registry mutex itself, so
    // resolve this thread's slab before locking.
    detail::ThreadSlab &s = detail::slab();
    detail::Global &g = detail::global();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (detail::enabledFlag)
        return;
    g.t0Tsc = detail::readTsc();
    g.t0Wall = std::chrono::steady_clock::now();
    g.cpu0 = detail::processCpuSeconds();
    detail::enabledFlag = true;
    // Anchor the enabling thread so its first phase delta starts at
    // the epoch and its slab partitions the whole profiled window.
    s.lastTsc = g.t0Tsc;
    s.current = Phase::Other;
}

void
enableFromEnv()
{
    const char *env = std::getenv("CBWS_PROFILE");
    if (!env)
        return;
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
        std::strcmp(env, "yes") == 0 || std::strcmp(env, "on") == 0) {
        enable();
    }
}

void
resetForTest()
{
    detail::Global &g = detail::global();
    std::lock_guard<std::mutex> lock(g.mutex);
    detail::enabledFlag = false;
    for (auto &s : g.slabs)
        *s = detail::ThreadSlab();
    g.workers.clear();
    g.pools = 0;
    g.jobMicros = Histogram(64, 50.0);
    g.t0Tsc = 0;
    g.cpu0 = 0.0;
}

void
addPoolStats(const std::vector<WorkerTotals> &workers,
             const Histogram &job_micros)
{
    detail::Global &g = detail::global();
    std::lock_guard<std::mutex> lock(g.mutex);
    ++g.pools;
    if (g.workers.size() < workers.size())
        g.workers.resize(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i) {
        g.workers[i].busySeconds += workers[i].busySeconds;
        g.workers[i].queueWaitSeconds += workers[i].queueWaitSeconds;
        g.workers[i].lockWaitSeconds += workers[i].lockWaitSeconds;
        g.workers[i].jobs += workers[i].jobs;
    }
    g.jobMicros.merge(job_micros);
}

Report
report()
{
    detail::Global &g = detail::global();
    Report rep;
    rep.enabled = detail::enabledFlag;
    if (!rep.enabled)
        return rep;

    const std::uint64_t now_tsc = detail::readTsc();
    const auto now_wall = std::chrono::steady_clock::now();
    rep.wallSeconds =
        std::chrono::duration<double>(now_wall - g.t0Wall).count();
    rep.cpuSeconds = detail::processCpuSeconds() - g.cpu0;

    // Calibrate TSC ticks -> seconds over the profiled window.
    const double dtsc = static_cast<double>(now_tsc - g.t0Tsc);
    const double hz =
        rep.wallSeconds > 0.0 ? dtsc / rep.wallSeconds : 0.0;

    // Flush the calling thread's open span so its phases partition
    // the full window (tail time lands in its current phase).
    {
        detail::ThreadSlab &mine = detail::slab();
        if (mine.lastTsc != 0) {
            mine.ticks[static_cast<unsigned>(mine.current)] +=
                now_tsc - mine.lastTsc;
            mine.lastTsc = now_tsc;
        }
    }

    std::lock_guard<std::mutex> lock(g.mutex);
    const detail::ThreadSlab *mine = &detail::slab();
    for (const auto &s : g.slabs) {
        double thread_total = 0.0;
        for (unsigned p = 0; p < NumPhases; ++p) {
            // Fold in SampledScope's zero-sum extrapolation; clamp at
            // zero in case a parent lost more than it had accrued.
            const std::int64_t raw =
                static_cast<std::int64_t>(s->ticks[p]) + s->adjust[p];
            const double sec =
                hz > 0.0 && raw > 0 ? static_cast<double>(raw) / hz
                                    : 0.0;
            rep.phaseSeconds[p] += sec;
            rep.phaseEntries[p] += s->entries[p];
            thread_total += sec;
        }
        if (s.get() == mine)
            rep.mainThreadSeconds += thread_total;
        else
            rep.workerThreadSeconds += thread_total;
    }
    rep.workers = g.workers;
    rep.poolsObserved = g.pools;
    rep.jobMicros = g.jobMicros;
    return rep;
}

std::string
renderTable(const Report &rep)
{
    TextTable t;
    t.header({"phase", "seconds", "%wall", "entries", "covers"});
    double attributed = 0.0;
    for (unsigned p = 0; p < NumPhases; ++p)
        attributed += rep.phaseSeconds[p];
    for (unsigned p = 0; p < NumPhases; ++p) {
        const Phase phase = static_cast<Phase>(p);
        if (phase != Phase::Other && rep.phaseEntries[p] == 0 &&
            rep.phaseSeconds[p] == 0.0) {
            continue;
        }
        t.row({toString(phase), TextTable::num(rep.phaseSeconds[p], 4),
               TextTable::num(rep.wallSeconds > 0
                                  ? 100.0 * rep.phaseSeconds[p] /
                                        rep.wallSeconds
                                  : 0.0,
                              1),
               std::to_string(rep.phaseEntries[p]),
               describe(phase)});
    }
    std::string out = t.render();
    char line[160];
    std::snprintf(line, sizeof(line),
                  "\nwall %.4f s   cpu %.4f s   attributed %.4f s "
                  "(main thread %.4f s, workers %.4f s)\n",
                  rep.wallSeconds, rep.cpuSeconds, attributed,
                  rep.mainThreadSeconds, rep.workerThreadSeconds);
    out += line;

    if (!rep.workers.empty()) {
        TextTable w;
        w.header({"worker", "busy s", "queue-wait s", "lock-wait s",
                  "jobs"});
        for (std::size_t i = 0; i < rep.workers.size(); ++i) {
            const WorkerTotals &wt = rep.workers[i];
            w.row({"w" + std::to_string(i),
                   TextTable::num(wt.busySeconds, 4),
                   TextTable::num(wt.queueWaitSeconds, 4),
                   TextTable::num(wt.lockWaitSeconds, 4),
                   std::to_string(wt.jobs)});
        }
        out += "\n" + w.render();
        std::snprintf(line, sizeof(line),
                      "pools observed: %llu   jobs timed: %llu "
                      "(histogram overflow: %llu)\n",
                      static_cast<unsigned long long>(
                          rep.poolsObserved),
                      static_cast<unsigned long long>(
                          rep.jobMicros.total()),
                      static_cast<unsigned long long>(
                          rep.jobMicros.overflow()));
        out += line;
    }
    return out;
}

void
writeJson(JsonWriter &w, const Report &rep)
{
    w.beginObject();
    w.field("enabled", rep.enabled);
    w.field("wall_seconds", rep.wallSeconds);
    w.field("cpu_seconds", rep.cpuSeconds);
    double attributed = 0.0;
    for (unsigned p = 0; p < NumPhases; ++p)
        attributed += rep.phaseSeconds[p];
    w.field("attributed_seconds", attributed);
    w.field("main_thread_seconds", rep.mainThreadSeconds);
    w.field("worker_thread_seconds", rep.workerThreadSeconds);

    w.key("phases");
    w.beginObject();
    for (unsigned p = 0; p < NumPhases; ++p) {
        w.key(toString(static_cast<Phase>(p)));
        w.beginObject();
        w.field("seconds", rep.phaseSeconds[p]);
        w.field("entries", rep.phaseEntries[p]);
        w.endObject();
    }
    w.endObject();

    w.key("workers");
    w.beginArray();
    for (const WorkerTotals &wt : rep.workers) {
        w.beginObject();
        w.field("busy_seconds", wt.busySeconds);
        w.field("queue_wait_seconds", wt.queueWaitSeconds);
        w.field("lock_wait_seconds", wt.lockWaitSeconds);
        w.field("jobs", wt.jobs);
        w.endObject();
    }
    w.endArray();

    w.key("pool");
    w.beginObject();
    w.field("pools_observed", rep.poolsObserved);
    w.key("job_micros_histogram");
    w.beginObject();
    w.field("bucket_width_us", 50.0);
    w.key("counts");
    w.beginArray();
    for (std::size_t b = 0; b < rep.jobMicros.numBuckets(); ++b)
        w.value(rep.jobMicros.bucket(b));
    w.endArray();
    w.field("overflow", rep.jobMicros.overflow());
    w.field("total", rep.jobMicros.total());
    w.endObject();
    w.endObject();

    w.endObject();
}

bool
writeJsonFile(const std::string &path, const Report &rep)
{
    JsonWriter w;
    w.beginObject();
    w.field("format", "cbws-profile");
    w.field("schema_version", std::uint64_t(1));
    w.key("provenance");
    writeProvenance(w);
    w.key("profile");
    writeJson(w, rep);
    w.endObject();

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out)
        return false;
    const std::string text = w.str() + "\n";
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), out) == text.size();
    return std::fclose(out) == 0 && ok;
}

} // namespace prof
} // namespace cbws
