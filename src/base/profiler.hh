/**
 * @file
 * Host-side self-profiler: where does the *simulator's* wall time go?
 *
 * Everything else in the observability stack (debug flags, snapshots,
 * Chrome traces) looks at the simulated machine; this looks at the
 * simulating process. Components bracket their work with PROF_SCOPE
 * phase markers; the profiler attributes host time between markers to
 * the innermost active phase ("switch-point" accounting), so the
 * per-phase exclusive times of a thread partition its wall time
 * exactly — whatever no scope claims lands in Phase::Other.
 *
 * Cost model:
 *  - Disabled (the default): one predictable branch on a plain bool
 *    per scope — no clock is read, nothing is written. Verified to
 *    stay under a few ns/scope by tests/test_profiler.cc.
 *  - Enabled: one TSC read per phase transition (two per scope) plus
 *    a handful of thread-local adds; calibrated against
 *    steady_clock over the whole profiled window at report time.
 *    Sites hot enough that the TSC reads would rival the bracketed
 *    work use PROF_SCOPE_SAMPLED (1-in-N timed, inline-extrapolated,
 *    zero-sum against the enclosing phase).
 *
 * Thread model: every thread accumulates into its own heap-allocated
 * slab (registered once, never freed, so slabs of joined pool workers
 * survive until report()). enable() is sticky for the process;
 * report() aggregates all slabs. resetForTest() exists for unit tests
 * only.
 */

#ifndef CBWS_BASE_PROFILER_HH
#define CBWS_BASE_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

#include "base/stats.hh"

namespace cbws
{

class JsonWriter;

namespace prof
{

/** Host-time phases the simulator attributes its wall clock to. */
enum class Phase : unsigned
{
    Other = 0,      ///< unattributed (driver loops, setup, teardown)
    TraceSynthesis, ///< workload kernels emitting trace records
    Decode,         ///< core fetch/decode/dispatch of trace records
    CacheLookup,    ///< L1-miss/L2 demand processing (hits: decode)
    PfObserve,      ///< prefetcher training (observe/blockBegin/End)
    PfIssue,        ///< prefetch-queue drain into the memory system
    Dram,           ///< MSHR/DRAM fill-drain processing
    SnapshotIO,     ///< JSONL stats-snapshot serialisation + write
    CheckpointIO,   ///< checkpoint open/append (seal, write, flush)
    TraceCacheIO,   ///< on-disk trace-cache load/store
    DecodeBatch,    ///< SoA batch pre-decode of trace records
    NumPhases
};

constexpr unsigned NumPhases =
    static_cast<unsigned>(Phase::NumPhases);

/** Stable snake_case identifier (JSON keys, table rows). */
const char *toString(Phase phase);

/** One-line human description of what a phase covers. */
const char *describe(Phase phase);

namespace detail
{

extern bool enabledFlag;

/** This thread's accumulator slab (created on first use). */
struct ThreadSlab
{
    std::array<std::uint64_t, NumPhases> ticks{}; ///< exclusive TSC
    std::array<std::uint64_t, NumPhases> entries{};
    /**
     * Zero-sum extrapolation corrections from SampledScope: a timed
     * sample adds delta*(weight-1) to its phase and subtracts the
     * same from the enclosing phase, so per-thread phase totals keep
     * partitioning wall time exactly. Signed (and applied at report
     * time) because the subtraction can transiently exceed what the
     * parent has accrued so far.
     */
    std::array<std::int64_t, NumPhases> adjust{};
    /** Per-phase invocation counters driving SampledScope's 1-in-N. */
    std::array<std::uint32_t, NumPhases> sampleCtr{};
    Phase current = Phase::Other;
    std::uint64_t lastTsc = 0;
    /** Enclosing phases of the active scope chain. */
    std::array<Phase, 64> stack;
    unsigned depth = 0;
    bool worker = false; ///< slab belongs to a pool worker thread
};

/** Cached pointer to this thread's slab (set by slabSlow()). */
extern thread_local ThreadSlab *tlsSlab;

/** Cold path: allocate + register this thread's slab once. */
ThreadSlab &slabSlow();

inline ThreadSlab &
slab()
{
    ThreadSlab *s = tlsSlab;
    return s ? *s : slabSlow();
}

/**
 * Cheapest monotonic-enough counter available. The absolute rate is
 * irrelevant: report() calibrates ticks against steady_clock over
 * the whole profiled window.
 */
inline std::uint64_t
readTsc()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    // Portable fallback: nanoseconds (calibration then yields ~1e9).
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
}

/* enter/exit are inline: they run on simulator hot paths (per
 * demand access, per commit) where an out-of-line call plus a fresh
 * TLS lookup each time would dominate the rdtsc itself. */

inline void
enterPhase(Phase phase)
{
    ThreadSlab &s = slab();
    const std::uint64_t now = readTsc();
    if (s.lastTsc != 0)
        s.ticks[static_cast<unsigned>(s.current)] += now - s.lastTsc;
    s.lastTsc = now;
    if (s.depth < s.stack.size())
        s.stack[s.depth] = s.current;
    ++s.depth;
    s.current = phase;
    ++s.entries[static_cast<unsigned>(phase)];
}

inline void
exitPhase()
{
    ThreadSlab &s = slab();
    const std::uint64_t now = readTsc();
    if (s.lastTsc != 0)
        s.ticks[static_cast<unsigned>(s.current)] += now - s.lastTsc;
    s.lastTsc = now;
    if (s.depth > 0) {
        --s.depth;
        s.current = s.depth < s.stack.size() ? s.stack[s.depth]
                                             : Phase::Other;
    } else {
        s.current = Phase::Other;
    }
}

} // namespace detail

/** Is profiling live? (checked on every scope; keep it branchy-cheap) */
inline bool
enabled()
{
    return detail::enabledFlag;
}

/**
 * Turn profiling on for the rest of the process (idempotent). Records
 * the calibration epoch; call before the work you want attributed.
 */
void enable();

/** Honour CBWS_PROFILE=1/true/yes (idempotent convenience). */
void enableFromEnv();

/**
 * Test-only: disable profiling and drop every slab's contents. Not
 * thread-safe — call only with no worker threads running.
 */
void resetForTest();

/**
 * RAII phase marker. Disabled cost: one branch. Scopes nest; time
 * spent in an inner scope is *not* charged to the outer phase.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase)
    {
        if (enabled()) {
            active_ = true;
            detail::enterPhase(phase);
        }
    }

    ~ScopedPhase()
    {
        if (active_)
            detail::exitPhase();
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    bool active_ = false;
};

/**
 * Sampled RAII phase marker for very hot sites (hundreds of
 * thousands of scopes per second) where two TSC reads per scope would
 * cost more than the work they bracket — on this class of machine a
 * timed scope is ~35 ns while e.g. one prefetcher observe() is ~60 ns.
 *
 * Every invocation counts an entry, but only one in (mask+1) is
 * timed. The measured exclusive time is extrapolated inline: the
 * phase gains delta*mask extra ticks and the *enclosing* phase loses
 * the same amount (it absorbed the untimed siblings), so per-thread
 * phase totals still partition wall time exactly. Attribution is
 * statistical — use only where invocations do similar work, e.g.
 * per-access prefetcher training.
 */
class SampledScope
{
  public:
    SampledScope(Phase phase, std::uint32_t mask)
    {
        if (enabled()) {
            detail::ThreadSlab &s = detail::slab();
            const unsigned p = static_cast<unsigned>(phase);
            if ((++s.sampleCtr[p] & mask) == 0) {
                weight_ = mask + 1;
                phase_ = p;
                parent_ = static_cast<unsigned>(s.current);
                ticks0_ = s.ticks[p];
                detail::enterPhase(phase);
            } else {
                ++s.entries[p];
            }
        }
    }

    ~SampledScope()
    {
        if (weight_ != 0) {
            detail::exitPhase();
            detail::ThreadSlab &s = detail::slab();
            const std::int64_t extra =
                static_cast<std::int64_t>(s.ticks[phase_] - ticks0_) *
                (weight_ - 1);
            s.adjust[phase_] += extra;
            s.adjust[parent_] -= extra;
        }
    }

    SampledScope(const SampledScope &) = delete;
    SampledScope &operator=(const SampledScope &) = delete;

  private:
    std::uint64_t ticks0_ = 0;
    std::uint32_t weight_ = 0;
    unsigned phase_ = 0;
    unsigned parent_ = 0;
};

#define CBWS_PROF_CONCAT2(a, b) a##b
#define CBWS_PROF_CONCAT(a, b) CBWS_PROF_CONCAT2(a, b)
/** Attribute the rest of the enclosing block to @p phase. */
#define PROF_SCOPE(phase)                                             \
    ::cbws::prof::ScopedPhase CBWS_PROF_CONCAT(prof_scope_,          \
                                               __LINE__)(phase)
/**
 * Sampled variant for hot sites: counts every entry, times one
 * invocation in (mask+1) and extrapolates. @p mask must be 2^k - 1.
 */
#define PROF_SCOPE_SAMPLED(phase, mask)                               \
    ::cbws::prof::SampledScope CBWS_PROF_CONCAT(prof_scope_,         \
                                                __LINE__)(phase, mask)

/** Per-thread-pool-worker time split (base/threadpool.cc reports). */
struct WorkerTotals
{
    double busySeconds = 0.0;      ///< executing submitted tasks
    double queueWaitSeconds = 0.0; ///< blocked on the work condvar
    double lockWaitSeconds = 0.0;  ///< acquiring the pool mutex
    std::uint64_t jobs = 0;        ///< tasks executed
};

/** Aggregated view of everything profiled so far. */
struct Report
{
    double wallSeconds = 0.0; ///< enable() -> report() wall time
    double cpuSeconds = 0.0;  ///< process CPU time over the window
    /** Exclusive per-phase seconds summed over every thread. */
    std::array<double, NumPhases> phaseSeconds{};
    std::array<std::uint64_t, NumPhases> phaseEntries{};
    /** Sum of phaseSeconds for the *calling* (main) thread only —
     *  equals wallSeconds up to calibration error, which is what the
     *  "phases sum to wall time" acceptance check keys on. */
    double mainThreadSeconds = 0.0;
    /** Exclusive seconds of worker-thread slabs (scopes run inside
     *  pool jobs; busy time is also in workers[].busySeconds). */
    double workerThreadSeconds = 0.0;
    /** Per worker-index totals, aggregated across every pool. */
    std::vector<WorkerTotals> workers;
    std::uint64_t poolsObserved = 0;
    /** Pool job durations, microseconds (64 x 50us buckets). */
    Histogram jobMicros{64, 50.0};
    bool enabled = false;
};

/** Aggregate all slabs + worker stats. Call with workers quiescent. */
Report report();

/** Pool teardown hook: fold one pool's per-worker stats in. */
void addPoolStats(const std::vector<WorkerTotals> &workers,
                  const Histogram &job_micros);

/** Render the phase/worker breakdown as an aligned text table. */
std::string renderTable(const Report &report);

/** Write the "profile" JSON object (no surrounding artifact). */
void writeJson(JsonWriter &w, const Report &report);

/**
 * Write a standalone profile artifact (provenance-stamped) to
 * @p path, e.g. BENCH_profile.json. Returns false on I/O failure.
 */
bool writeJsonFile(const std::string &path, const Report &report);

} // namespace prof
} // namespace cbws

#endif // CBWS_BASE_PROFILER_HH
