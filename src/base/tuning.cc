#include "base/tuning.hh"

#include <cstdlib>
#include <cstring>

namespace cbws
{

namespace
{

/** True unless @p name is set to "0", "false" or "off". */
bool
envEnabled(const char *name)
{
    const char *value = std::getenv(name);
    if (!value)
        return true;
    return std::strcmp(value, "0") != 0 &&
           std::strcmp(value, "false") != 0 &&
           std::strcmp(value, "off") != 0;
}

} // anonymous namespace

Tuning &
Tuning::get()
{
    static Tuning tuning = [] {
        Tuning t;
        t.batchDecode = envEnabled("CBWS_BATCH_DECODE");
        t.skipAhead = envEnabled("CBWS_SKIP_AHEAD");
        return t;
    }();
    return tuning;
}

} // namespace cbws
