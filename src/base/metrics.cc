#include "base/metrics.hh"

#include <iomanip>
#include <ostream>

#include "base/json.hh"

namespace cbws
{

MetricsRegistry::Metric &
MetricsRegistry::push(const std::string &path, Kind kind,
                      const std::string &desc)
{
    metrics_.emplace_back();
    Metric &m = metrics_.back();
    m.path = path;
    m.kind = kind;
    m.desc = desc;
    return m;
}

void
MetricsRegistry::addScalar(const std::string &path,
                           std::uint64_t value,
                           const std::string &desc)
{
    push(path, Kind::Scalar, desc).uintValue = value;
}

void
MetricsRegistry::addReal(const std::string &path, double value,
                         const std::string &desc)
{
    push(path, Kind::Real, desc).realValue = value;
}

void
MetricsRegistry::addVector(const std::string &path,
                           std::vector<std::uint64_t> values,
                           const std::string &desc)
{
    push(path, Kind::Vector, desc).values = std::move(values);
}

void
MetricsRegistry::addHistogram(const std::string &path,
                              const Histogram &hist,
                              const std::string &desc)
{
    Metric &m = push(path, Kind::Histogram, desc);
    m.buckets.reserve(hist.numBuckets());
    for (std::size_t b = 0; b < hist.numBuckets(); ++b)
        m.buckets.push_back(hist.bucket(b));
    m.bucketWidth = hist.bucketWidth();
    m.overflow = hist.overflow();
}

void
MetricsRegistry::addFormula(const std::string &path, double value,
                            const std::string &expr,
                            const std::string &desc)
{
    Metric &m = push(path, Kind::Formula, desc);
    m.realValue = value;
    m.expr = expr;
}

const MetricsRegistry::Metric *
MetricsRegistry::find(const std::string &path) const
{
    for (const Metric &m : metrics_)
        if (m.path == path)
            return &m;
    return nullptr;
}

std::vector<const MetricsRegistry::Metric *>
MetricsRegistry::subtree(const std::string &prefix) const
{
    std::vector<const Metric *> out;
    for (const Metric &m : metrics_) {
        if (m.path == prefix ||
            (m.path.size() > prefix.size() &&
             m.path.compare(0, prefix.size(), prefix) == 0 &&
             m.path[prefix.size()] == '.')) {
            out.push_back(&m);
        }
    }
    return out;
}

void
MetricsRegistry::dumpText(std::ostream &out) const
{
    for (const Metric &m : metrics_) {
        switch (m.kind) {
          case Kind::Scalar:
            out << std::left << std::setw(40) << m.path << std::right
                << std::setw(16) << m.uintValue << "  # " << m.desc
                << "\n";
            break;
          case Kind::Real:
          case Kind::Formula:
            out << std::left << std::setw(40) << m.path << std::right
                << std::setw(16) << std::fixed << std::setprecision(6)
                << m.realValue << "  # " << m.desc << "\n";
            break;
          case Kind::Vector:
          case Kind::Histogram:
            // JSON-only kinds: the line-oriented dump stays exactly
            // the scalar set it always was.
            break;
        }
    }
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (const Metric &m : metrics_) {
        w.key(m.path);
        switch (m.kind) {
          case Kind::Scalar:
            w.value(m.uintValue);
            break;
          case Kind::Real:
            w.value(m.realValue);
            break;
          case Kind::Vector:
            w.beginArray();
            for (std::uint64_t v : m.values)
                w.value(v);
            w.endArray();
            break;
          case Kind::Histogram:
            w.beginObject();
            w.field("bucket_width", m.bucketWidth);
            w.key("counts");
            w.beginArray();
            for (std::uint64_t v : m.buckets)
                w.value(v);
            w.endArray();
            w.field("overflow", m.overflow);
            w.endObject();
            break;
          case Kind::Formula:
            w.beginObject();
            w.field("value", m.realValue);
            w.field("expr", m.expr);
            w.endObject();
            break;
        }
    }
    w.endObject();
}

} // namespace cbws
