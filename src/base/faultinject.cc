#include "base/faultinject.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace cbws
{

namespace
{

/** splitmix64: decorrelates (seed, site, hit) into a uniform word. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform [0, 1) draw for hit @p n at @p site under @p seed. */
double
draw(std::uint64_t seed, unsigned site, std::uint64_t n)
{
    const std::uint64_t word =
        mix(seed ^ mix(static_cast<std::uint64_t>(site) << 32 ^ n));
    return static_cast<double>(word >> 11) /
           static_cast<double>(1ull << 53);
}

} // anonymous namespace

const char *
toString(FaultSite site)
{
    switch (site) {
      case FaultSite::TraceCacheLoad:
        return "trace-cache-load";
      case FaultSite::TraceCacheStore:
        return "trace-cache-store";
      case FaultSite::TraceCacheCorrupt:
        return "trace-cache-corrupt";
      case FaultSite::PoolJob:
        return "pool-job";
      case FaultSite::SnapshotWrite:
        return "snapshot-write";
      case FaultSite::CheckpointAppend:
        return "checkpoint-append";
      case FaultSite::ServeWorkerKill:
        return "serve-worker-kill";
      default:
        return "?";
    }
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::reset()
{
    for (auto &site : sites_) {
        site.armed.store(false);
        site.rate = 0.0;
        site.seed = 1;
        site.exactHits.clear();
        site.hits.store(0);
        site.fired.store(0);
    }
    anyArmed_.store(false);
}

void
FaultInjector::arm(FaultSite site, double rate, std::uint64_t seed)
{
    auto &s = sites_[static_cast<unsigned>(site)];
    s.rate = rate;
    s.seed = seed;
    s.exactHits.clear();
    s.armed.store(rate > 0.0);
    anyArmed_.store(true);
}

void
FaultInjector::armAt(FaultSite site, std::vector<std::uint64_t> hits)
{
    auto &s = sites_[static_cast<unsigned>(site)];
    s.rate = 0.0;
    s.exactHits = std::set<std::uint64_t>(hits.begin(), hits.end());
    s.armed.store(!s.exactHits.empty());
    anyArmed_.store(true);
}

Result<void>
FaultInjector::configureFromEnv()
{
    reset();
    const char *env = std::getenv("CBWS_FAULT");
    if (!env || !*env)
        return Result<void>();

    std::uint64_t seed = 1;
    if (const char *seed_env = std::getenv("CBWS_FAULT_SEED"))
        seed = std::strtoull(seed_env, nullptr, 10);

    std::string spec(env);
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        // "site:rate" or "site@hit".
        const std::size_t colon = item.find(':');
        const std::size_t at = item.find('@');
        const std::size_t sep = std::min(colon, at);
        const std::string name = item.substr(0, sep);

        FaultSite site = FaultSite::NumSites;
        for (unsigned i = 0; i < NumFaultSites; ++i) {
            if (name == toString(static_cast<FaultSite>(i))) {
                site = static_cast<FaultSite>(i);
                break;
            }
        }
        if (site == FaultSite::NumSites) {
            reset();
            return Error(Errc::InvalidArgument,
                         "CBWS_FAULT: unknown fault site '" + name +
                             "'");
        }

        if (at != std::string::npos) {
            char *end = nullptr;
            const std::uint64_t hit =
                std::strtoull(item.c_str() + at + 1, &end, 10);
            if (hit == 0 || (end && *end)) {
                reset();
                return Error(Errc::InvalidArgument,
                             "CBWS_FAULT: bad hit index in '" + item +
                                 "'");
            }
            armAt(site, {hit});
        } else {
            double rate = 1.0;
            if (colon != std::string::npos) {
                char *end = nullptr;
                rate = std::strtod(item.c_str() + colon + 1, &end);
                if (end && *end) {
                    reset();
                    return Error(Errc::InvalidArgument,
                                 "CBWS_FAULT: bad rate in '" + item +
                                     "'");
                }
            }
            arm(site, rate, seed);
        }
    }
    return Result<void>();
}

bool
FaultInjector::shouldFire(FaultSite site)
{
    auto &s = sites_[static_cast<unsigned>(site)];
    if (!s.armed.load(std::memory_order_relaxed))
        return false;
    const std::uint64_t n =
        s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire;
    if (!s.exactHits.empty()) {
        fire = s.exactHits.count(n) != 0;
    } else {
        fire = draw(s.seed, static_cast<unsigned>(site), n) < s.rate;
    }
    if (fire) {
        s.fired.fetch_add(1, std::memory_order_relaxed);
        warn("fault injection: firing %s (hit %llu)", toString(site),
             static_cast<unsigned long long>(n));
    }
    return fire;
}

std::uint64_t
FaultInjector::hits(FaultSite site) const
{
    return sites_[static_cast<unsigned>(site)].hits.load();
}

std::uint64_t
FaultInjector::fired(FaultSite site) const
{
    return sites_[static_cast<unsigned>(site)].fired.load();
}

namespace faultinject
{

Result<void>
corruptFile(const std::string &path, CorruptMode mode,
            std::uint64_t seed)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return Error(Errc::NotFound, "cannot open '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    if (size <= 0)
        return Error(Errc::IoError, "cannot size '" + path + "'");

    if (mode == CorruptMode::Truncate) {
        // Rewrite the first half only: a crash mid-write.
        std::FILE *in = std::fopen(path.c_str(), "rb");
        if (!in)
            return Error(Errc::IoError, "cannot reopen '" + path + "'");
        std::vector<char> head(static_cast<std::size_t>(size) / 2);
        const std::size_t got =
            head.empty() ? 0
                         : std::fread(head.data(), 1, head.size(), in);
        std::fclose(in);
        std::FILE *out = std::fopen(path.c_str(), "wb");
        if (!out)
            return Error(Errc::IoError,
                         "cannot rewrite '" + path + "'");
        if (got)
            std::fwrite(head.data(), 1, got, out);
        std::fclose(out);
        return Result<void>();
    }

    // FlipBytes: xor a few deterministically chosen bytes in place.
    std::FILE *rw = std::fopen(path.c_str(), "rb+");
    if (!rw)
        return Error(Errc::IoError, "cannot open '" + path + "' r/w");
    for (unsigned i = 0; i < 4; ++i) {
        const long offset = static_cast<long>(
            mix(seed + i) % static_cast<std::uint64_t>(size));
        std::fseek(rw, offset, SEEK_SET);
        const int c = std::fgetc(rw);
        if (c == EOF)
            break;
        std::fseek(rw, offset, SEEK_SET);
        std::fputc(c ^ 0x5a, rw);
    }
    std::fclose(rw);
    return Result<void>();
}

} // namespace faultinject

} // namespace cbws
