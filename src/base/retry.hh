/**
 * @file
 * Retry-with-backoff for transient I/O failures. Checkpoint appends
 * and similar durability writes funnel through here so an injected
 * (or real) transient error is absorbed instead of aborting the run.
 */

#ifndef CBWS_BASE_RETRY_HH
#define CBWS_BASE_RETRY_HH

#include <chrono>
#include <thread>

#include "base/result.hh"

namespace cbws
{

/**
 * Invoke @p fn (returning Result<void>) up to @p attempts times,
 * sleeping base_ms, 2*base_ms, 4*base_ms, ... between tries. Returns
 * the first success, or the last failure once attempts are exhausted.
 * base_ms of 0 retries immediately (tests).
 */
template <typename Fn>
Result<void>
retryWithBackoff(unsigned attempts, unsigned base_ms, Fn &&fn)
{
    Result<void> last;
    unsigned delay = base_ms;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0 && delay > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            delay *= 2;
        }
        last = fn();
        if (last.ok())
            return last;
    }
    return last;
}

} // namespace cbws

#endif // CBWS_BASE_RETRY_HH
