/**
 * @file
 * Retry-with-backoff for transient I/O failures. Checkpoint appends
 * and similar durability writes funnel through here so an injected
 * (or real) transient error is absorbed instead of aborting the run.
 *
 * The serving layer reuses the same policy for client reconnects and
 * worker respawns, where many peers backing off in lockstep is a
 * thundering herd: BackoffSchedule adds deterministic jitter derived
 * from an explicit seed (CBWS_FAULT_SEED by convention), so delays
 * are desynchronised between peers yet bit-reproducible per seed —
 * the property the chaos tests pin down.
 */

#ifndef CBWS_BASE_RETRY_HH
#define CBWS_BASE_RETRY_HH

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>

#include "base/result.hh"

namespace cbws
{

/**
 * Invoke @p fn (returning Result<void>) up to @p attempts times,
 * sleeping base_ms, 2*base_ms, 4*base_ms, ... between tries. Returns
 * the first success, or the last failure once attempts are exhausted.
 * base_ms of 0 retries immediately (tests).
 */
template <typename Fn>
Result<void>
retryWithBackoff(unsigned attempts, unsigned base_ms, Fn &&fn)
{
    Result<void> last;
    unsigned delay = base_ms;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0 && delay > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(delay));
            delay *= 2;
        }
        last = fn();
        if (last.ok())
            return last;
    }
    return last;
}

/** The CBWS_FAULT_SEED environment value (default 1), the seed every
 *  deterministic failure-path schedule in the project derives from. */
inline std::uint64_t
faultSeedFromEnv()
{
    if (const char *env = std::getenv("CBWS_FAULT_SEED")) {
        const unsigned long long v = std::strtoull(env, nullptr, 10);
        if (v > 0)
            return v;
    }
    return 1;
}

/**
 * Exponential backoff with deterministic jitter: attempt n (0-based)
 * waits an "envelope" of min(base_ms << n, max_ms), of which the
 * upper half is jittered by a splitmix64 hash of (seed, n). Two peers
 * with different seeds spread out; the same seed replays the exact
 * delay sequence. base_ms of 0 yields all-zero delays (tests).
 */
struct BackoffSchedule
{
    unsigned baseMs = 10;
    unsigned maxMs = 5000;
    std::uint64_t seed = 1;

    /** Delay before retry attempt @p attempt (0-based), in ms. */
    std::uint64_t
    delayMs(unsigned attempt) const
    {
        if (baseMs == 0)
            return 0;
        std::uint64_t envelope = baseMs;
        // Shift without overflow: cap as soon as we pass maxMs.
        for (unsigned i = 0; i < attempt && envelope < maxMs; ++i)
            envelope <<= 1;
        if (envelope > maxMs)
            envelope = maxMs;
        // splitmix64 of (seed, attempt): cheap, well-mixed, and pure.
        std::uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                                     (static_cast<std::uint64_t>(attempt) + 1);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        z ^= z >> 31;
        const std::uint64_t half = envelope / 2;
        return envelope - half + (half ? z % (half + 1) : 0);
    }
};

/**
 * retryWithBackoff over a jittered BackoffSchedule. @p sleeper is the
 * injectable wait (tests record delays instead of sleeping); the
 * default really sleeps.
 */
template <typename Fn, typename Sleeper>
Result<void>
retryWithBackoff(unsigned attempts, const BackoffSchedule &schedule,
                 Fn &&fn, Sleeper &&sleeper)
{
    Result<void> last;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            const std::uint64_t ms = schedule.delayMs(attempt - 1);
            if (ms > 0)
                sleeper(ms);
        }
        last = fn();
        if (last.ok())
            return last;
    }
    return last;
}

template <typename Fn>
Result<void>
retryWithBackoff(unsigned attempts, const BackoffSchedule &schedule,
                 Fn &&fn)
{
    return retryWithBackoff(
        attempts, schedule, std::forward<Fn>(fn),
        [](std::uint64_t ms) {
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        });
}

} // namespace cbws

#endif // CBWS_BASE_RETRY_HH
