#include "base/progress.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cbws
{

namespace
{

bool
stderrIsTty()
{
#if defined(__unix__) || defined(__APPLE__)
    return isatty(fileno(stderr)) != 0;
#else
    return false;
#endif
}

} // anonymous namespace

ProgressMeter::ProgressMeter(std::string label, std::size_t total,
                             bool enabled)
    : label_(std::move(label)), total_(total), enabled_(enabled),
      tty_(enabled && stderrIsTty()),
      start_(std::chrono::steady_clock::now()), lastRender_(start_)
{
}

ProgressMeter::~ProgressMeter()
{
    finish();
}

bool
ProgressMeter::enabledFromEnv()
{
    const char *env = std::getenv("CBWS_PROGRESS");
    if (!env)
        return false;
    return std::strcmp(env, "1") == 0 ||
           std::strcmp(env, "true") == 0 ||
           std::strcmp(env, "yes") == 0 ||
           std::strcmp(env, "on") == 0;
}

void
ProgressMeter::advance(bool restored)
{
    if (!enabled_)
        return;
    done_.fetch_add(1, std::memory_order_relaxed);
    if (restored)
        restored_.fetch_add(1, std::memory_order_relaxed);
    render(false);
}

void
ProgressMeter::addInstructions(std::uint64_t count)
{
    if (!enabled_)
        return;
    instructions_.fetch_add(count, std::memory_order_relaxed);
}

void
ProgressMeter::finish()
{
    if (!enabled_ || finished_)
        return;
    finished_ = true;
    render(true);
}

void
ProgressMeter::render(bool final)
{
    using clock = std::chrono::steady_clock;
    const auto now = clock::now();
    {
        std::lock_guard<std::mutex> lock(renderMutex_);
        // Throttle: a TTY redraws at ~10 Hz, a log file gets a line
        // every couple of seconds at most.
        const double since_last =
            std::chrono::duration<double>(now - lastRender_).count();
        const double min_gap = tty_ ? 0.1 : 2.0;
        if (!final && since_last < min_gap)
            return;
        lastRender_ = now;
    }

    const std::size_t done = done_.load(std::memory_order_relaxed);
    const std::size_t restored =
        restored_.load(std::memory_order_relaxed);
    const std::uint64_t insts =
        instructions_.load(std::memory_order_relaxed);
    const double elapsed =
        std::chrono::duration<double>(now - start_).count();
    const double rate = elapsed > 0.0
        ? static_cast<double>(done) / elapsed
        : 0.0;
    const double ips = elapsed > 0.0
        ? static_cast<double>(insts) / elapsed
        : 0.0;
    const std::size_t left = total_ > done ? total_ - done : 0;
    const double eta =
        rate > 0.0 ? static_cast<double>(left) / rate : 0.0;

    // Live aggregate simulation speed across every worker; only
    // shown once some cell has reported committed instructions.
    char ips_part[48] = "";
    if (insts > 0) {
        std::snprintf(ips_part, sizeof(ips_part), "  %.2fM inst/s",
                      ips / 1e6);
    }

    char line[256];
    if (final) {
        std::snprintf(line, sizeof(line),
                      "[%s] %zu/%zu cells in %.1fs (%.2f cells/s%s, "
                      "%zu restored from cache/checkpoint)",
                      label_.c_str(), done, total_, elapsed, rate,
                      ips_part, restored);
    } else {
        std::snprintf(line, sizeof(line),
                      "[%s] %zu/%zu cells  %.2f cells/s%s  "
                      "ETA %.0fs  restored %zu",
                      label_.c_str(), done, total_, rate, ips_part,
                      eta, restored);
    }

    std::lock_guard<std::mutex> lock(renderMutex_);
    if (tty_) {
        // Rewrite in place; pad to clear a longer previous line.
        std::fprintf(stderr, "\r%-78s%s", line, final ? "\n" : "");
    } else {
        std::fprintf(stderr, "%s\n", line);
    }
    std::fflush(stderr);
}

} // namespace cbws
