#include "base/socket.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cbws
{

namespace
{

Error
errnoError(const std::string &what)
{
    return Error(Errc::IoError, what + ": " + std::strerror(errno));
}

Result<void>
setCloexec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD);
    if (flags < 0 || ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) < 0)
        return errnoError("fcntl(FD_CLOEXEC)");
    return Result<void>();
}

Result<OwnedFd>
newSocket(int domain)
{
    OwnedFd fd(::socket(domain, SOCK_STREAM, 0));
    if (!fd.valid())
        return errnoError("socket");
    Result<void> cloexec = setCloexec(fd.fd());
    if (!cloexec.ok())
        return cloexec.error();
    return fd;
}

/** Fill @p sa from @p addr.path; unix paths have a hard length cap. */
Result<void>
unixSockaddr(const SocketAddr &addr, sockaddr_un &sa)
{
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    if (addr.path.size() >= sizeof(sa.sun_path))
        return Error(Errc::InvalidArgument,
                     "unix socket path too long: " + addr.path);
    std::memcpy(sa.sun_path, addr.path.c_str(), addr.path.size() + 1);
    return Result<void>();
}

/** Resolve a TCP host:port into @p out (first usable result). */
Result<void>
resolveTcp(const SocketAddr &addr, sockaddr_storage &out,
           socklen_t &out_len)
{
    addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *info = nullptr;
    const std::string port = std::to_string(addr.port);
    const int rc =
        ::getaddrinfo(addr.host.c_str(), port.c_str(), &hints, &info);
    if (rc != 0)
        return Error(Errc::IoError, "getaddrinfo(" + addr.host +
                                        "): " + gai_strerror(rc));
    std::memcpy(&out, info->ai_addr, info->ai_addrlen);
    out_len = static_cast<socklen_t>(info->ai_addrlen);
    ::freeaddrinfo(info);
    return Result<void>();
}

} // anonymous namespace

std::string
SocketAddr::str() const
{
    return tcp ? "tcp:" + host + ":" + std::to_string(port)
               : "unix:" + path;
}

Result<SocketAddr>
parseSocketAddr(const std::string &text)
{
    SocketAddr addr;
    if (text.rfind("tcp:", 0) == 0) {
        const std::string rest = text.substr(4);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 >= rest.size())
            return Error(Errc::InvalidArgument,
                         "expected tcp:host:port, got '" + text + "'");
        addr.tcp = true;
        addr.host = rest.substr(0, colon);
        const std::string port = rest.substr(colon + 1);
        char *end = nullptr;
        const unsigned long v = std::strtoul(port.c_str(), &end, 10);
        if (!end || *end || v == 0 || v > 65535)
            return Error(Errc::InvalidArgument,
                         "bad TCP port '" + port + "'");
        addr.port = static_cast<std::uint16_t>(v);
        return addr;
    }
    addr.path = text.rfind("unix:", 0) == 0 ? text.substr(5) : text;
    if (addr.path.empty())
        return Error(Errc::InvalidArgument,
                     "empty unix socket path in '" + text + "'");
    return addr;
}

void
OwnedFd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Result<OwnedFd>
listenSocket(const SocketAddr &addr, int backlog)
{
    Result<OwnedFd> sock = newSocket(addr.tcp ? AF_INET : AF_UNIX);
    if (!sock.ok())
        return sock;
    OwnedFd fd = std::move(sock).value();

    if (addr.tcp) {
        const int one = 1;
        ::setsockopt(fd.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_storage sa;
        socklen_t len = 0;
        Result<void> resolved = resolveTcp(addr, sa, len);
        if (!resolved.ok())
            return resolved.error();
        if (::bind(fd.fd(), reinterpret_cast<sockaddr *>(&sa), len) < 0)
            return errnoError("bind(" + addr.str() + ")");
    } else {
        sockaddr_un sa;
        Result<void> filled = unixSockaddr(addr, sa);
        if (!filled.ok())
            return filled.error();
        // A stale socket file from a dead daemon would fail the bind
        // with EADDRINUSE forever; a *live* daemon still fails (it
        // holds the listening socket, unlink only removes the name —
        // callers serialise daemons per data dir, not per path).
        ::unlink(addr.path.c_str());
        if (::bind(fd.fd(), reinterpret_cast<sockaddr *>(&sa),
                   sizeof(sa)) < 0)
            return errnoError("bind(" + addr.str() + ")");
    }
    if (::listen(fd.fd(), backlog) < 0)
        return errnoError("listen(" + addr.str() + ")");
    return fd;
}

Result<OwnedFd>
connectSocket(const SocketAddr &addr)
{
    Result<OwnedFd> sock = newSocket(addr.tcp ? AF_INET : AF_UNIX);
    if (!sock.ok())
        return sock;
    OwnedFd fd = std::move(sock).value();

    if (addr.tcp) {
        sockaddr_storage sa;
        socklen_t len = 0;
        Result<void> resolved = resolveTcp(addr, sa, len);
        if (!resolved.ok())
            return resolved.error();
        if (::connect(fd.fd(), reinterpret_cast<sockaddr *>(&sa),
                      len) < 0)
            return errnoError("connect(" + addr.str() + ")");
    } else {
        sockaddr_un sa;
        Result<void> filled = unixSockaddr(addr, sa);
        if (!filled.ok())
            return filled.error();
        if (::connect(fd.fd(), reinterpret_cast<sockaddr *>(&sa),
                      sizeof(sa)) < 0)
            return errnoError("connect(" + addr.str() + ")");
    }
    return fd;
}

Result<OwnedFd>
connectWithRetry(const SocketAddr &addr, unsigned attempts,
                 const BackoffSchedule &schedule)
{
    Result<OwnedFd> connected = connectSocket(addr);
    for (unsigned attempt = 1;
         !connected.ok() && attempt < attempts; ++attempt) {
        const std::uint64_t ms = schedule.delayMs(attempt - 1);
        if (ms > 0) {
            struct timespec ts;
            ts.tv_sec = static_cast<time_t>(ms / 1000);
            ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000;
            ::nanosleep(&ts, nullptr);
        }
        connected = connectSocket(addr);
    }
    return connected;
}

Result<void>
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        return errnoError("fcntl(O_NONBLOCK)");
    return Result<void>();
}

Result<void>
LineChannel::readLines(std::vector<std::string> &lines,
                       std::size_t max_line_bytes)
{
    char chunk[4096];
    while (true) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buffer_.append(chunk, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof(chunk))
                break; // drained what was available
            // A full chunk usually means more is pending, but on a
            // blocking fd the next read() would hang if the payload
            // happened to end exactly on the chunk boundary. Deliver
            // any complete lines already buffered first; the caller
            // comes back for the rest. (Scanning just the fresh
            // chunk suffices: everything retained from earlier reads
            // is a partial line with no newline in it.)
            if (std::memchr(chunk, '\n',
                            static_cast<std::size_t>(n)))
                break;
            continue;
        }
        if (n == 0) {
            eof_ = true;
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        return errnoError("read");
    }

    std::size_t start = 0;
    while (true) {
        const std::size_t nl = buffer_.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = buffer_.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        lines.push_back(std::move(line));
        start = nl + 1;
    }
    buffer_.erase(0, start);
    if (max_line_bytes && buffer_.size() > max_line_bytes)
        return Error(Errc::Corrupt,
                     "line exceeds " +
                         std::to_string(max_line_bytes) +
                         " byte limit without a newline");
    // EOF with a dangling partial line: surface it as corrupt rather
    // than silently dropping a truncated request.
    if (eof_ && !buffer_.empty()) {
        buffer_.clear();
        return Error(Errc::Corrupt,
                     "connection closed mid-line (truncated message)");
    }
    return Result<void>();
}

Result<void>
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n =
            ::write(fd_, framed.data() + off, framed.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Writable-again soon: spin via a tiny poll-free
                // yield; protocol messages are small and receivers
                // drain promptly, so this cannot livelock in
                // practice.
                struct timespec ts{0, 1000000}; // 1 ms
                ::nanosleep(&ts, nullptr);
                continue;
            }
            return errnoError("write");
        }
        off += static_cast<std::size_t>(n);
    }
    return Result<void>();
}

} // namespace cbws
