/**
 * @file
 * gem5-style compiled-in trace-flag facility.
 *
 * Every component prints through DPRINTF(Flag, fmt, ...). Output is
 * emitted only when the flag was enabled (--debug-flags=Cache,CBWS,...)
 * AND the current simulated cycle lies inside the optional
 * [--debug-start, --debug-end) window. The macro's fast path is a
 * single predicted-not-taken branch on one global bool, so a fully
 * release-built simulator pays (close to) nothing when tracing is off.
 *
 * The facility is global, matching gem5's trace infrastructure: a
 * simulation process traces one run at a time. Components report the
 * advancing cycle via debug::setCycle() (the hierarchy and the cores
 * do this), which is what the window gating compares against.
 */

#ifndef CBWS_BASE_DEBUG_HH
#define CBWS_BASE_DEBUG_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/types.hh"

namespace cbws
{
namespace debug
{

/** One bit per trace flag; combined into State::mask. */
enum class Flag : std::uint32_t
{
    Cache    = 1u << 0, ///< demand path: hits, misses, fills, evictions
    MSHR     = 1u << 1, ///< MSHR allocate/merge/drain and back-pressure
    Prefetch = 1u << 2, ///< prefetch queue/issue/lifecycle transitions
    CBWS     = 1u << 3, ///< CBWS training, table updates, predictions
    SMS      = 1u << 4, ///< SMS training and pattern replays
    Core     = 1u << 5, ///< commit/stall/redirect activity in the cores
    Sim      = 1u << 6, ///< run-level milestones (warmup, finalize)
    Snapshot = 1u << 7, ///< periodic stats snapshot emission
    DRAM     = 1u << 8, ///< DRAM backend scheduling and write drains
};

/** Global trace state. Single-threaded by design (like gem5's). */
struct State
{
    /** OR of the enabled Flag bits. */
    std::uint32_t mask = 0;
    /** First cycle (inclusive) at which enabled flags print. */
    Cycle start = 0;
    /** First cycle at which printing stops (exclusive). */
    Cycle end = ~Cycle(0);
    /** Current simulated cycle, maintained via setCycle(). */
    Cycle now = 0;
    /** Destination stream; stderr when null. */
    std::FILE *out = nullptr;
    /**
     * Fast gate consulted by DPRINTF before anything else: true iff
     * mask != 0. Window membership is checked afterwards so the hot
     * path stays one load + one branch when tracing is off.
     */
    bool anyEnabled = false;
};

extern State state;

/** Names of all flags, in declaration order (for --debug-flags=help). */
std::vector<std::string> flagNames();

/**
 * Enable the flags named in the comma-separated list @p csv
 * (e.g. "Cache,CBWS"). Names are case-sensitive. Returns false and
 * fills @p err (when given) on the first unknown name; flags named
 * before the bad one stay enabled.
 */
bool setFlags(const std::string &csv, std::string *err = nullptr);

/** Set the [start, end) cycle window outside which nothing prints. */
void setWindow(Cycle start, Cycle end);

/** Redirect trace output (nullptr = stderr, the default). */
void setOutput(std::FILE *out);

/** Disable all flags and restore the default window/output. */
void reset();

/** Report simulated time to the window gate. */
inline void
setCycle(Cycle now)
{
    state.now = now;
}

/** Is @p flag enabled and the current cycle inside the window? */
inline bool
active(Flag flag)
{
    return (state.mask & static_cast<std::uint32_t>(flag)) != 0 &&
           state.now >= state.start && state.now < state.end;
}

/**
 * Emit one trace line: `<cycle>: <flag>: <message>`. Never call
 * directly — DPRINTF performs the enabled/window checks first.
 */
void print(const char *flag_name, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace debug

/**
 * Trace-flag print. Zero work when no flag is enabled beyond one
 * predicted branch; the format arguments are not even evaluated.
 */
#define DPRINTF(flag, ...)                                                \
    do {                                                                  \
        if (__builtin_expect(::cbws::debug::state.anyEnabled, 0) &&       \
            ::cbws::debug::active(::cbws::debug::Flag::flag)) {           \
            ::cbws::debug::print(#flag, __VA_ARGS__);                     \
        }                                                                 \
    } while (0)

} // namespace cbws

#endif // CBWS_BASE_DEBUG_HH
