/**
 * @file
 * Small command-line argument parser for the tools: long options with
 * values (`--workload stencil-default`, `--insts=100000`), boolean
 * flags (`--csv`), positional arguments, and generated help text.
 */

#ifndef CBWS_BASE_ARGPARSE_HH
#define CBWS_BASE_ARGPARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cbws
{

/**
 * Declarative option set + parser.
 */
class ArgParser
{
  public:
    ArgParser(std::string program, std::string description)
        : program_(std::move(program)),
          description_(std::move(description))
    {
    }

    /** Declare a string-valued option with a default. */
    void addOption(const std::string &name, const std::string &help,
                   const std::string &default_value = "");

    /** Declare a boolean flag (false unless present). */
    void addFlag(const std::string &name, const std::string &help);

    /** Declare a string option that may be given multiple times
     *  (`--pf-opt a=1 --pf-opt b=2`); collect with getAll(). */
    void addRepeatable(const std::string &name,
                       const std::string &help);

    /** Declare a named positional argument (for help text only). */
    void addPositional(const std::string &name,
                       const std::string &help);

    /**
     * Parse argv. Returns false (with an error message on stderr) on
     * unknown options or missing values. `--help` prints usage and
     * sets helpRequested().
     */
    bool parse(int argc, char **argv);

    bool helpRequested() const { return helpRequested_; }

    /** Value of option @p name (its default when not given). */
    std::string get(const std::string &name) const;

    /** Option parsed as an unsigned integer; @p fallback on errors. */
    std::uint64_t getUint(const std::string &name,
                          std::uint64_t fallback = 0) const;

    /** Was the flag present? */
    bool getFlag(const std::string &name) const;

    /** Every value given for a repeatable option, in argv order. */
    std::vector<std::string> getAll(const std::string &name) const;

    /** Was the option explicitly provided on the command line? */
    bool provided(const std::string &name) const;

    const std::vector<std::string> &positionals() const
    {
        return positionalValues_;
    }

    /** Render the usage/help text. */
    std::string usage() const;

  private:
    struct Option
    {
        std::string name;
        std::string help;
        std::string value;
        std::vector<std::string> values; ///< repeatable occurrences
        bool isFlag = false;
        bool repeatable = false;
        bool set = false;
    };

    Option *find(const std::string &name);
    const Option *find(const std::string &name) const;

    std::string program_;
    std::string description_;
    std::vector<Option> options_;
    std::vector<std::pair<std::string, std::string>> positionals_;
    std::vector<std::string> positionalValues_;
    bool helpRequested_ = false;
};

} // namespace cbws

#endif // CBWS_BASE_ARGPARSE_HH
