/**
 * @file
 * Plain-text table renderer used by the benchmark harnesses to print
 * paper-style tables and figure data series.
 */

#ifndef CBWS_BASE_TABLE_HH
#define CBWS_BASE_TABLE_HH

#include <string>
#include <vector>

namespace cbws
{

/**
 * Accumulates rows of strings and renders them with aligned columns.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render the table; every column is padded to its widest cell. */
    std::string render() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace cbws

#endif // CBWS_BASE_TABLE_HH
