/**
 * @file
 * Abstract event sink for timeline tracing.
 *
 * Low-level components (the memory hierarchy, the cores) emit
 * cycle-stamped events through this interface without depending on any
 * particular output format; the sim layer's ChromeTraceWriter
 * implements it to produce Chrome trace-event / Perfetto JSON.
 *
 * Emitters must call wants() first and skip event construction when it
 * returns false — that is what bounds tracing to a cycle window and
 * keeps the disabled-path cost at a null-check.
 */

#ifndef CBWS_BASE_TRACESINK_HH
#define CBWS_BASE_TRACESINK_HH

#include <cstdint>

#include "base/types.hh"

namespace cbws
{

/** Well-known track (thread) ids used by the emitters. */
enum class TraceTrack : unsigned
{
    Core = 0,     ///< commit/stall/redirect activity
    Cache = 1,    ///< demand accesses and fills
    Prefetch = 2, ///< prefetch lifecycle events
    Host = 3,     ///< host-side self-profiler phases (wall time)
};

/**
 * Receiver of timeline events. All timestamps and durations are in
 * simulated cycles.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Would an event at cycle @p ts be recorded? (cheap pre-check) */
    virtual bool wants(Cycle ts) const = 0;

    /**
     * A duration event (Chrome "X" phase): something that started at
     * @p ts and lasted @p dur cycles. @p arg is an optional line/value
     * annotation (0 = none).
     */
    virtual void complete(const char *cat, const char *name,
                          TraceTrack track, Cycle ts, Cycle dur,
                          std::uint64_t arg = 0) = 0;

    /** A point-in-time event (Chrome "i" phase). */
    virtual void instant(const char *cat, const char *name,
                         TraceTrack track, Cycle ts,
                         std::uint64_t arg = 0) = 0;

    /** A sampled numeric series (Chrome "C" phase). */
    virtual void counter(const char *name, Cycle ts,
                         std::uint64_t value) = 0;
};

} // namespace cbws

#endif // CBWS_BASE_TRACESINK_HH
