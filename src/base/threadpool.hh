/**
 * @file
 * Minimal fixed-size thread pool used to fan independent simulation
 * runs across cores.
 *
 * Tasks are plain std::function<void()> closures. The pool makes two
 * guarantees the experiment runner depends on:
 *
 *  - wait() returns only after every submitted task has finished, and
 *    rethrows the first exception any task raised (subsequent
 *    exceptions are swallowed — the batch is already poisoned).
 *  - Tasks are started in submission order (completion order is, of
 *    course, up to the scheduler). Determinism of results therefore
 *    has to come from tasks writing to disjoint, preallocated slots,
 *    which is how runMatrix uses the pool.
 *
 * A pool of zero or one workers degenerates to running every task
 * inline inside submit(), which keeps single-job runs byte-identical
 * to code that never heard of the pool (no thread is ever spawned).
 */

#ifndef CBWS_BASE_THREADPOOL_HH
#define CBWS_BASE_THREADPOOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "base/profiler.hh"
#include "base/stats.hh"

namespace cbws
{

class ThreadPool
{
  public:
    /**
     * @param workers thread count; 0 and 1 both mean "run tasks
     *        inline in submit()" (no threads are created).
     */
    explicit ThreadPool(unsigned workers);

    /** Joins the workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads actually running (0 in inline mode). */
    unsigned workers() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Enqueue a task (runs it inline when the pool has no threads). */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has completed, then
     * rethrow the first exception raised by any of them (if any).
     * The pool is reusable afterwards.
     */
    void wait();

    /**
     * Parallelism knob shared by every CLI surface: the CBWS_JOBS
     * environment variable when set to a positive integer, otherwise
     * @p fallback (0 = auto-detect the hardware thread count).
     */
    static unsigned jobsFromEnv(unsigned fallback = 1);

    /** Hardware thread count, at least 1. */
    static unsigned hardwareJobs();

  private:
    void workerLoop(unsigned index);
    void runTask(std::function<void()> &task);

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers: work or shutdown
    std::condition_variable idle_;   ///< wait(): queue drained
    std::size_t inFlight_ = 0;       ///< queued + currently running
    std::exception_ptr firstError_;  ///< first task exception
    bool shutdown_ = false;

    /**
     * Self-profiling (recorded only while prof::enabled()): each
     * worker splits its time into busy / queue-wait / lock-wait and
     * job durations feed a shared histogram (guarded by mutex_).
     * The destructor folds the totals into the global profiler.
     */
    std::vector<prof::WorkerTotals> workerStats_;
    Histogram jobMicros_{64, 50.0};
};

/**
 * Run @p body(i) for every i in [0, count) using @p jobs workers.
 * jobs <= 1 runs the loop serially on the calling thread. Iterations
 * must be independent; exceptions propagate per ThreadPool::wait().
 */
void parallelFor(unsigned jobs, std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace cbws

#endif // CBWS_BASE_THREADPOOL_HH
