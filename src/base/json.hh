/**
 * @file
 * Minimal JSON writer for exporting simulation results: objects,
 * arrays, strings, integers and doubles, with proper escaping. Write
 * only — the project never parses JSON.
 */

#ifndef CBWS_BASE_JSON_HH
#define CBWS_BASE_JSON_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace cbws
{

/**
 * Streaming JSON writer with explicit begin/end nesting.
 *
 *   JsonWriter w;
 *   w.beginObject();
 *   w.field("ipc", 1.5);
 *   w.key("runs");
 *   w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 *   std::string out = w.str();
 */
class JsonWriter
{
  public:
    void
    beginObject()
    {
        separator();
        out_ << '{';
        stack_.push_back(true);
        first_ = true;
    }

    void
    endObject()
    {
        out_ << '}';
        stack_.pop_back();
        first_ = false;
    }

    void
    beginArray()
    {
        separator();
        out_ << '[';
        stack_.push_back(false);
        first_ = true;
    }

    void
    endArray()
    {
        out_ << ']';
        stack_.pop_back();
        first_ = false;
    }

    /** Emit an object key (must be inside an object). */
    void
    key(const std::string &name)
    {
        separator();
        writeString(name);
        out_ << ':';
        pendingValue_ = true;
    }

    void
    value(const std::string &v)
    {
        separator();
        writeString(v);
    }

    void
    value(const char *v)
    {
        value(std::string(v));
    }

    void
    value(std::uint64_t v)
    {
        separator();
        out_ << v;
    }

    void
    value(double v)
    {
        separator();
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        out_ << buf;
    }

    void
    value(bool v)
    {
        separator();
        out_ << (v ? "true" : "false");
    }

    /** key + value in one call. */
    template <typename T>
    void
    field(const std::string &name, T v)
    {
        key(name);
        value(v);
    }

    std::string str() const { return out_.str(); }

    /** True when every begin has been matched by an end. */
    bool balanced() const { return stack_.empty(); }

  private:
    void
    separator()
    {
        if (pendingValue_) {
            pendingValue_ = false;
            return;
        }
        if (!first_ && !stack_.empty())
            out_ << ',';
        first_ = false;
    }

    void
    writeString(const std::string &s)
    {
        out_ << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                out_ << "\\\"";
                break;
              case '\\':
                out_ << "\\\\";
                break;
              case '\n':
                out_ << "\\n";
                break;
              case '\t':
                out_ << "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out_ << buf;
                } else {
                    out_ << c;
                }
            }
        }
        out_ << '"';
    }

    std::ostringstream out_;
    std::vector<bool> stack_; ///< true = object, false = array
    bool first_ = true;
    bool pendingValue_ = false;
};

} // namespace cbws

#endif // CBWS_BASE_JSON_HH
