/**
 * @file
 * Structured error handling for fallible operations.
 *
 * Result<T> replaces the ad-hoc bool/throw error paths of the I/O
 * layers (trace files, the trace cache, experiment checkpoints) with
 * a value that carries *why* an operation failed, so callers can
 * distinguish "not found" (quietly fall back) from "corrupt" (warn,
 * then fall back) from "I/O error" (retry, then degrade).
 *
 * The error vocabulary is deliberately small: robustness policies key
 * off the code, and the human-readable message carries the rest.
 */

#ifndef CBWS_BASE_RESULT_HH
#define CBWS_BASE_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "base/logging.hh"

namespace cbws
{

/** Why an operation failed (Errc::Ok only appears inside Result). */
enum class Errc : std::uint8_t
{
    Ok = 0,
    NotFound,        ///< the requested entity does not exist (a miss)
    IoError,         ///< the OS refused a read/write/open/rename
    Corrupt,         ///< data present but failed validation (checksum,
                     ///< truncation, malformed syntax)
    VersionMismatch, ///< recognised format, unsupported schema version
    InvalidArgument, ///< caller passed something unusable
    Unsupported,     ///< valid request the implementation cannot serve
    FaultInjected,   ///< failure manufactured by base/faultinject
};

/** Short stable name of an error code (log/message prefix). */
constexpr const char *
toString(Errc code)
{
    switch (code) {
      case Errc::Ok:
        return "ok";
      case Errc::NotFound:
        return "not-found";
      case Errc::IoError:
        return "io-error";
      case Errc::Corrupt:
        return "corrupt";
      case Errc::VersionMismatch:
        return "version-mismatch";
      case Errc::InvalidArgument:
        return "invalid-argument";
      case Errc::Unsupported:
        return "unsupported";
      case Errc::FaultInjected:
        return "fault-injected";
    }
    return "?";
}

/** An error code plus a human-readable explanation. */
struct Error
{
    Errc code = Errc::Ok;
    std::string message;

    Error() = default;
    Error(Errc c, std::string msg) : code(c), message(std::move(msg)) {}

    /** "corrupt: trailing checkpoint line failed its checksum". */
    std::string
    str() const
    {
        return message.empty()
                   ? std::string(toString(code))
                   : std::string(toString(code)) + ": " + message;
    }
};

/**
 * Either a T or an Error. Querying the wrong side is a simulator bug
 * (panic), not an exception: fallible paths must check ok() first.
 */
template <typename T>
class Result
{
  public:
    /*implicit*/ Result(T value) : value_(std::move(value)) {}

    /*implicit*/ Result(Error error) : error_(std::move(error))
    {
        panic_if(error_.code == Errc::Ok,
                 "Result error constructed with Errc::Ok");
    }

    Result(Errc code, std::string message)
        : Result(Error(code, std::move(message)))
    {
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Error code, or Errc::Ok on success. */
    Errc code() const { return ok() ? Errc::Ok : error_.code; }

    const T &
    value() const &
    {
        panic_if(!ok(), "Result::value() on error: %s",
                 error_.str().c_str());
        return *value_;
    }

    T &&
    value() &&
    {
        panic_if(!ok(), "Result::value() on error: %s",
                 error_.str().c_str());
        return std::move(*value_);
    }

    T
    valueOr(T fallback) const
    {
        return ok() ? *value_ : std::move(fallback);
    }

    const Error &
    error() const
    {
        panic_if(ok(), "Result::error() on success");
        return error_;
    }

  private:
    std::optional<T> value_;
    Error error_;
};

/** Result of an operation with no payload: success or an Error. */
template <>
class Result<void>
{
  public:
    Result() = default;

    /*implicit*/ Result(Error error) : error_(std::move(error)) {}

    Result(Errc code, std::string message)
        : error_(code, std::move(message))
    {
    }

    bool ok() const { return error_.code == Errc::Ok; }
    explicit operator bool() const { return ok(); }

    Errc code() const { return error_.code; }

    const Error &
    error() const
    {
        panic_if(ok(), "Result::error() on success");
        return error_;
    }

  private:
    Error error_;
};

} // namespace cbws

#endif // CBWS_BASE_RESULT_HH
