/**
 * @file
 * Thin Result<T>-based socket layer for the serving subsystem
 * (src/serve): unix-domain and TCP listeners/connectors plus a
 * line-delimited channel matching the JSONL wire protocol.
 *
 * Everything returns structured errors instead of throwing or
 * printing: the daemon degrades per-connection (drop the client, keep
 * serving) and the client retries with deterministic backoff
 * (base/retry.hh), so both sides need to know *why* an operation
 * failed, not just that it did.
 */

#ifndef CBWS_BASE_SOCKET_HH
#define CBWS_BASE_SOCKET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.hh"
#include "base/retry.hh"

namespace cbws
{

/**
 * A parsed socket address. The textual forms are
 *   unix:/path/to.sock   (or a bare path containing '/')
 *   tcp:host:port
 * matching the --socket flag of cbws-served / cbws-ctl.
 */
struct SocketAddr
{
    bool tcp = false;
    std::string path;      ///< unix-domain socket path
    std::string host;      ///< TCP host
    std::uint16_t port = 0; ///< TCP port

    /** Human-readable form ("unix:/run/cbws.sock", "tcp:host:99"). */
    std::string str() const;
};

/** Parse a --socket argument. InvalidArgument on malformed input. */
Result<SocketAddr> parseSocketAddr(const std::string &text);

/**
 * An owned file descriptor: closes on destruction, moves but never
 * copies. fd() is -1 when empty.
 */
class OwnedFd
{
  public:
    OwnedFd() = default;
    explicit OwnedFd(int fd) : fd_(fd) {}
    ~OwnedFd() { reset(); }

    OwnedFd(OwnedFd &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }

    OwnedFd &
    operator=(OwnedFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    OwnedFd(const OwnedFd &) = delete;
    OwnedFd &operator=(const OwnedFd &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Give up ownership without closing. */
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void reset();

  private:
    int fd_ = -1;
};

/**
 * Create a listening socket at @p addr (backlog @p backlog). For unix
 * sockets a stale socket file left by a dead daemon is unlinked
 * first; for TCP, SO_REUSEADDR is set. The fd is close-on-exec.
 */
Result<OwnedFd> listenSocket(const SocketAddr &addr, int backlog = 16);

/** Connect to @p addr (blocking, close-on-exec). */
Result<OwnedFd> connectSocket(const SocketAddr &addr);

/**
 * Connect with up to @p attempts tries and deterministic jittered
 * backoff between them — the client-reconnect policy. The schedule's
 * seed defaults from CBWS_FAULT_SEED so chaos runs replay exactly.
 */
Result<OwnedFd> connectWithRetry(const SocketAddr &addr,
                                 unsigned attempts,
                                 const BackoffSchedule &schedule);

/** Make @p fd non-blocking (daemon-side client/worker fds). */
Result<void> setNonBlocking(int fd);

/**
 * Newline-delimited message framing over an fd, the unit of the wire
 * protocol. Reading buffers partial lines across reads; writing
 * appends the '\n' and loops until the whole line is on the wire.
 */
class LineChannel
{
  public:
    LineChannel() = default;
    explicit LineChannel(int fd) : fd_(fd) {}

    void attach(int fd) { fd_ = fd; }
    int fd() const { return fd_; }

    /**
     * Drain whatever is readable right now into @p lines (complete
     * lines only; a trailing partial line stays buffered). Returns
     *  - ok with eof() false: connection still open,
     *  - ok with eof() true: orderly close (lines may still be
     *    non-empty),
     *  - IoError: the connection broke.
     * On a non-blocking fd, EAGAIN is simply "zero new lines".
     * A buffered line longer than @p max_line_bytes (0 = unlimited)
     * is a protocol violation reported as Corrupt.
     */
    Result<void> readLines(std::vector<std::string> &lines,
                           std::size_t max_line_bytes = 0);

    /** Write @p line plus '\n', retrying short writes and EINTR. */
    Result<void> writeLine(const std::string &line);

    bool eof() const { return eof_; }

  private:
    int fd_ = -1;
    bool eof_ = false;
    std::string buffer_;
};

} // namespace cbws

#endif // CBWS_BASE_SOCKET_HH
