/**
 * @file
 * Runtime simulation-speed toggles.
 *
 * Every optimization gated here is required to be architecturally
 * invisible: flipping a toggle changes wall-clock time only, never a
 * simulated statistic or a serialised output. The toggles exist so the
 * bit-identity claim is *testable* — tests/test_replay_opt.cc runs the
 * same matrix cell with each toggle on and off and memcmp's the
 * results — and so a future miscompare can be bisected to one
 * optimization from the command line without a rebuild.
 *
 * Environment overrides (read once, at first use):
 *  - CBWS_BATCH_DECODE=0  disable the SoA batch pre-decode of traces
 *  - CBWS_SKIP_AHEAD=0    disable the idle-cycle fast-forward
 */

#ifndef CBWS_BASE_TUNING_HH
#define CBWS_BASE_TUNING_HH

namespace cbws
{

/** Process-wide speed toggles (mutable for tests). */
struct Tuning
{
    /** Pre-decode traces into SoA replay buffers (trace/decoded.hh)
     *  and replay from them, instead of re-deriving renaming and
     *  block membership per record. */
    bool batchDecode = true;

    /** Fast-forward idle cycles to the next scheduled event in the
     *  single-core and lockstep multi-core drivers. */
    bool skipAhead = true;

    /** The singleton, initialised from the environment on first
     *  call. Tests may flip fields directly; production code only
     *  reads them. */
    static Tuning &get();
};

} // namespace cbws

#endif // CBWS_BASE_TUNING_HH
