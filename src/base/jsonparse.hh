/**
 * @file
 * Minimal recursive-descent JSON reader, the counterpart of the
 * JsonWriter in base/json.hh. Added for the crash-safe experiment
 * checkpoint: resume must read back the JSONL records the previous
 * process appended. Covers the full JSON grammar the project emits
 * (objects, arrays, strings with the writer's escapes, integers,
 * doubles, booleans, null); unsigned integers are preserved exactly
 * so 64-bit counters round-trip bit-for-bit.
 */

#ifndef CBWS_BASE_JSONPARSE_HH
#define CBWS_BASE_JSONPARSE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/result.hh"

namespace cbws
{

/** One parsed JSON value (a small tagged tree). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Uint,   ///< non-negative integer that fits a uint64
        Number, ///< any other number (negative, fractional, exponent)
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    std::uint64_t uintValue = 0; ///< valid when type == Uint
    double number = 0.0;         ///< valid for Uint and Number
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isUint() const { return type == Type::Uint; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member's uint value, or @p fallback when absent/mistyped. */
    std::uint64_t uintOr(const std::string &key,
                         std::uint64_t fallback = 0) const;

    /** Member's string value, or @p fallback when absent/mistyped. */
    std::string strOr(const std::string &key,
                      const std::string &fallback = "") const;
};

/**
 * Parse @p text as one JSON document. Corrupt on any syntax error
 * (with position context) or trailing garbage.
 */
Result<JsonValue> parseJson(const std::string &text);

} // namespace cbws

#endif // CBWS_BASE_JSONPARSE_HH
