/**
 * @file
 * Minimal recursive-descent JSON reader, the counterpart of the
 * JsonWriter in base/json.hh. Added for the crash-safe experiment
 * checkpoint: resume must read back the JSONL records the previous
 * process appended. Covers the full JSON grammar the project emits
 * (objects, arrays, strings with the writer's escapes, integers,
 * doubles, booleans, null); unsigned integers are preserved exactly
 * so 64-bit counters round-trip bit-for-bit.
 *
 * Since the serving layer (src/serve) started feeding it bytes read
 * straight off a socket, the parser is bounded: nesting depth, string
 * length, number-token length and whole-document size are all capped
 * (JsonLimits), and exceeding a cap is a clean Errc::Corrupt — never
 * deep recursion or unbounded allocation on adversarial input.
 */

#ifndef CBWS_BASE_JSONPARSE_HH
#define CBWS_BASE_JSONPARSE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/result.hh"

namespace cbws
{

/** One parsed JSON value (a small tagged tree). */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Uint,   ///< non-negative integer that fits a uint64
        Number, ///< any other number (negative, fractional, exponent)
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    std::uint64_t uintValue = 0; ///< valid when type == Uint
    double number = 0.0;         ///< valid for Uint and Number
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }
    bool isString() const { return type == Type::String; }
    bool isUint() const { return type == Type::Uint; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Member's uint value, or @p fallback when absent/mistyped. */
    std::uint64_t uintOr(const std::string &key,
                         std::uint64_t fallback = 0) const;

    /** Member's string value, or @p fallback when absent/mistyped. */
    std::string strOr(const std::string &key,
                      const std::string &fallback = "") const;
};

/**
 * Resource bounds enforced while parsing. The defaults are generous
 * enough for every format the project writes itself (checkpoints,
 * snapshots, reports); surfaces that parse *untrusted* bytes — the
 * cbws-served wire protocol — pass deliberately tighter caps.
 * A cap of 0 means unlimited.
 */
struct JsonLimits
{
    /** Maximum object/array nesting (recursion) depth. */
    std::size_t maxDepth = 128;
    /** Maximum decoded bytes in a single string value or key. */
    std::size_t maxStringBytes = 1u << 22;
    /** Maximum characters in one number token. */
    std::size_t maxNumberChars = 64;
    /** Maximum size of the whole document, in bytes. */
    std::size_t maxDocumentBytes = 0;
};

/**
 * Parse @p text as one JSON document. Corrupt on any syntax error
 * (with position context), trailing garbage, or an exceeded limit.
 */
Result<JsonValue> parseJson(const std::string &text);

/** parseJson with explicit resource bounds. */
Result<JsonValue> parseJson(const std::string &text,
                            const JsonLimits &limits);

} // namespace cbws

#endif // CBWS_BASE_JSONPARSE_HH
