#include "table.hh"

#include <cstdio>
#include <sstream>

namespace cbws
{

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::render() const
{
    // Compute per-column widths over the header and every row.
    std::vector<std::size_t> widths;
    auto absorb = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    absorb(header_);
    for (const auto &r : rows_)
        absorb(r);

    std::ostringstream out;
    auto emit = [&out, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size()) {
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
            }
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

} // namespace cbws
