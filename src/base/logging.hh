/**
 * @file
 * Error and status reporting in the gem5 tradition: panic() for simulator
 * bugs, fatal() for user/configuration errors, warn()/inform() for
 * diagnostics that do not stop the run.
 */

#ifndef CBWS_BASE_LOGGING_HH
#define CBWS_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace cbws
{

/**
 * Format a printf-style message into a std::string.
 */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/**
 * panic(): a condition occurred that indicates a bug in the simulator
 * itself, regardless of user input. Aborts (may dump core).
 */
#define panic(...) \
    ::cbws::panicImpl(__FILE__, __LINE__, ::cbws::vformat(__VA_ARGS__))

/**
 * fatal(): the simulation cannot continue because of a user error (bad
 * configuration, invalid arguments). Exits with status 1.
 */
#define fatal(...) \
    ::cbws::fatalImpl(__FILE__, __LINE__, ::cbws::vformat(__VA_ARGS__))

/** panic() when @p cond does not hold. */
#define panic_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            panic(__VA_ARGS__);                                           \
    } while (0)

/** fatal() when @p cond does not hold. */
#define fatal_if(cond, ...)                                               \
    do {                                                                  \
        if (cond)                                                         \
            fatal(__VA_ARGS__);                                           \
    } while (0)

/** Non-fatal warning to stderr. */
#define warn(...) ::cbws::warnImpl(::cbws::vformat(__VA_ARGS__))

/** Informational status message to stdout. */
#define inform(...) ::cbws::informImpl(::cbws::vformat(__VA_ARGS__))

} // namespace cbws

#endif // CBWS_BASE_LOGGING_HH
