/**
 * @file
 * Live progress meter for long cell-matrix runs.
 *
 * Writes to stderr only — stdout carries reports whose bytes are
 * golden-diffed in CI, so progress must never touch it. On a TTY the
 * line rewrites itself in place (\r); otherwise it degrades to an
 * occasional plain line so build logs stay readable. All counters are
 * atomics: worker threads call advance() directly.
 */

#ifndef CBWS_BASE_PROGRESS_HH
#define CBWS_BASE_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

namespace cbws
{

class ProgressMeter
{
  public:
    /**
     * @param label short phase tag, e.g. "simulation".
     * @param total number of cells expected.
     * @param enabled when false every call is a cheap no-op, so call
     *        sites don't need their own gating.
     */
    ProgressMeter(std::string label, std::size_t total, bool enabled);

    /** Emits the final line (see finish()). */
    ~ProgressMeter();

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    /**
     * One cell finished. @p restored marks cells satisfied from a
     * cache or checkpoint rather than simulated (reported separately
     * so a resumed run's speed isn't mistaken for simulation speed).
     * Thread-safe.
     */
    void advance(bool restored = false);

    /**
     * Account @p count simulated instructions to this phase; the
     * progress line then carries a live aggregate insts/sec across
     * all workers. Thread-safe; cells report once, at completion.
     */
    void addInstructions(std::uint64_t count);

    /** Force the summary line out (idempotent; ~ calls it). */
    void finish();

    /** Honour CBWS_PROGRESS=1/true/yes/on. */
    static bool enabledFromEnv();

  private:
    void render(bool final);

    std::string label_;
    std::size_t total_;
    bool enabled_;
    bool tty_ = false;
    bool finished_ = false;
    std::atomic<std::size_t> done_{0};
    std::atomic<std::size_t> restored_{0};
    std::atomic<std::uint64_t> instructions_{0};
    std::chrono::steady_clock::time_point start_;
    std::mutex renderMutex_;
    std::chrono::steady_clock::time_point lastRender_;
};

} // namespace cbws

#endif // CBWS_BASE_PROGRESS_HH
