#include "core/multi_context.hh"

namespace cbws
{

CbwsMultiContextPrefetcher::CbwsMultiContextPrefetcher(
    const CbwsMultiContextParams &params)
    : params_(params)
{
}

CbwsPrefetcher &
CbwsMultiContextPrefetcher::contextFor(BlockId id)
{
    auto it = contexts_.find(id);
    if (it != contexts_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return *it->second.unit;
    }
    if (contexts_.size() >= params_.numContexts) {
        const BlockId victim = lru_.back();
        if (active_ == contexts_.at(victim).unit.get())
            active_ = nullptr;
        contexts_.erase(victim);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(id);
    Context ctx;
    // Stagger the per-context random-eviction seeds.
    CbwsParams unit_params = params_.context;
    unit_params.tableSeed = params_.context.tableSeed + id;
    ctx.unit = std::make_unique<CbwsPrefetcher>(unit_params);
    ctx.lruIt = lru_.begin();
    auto [pos, inserted] = contexts_.emplace(id, std::move(ctx));
    (void)inserted;
    return *pos->second.unit;
}

void
CbwsMultiContextPrefetcher::observeCommit(const PrefetchContext &ctx,
                                          PrefetchSink &sink)
{
    if (active_)
        active_->observeCommit(ctx, sink);
}

void
CbwsMultiContextPrefetcher::blockBegin(BlockId id, PrefetchSink &sink)
{
    active_ = &contextFor(id);
    active_->blockBegin(id, sink);
}

void
CbwsMultiContextPrefetcher::blockEnd(BlockId id, PrefetchSink &sink)
{
    auto it = contexts_.find(id);
    if (it != contexts_.end())
        it->second.unit->blockEnd(id, sink);
    active_ = nullptr;
}

std::uint64_t
CbwsMultiContextPrefetcher::storageBits() const
{
    const CbwsPrefetcher unit(params_.context);
    // Per-context state plus a small block-id tag per context.
    return params_.numContexts * (unit.storageBits() + 16);
}

CbwsSchemeStats
CbwsMultiContextPrefetcher::aggregateStats() const
{
    CbwsSchemeStats total;
    for (const auto &[id, ctx] : contexts_) {
        const auto &s = ctx.unit->schemeStats();
        total.blocksCompleted += s.blocksCompleted;
        total.blocksTruncated += s.blocksTruncated;
        total.tableHits += s.tableHits;
        total.tableMisses += s.tableMisses;
        total.linesPredicted += s.linesPredicted;
        total.accessesTracked += s.accessesTracked;
        total.accessesOutsideBlock += s.accessesOutsideBlock;
    }
    return total;
}

} // namespace cbws
