/**
 * @file
 * The code block working set (CBWS) prefetcher — the paper's primary
 * contribution (Sections IV and V).
 *
 * Operation (Algorithm 1):
 *  - BLOCK_BEGIN clears the current-CBWS tracking state;
 *  - each memory access inside the block pushes its (distinct) line
 *    into the current CBWS and incrementally extends the k-step
 *    differentials against the last k CBWSs of the same block;
 *  - BLOCK_END stores each k-step differential into the differential
 *    history table under the k-step history register's tag, shifts the
 *    histories and last-CBWS buffers, then predicts: for every step k
 *    whose (new) history hits in the table, the predicted differential
 *    is added to the just-completed CBWS and the resulting lines are
 *    prefetched, skipping lines that are already cached.
 *
 * The standalone CBWS prefetcher issues prefetches *only* on a history
 * table hit — its confidence rule — and is otherwise silent, which is
 * what the CBWS+SMS composite exploits for fallback.
 */

#ifndef CBWS_CORE_CBWS_PREFETCHER_HH
#define CBWS_CORE_CBWS_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "base/stats.hh"
#include "core/cbws_types.hh"
#include "core/diff_table.hh"
#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** CBWS configuration; defaults follow Fig. 8 / Table II. */
struct CbwsParams
{
    /** Hardware FIFO depth: distinct lines traced per block (16). */
    unsigned maxVectorMembers = 16;
    /** Last CBWSs stored; also the deepest prediction step (4). */
    unsigned numSteps = 4;
    /** Differential hashes per history shift register (48/12 = 4). */
    unsigned historyDepth = 4;
    /** Bits per hashed differential in the shift registers (12). */
    unsigned hashBits = 12;
    /** Differential history table entries, fully associative (16). */
    unsigned tableEntries = 16;
    /** xor-folded history tag width (16). */
    unsigned tagBits = 16;
    /** Track all L1 accesses inside blocks (the compiler-hint
     *  aggressiveness of Section II); the ablation flips this to
     *  misses-only. */
    bool trainOnHits = true;
    /** Line-address bits kept per CBWS member (Fig. 8: lower 32). */
    unsigned memberBits = 32;
    /** Stride bits per differential element (16). */
    unsigned strideBits = 16;
    /** Random-eviction seed for the differential table. */
    std::uint64_t tableSeed = 0xCB;
};

/** `--pf-opt` keys for CbwsParams (also mounted by composites). */
ParamSchema cbwsParamSchema();

/** Counters specific to the CBWS scheme. */
struct CbwsSchemeStats
{
    std::uint64_t blocksCompleted = 0;
    std::uint64_t blocksTruncated = 0; ///< working set exceeded capacity
    std::uint64_t tableHits = 0;       ///< prediction lookups that hit
    std::uint64_t tableMisses = 0;
    std::uint64_t linesPredicted = 0;
    std::uint64_t accessesTracked = 0;
    std::uint64_t accessesOutsideBlock = 0;
};

/**
 * The standalone CBWS prefetcher.
 */
class CbwsPrefetcher : public Prefetcher
{
  public:
    explicit CbwsPrefetcher(const CbwsParams &params = CbwsParams());

    void observeCommit(const PrefetchContext &ctx,
                 PrefetchSink &sink) override;
    void blockBegin(BlockId id, PrefetchSink &sink) override;
    void blockEnd(BlockId id, PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "CBWS"; }

    void exportMetrics(MetricsRegistry &reg,
                       const std::string &prefix) const override;

    const CbwsSchemeStats &schemeStats() const { return stats_; }
    const CbwsParams &params() const { return params_; }

    /** Live prediction-table view (observability gauges). */
    const DifferentialTable &table() const { return table_; }

    /** Currently between BLOCK_BEGIN and BLOCK_END? */
    bool inBlock() const { return inBlock_; }

    /**
     * Did the most recent BLOCK_END produce at least one prediction?
     * The CBWS+SMS composite gates the SMS fallback on this.
     */
    bool lastBlockPredicted() const { return lastBlockPredicted_; }

    /** The working set recorded so far for the current block. */
    const CbwsVector &currentCbws() const { return currCbws_; }

    /**
     * Attach an instrumentation probe that records the identity of
     * every 1-step differential (drives the Fig. 5 skew analysis).
     * Pass nullptr to detach. Not part of the hardware.
     */
    void setDifferentialProbe(FrequencyCounter *probe)
    {
        probe_ = probe;
    }

  private:
    void resetBlockContext();

    CbwsParams params_;
    CbwsSchemeStats stats_;
    FrequencyCounter *probe_ = nullptr;

    bool inBlock_ = false;
    bool lastBlockPredicted_ = false;
    bool haveBlockId_ = false;
    BlockId currentBlockId_ = 0;
    bool currTruncated_ = false;

    /** Current CBWS buffer (Fig. 8). */
    CbwsVector currCbws_;
    /** Last-blocks CBWS buffer: prev_[k-1] is the CBWS k blocks ago. */
    std::vector<CbwsVector> prev_;
    /** Current differentials buffer, one per step, built
     *  incrementally on every access (Fig. 10). */
    std::vector<CbwsDifferential> currDiff_;
    /** History shift registers, one per step. */
    std::vector<HistoryShiftRegister> history_;
    /** The differential history table. */
    DifferentialTable table_;
};

} // namespace cbws

#endif // CBWS_CORE_CBWS_PREFETCHER_HH
