/**
 * @file
 * Multi-context CBWS — an extension beyond the paper.
 *
 * The paper's hardware holds a *single* block context: on every
 * BLOCK_BEGIN with a new static identifier, the last-CBWS buffers and
 * history registers are cleared (Fig. 9), so two tight loops whose
 * iterations interleave (ping-pong phases, fused kernels, inner loops
 * alternating under a short outer loop) continually destroy each
 * other's history.
 *
 * This extension replicates the per-block tracking state across a
 * small number of contexts managed by block id with LRU replacement.
 * Each context is a complete CBWS unit (the differential history
 * table is also per-context, which is conservative: a shared table
 * would be smaller but reintroduce cross-block tag interference).
 * Storage scales linearly; with the paper's <1 KB unit, a 4-context
 * version still costs less than the SMS baseline.
 */

#ifndef CBWS_CORE_MULTI_CONTEXT_HH
#define CBWS_CORE_MULTI_CONTEXT_HH

#include <list>
#include <memory>
#include <unordered_map>

#include "core/cbws_prefetcher.hh"

namespace cbws
{

/** Configuration: the per-context geometry plus the context count. */
struct CbwsMultiContextParams
{
    CbwsParams context;
    unsigned numContexts = 4;
};

/**
 * CBWS with one tracking context per recently-seen static block.
 */
class CbwsMultiContextPrefetcher : public Prefetcher
{
  public:
    explicit CbwsMultiContextPrefetcher(
        const CbwsMultiContextParams &params =
            CbwsMultiContextParams());

    void observeCommit(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;
    void blockBegin(BlockId id, PrefetchSink &sink) override;
    void blockEnd(BlockId id, PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "CBWS-MC"; }

    /** Number of live contexts (<= numContexts). */
    std::size_t activeContexts() const { return contexts_.size(); }

    /** Contexts evicted due to capacity. */
    std::uint64_t evictions() const { return evictions_; }

    /** Aggregated scheme statistics over all live contexts. */
    CbwsSchemeStats aggregateStats() const;

  private:
    struct Context
    {
        std::unique_ptr<CbwsPrefetcher> unit;
        std::list<BlockId>::iterator lruIt;
    };

    /** Find or create (evicting LRU) the context for @p id. */
    CbwsPrefetcher &contextFor(BlockId id);

    CbwsMultiContextParams params_;
    std::unordered_map<BlockId, Context> contexts_;
    std::list<BlockId> lru_; ///< front = most recent
    CbwsPrefetcher *active_ = nullptr;
    std::uint64_t evictions_ = 0;
};

} // namespace cbws

#endif // CBWS_CORE_MULTI_CONTEXT_HH
