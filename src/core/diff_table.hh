/**
 * @file
 * The CBWS predictor's correlation hardware: per-step history shift
 * registers and the fully-associative differential history table
 * (Section V-A, Fig. 8).
 *
 * Each of the four prediction steps owns a shift register holding a
 * short history of hashed differentials (the paper stores 12-bit
 * bit-select hashes whose concatenation, 48 bits, is xor-folded into a
 * 16-bit tag). The tag indexes a 16-entry fully-associative table with
 * random eviction that maps a differential history to the differential
 * observed to follow it.
 */

#ifndef CBWS_CORE_DIFF_TABLE_HH
#define CBWS_CORE_DIFF_TABLE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "base/random.hh"
#include "core/cbws_types.hh"

namespace cbws
{

/**
 * Shift register of hashed differentials, analogous to a branch
 * history register but shifting CBWS differential hashes.
 */
class HistoryShiftRegister
{
  public:
    HistoryShiftRegister(unsigned depth, unsigned hash_bits)
        : depth_(depth), hashBits_(hash_bits)
    {
    }

    /** Shift in the hash of the newest differential. */
    void
    push(std::uint16_t hashed)
    {
        history_.push_front(hashed);
        if (history_.size() > depth_)
            history_.pop_back();
    }

    /** True once the register holds a full history. */
    bool full() const { return history_.size() == depth_; }

    std::size_t size() const { return history_.size(); }

    void
    clear()
    {
        history_.clear();
    }

    /**
     * xor-fold the depth * hashBits concatenation into @p tag_bits.
     */
    std::uint16_t
    tag(unsigned tag_bits) const
    {
        std::uint64_t concat = 0;
        unsigned shift = 0;
        for (std::uint16_t h : history_) {
            // Histories deeper than the 64-bit accumulator wrap
            // around it: the fold below only needs a stable mix of
            // every hash, not a lossless concatenation, and the
            // explicit mask keeps the shift in range.
            concat |= static_cast<std::uint64_t>(h) << (shift & 63u);
            shift += hashBits_;
        }
        std::uint64_t folded = 0;
        while (concat != 0) {
            folded ^= concat & ((1ull << tag_bits) - 1);
            concat >>= tag_bits;
        }
        return static_cast<std::uint16_t>(folded);
    }

  private:
    unsigned depth_;
    unsigned hashBits_;
    std::deque<std::uint16_t> history_; ///< front = newest
};

/**
 * Fully-associative differential history table with random eviction.
 */
class DifferentialTable
{
  public:
    DifferentialTable(unsigned entries, std::uint64_t seed = 0xCB)
        : entries_(entries), rng_(seed)
    {
        slots_.resize(entries);
    }

    /** Look up the differential recorded for history tag @p tag. */
    const CbwsDifferential *
    lookup(std::uint16_t tag) const
    {
        for (const auto &slot : slots_)
            if (slot.valid && slot.tag == tag)
                return &slot.diff;
        return nullptr;
    }

    /** Record that history @p tag was followed by @p diff. */
    void
    insert(std::uint16_t tag, CbwsDifferential diff)
    {
        for (auto &slot : slots_) {
            if (slot.valid && slot.tag == tag) {
                slot.diff = std::move(diff);
                return;
            }
        }
        for (auto &slot : slots_) {
            if (!slot.valid) {
                slot.valid = true;
                slot.tag = tag;
                slot.diff = std::move(diff);
                return;
            }
        }
        auto &victim = slots_[rng_.below(slots_.size())];
        victim.tag = tag;
        victim.diff = std::move(diff);
    }

    void
    clear()
    {
        for (auto &slot : slots_)
            slot.valid = false;
    }

    unsigned capacity() const { return entries_; }

    unsigned
    occupancy() const
    {
        unsigned n = 0;
        for (const auto &slot : slots_)
            if (slot.valid)
                ++n;
        return n;
    }

  private:
    struct Slot
    {
        std::uint16_t tag = 0;
        CbwsDifferential diff;
        bool valid = false;
    };

    unsigned entries_;
    std::vector<Slot> slots_;
    Random rng_;
};

} // namespace cbws

#endif // CBWS_CORE_DIFF_TABLE_HH
