#include "core/cbws_prefetcher.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "prefetch/registry.hh"

namespace cbws
{

CbwsPrefetcher::CbwsPrefetcher(const CbwsParams &params)
    : params_(params),
      prev_(params.numSteps),
      currDiff_(params.numSteps),
      table_(params.tableEntries, params.tableSeed)
{
    fatal_if(params_.numSteps == 0, "CBWS needs at least one step");
    history_.reserve(params_.numSteps);
    for (unsigned k = 0; k < params_.numSteps; ++k) {
        history_.emplace_back(params_.historyDepth, params_.hashBits);
    }
}

void
CbwsPrefetcher::resetBlockContext()
{
    currCbws_.clear();
    currTruncated_ = false;
    for (auto &d : currDiff_)
        d.clear();
}

void
CbwsPrefetcher::blockBegin(BlockId id, PrefetchSink &sink)
{
    (void)sink;
    if (!haveBlockId_ || id != currentBlockId_) {
        // The hardware holds a single block context: switching to a
        // different static block discards the accumulated history.
        for (auto &p : prev_)
            p.clear();
        for (auto &h : history_)
            h.clear();
        currentBlockId_ = id;
        haveBlockId_ = true;
        lastBlockPredicted_ = false;
    }
    resetBlockContext();
    inBlock_ = true;
}

void
CbwsPrefetcher::observeCommit(const PrefetchContext &ctx, PrefetchSink &sink)
{
    (void)sink;
    if (!inBlock_) {
        ++stats_.accessesOutsideBlock;
        return;
    }
    if (ctx.l1Hit && !params_.trainOnHits)
        return;

    const std::uint32_t line32 = static_cast<std::uint32_t>(ctx.line);
    const auto outcome = currCbws_.push(line32,
                                        params_.maxVectorMembers);
    if (outcome == CbwsVector::Push::Duplicate)
        return;
    if (outcome == CbwsVector::Push::Overflow) {
        currTruncated_ = true;
        return;
    }

    ++stats_.accessesTracked;
    // Incrementally extend each k-step differential: the new member's
    // stride against the correlated entry of the CBWS k blocks ago
    // (Fig. 10 — this is why the predictor needs only 4 adders).
    const std::size_t idx = currCbws_.size() - 1;
    for (unsigned k = 0; k < params_.numSteps; ++k) {
        if (idx < prev_[k].size()) {
            currDiff_[k].append(static_cast<std::int16_t>(
                line32 - prev_[k][idx]));
        }
    }
}

void
CbwsPrefetcher::blockEnd(BlockId id, PrefetchSink &sink)
{
    if (!inBlock_ || !haveBlockId_ || id != currentBlockId_) {
        // Unpaired BLOCK_END (e.g., context switched mid-block):
        // drop the partial trace.
        inBlock_ = false;
        resetBlockContext();
        return;
    }
    inBlock_ = false;
    ++stats_.blocksCompleted;
    if (currTruncated_)
        ++stats_.blocksTruncated;
    DPRINTF(CBWS, "block %llu end: ws=%zu members%s",
            static_cast<unsigned long long>(id), currCbws_.size(),
            currTruncated_ ? " (truncated)" : "");

    // Fig. 5 instrumentation: identity of the 1-step differential.
    if (probe_ && !prev_[0].empty() && !currDiff_[0].empty())
        probe_->sample(currDiff_[0].identityHash());

    // 1. Update the prediction database: under the tag of each step's
    //    *pre-update* history, record the differential that followed
    //    it; then shift the history registers (Algorithm 1).
    for (unsigned k = 0; k < params_.numSteps; ++k) {
        if (prev_[k].empty() || currDiff_[k].empty())
            continue;
        if (history_[k].size() > 0) {
            table_.insert(history_[k].tag(params_.tagBits),
                          currDiff_[k]);
        }
        history_[k].push(currDiff_[k].hashBits(params_.hashBits));
    }

    // 2. Shift the last-blocks CBWS buffer. Rotating the slots moves
    //    each vector's storage instead of deep-copying it; the oldest
    //    slot lands at prev_[0] and is overwritten (reusing its
    //    capacity) with the just-completed CBWS.
    std::rotate(prev_.begin(), prev_.end() - 1, prev_.end());
    prev_[0] = currCbws_;

    // 3. Predict: for each step k, a hit on the (new) history tag
    //    yields the expected k-step differential; adding it to the
    //    just-completed CBWS predicts the working set of block n+k.
    lastBlockPredicted_ = false;
    for (unsigned k = 0; k < params_.numSteps; ++k) {
        if (history_[k].size() == 0 || prev_[0].empty())
            continue;
        const CbwsDifferential *pred =
            table_.lookup(history_[k].tag(params_.tagBits));
        if (!pred) {
            ++stats_.tableMisses;
            continue;
        }
        ++stats_.tableHits;
        lastBlockPredicted_ = true;
        DPRINTF(CBWS, "step %u hit: predicting %zu lines for "
                "block %llu", k, pred->size(),
                static_cast<unsigned long long>(id) + k + 1);
        const std::size_t n = pred->size() < prev_[0].size()
                                  ? pred->size()
                                  : prev_[0].size();
        for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t target32 =
                prev_[0][j] +
                static_cast<std::uint32_t>(
                    static_cast<std::int32_t>((*pred)[j]));
            const LineAddr target = static_cast<LineAddr>(target32);
            if (!sink.isCached(target)) {
                sink.issuePrefetch(target, PfSource::Cbws);
                ++stats_.linesPredicted;
            }
        }
    }

    resetBlockContext();
}

std::uint64_t
CbwsPrefetcher::storageBits() const
{
    // Fig. 8 accounting. The predicted-differentials buffer is
    // transient staging (loaded and consumed within one BLOCK_END) and
    // is not counted, matching the paper's "<1KB" budget.
    const std::uint64_t curr =
        static_cast<std::uint64_t>(params_.maxVectorMembers) *
        params_.memberBits;
    const std::uint64_t last = static_cast<std::uint64_t>(
        params_.numSteps) * params_.maxVectorMembers *
        params_.memberBits;
    const std::uint64_t diffs = static_cast<std::uint64_t>(
        params_.numSteps) * params_.maxVectorMembers *
        params_.strideBits;
    const std::uint64_t hist = static_cast<std::uint64_t>(
        params_.numSteps) * params_.historyDepth * params_.hashBits;
    const std::uint64_t table = static_cast<std::uint64_t>(
        params_.tableEntries) *
        (params_.tagBits + static_cast<std::uint64_t>(
            params_.maxVectorMembers) * params_.strideBits);
    return curr + last + diffs + hist + table;
}

void
CbwsPrefetcher::exportMetrics(MetricsRegistry &reg,
                              const std::string &prefix) const
{
    const std::string p = prefix + ".cbws.";
    reg.addScalar(p + "blocksCompleted", stats_.blocksCompleted,
                  "BLOCK_END markers processed");
    reg.addScalar(p + "blocksTruncated", stats_.blocksTruncated,
                  "blocks whose working set exceeded capacity");
    reg.addScalar(p + "tableHits", stats_.tableHits,
                  "prediction lookups that hit the table");
    reg.addScalar(p + "tableMisses", stats_.tableMisses,
                  "prediction lookups that missed");
    reg.addFormula(
        p + "tableHitRate",
        stats_.tableHits + stats_.tableMisses
            ? static_cast<double>(stats_.tableHits) /
                  static_cast<double>(stats_.tableHits +
                                      stats_.tableMisses)
            : 0.0,
        "tableHits / (tableHits + tableMisses)",
        "fraction of lookups served by the differential table");
    reg.addScalar(p + "linesPredicted", stats_.linesPredicted,
                  "lines emitted as predictions");
    reg.addScalar(p + "accessesTracked", stats_.accessesTracked,
                  "in-block accesses recorded into working sets");
    reg.addScalar(p + "accessesOutsideBlock",
                  stats_.accessesOutsideBlock,
                  "committed accesses seen outside any block");
    reg.addScalar(p + "tableOccupancy",
                  static_cast<std::uint64_t>(table_.occupancy()),
                  "differential-table entries in use");
    reg.addScalar(p + "tableCapacity",
                  static_cast<std::uint64_t>(table_.capacity()),
                  "differential-table entry capacity");
}

ParamSchema
cbwsParamSchema()
{
    return ParamSchema()
        .field("max-vector-members", &CbwsParams::maxVectorMembers,
               "distinct lines traced per code block (FIFO depth)")
        .field("num-steps", &CbwsParams::numSteps,
               "stored working sets / deepest prediction step")
        .field("history-depth", &CbwsParams::historyDepth,
               "differential hashes per history shift register")
        .field("hash-bits", &CbwsParams::hashBits,
               "bits per hashed differential")
        .field("table-entries", &CbwsParams::tableEntries,
               "differential history table entries")
        .field("tag-bits", &CbwsParams::tagBits,
               "xor-folded history tag width")
        .field("train-on-hits", &CbwsParams::trainOnHits,
               "track all L1 accesses inside blocks")
        .field("member-bits", &CbwsParams::memberBits,
               "line-address bits kept per member (storage)")
        .field("stride-bits", &CbwsParams::strideBits,
               "stride bits per differential element (storage)")
        .field("table-seed", &CbwsParams::tableSeed,
               "random-eviction seed for the differential table");
}

CBWS_REGISTER_PREFETCHER(cbws, "CBWS",
                         "code block working set prefetcher (the "
                         "paper's scheme)",
                         cbwsParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<CbwsPrefetcher>(
                                 p.getOr<CbwsParams>());
                         })

} // namespace cbws
