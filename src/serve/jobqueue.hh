/**
 * @file
 * Persistent job queue and sealed-result index of cbws-served.
 *
 * Layout under the daemon's data directory:
 *
 *   queue/<key>.json          accepted-but-unsealed job specs. One
 *                             file per job, written atomically
 *                             (tmp + rename); a daemon restart
 *                             re-scans the directory and requeues
 *                             every spec it finds, so accepted work
 *                             survives a daemon crash.
 *   jobs/<key>/shard-<i>.ckpt per-shard experiment checkpoints
 *                             (sim/checkpoint.hh format), appended by
 *                             the forked workers and resumed across
 *                             worker SIGKILL.
 *   jobs/<key>/result.json    the sealed merged report — byte-equal
 *                             to a serial in-process run of the spec.
 *                             Its existence IS the dedup test: a
 *                             submission whose key has a sealed
 *                             result is served from this file without
 *                             simulating anything.
 *
 * <key> is the 16-hex-digit job fingerprint (serve/protocol.hh), so
 * the queue dedupes structurally: equal experiments collide on the
 * same paths no matter who submits them or when.
 */

#ifndef CBWS_SERVE_JOBQUEUE_HH
#define CBWS_SERVE_JOBQUEUE_HH

#include <deque>
#include <string>

#include "base/result.hh"
#include "serve/protocol.hh"

namespace cbws
{
namespace serve
{

/** One queued (or running) job. */
struct Job
{
    std::string key;
    JobSpec spec;
};

/** What submit() decided about a new spec. */
struct SubmitOutcome
{
    std::string key;
    /** Sealed result already on disk: nothing was queued. */
    bool deduped = false;
    /** Spec equal to an already queued/running job: not re-queued. */
    bool alreadyQueued = false;
    /** Position in the queue (0 = running/next; dedup: meaningless). */
    std::size_t queuePosition = 0;
};

class JobQueue
{
  public:
    /**
     * Bind to @p data_dir, creating the layout if missing and
     * requeuing every spec found under queue/ (crash recovery).
     * Specs that fail validation against this build's registries are
     * dropped with a warning rather than wedging the daemon.
     */
    Result<void> open(const std::string &data_dir);

    /** Accept @p spec: dedup against sealed results and the live
     *  queue, else persist a spool file and enqueue. */
    Result<SubmitOutcome> submit(const JobSpec &spec);

    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }

    /** Front of the queue (the job the scheduler runs next). */
    const Job &front() const { return queue_.front(); }

    /** All queued jobs, front first (status reporting). */
    const std::deque<Job> &jobs() const { return queue_; }

    /**
     * Seal the front job: write jobs/<key>/result.json atomically,
     * then drop the spool file and pop the queue. The sealed file is
     * the dedup source for every later submission of the same key.
     */
    Result<void> sealFront(const std::string &result_json);

    /** Drop the front job without a result (permanent failure). */
    void failFront();

    /** True when @p key has a sealed result on disk. */
    bool hasSealed(const std::string &key) const;

    /** Load a sealed result's bytes. */
    Result<std::string> loadSealed(const std::string &key) const;

    /** jobs/<key> (shard checkpoints live here); created on demand. */
    Result<std::string> jobDir(const std::string &key) const;

    const std::string &dataDir() const { return dir_; }

  private:
    std::string spoolPath(const std::string &key) const;
    std::string sealedPath(const std::string &key) const;

    std::string dir_;
    std::deque<Job> queue_;
};

/** Atomic small-file write: tmp in the same dir, fsync, rename. */
Result<void> writeFileAtomic(const std::string &path,
                             const std::string &contents);

/** Read a whole small file. NotFound/IoError on failure. */
Result<std::string> readFile(const std::string &path);

} // namespace serve
} // namespace cbws

#endif // CBWS_SERVE_JOBQUEUE_HH
