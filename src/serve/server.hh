/**
 * @file
 * The cbws-served daemon core: a single-threaded poll() loop serving
 * the JSONL wire protocol (serve/protocol.hh) over unix-domain and/or
 * TCP listeners, feeding accepted jobs through the persistent
 * JobQueue one at a time, and sharding the running job's cells across
 * a Supervisor-managed pool of forked workers.
 *
 * Single-threadedness is load-bearing: the daemon forks workers, and
 * forking a multi-threaded process is where the bodies are buried.
 * Everything — accepts, request parsing, worker progress, reaping,
 * respawn timers, stats ticks — multiplexes over one poll() set, with
 * a self-pipe turning SIGCHLD/SIGTERM/SIGINT into pollable bytes.
 */

#ifndef CBWS_SERVE_SERVER_HH
#define CBWS_SERVE_SERVER_HH

#include <cstdint>
#include <list>
#include <set>
#include <string>
#include <vector>

#include "base/socket.hh"
#include "serve/jobqueue.hh"
#include "serve/supervisor.hh"

namespace cbws
{
namespace serve
{

class Server
{
  public:
    struct Options
    {
        /** Listen addresses (at least one). */
        std::vector<SocketAddr> listen;
        /** Queue spools, shard checkpoints and sealed results. */
        std::string dataDir = "served-data";
        /** Worker processes per job. */
        unsigned workers = 2;
        /** Respawn budget per shard. */
        unsigned maxRespawns = 8;
        /** Minimum interval between stats events, ms. */
        std::uint64_t statsIntervalMs = 500;
        bool verbose = false;
    };

    /** Open the data dir (requeueing spooled jobs), bind listeners,
     *  arm the self-pipe signal handlers. */
    Result<void> init(const Options &options);

    /** Serve until a shutdown request or SIGTERM/SIGINT. Returns the
     *  process exit code. */
    int run();

    /** Addresses actually bound (for the ready line). */
    std::vector<std::string> boundAddresses() const;

  private:
    struct Client
    {
        OwnedFd fd;
        LineChannel channel;
        /** Job keys this client receives events for. */
        std::set<std::string> subscriptions;
        bool dead = false;
    };

    /** Per-running-job progress accounting (cell dedup across worker
     *  respawns: a resumed cell must not double-count). */
    struct JobProgress
    {
        std::string key;
        std::size_t total = 0;
        std::vector<char> cellDone;
        std::size_t done = 0;
        std::uint64_t insts = 0;
        std::uint64_t startMs = 0;
        std::uint64_t lastStatsMs = 0;
        std::size_t lastStatsDone = 0;
        std::uint64_t lastStatsInsts = 0;
    };

    static std::uint64_t nowMs();

    void acceptClients(int listen_fd);
    void serviceClient(Client &client);
    void handleRequest(Client &client, const std::string &line);
    void broadcast(const std::string &key, const std::string &event);
    void sendEvent(Client &client, const std::string &event);
    void reapDeadClients();

    void maybeStartJob();
    void handleSupervisorEvents(
        const std::vector<Supervisor::Event> &events);
    void maybeEmitStats(bool force);
    void finishJob();
    void failJob(const std::string &reason);
    std::string statusEventJson() const;
    void closeInheritedFdsInChild();

    Options options_;
    std::vector<OwnedFd> listeners_;
    std::list<Client> clients_;
    JobQueue queue_;
    Supervisor supervisor_;
    JobProgress progress_;
    OwnedFd selfPipeRead_, selfPipeWrite_;
    bool shuttingDown_ = false;
};

} // namespace serve
} // namespace cbws

#endif // CBWS_SERVE_SERVER_HH
