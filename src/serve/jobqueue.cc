#include "serve/jobqueue.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

#include "base/logging.hh"

namespace cbws
{
namespace serve
{

namespace
{

Result<void>
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0775) == 0 || errno == EEXIST)
        return Result<void>();
    return Error(Errc::IoError,
                 "mkdir " + path + ": " + std::strerror(errno));
}

/**
 * Durably record a rename in @p path's parent directory. rename()
 * alone only changes in-memory directory state; without this a crash
 * shortly after sealing could roll the rename back even though the
 * caller was told the write succeeded (and may already have unlinked
 * the spool it was replacing).
 */
Result<void>
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : slash == 0 ? std::string("/")
                                             : path.substr(0, slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return Error(Errc::IoError, dir + ": open for fsync: " +
                                        std::strerror(errno));
    const int rc = ::fsync(fd);
    const int saved = errno;
    ::close(fd);
    if (rc != 0)
        return Error(Errc::IoError,
                     dir + ": fsync: " + std::strerror(saved));
    return Result<void>();
}

} // anonymous namespace

Result<void>
writeFileAtomic(const std::string &path, const std::string &contents)
{
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (!file)
        return Error(Errc::IoError,
                     tmp + ": " + std::strerror(errno));
    const bool wrote =
        std::fwrite(contents.data(), 1, contents.size(), file) ==
            contents.size() &&
        std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
    std::fclose(file);
    if (!wrote) {
        ::unlink(tmp.c_str());
        return Error(Errc::IoError,
                     tmp + ": write failed: " + std::strerror(errno));
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return Error(Errc::IoError, path + ": rename failed: " +
                                        std::strerror(errno));
    }
    return fsyncParentDir(path);
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Error(errno == ENOENT ? Errc::NotFound : Errc::IoError,
                     path + ": " + std::strerror(errno));
    std::ostringstream out;
    out << in.rdbuf();
    if (in.bad())
        return Error(Errc::IoError, path + ": read failed");
    return out.str();
}

std::string
JobQueue::spoolPath(const std::string &key) const
{
    return dir_ + "/queue/" + key + ".json";
}

std::string
JobQueue::sealedPath(const std::string &key) const
{
    return dir_ + "/jobs/" + key + "/result.json";
}

Result<std::string>
JobQueue::jobDir(const std::string &key) const
{
    const std::string path = dir_ + "/jobs/" + key;
    Result<void> made = ensureDir(path);
    if (!made.ok())
        return made.error();
    return path;
}

Result<void>
JobQueue::open(const std::string &data_dir)
{
    dir_ = data_dir;
    for (const std::string &sub :
         {dir_, dir_ + "/queue", dir_ + "/jobs"}) {
        Result<void> made = ensureDir(sub);
        if (!made.ok())
            return made;
    }

    // Crash recovery: requeue every spool file, oldest first so the
    // original submission order is roughly preserved (spool names
    // sort by key, which is arbitrary but stable — what matters is
    // that nothing accepted is lost).
    std::vector<std::string> names;
    DIR *dir = ::opendir((dir_ + "/queue").c_str());
    if (!dir)
        return Error(Errc::IoError, dir_ + "/queue: " +
                                        std::strerror(errno));
    while (dirent *entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());

    for (const auto &name : names) {
        const std::string path = dir_ + "/queue/" + name;
        Result<std::string> text = readFile(path);
        if (!text.ok()) {
            warn("jobqueue: dropping unreadable spool %s (%s)",
                 path.c_str(), text.error().str().c_str());
            ::unlink(path.c_str());
            continue;
        }
        Result<JsonValue> parsed =
            parseJson(text.value(), protocolJsonLimits());
        if (!parsed.ok()) {
            warn("jobqueue: dropping corrupt spool %s (%s)",
                 path.c_str(), parsed.error().str().c_str());
            ::unlink(path.c_str());
            continue;
        }
        Result<JobSpec> spec = parseJobSpec(parsed.value());
        if (!spec.ok()) {
            // E.g. a scheme that no longer exists in this build.
            warn("jobqueue: dropping stale spool %s (%s)",
                 path.c_str(), spec.error().str().c_str());
            ::unlink(path.c_str());
            continue;
        }
        Job job;
        job.spec = std::move(spec).value();
        job.key = jobKey(job.spec);
        if (hasSealed(job.key)) {
            // Sealed between the spool write and the crash: done.
            ::unlink(path.c_str());
            continue;
        }
        queue_.push_back(std::move(job));
    }
    if (!queue_.empty())
        warn("jobqueue: recovered %zu queued job(s) from %s",
             queue_.size(), (dir_ + "/queue").c_str());
    return Result<void>();
}

Result<SubmitOutcome>
JobQueue::submit(const JobSpec &spec)
{
    SubmitOutcome outcome;
    outcome.key = jobKey(spec);
    if (hasSealed(outcome.key)) {
        outcome.deduped = true;
        return outcome;
    }
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].key == outcome.key) {
            outcome.alreadyQueued = true;
            outcome.queuePosition = i;
            return outcome;
        }
    }
    Result<void> spooled =
        writeFileAtomic(spoolPath(outcome.key), jobSpecJson(spec));
    if (!spooled.ok())
        return spooled.error();
    Job job;
    job.key = outcome.key;
    job.spec = spec;
    queue_.push_back(std::move(job));
    outcome.queuePosition = queue_.size() - 1;
    return outcome;
}

Result<void>
JobQueue::sealFront(const std::string &result_json)
{
    panic_if(queue_.empty(), "sealFront on an empty queue");
    const Job &job = queue_.front();
    Result<std::string> dir = jobDir(job.key);
    if (!dir.ok())
        return dir.error();
    Result<void> wrote =
        writeFileAtomic(sealedPath(job.key), result_json);
    if (!wrote.ok())
        return wrote;
    ::unlink(spoolPath(job.key).c_str());
    queue_.pop_front();
    return Result<void>();
}

void
JobQueue::failFront()
{
    panic_if(queue_.empty(), "failFront on an empty queue");
    ::unlink(spoolPath(queue_.front().key).c_str());
    queue_.pop_front();
}

bool
JobQueue::hasSealed(const std::string &key) const
{
    // Keys reach here from untrusted request lines; never splice
    // anything but the canonical 16-hex form into a path.
    if (!validJobKey(key))
        return false;
    struct stat st;
    return ::stat(sealedPath(key).c_str(), &st) == 0 &&
           S_ISREG(st.st_mode);
}

Result<std::string>
JobQueue::loadSealed(const std::string &key) const
{
    if (!validJobKey(key))
        return Error(Errc::InvalidArgument,
                     "malformed job key '" + key + "'");
    return readFile(sealedPath(key));
}

} // namespace serve
} // namespace cbws
