/**
 * @file
 * Worker-pool supervisor of cbws-served: forks one worker process per
 * shard of the running job, reads their per-cell progress pipes,
 * reaps exits, and respawns crashed workers (backoff-delayed, budget-
 * capped) so an operator `kill -9` of a worker mid-matrix costs the
 * job nothing but the in-flight cell — the respawned worker resumes
 * its shard checkpoint and re-simulates only what was never sealed.
 *
 * The supervisor owns no event loop: the daemon's poll loop hands it
 * monotonic time and reap opportunities via pump() and receives a
 * flat list of Events back. That keeps the whole daemon single-
 * threaded, which is what makes fork() safe here.
 */

#ifndef CBWS_SERVE_SUPERVISOR_HH
#define CBWS_SERVE_SUPERVISOR_HH

#include <functional>
#include <string>
#include <vector>

#include "base/retry.hh"
#include "base/socket.hh"
#include "serve/protocol.hh"

namespace cbws
{
namespace serve
{

class Supervisor
{
  public:
    struct Options
    {
        /** Worker processes == shards of the job. */
        unsigned numWorkers = 2;
        /** Respawns allowed per shard before the job fails. */
        unsigned maxRespawns = 8;
        /** Delay schedule between a crash and its respawn. */
        BackoffSchedule backoff;
        /** Run in the forked child before the shard loop (the daemon
         *  closes its listening/client fds here). */
        std::function<void()> inChild;
    };

    /** What pump() observed, in order. */
    struct Event
    {
        enum class Kind
        {
            Spawned,   ///< worker forked (shard, pid, respawns)
            Exited,    ///< worker exited cleanly (shard done)
            Crashed,   ///< worker killed/failed; respawn scheduled
            Drained,   ///< worker stopped at the graceful-drain seam
            Cell,      ///< one progress line (detail = the JSON line)
            Failed,    ///< respawn budget exhausted (detail = reason)
        };

        Kind kind;
        unsigned shard = 0;
        int pid = -1;
        unsigned respawns = 0;
        std::string detail;
    };

    /** Fork the initial pool for @p spec. */
    Result<void> start(const JobSpec &spec, const std::string &job_dir,
                       const Options &options, std::uint64_t now_ms);

    bool active() const { return active_; }
    const JobSpec &spec() const { return spec_; }

    /** All shards exited cleanly: the job's cells are all sealed. */
    bool finished() const;

    /** A shard exhausted its respawn budget. */
    bool failed() const { return failed_; }

    /** Live workers right now (stats events). */
    unsigned liveWorkers() const;

    /** Shards the running job was split into (numWorkers clamped to
     *  the cell count) — the merge needs this exact value. */
    unsigned
    numShards() const
    {
        return static_cast<unsigned>(slots_.size());
    }

    /** Total respawns across all shards so far. */
    unsigned totalRespawns() const;

    /** Readable fds the daemon should poll (progress pipe per live
     *  worker). */
    std::vector<int> pollFds() const;

    /**
     * Advance the machine: drain readable progress pipes, reap dead
     * children when @p reap (set after a SIGCHLD tick), and fork
     * respawns whose backoff deadline passed. Returns the events.
     */
    std::vector<Event> pump(std::uint64_t now_ms, bool reap);

    /** Earliest pending respawn deadline in ms (0 = none): bounds the
     *  daemon's poll timeout. */
    std::uint64_t nextDeadlineMs() const;

    /** Graceful stop: SIGTERM every worker, stop respawning. */
    void stop();

    /** Hard stop: SIGKILL every worker (daemon shutdown). */
    void killAll();

    /** Drop job state after the daemon sealed or failed the job. */
    void clear();

  private:
    struct Slot
    {
        unsigned shard = 0;
        int pid = -1;
        OwnedFd pipe; ///< read end of the worker's progress pipe
        LineChannel channel;
        unsigned respawns = 0;
        bool running = false;
        bool done = false;
        /** Respawn not before this instant; 0 = no respawn pending. */
        std::uint64_t respawnAtMs = 0;
    };

    Result<void> spawn(Slot &slot, std::vector<Event> &events);
    void drainPipe(Slot &slot, std::vector<Event> &events);

    JobSpec spec_;
    std::string jobDir_;
    Options options_;
    std::vector<Slot> slots_;
    bool active_ = false;
    bool stopping_ = false;
    bool failed_ = false;
};

} // namespace serve
} // namespace cbws

#endif // CBWS_SERVE_SUPERVISOR_HH
