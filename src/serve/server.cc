#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/json.hh"
#include "base/logging.hh"
#include "serve/worker.hh"

namespace cbws
{
namespace serve
{

namespace
{

/** Self-pipe write end; -1 until the server arms it (and again in
 *  forked workers, which must not write into the daemon's pipe). */
std::atomic<int> g_self_pipe{-1};

extern "C" void
serveSignalHandler(int sig)
{
    const int fd = g_self_pipe.load(std::memory_order_relaxed);
    if (fd < 0)
        return;
    const char byte = sig == SIGCHLD ? 'c' : 't';
    // A full pipe just coalesces wakeups; nothing to do on failure
    // (and nothing async-signal-safe to do anyway).
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
}

} // anonymous namespace

std::uint64_t
Server::nowMs()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

Result<void>
Server::init(const Options &options)
{
    options_ = options;
    if (options_.listen.empty())
        return Error(Errc::InvalidArgument,
                     "server: no listen address");

    Result<void> opened = queue_.open(options_.dataDir);
    if (!opened.ok())
        return opened;

    for (const auto &addr : options_.listen) {
        Result<OwnedFd> fd = listenSocket(addr);
        if (!fd.ok())
            return fd.error();
        setNonBlocking(fd.value().fd());
        listeners_.push_back(std::move(fd).value());
    }

    int fds[2];
    if (::pipe(fds) != 0)
        return Error(Errc::IoError,
                     std::string("self-pipe: ") +
                         std::strerror(errno));
    selfPipeRead_ = OwnedFd(fds[0]);
    selfPipeWrite_ = OwnedFd(fds[1]);
    setNonBlocking(fds[0]);
    setNonBlocking(fds[1]);
    g_self_pipe.store(selfPipeWrite_.fd(), std::memory_order_relaxed);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = serveSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGCHLD, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN); // client death surfaces as EPIPE
    return Result<void>();
}

std::vector<std::string>
Server::boundAddresses() const
{
    std::vector<std::string> out;
    for (const auto &addr : options_.listen)
        out.push_back(addr.str());
    return out;
}

void
Server::closeInheritedFdsInChild()
{
    // Runs in a freshly forked worker: sever every daemon fd so the
    // child cannot hold the listen socket (or a client) open past the
    // daemon's death, and disarm the self-pipe handler target.
    g_self_pipe.store(-1, std::memory_order_relaxed);
    for (auto &fd : listeners_)
        fd.reset();
    for (auto &client : clients_)
        client.fd.reset();
    selfPipeRead_.reset();
    selfPipeWrite_.reset();
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_DFL;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGCHLD, &sa, nullptr);
}

void
Server::acceptClients(int listen_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN: drained
        }
        setNonBlocking(fd);
        clients_.emplace_back();
        Client &client = clients_.back();
        client.fd = OwnedFd(fd);
        client.channel = LineChannel(fd);
        sendEvent(client, helloEvent());
        if (options_.verbose)
            inform("served: client connected (fd %d)", fd);
    }
}

void
Server::sendEvent(Client &client, const std::string &event)
{
    if (client.dead)
        return;
    Result<void> wrote = client.channel.writeLine(event);
    if (!wrote.ok())
        client.dead = true;
}

void
Server::broadcast(const std::string &key, const std::string &event)
{
    for (auto &client : clients_)
        if (client.subscriptions.count(key))
            sendEvent(client, event);
}

void
Server::reapDeadClients()
{
    for (auto it = clients_.begin(); it != clients_.end();) {
        if (it->dead || !it->fd.valid()) {
            if (options_.verbose)
                inform("served: client disconnected (fd %d)",
                       it->fd.fd());
            it = clients_.erase(it);
        } else {
            ++it;
        }
    }
}

std::string
Server::statusEventJson() const
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "status");
    w.field("protocol",
            static_cast<std::uint64_t>(ServeProtocolVersion));
    w.field("queued", static_cast<std::uint64_t>(queue_.size()));
    w.field("running",
            supervisor_.active() ? progress_.key : std::string());
    w.field("done", static_cast<std::uint64_t>(progress_.done));
    w.field("total", static_cast<std::uint64_t>(progress_.total));
    w.field("workers",
            static_cast<std::uint64_t>(supervisor_.liveWorkers()));
    w.field("respawns",
            static_cast<std::uint64_t>(supervisor_.totalRespawns()));
    w.key("jobs");
    w.beginArray();
    for (const auto &job : queue_.jobs()) {
        w.beginObject();
        w.field("job", job.key);
        w.field("cells",
                static_cast<std::uint64_t>(job.spec.cellCount()));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
Server::handleRequest(Client &client, const std::string &line)
{
    Result<Request> parsed = parseRequest(line);
    if (!parsed.ok()) {
        sendEvent(client, errorEvent(parsed.error().str()));
        return;
    }
    const Request &request = parsed.value();
    switch (request.op) {
      case Request::Op::Ping:
        sendEvent(client, pongEvent());
        return;
      case Request::Op::Status:
        sendEvent(client, statusEventJson());
        return;
      case Request::Op::Subscribe:
        client.subscriptions.insert(request.job);
        if (queue_.hasSealed(request.job)) {
            // Already sealed: the subscriber gets the terminal event
            // immediately instead of waiting forever.
            Result<std::string> sealed =
                queue_.loadSealed(request.job);
            if (sealed.ok())
                sendEvent(client,
                          sealedEvent(request.job, true, 0, 0, 0, 0,
                                      sealed.value()));
        }
        return;
      case Request::Op::Result: {
        Result<std::string> sealed = queue_.loadSealed(request.job);
        if (!sealed.ok()) {
            sendEvent(client,
                      errorEvent("job " + request.job +
                                 " has no sealed result (" +
                                 sealed.error().str() + ")"));
            return;
        }
        sendEvent(client, sealedEvent(request.job, true, 0, 0, 0, 0,
                                      sealed.value()));
        return;
      }
      case Request::Op::Shutdown:
        inform("served: shutdown requested by client");
        sendEvent(client, byeEvent());
        shuttingDown_ = true;
        supervisor_.stop();
        return;
      case Request::Op::Submit:
        break;
    }

    // Submit.
    if (shuttingDown_) {
        sendEvent(client, errorEvent("daemon is shutting down"));
        return;
    }
    Result<SubmitOutcome> outcome = queue_.submit(request.spec);
    if (!outcome.ok()) {
        sendEvent(client, errorEvent(outcome.error().str()));
        return;
    }
    const SubmitOutcome &o = outcome.value();
    client.subscriptions.insert(o.key);
    sendEvent(client, ackEvent(o.key, request.spec.cellCount(),
                               o.deduped, o.queuePosition));
    if (o.deduped) {
        // The dedup contract: an identical fingerprint with a sealed
        // result is answered from disk, no simulation, no queueing.
        Result<std::string> sealed = queue_.loadSealed(o.key);
        if (sealed.ok())
            sendEvent(client,
                      sealedEvent(o.key, true,
                                  request.spec.cellCount(), 0, 0, 0,
                                  sealed.value()));
        else
            sendEvent(client, errorEvent(sealed.error().str()));
        return;
    }
    if (options_.verbose && !o.alreadyQueued)
        inform("served: job %s queued (%zu cells)", o.key.c_str(),
               request.spec.cellCount());
}

void
Server::serviceClient(Client &client)
{
    std::vector<std::string> lines;
    Result<void> read =
        client.channel.readLines(lines, MaxRequestBytes);
    if (!read.ok()) {
        if (read.error().code == Errc::Corrupt)
            sendEvent(client, errorEvent(read.error().str()));
        client.dead = true;
        return;
    }
    for (const auto &line : lines)
        handleRequest(client, line);
    if (client.channel.eof())
        client.dead = true;
}

void
Server::maybeStartJob()
{
    if (shuttingDown_ || supervisor_.active() || queue_.empty())
        return;
    const Job &job = queue_.front();
    if (queue_.hasSealed(job.key)) {
        // Sealed by an earlier life of the daemon while this spool
        // sat in the queue: nothing to run.
        Result<std::string> sealed = queue_.loadSealed(job.key);
        broadcast(job.key,
                  sealedEvent(job.key, true, job.spec.cellCount(), 0,
                              0, 0,
                              sealed.ok() ? sealed.value() : "[]"));
        queue_.failFront(); // drops the spool; result already sealed
        return;
    }
    Result<std::string> dir = queue_.jobDir(job.key);
    if (!dir.ok()) {
        failJob(dir.error().str());
        return;
    }
    Supervisor::Options opts;
    opts.numWorkers = options_.workers;
    opts.maxRespawns = options_.maxRespawns;
    opts.backoff.baseMs = 50;
    opts.backoff.maxMs = 2000;
    opts.backoff.seed = faultSeedFromEnv();
    opts.inChild = [this]() { closeInheritedFdsInChild(); };

    progress_ = JobProgress();
    progress_.key = job.key;
    progress_.total = job.spec.cellCount();
    progress_.cellDone.assign(progress_.total, 0);
    progress_.startMs = nowMs();
    progress_.lastStatsMs = progress_.startMs;

    Result<void> started =
        supervisor_.start(job.spec, dir.value(), opts, nowMs());
    if (!started.ok()) {
        failJob(started.error().str());
        return;
    }
    inform("served: job %s running (%zu cells, %u workers)",
           job.key.c_str(), progress_.total,
           supervisor_.numShards());
}

void
Server::handleSupervisorEvents(
    const std::vector<Supervisor::Event> &events)
{
    using Kind = Supervisor::Event::Kind;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case Kind::Spawned:
            broadcast(progress_.key,
                      workerEvent(progress_.key, ev.shard, "spawned",
                                  ev.pid, ev.respawns));
            break;
          case Kind::Exited:
            broadcast(progress_.key,
                      workerEvent(progress_.key, ev.shard, "exited",
                                  ev.pid, ev.respawns));
            break;
          case Kind::Drained:
            broadcast(progress_.key,
                      workerEvent(progress_.key, ev.shard, "drained",
                                  ev.pid, ev.respawns));
            break;
          case Kind::Crashed:
            warn("served: worker shard %u died (%s); respawning "
                 "(attempt %u)",
                 ev.shard, ev.detail.c_str(), ev.respawns);
            broadcast(progress_.key,
                      workerEvent(progress_.key, ev.shard, "crashed",
                                  ev.pid, ev.respawns));
            break;
          case Kind::Failed:
            failJob(ev.detail);
            break;
          case Kind::Cell: {
            Result<JsonValue> parsed =
                parseJson(ev.detail, protocolJsonLimits());
            if (!parsed.ok()) {
                warn("served: bad progress line from shard %u (%s)",
                     ev.shard, parsed.error().str().c_str());
                break;
            }
            const JsonValue &v = parsed.value();
            const std::uint64_t cell = v.uintOr("cell");
            if (cell >= progress_.total ||
                progress_.cellDone[cell])
                break; // replay after a respawn: already counted
            progress_.cellDone[cell] = 1;
            progress_.done++;
            progress_.insts += v.uintOr("insts");
            const JsonValue *ipc = v.find("ipc");
            const JsonValue *mpki = v.find("mpki");
            broadcast(progress_.key,
                      cellEvent(progress_.key, v.strOr("workload"),
                                v.strOr("scheme"),
                                ipc ? ipc->number : 0.0,
                                mpki ? mpki->number : 0.0,
                                progress_.done, progress_.total));
            maybeEmitStats(false);
            break;
          }
        }
    }
}

void
Server::maybeEmitStats(bool force)
{
    if (!supervisor_.active())
        return;
    const std::uint64_t now = nowMs();
    if (!force &&
        now - progress_.lastStatsMs < options_.statsIntervalMs)
        return;
    broadcast(progress_.key,
              statsEvent(progress_.key, progress_.done,
                         progress_.total,
                         progress_.done - progress_.lastStatsDone,
                         progress_.insts,
                         progress_.insts - progress_.lastStatsInsts,
                         now - progress_.startMs,
                         supervisor_.liveWorkers(),
                         supervisor_.totalRespawns()));
    progress_.lastStatsMs = now;
    progress_.lastStatsDone = progress_.done;
    progress_.lastStatsInsts = progress_.insts;
}

void
Server::finishJob()
{
    const JobSpec spec = supervisor_.spec();
    const unsigned shards = supervisor_.numShards();
    const unsigned respawns = supervisor_.totalRespawns();
    Result<std::string> dir = queue_.jobDir(progress_.key);
    if (!dir.ok()) {
        failJob(dir.error().str());
        return;
    }
    Result<std::vector<SimResult>> merged =
        mergeShards(spec, dir.value(), shards);
    if (!merged.ok()) {
        failJob("merge: " + merged.error().str());
        return;
    }
    maybeEmitStats(true);
    const std::string json = resultJson(merged.value());
    Result<void> sealed = queue_.sealFront(json);
    if (!sealed.ok()) {
        failJob("seal: " + sealed.error().str());
        return;
    }
    const std::uint64_t wall = nowMs() - progress_.startMs;
    inform("served: job %s sealed (%zu cells, %u respawns, %llu ms)",
           progress_.key.c_str(), progress_.total, respawns,
           static_cast<unsigned long long>(wall));
    broadcast(progress_.key,
              sealedEvent(progress_.key, false, progress_.total,
                          wall, progress_.insts, respawns, json));
    supervisor_.clear();
}

void
Server::failJob(const std::string &reason)
{
    warn("served: job %s failed: %s", progress_.key.c_str(),
         reason.c_str());
    broadcast(progress_.key, failedEvent(progress_.key, reason));
    supervisor_.killAll();
    supervisor_.clear();
    if (!queue_.empty())
        queue_.failFront();
}

int
Server::run()
{
    inform("served: listening, data dir %s, %u workers",
           options_.dataDir.c_str(), options_.workers);
    while (true) {
        maybeStartJob();

        std::vector<struct pollfd> fds;
        fds.push_back({selfPipeRead_.fd(), POLLIN, 0});
        for (const auto &listener : listeners_)
            fds.push_back({listener.fd(), POLLIN, 0});
        const std::size_t client_base = fds.size();
        const std::size_t client_count = clients_.size();
        for (auto &client : clients_)
            fds.push_back({client.fd.fd(), POLLIN, 0});
        for (int fd : supervisor_.pollFds())
            fds.push_back({fd, POLLIN, 0});

        int timeout = -1;
        if (supervisor_.active()) {
            timeout = static_cast<int>(options_.statsIntervalMs);
            const std::uint64_t deadline =
                supervisor_.nextDeadlineMs();
            if (deadline) {
                const std::uint64_t now = nowMs();
                const std::uint64_t wait =
                    deadline > now ? deadline - now : 1;
                timeout = std::min<int>(timeout,
                                        static_cast<int>(wait));
            }
        } else if (shuttingDown_) {
            timeout = 50;
        }

        const int ready =
            ::poll(fds.data(), fds.size(), timeout);
        if (ready < 0 && errno != EINTR) {
            warn("served: poll: %s", std::strerror(errno));
            return 1;
        }

        bool reap = false;
        if (fds[0].revents & POLLIN) {
            char buf[64];
            ssize_t n;
            while ((n = ::read(selfPipeRead_.fd(), buf,
                               sizeof(buf))) > 0) {
                for (ssize_t i = 0; i < n; ++i) {
                    if (buf[i] == 'c') {
                        reap = true;
                    } else {
                        if (!shuttingDown_)
                            inform("served: signal received; "
                                   "draining workers and exiting");
                        shuttingDown_ = true;
                        supervisor_.stop();
                    }
                }
            }
        }

        for (std::size_t i = 0; i < listeners_.size(); ++i)
            if (fds[1 + i].revents & (POLLIN | POLLERR))
                acceptClients(listeners_[i].fd());

        // Only the clients that existed when the pollfd set was
        // built have an entry in fds; anything acceptClients() just
        // appended has no revents yet and is polled next iteration.
        {
            std::size_t idx = client_base;
            auto it = clients_.begin();
            for (std::size_t i = 0; i < client_count;
                 ++i, ++it, ++idx)
                if (fds[idx].revents &
                    (POLLIN | POLLERR | POLLHUP))
                    serviceClient(*it);
        }
        reapDeadClients();

        if (supervisor_.active()) {
            handleSupervisorEvents(supervisor_.pump(nowMs(), reap));
            maybeEmitStats(false);
            if (supervisor_.active() && supervisor_.finished())
                finishJob();
            else if (supervisor_.active() && supervisor_.failed())
                failJob("worker respawn budget exhausted");
        } else if (reap) {
            // Stray SIGCHLD with no active job (e.g. after killAll):
            // reap so nothing zombifies.
            int status = 0;
            while (::waitpid(-1, &status, WNOHANG) > 0) {
            }
        }

        if (shuttingDown_) {
            // Drain: once every worker has exited (their shard
            // checkpoints sealed), say goodbye and stop. Queued jobs
            // stay spooled on disk for the next daemon life.
            if (!supervisor_.active() ||
                supervisor_.liveWorkers() == 0) {
                for (auto &client : clients_)
                    sendEvent(client, byeEvent());
                if (supervisor_.active())
                    inform("served: job %s interrupted; %zu of %zu "
                           "cells sealed, resume on next start",
                           progress_.key.c_str(), progress_.done,
                           progress_.total);
                return 0;
            }
        }
    }
}

} // namespace serve
} // namespace cbws
