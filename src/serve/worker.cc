#include "serve/worker.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <unistd.h>

#include "base/faultinject.hh"
#include "base/json.hh"
#include "base/logging.hh"
#include "base/tuning.hh"
#include "sim/checkpoint.hh"
#include "sim/report.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace serve
{

namespace
{

/** Write all of @p line + '\n' to @p fd, tolerating short writes.
 *  Progress is advisory: on a broken pipe (daemon died) the worker
 *  keeps simulating — the checkpoint is the durable record. */
void
writeProgressLine(int fd, const std::string &line)
{
    if (fd < 0)
        return;
    std::string buf = line;
    buf.push_back('\n');
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n =
            ::write(fd, buf.data() + off, buf.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return;
    }
}

std::string
progressLine(std::size_t cell, const SimResult &res, bool restored)
{
    JsonWriter w;
    w.beginObject();
    w.field("cell", static_cast<std::uint64_t>(cell));
    w.field("workload", res.workload);
    w.field("scheme", res.prefetcher);
    w.field("ipc", res.ipc());
    w.field("mpki", res.mpki());
    w.field("insts", res.core.instructions);
    w.field("restored", restored);
    w.endObject();
    return w.str();
}

} // anonymous namespace

SystemConfig
configFor(const JobSpec &spec)
{
    SystemConfig config;
    config.mem.numCores = spec.cores;
    config.mem.dramBackend = spec.dramBackend;
    config.pfOpts = spec.pfOpts;
    return config;
}

Result<std::vector<WorkloadPtr>>
resolveWorkloads(const JobSpec &spec)
{
    std::vector<WorkloadPtr> workloads;
    workloads.reserve(spec.workloads.size());
    for (const auto &name : spec.workloads) {
        WorkloadPtr w = findWorkload(name);
        if (!w)
            return Error(Errc::NotFound,
                         "workload '" + name + "' not in registry");
        workloads.push_back(std::move(w));
    }
    return workloads;
}

std::string
shardCheckpointPath(const std::string &job_dir, unsigned shard)
{
    return job_dir + "/shard-" + std::to_string(shard) + ".ckpt";
}

Checkpoint::Header
shardHeader(const JobSpec &spec)
{
    Checkpoint::Header header;
    header.insts = spec.insts;
    header.seed = spec.seed;
    header.fingerprint = checkpointFingerprint(
        spec.workloads, spec.schemes, configTagFor(spec));
    return header;
}

int
runWorkerShard(const JobSpec &spec, const std::string &job_dir,
               unsigned shard, unsigned num_shards, int progress_fd)
{
    panic_if(num_shards == 0, "runWorkerShard: zero shards");
    // The daemon SIGTERMs workers to drain gracefully; the handler
    // just sets the flag checked at each cell boundary below.
    installMatrixSignalHandlers();
    clearMatrixInterrupt();

    Result<std::vector<WorkloadPtr>> resolved = resolveWorkloads(spec);
    if (!resolved.ok()) {
        warn("worker[%u]: %s", shard,
             resolved.error().str().c_str());
        return 1;
    }
    const std::vector<WorkloadPtr> workloads =
        std::move(resolved).value();
    const SystemConfig config = configFor(spec);

    Checkpoint checkpoint;
    Result<void> opened = checkpoint.open(
        shardCheckpointPath(job_dir, shard), shardHeader(spec));
    if (!opened.ok()) {
        warn("worker[%u]: %s", shard, opened.error().str().c_str());
        return 1;
    }

    WorkloadParams params;
    params.maxInstructions = spec.insts;
    params.seed = spec.seed;
    const std::uint64_t warmup = spec.insts / 4;
    const std::size_t num_kinds = spec.schemes.size();
    const std::size_t total = spec.cellCount();

    // Traces are synthesised lazily, once per workload this shard
    // touches: round-robin sharding means a shard typically needs
    // every workload, but a resumed shard may skip rows entirely.
    std::vector<Trace> traces(workloads.size());
    std::vector<char> have_trace(workloads.size(), 0);
    const bool batch_decode = Tuning::get().batchDecode;

    bool interrupted = false;
    for (std::size_t i = shard; i < total; i += num_shards) {
        if (matrixInterruptRequested()) {
            interrupted = true;
            break;
        }
        const std::size_t w = i / num_kinds;
        const std::size_t k = i % num_kinds;
        const std::string &workload = spec.workloads[w];
        const std::string &scheme = spec.schemes[k];

        if (const SimResult *restored =
                checkpoint.find(workload, scheme)) {
            writeProgressLine(progress_fd,
                              progressLine(i, *restored, true));
            continue;
        }

        if (!have_trace[w]) {
            traces[w].reserve(spec.insts + 512);
            workloads[w]->generate(traces[w], params);
            if (batch_decode)
                traces[w].ensureDecoded();
            have_trace[w] = 1;
        }

        SystemConfig cell_config = config;
        cell_config.scheme = scheme;
        SimResult res;
        if (cell_config.mem.numCores > 1) {
            const std::vector<const Trace *> core_traces(
                cell_config.mem.numCores, &traces[w]);
            const std::vector<std::string> core_names(
                cell_config.mem.numCores, workload);
            res = simulateMulti(core_traces, core_names, cell_config,
                                spec.insts, SimProbes(), warmup);
        } else {
            res = simulate(traces[w], cell_config, spec.insts,
                           SimProbes(), warmup);
        }
        res.workload = workload;

        Result<void> appended = checkpoint.append(res);
        if (!appended.ok())
            warn("worker[%u]: cell (%s, %s) not checkpointed (%s)",
                 shard, workload.c_str(), scheme.c_str(),
                 appended.error().str().c_str());
        writeProgressLine(progress_fd, progressLine(i, res, false));

        // Chaos hook: under CBWS_FAULT=serve-worker-kill@n the worker
        // SIGKILLs itself right after completing (and checkpointing)
        // its n-th cell — the deterministic stand-in for the operator
        // kill -9 the supervisor must survive.
        if (FaultInjector::instance().shouldFire(
                FaultSite::ServeWorkerKill)) {
            checkpoint.sync();
            ::raise(SIGKILL);
        }
    }

    Result<void> sealed = checkpoint.sync();
    if (!sealed.ok()) {
        warn("worker[%u]: checkpoint seal failed (%s)", shard,
             sealed.error().str().c_str());
        return 1;
    }
    return interrupted ? 130 : 0;
}

Result<std::vector<SimResult>>
mergeShards(const JobSpec &spec, const std::string &job_dir,
            unsigned num_shards)
{
    const std::size_t num_kinds = spec.schemes.size();
    const std::size_t total = spec.cellCount();
    std::vector<SimResult> cells(total);

    // Open every shard read-for-resume: intact cells load, torn tails
    // drop. Sharding is index % num_shards, so cell i lives in shard
    // checkpoint i % num_shards — but find() is keyed by names, so a
    // cell that migrated across a reshard is still found.
    std::vector<std::unique_ptr<Checkpoint>> shards;
    for (unsigned s = 0; s < num_shards; ++s) {
        auto ckpt = std::unique_ptr<Checkpoint>(new Checkpoint());
        Result<void> opened = ckpt->open(
            shardCheckpointPath(job_dir, s), shardHeader(spec));
        if (!opened.ok())
            return opened.error();
        shards.push_back(std::move(ckpt));
    }

    for (std::size_t i = 0; i < total; ++i) {
        const std::string &workload =
            spec.workloads[i / num_kinds];
        const std::string &scheme = spec.schemes[i % num_kinds];
        const SimResult *found = nullptr;
        for (unsigned s = 0; s < num_shards && !found; ++s)
            found = shards[(i + s) % num_shards]->find(workload,
                                                       scheme);
        if (!found)
            return Error(Errc::Corrupt,
                         "mergeShards: cell (" + workload + ", " +
                             scheme + ") missing from " +
                             std::to_string(num_shards) +
                             " shard checkpoint(s)");
        cells[i] = *found;
    }
    return cells;
}

std::vector<SimResult>
flattenMatrix(const ExperimentMatrix &matrix)
{
    std::vector<SimResult> cells;
    for (const auto &row : matrix.rows)
        for (const auto &res : row.byPrefetcher)
            cells.push_back(res);
    return cells;
}

Result<std::vector<SimResult>>
runJobSerial(const JobSpec &spec)
{
    Result<std::vector<WorkloadPtr>> resolved = resolveWorkloads(spec);
    if (!resolved.ok())
        return resolved.error();
    MatrixOptions options;
    options.jobs = 1;
    ExperimentMatrix matrix =
        runMatrix(resolved.value(), spec.schemes, configFor(spec),
                  spec.insts, spec.seed, options);
    return flattenMatrix(matrix);
}

std::string
resultJson(const std::vector<SimResult> &cells)
{
    return toJson(cells);
}

} // namespace serve
} // namespace cbws
