#include "serve/supervisor.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "serve/worker.hh"

namespace cbws
{
namespace serve
{

Result<void>
Supervisor::start(const JobSpec &spec, const std::string &job_dir,
                  const Options &options, std::uint64_t now_ms)
{
    panic_if(active_, "Supervisor::start while a job is active");
    spec_ = spec;
    jobDir_ = job_dir;
    options_ = options;
    stopping_ = false;
    failed_ = false;

    // Never more shards than cells: an idle worker that exits
    // immediately is fine, but pointless.
    unsigned shards = options_.numWorkers ? options_.numWorkers : 1;
    if (spec_.cellCount() &&
        shards > spec_.cellCount())
        shards = static_cast<unsigned>(spec_.cellCount());
    options_.numWorkers = shards;

    slots_.clear();
    slots_.resize(shards);
    active_ = true;
    std::vector<Event> events;
    for (unsigned s = 0; s < shards; ++s) {
        slots_[s].shard = s;
        Result<void> spawned = spawn(slots_[s], events);
        if (!spawned.ok()) {
            killAll();
            clear();
            return spawned;
        }
    }
    (void)now_ms;
    return Result<void>();
}

Result<void>
Supervisor::spawn(Slot &slot, std::vector<Event> &events)
{
    int fds[2];
    if (::pipe(fds) != 0)
        return Error(Errc::IoError,
                     std::string("pipe: ") + std::strerror(errno));

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return Error(Errc::IoError,
                     std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
        // Worker child: detach from the daemon's fds, run the shard,
        // _exit without unwinding daemon state (atexit, streams).
        ::close(fds[0]);
        if (options_.inChild)
            options_.inChild();
        const int code = runWorkerShard(
            spec_, jobDir_, slot.shard, options_.numWorkers, fds[1]);
        ::close(fds[1]);
        ::_exit(code);
    }

    ::close(fds[1]);
    setNonBlocking(fds[0]);
    slot.pid = pid;
    slot.pipe = OwnedFd(fds[0]);
    slot.channel = LineChannel(fds[0]);
    slot.running = true;
    slot.respawnAtMs = 0;

    Event ev;
    ev.kind = Event::Kind::Spawned;
    ev.shard = slot.shard;
    ev.pid = pid;
    ev.respawns = slot.respawns;
    events.push_back(ev);
    return Result<void>();
}

void
Supervisor::drainPipe(Slot &slot, std::vector<Event> &events)
{
    if (!slot.pipe.valid())
        return;
    std::vector<std::string> lines;
    Result<void> read =
        slot.channel.readLines(lines, MaxRequestBytes);
    for (auto &line : lines) {
        Event ev;
        ev.kind = Event::Kind::Cell;
        ev.shard = slot.shard;
        ev.pid = slot.pid;
        ev.detail = std::move(line);
        events.push_back(std::move(ev));
    }
    if (!read.ok() || slot.channel.eof())
        slot.pipe.reset(); // worker side gone; exit handled by reap
}

std::vector<int>
Supervisor::pollFds() const
{
    std::vector<int> fds;
    for (const auto &slot : slots_)
        if (slot.pipe.valid())
            fds.push_back(slot.pipe.fd());
    return fds;
}

std::vector<Supervisor::Event>
Supervisor::pump(std::uint64_t now_ms, bool reap)
{
    std::vector<Event> events;
    if (!active_)
        return events;

    for (auto &slot : slots_)
        drainPipe(slot, events);

    if (reap) {
        for (;;) {
            int status = 0;
            const pid_t pid = ::waitpid(-1, &status, WNOHANG);
            if (pid <= 0)
                break;
            Slot *slot = nullptr;
            for (auto &s : slots_)
                if (s.running && s.pid == pid)
                    slot = &s;
            if (!slot)
                continue; // not ours (can't happen today)

            // The pipe write end died with the worker: drain the
            // last buffered progress lines before judging the exit.
            drainPipe(*slot, events);
            slot->running = false;
            slot->pipe.reset();

            const bool clean =
                WIFEXITED(status) && WEXITSTATUS(status) == 0;
            Event ev;
            ev.shard = slot->shard;
            ev.pid = pid;
            ev.respawns = slot->respawns;
            if (clean) {
                slot->done = true;
                ev.kind = Event::Kind::Exited;
                events.push_back(ev);
                continue;
            }
            if (stopping_) {
                // Graceful drain (our SIGTERM): the shard checkpoint
                // is sealed; nothing to respawn while stopping. An
                // exit 130 while NOT stopping (a stray signal sent
                // straight at the worker) must fall through to the
                // crash path instead — treating it as drained would
                // leave the shard unfinished forever.
                ev.kind = Event::Kind::Drained;
                events.push_back(ev);
                continue;
            }
            // Crash (SIGKILL, abort, nonzero exit): schedule the
            // respawn after a deterministic backoff so a crash-looping
            // shard cannot busy-spin the daemon.
            slot->respawns++;
            ev.respawns = slot->respawns;
            if (slot->respawns > options_.maxRespawns) {
                failed_ = true;
                ev.kind = Event::Kind::Failed;
                ev.detail = "shard " + std::to_string(slot->shard) +
                            " exceeded " +
                            std::to_string(options_.maxRespawns) +
                            " respawns";
                events.push_back(ev);
                continue;
            }
            slot->respawnAtMs =
                now_ms +
                options_.backoff.delayMs(slot->respawns - 1);
            ev.kind = Event::Kind::Crashed;
            ev.detail = WIFSIGNALED(status)
                            ? std::string("signal ") +
                                  std::to_string(WTERMSIG(status))
                            : std::string("exit ") +
                                  std::to_string(
                                      WEXITSTATUS(status));
            events.push_back(ev);
        }
    }

    if (!stopping_ && !failed_) {
        for (auto &slot : slots_) {
            if (slot.running || slot.done || slot.respawnAtMs == 0)
                continue;
            if (now_ms < slot.respawnAtMs)
                continue;
            Result<void> spawned = spawn(slot, events);
            if (!spawned.ok()) {
                // Transient fork/pipe failure: retry after another
                // backoff step rather than failing the job.
                warn("supervisor: respawn of shard %u failed (%s)",
                     slot.shard, spawned.error().str().c_str());
                slot.respawnAtMs =
                    now_ms + options_.backoff.delayMs(slot.respawns);
            }
        }
    }
    return events;
}

std::uint64_t
Supervisor::nextDeadlineMs() const
{
    std::uint64_t next = 0;
    for (const auto &slot : slots_) {
        if (slot.running || slot.done || slot.respawnAtMs == 0)
            continue;
        if (next == 0 || slot.respawnAtMs < next)
            next = slot.respawnAtMs;
    }
    return next;
}

bool
Supervisor::finished() const
{
    if (!active_)
        return false;
    for (const auto &slot : slots_)
        if (!slot.done)
            return false;
    return true;
}

unsigned
Supervisor::liveWorkers() const
{
    unsigned live = 0;
    for (const auto &slot : slots_)
        if (slot.running)
            ++live;
    return live;
}

unsigned
Supervisor::totalRespawns() const
{
    unsigned total = 0;
    for (const auto &slot : slots_)
        total += slot.respawns;
    return total;
}

void
Supervisor::stop()
{
    stopping_ = true;
    for (auto &slot : slots_)
        if (slot.running && slot.pid > 0)
            ::kill(slot.pid, SIGTERM);
}

void
Supervisor::killAll()
{
    stopping_ = true;
    for (auto &slot : slots_) {
        if (slot.running && slot.pid > 0) {
            ::kill(slot.pid, SIGKILL);
            // Synchronous reap: killAll is the shutdown path, no
            // zombies left for init to inherit from a still-live
            // daemon.
            int status = 0;
            ::waitpid(slot.pid, &status, 0);
            slot.running = false;
        }
        slot.pipe.reset();
    }
}

void
Supervisor::clear()
{
    slots_.clear();
    active_ = false;
    stopping_ = false;
}

} // namespace serve
} // namespace cbws
