/**
 * @file
 * Cell execution for cbws-served: the forked worker's shard loop, the
 * daemon's shard merge, and the serial in-process reference path.
 *
 * Determinism contract: a job's cells are distributed round-robin
 * across shards (cell_index % num_shards), every shard appends its
 * finished cells to its own crash-safe checkpoint, and the daemon
 * merges the shards back into row-major order and serialises through
 * the exact toJson() path a serial runMatrix run uses. Each cell is a
 * pure function of (workload, scheme, insts, seed, config), so the
 * merged report is byte-identical to the serial reference no matter
 * how many workers ran, how they were scheduled, or how many times
 * they were SIGKILLed and respawned mid-shard.
 */

#ifndef CBWS_SERVE_WORKER_HH
#define CBWS_SERVE_WORKER_HH

#include <string>
#include <vector>

#include "serve/jobqueue.hh"
#include "serve/protocol.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/experiment.hh"

namespace cbws
{
namespace serve
{

/** The SystemConfig a spec's cells simulate under (scheme unset —
 *  it is per-cell). Mirrors the cbws-sim flag mapping. */
SystemConfig configFor(const JobSpec &spec);

/** Resolve spec.workloads against the registry. The spec was
 *  validated at submission, so failure here means the registry
 *  changed under us — reported, not fatal. */
Result<std::vector<WorkloadPtr>> resolveWorkloads(const JobSpec &spec);

/** jobs/<key>/shard-<i>.ckpt */
std::string shardCheckpointPath(const std::string &job_dir,
                                unsigned shard);

/** Checkpoint header every shard of @p spec shares (same experiment
 *  fingerprint; shards differ only in which cells they own). */
Checkpoint::Header shardHeader(const JobSpec &spec);

/**
 * The forked worker's body: run every cell of @p spec whose index
 * satisfies index % num_shards == shard, resuming from (and appending
 * to) the shard checkpoint under @p job_dir. One progress line — a
 * JSON object {"cell","workload","scheme","ipc","mpki","insts",
 * "restored"} — is written to @p progress_fd per finished cell.
 *
 * Also callable in-process by tests. Returns the worker's exit code:
 * 0 = shard complete, 130 = graceful SIGTERM drain (checkpoint
 * sealed, remaining cells left for a respawn), 1 = setup error.
 */
int runWorkerShard(const JobSpec &spec, const std::string &job_dir,
                   unsigned shard, unsigned num_shards,
                   int progress_fd);

/**
 * Merge the shard checkpoints of @p spec under @p job_dir into the
 * row-major cell vector a serial run would produce. Corrupt when any
 * cell is missing (a shard has not finished).
 */
Result<std::vector<SimResult>> mergeShards(const JobSpec &spec,
                                           const std::string &job_dir,
                                           unsigned num_shards);

/** Flatten a runMatrix result row-major (the serial reference). */
std::vector<SimResult> flattenMatrix(const ExperimentMatrix &matrix);

/** Run @p spec serially in-process — the byte-identity reference the
 *  chaos acceptance check diffs the daemon against. */
Result<std::vector<SimResult>> runJobSerial(const JobSpec &spec);

/** The canonical report bytes for a job's cells: the same
 *  toJson(vector) array both the daemon and the reference emit. */
std::string resultJson(const std::vector<SimResult> &cells);

} // namespace serve
} // namespace cbws

#endif // CBWS_SERVE_WORKER_HH
