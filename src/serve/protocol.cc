#include "serve/protocol.hh"

#include <algorithm>
#include <cstdio>

#include "base/json.hh"
#include "prefetch/registry.hh"
#include "sim/checkpoint.hh"
#include "workloads/registry.hh"

namespace cbws
{
namespace serve
{

namespace
{

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

Result<std::vector<std::string>>
stringArray(const JsonValue &v, const std::string &key,
            std::size_t max_entries)
{
    const JsonValue *member = v.find(key);
    if (!member || !member->isArray())
        return Error(Errc::InvalidArgument,
                     "job." + key + " must be an array of strings");
    if (member->array.empty())
        return Error(Errc::InvalidArgument,
                     "job." + key + " must not be empty");
    if (member->array.size() > max_entries)
        return Error(Errc::InvalidArgument,
                     "job." + key + " exceeds " +
                         std::to_string(max_entries) + " entries");
    std::vector<std::string> out;
    out.reserve(member->array.size());
    for (const JsonValue &element : member->array) {
        if (!element.isString())
            return Error(Errc::InvalidArgument,
                         "job." + key +
                             " must contain only strings");
        out.push_back(element.str);
    }
    return out;
}

void
writeStringArray(JsonWriter &w, const std::string &key,
                 const std::vector<std::string> &values)
{
    w.key(key);
    w.beginArray();
    for (const auto &value : values)
        w.value(value);
    w.endArray();
}

} // anonymous namespace

JsonLimits
protocolJsonLimits()
{
    JsonLimits limits;
    limits.maxDepth = 16;
    limits.maxStringBytes = 4096;
    limits.maxNumberChars = 32;
    limits.maxDocumentBytes = MaxRequestBytes;
    return limits;
}

Result<JobSpec>
parseJobSpec(const JsonValue &v)
{
    if (!v.isObject())
        return Error(Errc::InvalidArgument, "job must be an object");

    JobSpec spec;
    {
        Result<std::vector<std::string>> workloads =
            stringArray(v, "workloads", 1024);
        if (!workloads.ok())
            return workloads.error();
        spec.workloads = std::move(workloads).value();
    }
    {
        Result<std::vector<std::string>> schemes =
            stringArray(v, "schemes", 256);
        if (!schemes.ok())
            return schemes.error();
        spec.schemes = std::move(schemes).value();
    }
    if (const JsonValue *pf_opts = v.find("pf_opts")) {
        if (!pf_opts->isArray())
            return Error(Errc::InvalidArgument,
                         "job.pf_opts must be an array of strings");
        for (const JsonValue &opt : pf_opts->array) {
            if (!opt.isString())
                return Error(Errc::InvalidArgument,
                             "job.pf_opts must contain only strings");
            spec.pfOpts.push_back(opt.str);
        }
    }
    spec.insts = v.uintOr("insts", spec.insts);
    spec.seed = v.uintOr("seed", spec.seed);
    spec.cores = static_cast<unsigned>(v.uintOr("cores", 1));
    spec.dramBackend = v.strOr("dram", spec.dramBackend);

    if (spec.insts == 0)
        return Error(Errc::InvalidArgument,
                     "job.insts must be positive");
    if (spec.cores == 0 || spec.cores > 255)
        return Error(Errc::InvalidArgument,
                     "job.cores must be in 1..255");

    // Fail fast at the submission boundary, exactly like runMatrix
    // does at its entry: unknown names never reach the queue.
    for (const auto &name : spec.workloads) {
        Result<WorkloadPtr> found = findWorkloadChecked(name);
        if (!found.ok())
            return found.error();
    }
    for (auto &name : spec.schemes) {
        if (!prefetcherRegistry().contains(name))
            return Error(Errc::InvalidArgument,
                         "unknown scheme '" + name + "'");
        name = prefetcherRegistry().canonicalName(name);
    }
    {
        Result<void> valid = prefetcherRegistry().validateOptions(
            spec.schemes, spec.pfOpts);
        if (!valid.ok())
            return Error(Errc::InvalidArgument,
                         valid.error().message);
    }
    return spec;
}

std::string
jobSpecJson(const JobSpec &spec)
{
    JsonWriter w;
    w.beginObject();
    writeStringArray(w, "workloads", spec.workloads);
    writeStringArray(w, "schemes", spec.schemes);
    w.field("insts", spec.insts);
    w.field("seed", spec.seed);
    w.field("cores", static_cast<std::uint64_t>(spec.cores));
    w.field("dram", spec.dramBackend);
    if (!spec.pfOpts.empty())
        writeStringArray(w, "pf_opts", spec.pfOpts);
    w.endObject();
    return w.str();
}

std::string
configTagFor(const JobSpec &spec)
{
    // Mirror of runMatrix's config_tag so the fingerprint of a shard
    // checkpoint matches what a serial checkpointed run would write.
    std::string tag = spec.dramBackend;
    if (spec.cores > 1)
        tag += "+cores" + std::to_string(spec.cores);
    if (!spec.pfOpts.empty()) {
        std::vector<std::string> opts = spec.pfOpts;
        std::sort(opts.begin(), opts.end());
        tag += "+opt:";
        for (const auto &opt : opts)
            tag += opt + ",";
    }
    return tag;
}

std::uint64_t
jobFingerprint(const JobSpec &spec)
{
    // The cell-space fingerprint ignores budget and seed (the
    // checkpoint header carries them separately); the job key must
    // distinguish them, so fold them in on top.
    std::uint64_t hash = checkpointFingerprint(
        spec.workloads, spec.schemes, configTagFor(spec));
    constexpr std::uint64_t prime = 0x100000001b3ull;
    hash = (hash ^ spec.insts) * prime;
    hash = (hash ^ spec.seed) * prime;
    return hash;
}

std::string
jobKey(const JobSpec &spec)
{
    return hex16(jobFingerprint(spec));
}

bool
validJobKey(const std::string &key)
{
    if (key.size() != 16)
        return false;
    for (const char c : key)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return true;
}

Result<Request>
parseRequest(const std::string &line)
{
    Result<JsonValue> parsed = parseJson(line, protocolJsonLimits());
    if (!parsed.ok())
        return parsed.error();
    const JsonValue &v = parsed.value();
    if (!v.isObject())
        return Error(Errc::InvalidArgument,
                     "request must be a JSON object");

    Request request;
    const std::string op = v.strOr("op", "");
    if (op == "submit") {
        request.op = Request::Op::Submit;
        const JsonValue *job = v.find("job");
        if (!job)
            return Error(Errc::InvalidArgument,
                         "submit needs a job object");
        Result<JobSpec> spec = parseJobSpec(*job);
        if (!spec.ok())
            return spec.error();
        request.spec = std::move(spec).value();
    } else if (op == "status") {
        request.op = Request::Op::Status;
    } else if (op == "subscribe") {
        request.op = Request::Op::Subscribe;
        request.job = v.strOr("job", "");
        if (!validJobKey(request.job))
            return Error(Errc::InvalidArgument,
                         "subscribe needs a 16-hex-digit job key");
    } else if (op == "result") {
        request.op = Request::Op::Result;
        request.job = v.strOr("job", "");
        if (!validJobKey(request.job))
            return Error(Errc::InvalidArgument,
                         "result needs a 16-hex-digit job key");
    } else if (op == "ping") {
        request.op = Request::Op::Ping;
    } else if (op == "shutdown") {
        request.op = Request::Op::Shutdown;
    } else {
        return Error(Errc::InvalidArgument,
                     op.empty() ? "request missing op"
                                : "unknown op '" + op + "'");
    }
    return request;
}

std::string
requestLine(const Request &request)
{
    JsonWriter w;
    w.beginObject();
    switch (request.op) {
      case Request::Op::Submit:
        w.field("op", "submit");
        break;
      case Request::Op::Status:
        w.field("op", "status");
        break;
      case Request::Op::Subscribe:
        w.field("op", "subscribe");
        break;
      case Request::Op::Result:
        w.field("op", "result");
        break;
      case Request::Op::Ping:
        w.field("op", "ping");
        break;
      case Request::Op::Shutdown:
        w.field("op", "shutdown");
        break;
    }
    if (request.op == Request::Op::Subscribe ||
        request.op == Request::Op::Result)
        w.field("job", request.job);
    w.endObject();
    std::string out = w.str();
    if (request.op == Request::Op::Submit) {
        // Splice the canonical job object in as the "job" member.
        out.insert(out.size() - 1,
                   ",\"job\":" + jobSpecJson(request.spec));
    }
    return out;
}

std::string
helloEvent(unsigned protocol_version)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "hello");
    w.field("server", "cbws-served");
    w.field("protocol_version",
            static_cast<std::uint64_t>(protocol_version));
    w.endObject();
    return w.str();
}

std::string
errorEvent(const std::string &message)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "error");
    w.field("message", message);
    w.endObject();
    return w.str();
}

std::string
pongEvent()
{
    return "{\"event\":\"pong\"}";
}

std::string
byeEvent()
{
    return "{\"event\":\"bye\"}";
}

std::string
ackEvent(const std::string &job_key, std::size_t cells, bool deduped,
         std::size_t queue_position)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "ack");
    w.field("job", job_key);
    w.field("cells", static_cast<std::uint64_t>(cells));
    w.field("deduped", deduped);
    w.field("queue_position",
            static_cast<std::uint64_t>(queue_position));
    w.endObject();
    return w.str();
}

std::string
workerEvent(const std::string &job_key, unsigned shard,
            const std::string &state, int pid, unsigned respawns)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "worker");
    w.field("job", job_key);
    w.field("shard", static_cast<std::uint64_t>(shard));
    w.field("state", state);
    w.field("pid", static_cast<std::uint64_t>(
                       pid > 0 ? static_cast<unsigned>(pid) : 0u));
    w.field("respawns", static_cast<std::uint64_t>(respawns));
    w.endObject();
    return w.str();
}

std::string
cellEvent(const std::string &job_key, const std::string &workload,
          const std::string &scheme, double ipc, double mpki,
          std::size_t done, std::size_t total)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "cell");
    w.field("job", job_key);
    w.field("workload", workload);
    w.field("scheme", scheme);
    w.field("ipc", ipc);
    w.field("mpki", mpki);
    w.field("done", static_cast<std::uint64_t>(done));
    w.field("total", static_cast<std::uint64_t>(total));
    w.endObject();
    return w.str();
}

std::string
statsEvent(const std::string &job_key, std::size_t done,
           std::size_t total, std::uint64_t cells_delta,
           std::uint64_t insts, std::uint64_t insts_delta,
           std::uint64_t elapsed_ms, unsigned workers,
           unsigned respawns)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "stats");
    w.field("job", job_key);
    w.field("done", static_cast<std::uint64_t>(done));
    w.field("total", static_cast<std::uint64_t>(total));
    w.field("cells_delta", cells_delta);
    w.field("insts", insts);
    w.field("insts_delta", insts_delta);
    w.field("elapsed_ms", elapsed_ms);
    w.field("workers", static_cast<std::uint64_t>(workers));
    w.field("respawns", static_cast<std::uint64_t>(respawns));
    w.endObject();
    return w.str();
}

std::string
sealedEvent(const std::string &job_key, bool deduped,
            std::size_t cells, std::uint64_t wall_ms,
            std::uint64_t insts, unsigned respawns,
            const std::string &result_json)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "sealed");
    w.field("job", job_key);
    w.field("deduped", deduped);
    w.field("cells", static_cast<std::uint64_t>(cells));
    w.field("wall_ms", wall_ms);
    w.field("insts", insts);
    w.field("respawns", static_cast<std::uint64_t>(respawns));
    w.endObject();
    std::string out = w.str();
    // The result is a pre-serialised JSON array (single line by
    // construction); splice it in verbatim so the client receives
    // byte-exact report text.
    out.insert(out.size() - 1, ",\"result\":" + result_json);
    return out;
}

Result<std::string>
extractSealedResult(const std::string &event_line)
{
    // sealedEvent splices `,"result":<array>` as the final member, so
    // the bytes run from after the marker to the closing brace.
    static const std::string marker = ",\"result\":";
    const std::size_t pos = event_line.find(marker);
    if (pos == std::string::npos || event_line.empty() ||
        event_line.back() != '}')
        return Error(Errc::Corrupt,
                     "sealed event carries no result member");
    const std::size_t begin = pos + marker.size();
    return event_line.substr(begin,
                             event_line.size() - 1 - begin);
}

std::string
failedEvent(const std::string &job_key, const std::string &reason)
{
    JsonWriter w;
    w.beginObject();
    w.field("event", "failed");
    w.field("job", job_key);
    w.field("reason", reason);
    w.endObject();
    return w.str();
}

} // namespace serve
} // namespace cbws
