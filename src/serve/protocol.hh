/**
 * @file
 * Wire protocol of cbws-served: newline-delimited JSON over a
 * unix-domain (or TCP) stream socket. Clients send request objects,
 * the daemon answers with event objects; both directions are one
 * JSON document per line, so the framing is trivial and every
 * message is independently parseable.
 *
 * Requests ({"op": ...}):
 *   submit    {"op":"submit","job":{...JobSpec...}}
 *   status    {"op":"status"}
 *   subscribe {"op":"subscribe","job":"<key>"}
 *   result    {"op":"result","job":"<key>"}
 *   ping      {"op":"ping"}
 *   shutdown  {"op":"shutdown"}
 *
 * Events ({"event": ...}): hello, ack, error, pong, status, worker,
 * cell, stats, sealed, failed, bye — built by the functions below and
 * documented field-by-field in docs/SERVING.md (schema versioned like
 * every other format, see ServeProtocolVersion).
 *
 * Requests come off a socket, i.e. from an untrusted peer: they are
 * parsed under deliberately tight JsonLimits (protocolJsonLimits) and
 * a JobSpec is validated fail-fast against the workload and
 * prefetcher registries before anything is queued.
 */

#ifndef CBWS_SERVE_PROTOCOL_HH
#define CBWS_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/jsonparse.hh"
#include "base/result.hh"

namespace cbws
{
namespace serve
{

/** Version stamped into the hello event and every job spool file. */
constexpr unsigned ServeProtocolVersion = 1;

/** Maximum accepted request-line length, enforced at the framing
 *  layer before the parser ever sees the bytes. */
constexpr std::size_t MaxRequestBytes = 256 * 1024;

/** Tight parser bounds for socket input (see base/jsonparse.hh). */
JsonLimits protocolJsonLimits();

/**
 * One experiment-matrix job: the cross product of workloads x schemes
 * at a fixed instruction budget/seed/system config — exactly the cell
 * space of runMatrix, which is what the workers execute.
 */
struct JobSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> schemes; ///< canonicalised registry names
    std::uint64_t insts = 120000;
    std::uint64_t seed = 42;
    unsigned cores = 1;
    std::string dramBackend = "fixed";
    std::vector<std::string> pfOpts;

    std::size_t
    cellCount() const
    {
        return workloads.size() * schemes.size();
    }
};

/**
 * Parse and validate a job object: every workload must exist, every
 * scheme must be registered (names are canonicalised in place), and
 * pf_opts must pass PrefetcherRegistry::validateOptions — the same
 * fail-fast gate runMatrix applies, moved to submission time so a bad
 * job is rejected before it ever reaches the queue.
 */
Result<JobSpec> parseJobSpec(const JsonValue &v);

/** Canonical JSON object for @p spec (spool files, ack echos). */
std::string jobSpecJson(const JobSpec &spec);

/**
 * The config tag runMatrix derives for checkpoint fingerprints,
 * reproduced so shard checkpoints and an in-process serial run of the
 * same spec agree on compatibility.
 */
std::string configTagFor(const JobSpec &spec);

/**
 * Content fingerprint identifying a job's result: the checkpoint
 * fingerprint of its cell space and config, further mixed with the
 * instruction budget and seed. Two submissions with equal keys are
 * the same experiment — the dedup invariant.
 */
std::uint64_t jobFingerprint(const JobSpec &spec);

/** jobFingerprint as the 16-hex-digit job key used on the wire. */
std::string jobKey(const JobSpec &spec);

/**
 * True iff @p key has the exact canonical jobKey() shape (16
 * lowercase hex digits). Job keys arrive from untrusted peers and are
 * spliced into filesystem paths (jobs/<key>/result.json), so anything
 * else — traversal sequences, embedded NULs, empty strings — must be
 * rejected before it reaches the queue.
 */
bool validJobKey(const std::string &key);

/** A parsed client request. */
struct Request
{
    enum class Op
    {
        Submit,
        Status,
        Subscribe,
        Result,
        Ping,
        Shutdown,
    };

    Op op = Op::Ping;
    JobSpec spec;    ///< Submit only
    std::string job; ///< Subscribe/Result: target job key
};

/** Parse one request line (framing already stripped). */
Result<Request> parseRequest(const std::string &line);

/** Serialise a request (the client side of the wire). */
std::string requestLine(const Request &request);

// Event builders. Each returns one complete JSON line (no '\n').

std::string helloEvent(unsigned protocol_version = ServeProtocolVersion);
std::string errorEvent(const std::string &message);
std::string pongEvent();
std::string byeEvent();

/** Submission accepted (or deduped against a sealed result). */
std::string ackEvent(const std::string &job_key, std::size_t cells,
                     bool deduped, std::size_t queue_position);

/** One worker lifecycle transition (spawned/exited/killed/...). */
std::string workerEvent(const std::string &job_key, unsigned shard,
                        const std::string &state, int pid,
                        unsigned respawns);

/** One finished cell, streamed as it lands. */
std::string cellEvent(const std::string &job_key,
                      const std::string &workload,
                      const std::string &scheme, double ipc,
                      double mpki, std::size_t done,
                      std::size_t total);

/**
 * Periodic scheduling-stats snapshot delta: cells/instructions are
 * cumulative for the job, the *_delta fields cover the interval since
 * the previous stats event — subscribers can integrate either.
 */
std::string statsEvent(const std::string &job_key, std::size_t done,
                       std::size_t total, std::uint64_t cells_delta,
                       std::uint64_t insts, std::uint64_t insts_delta,
                       std::uint64_t elapsed_ms, unsigned workers,
                       unsigned respawns);

/**
 * Job sealed: @p result_json is the raw report array (exactly the
 * bytes a serial in-process run would print), embedded verbatim.
 */
std::string sealedEvent(const std::string &job_key, bool deduped,
                        std::size_t cells, std::uint64_t wall_ms,
                        std::uint64_t insts, unsigned respawns,
                        const std::string &result_json);

/** Job failed permanently (respawn budget exhausted, merge error). */
std::string failedEvent(const std::string &job_key,
                        const std::string &reason);

/**
 * Pull the spliced result array back out of a sealed event line,
 * byte-exact (re-serialising through a parse would reformat doubles
 * and break the identity the whole design guarantees).
 */
Result<std::string> extractSealedResult(const std::string &event_line);

} // namespace serve
} // namespace cbws

#endif // CBWS_SERVE_PROTOCOL_HH
