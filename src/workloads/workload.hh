/**
 * @file
 * Workload framework: synthetic benchmark kernels that stand in for
 * the paper's SPEC CPU2006 / PARSEC / SPLASH / Rodinia / Parboil
 * binaries.
 *
 * Each kernel executes the real algorithm of its benchmark's dominant
 * loops on synthetic data and emits the resulting dynamic instruction
 * trace — memory addresses, register dependencies, branch outcomes and
 * BLOCK_BEGIN/BLOCK_END annotations on innermost tight loops (standing
 * in for the paper's LLVM annotation pass; see DESIGN.md for the
 * substitution argument).
 */

#ifndef CBWS_WORKLOADS_WORKLOAD_HH
#define CBWS_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace cbws
{

/** Generation parameters shared by all kernels. */
struct WorkloadParams
{
    /** Records to emit (a little beyond the core's commit budget). */
    std::uint64_t maxInstructions = 200000;
    /** Seed for the kernel's synthetic data. */
    std::uint64_t seed = 42;
};

/**
 * Base class of every synthetic benchmark kernel.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /** Originating suite (SPEC2006, Parboil, ...). */
    virtual std::string suite() const = 0;

    /** Member of the paper's memory-intensive (MI) group? */
    virtual bool memoryIntensive() const = 0;

    /** Synthesise the instruction trace. */
    virtual void generate(Trace &trace,
                          const WorkloadParams &params) const = 0;
};

using WorkloadPtr = std::unique_ptr<Workload>;

} // namespace cbws

#endif // CBWS_WORKLOADS_WORKLOAD_HH
