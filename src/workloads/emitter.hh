/**
 * @file
 * Trace emission helper used by workload kernels.
 *
 * The Emitter manages the kernel's synthetic address space (a bump
 * allocator for data arrays plus a code region for synthetic PCs),
 * assigns each static emission site a stable PC, and appends
 * TraceRecords. Kernels pass a small integer *site* per static
 * instruction, so the same source line always produces the same PC —
 * exactly what PC-indexed prefetchers and the branch predictor need.
 */

#ifndef CBWS_WORKLOADS_EMITTER_HH
#define CBWS_WORKLOADS_EMITTER_HH

#include "base/logging.hh"
#include "base/random.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace cbws
{

/**
 * Appends records to a Trace on behalf of a kernel.
 */
class Emitter
{
  public:
    Emitter(Trace &trace, const WorkloadParams &params,
            Addr code_base = 0x400000, Addr data_base = 0x10000000)
        : trace_(trace),
          codeBase_(code_base),
          dataBrk_(data_base),
          limit_(params.maxInstructions + 256),
          rng_(params.seed)
    {
        // One up-front reservation for the whole generation budget:
        // kernels emit millions of records one at a time, and letting
        // the vector grow geometrically would copy the trace ~log(n)
        // times over.
        trace_.reserve(limit_ + 256);
    }

    /** Budget exhausted? Kernels poll this in their outer loops. */
    bool full() const { return trace_.size() >= limit_; }

    /** Deterministic RNG seeded from the workload parameters. */
    Random &rng() { return rng_; }

    /** Allocate a data array with a guard gap between allocations. */
    Addr
    alloc(std::uint64_t bytes, std::uint64_t align = 64)
    {
        dataBrk_ = (dataBrk_ + align - 1) / align * align;
        const Addr base = dataBrk_;
        dataBrk_ += bytes + 4096; // guard page between arrays
        return base;
    }

    /** PC assigned to static emission site @p site. */
    Addr pcOf(unsigned site) const { return codeBase_ + site * 4u; }

    void
    alu(unsigned site, RegIndex dst, RegIndex s1 = InvalidReg,
        RegIndex s2 = InvalidReg)
    {
        trace_.append(TraceRecord::alu(pcOf(site), dst, s1, s2));
    }

    void
    mul(unsigned site, RegIndex dst, RegIndex s1 = InvalidReg,
        RegIndex s2 = InvalidReg)
    {
        TraceRecord r = TraceRecord::alu(pcOf(site), dst, s1, s2);
        r.cls = InstClass::IntMul;
        trace_.append(r);
    }

    void
    fp(unsigned site, RegIndex dst, RegIndex s1 = InvalidReg,
       RegIndex s2 = InvalidReg)
    {
        trace_.append(TraceRecord::fp(pcOf(site), dst, s1, s2));
    }

    void
    load(unsigned site, Addr addr, RegIndex dst,
         RegIndex addr_reg = InvalidReg, std::uint8_t size = 8)
    {
        trace_.append(TraceRecord::load(pcOf(site), addr, dst,
                                        addr_reg, size));
    }

    void
    store(unsigned site, Addr addr, RegIndex data_reg,
          RegIndex addr_reg = InvalidReg, std::uint8_t size = 8)
    {
        trace_.append(TraceRecord::store(pcOf(site), addr, data_reg,
                                         addr_reg, size));
    }

    /** Conditional/unconditional branch to another static site. */
    void
    branch(unsigned site, bool taken, unsigned target_site,
           RegIndex cond_reg = InvalidReg)
    {
        trace_.append(TraceRecord::branch(pcOf(site), taken,
                                          pcOf(target_site), cond_reg));
    }

    void
    blockBegin(unsigned site, BlockId id)
    {
        trace_.append(TraceRecord::blockBegin(pcOf(site), id));
    }

    void
    blockEnd(unsigned site, BlockId id)
    {
        trace_.append(TraceRecord::blockEnd(pcOf(site), id));
    }

    /**
     * Rotating temporary destination register (r40..r55): avoids
     * serialising independent loads through a single register.
     */
    RegIndex
    temp()
    {
        tempRot_ = (tempRot_ + 1) % 16;
        return static_cast<RegIndex>(40 + tempRot_);
    }

  private:
    Trace &trace_;
    Addr codeBase_;
    Addr dataBrk_;
    std::uint64_t limit_;
    Random rng_;
    unsigned tempRot_ = 0;
};

} // namespace cbws

#endif // CBWS_WORKLOADS_EMITTER_HH
