/**
 * @file
 * Synthetic kernels for the SPLASH-2 and PARSEC benchmarks used in
 * the paper: fft, radix, lu-ncb, streamcluster (memory intensive) and
 * canneal, cholesky, freqmine, ocean-cp, water-spatial (low MPKI).
 */

#include "workloads/emitter.hh"
#include "workloads/kernels/kernels.hh"

namespace cbws
{
namespace kernels
{

namespace
{

constexpr RegIndex RIdx = 1;
constexpr RegIndex RJdx = 2;
constexpr RegIndex RVal = 3;
constexpr RegIndex RPtr = 4;
constexpr RegIndex RAcc = 5;
constexpr RegIndex RCmp = 6;

/**
 * SPLASH fft-simlarge — radix-2 butterflies plus twiddle gathers.
 *
 * Butterfly spans halve every stage and the twiddle index advances by
 * a stage-dependent amount, so the stream of 1-step CBWS differentials
 * cycles through many distinct vectors. The paper found exactly this:
 * fft has too many distinct differentials for the 16-entry history
 * table, so standalone CBWS loses to SMS there while CBWS+SMS keeps
 * the better timeliness.
 */
class FftWorkload : public Workload
{
  public:
    std::string name() const override { return "fft-simlarge"; }
    std::string suite() const override { return "PARSEC-SPLASH"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 1 << 20; // complex doubles: 16 MB
        const Addr data = e.alloc(n * 16);
        const Addr twiddle = e.alloc(n * 16);

        while (!e.full()) {
            for (unsigned stage = 0; stage < 20 && !e.full();
                 ++stage) {
                const std::uint64_t half = n >> (stage + 1);
                if (half == 0)
                    break;
                // Inter-stage transpose/bit-reversal work (non-loop
                // runtime): scattered accesses between stages.
                for (unsigned s = 0; s < 40 && !e.full(); ++s) {
                    e.alu(100 + s % 5, RAcc, RAcc);
                    if (s % 4 == 1) {
                        e.load(110 + s % 4,
                               data + e.rng().below(n) * 16,
                               e.temp(), RAcc);
                    }
                }

                // The butterfly loop is unrolled by 4 (SPLASH's
                // radix-4 kernel shape): one annotated block touches
                // a top line, a bottom line and a twiddle line.
                const std::uint64_t tw_step = 1ull << stage;
                std::uint64_t tw = 0;
                for (std::uint64_t i = 0; i + 4 <= n / 2 && !e.full();
                     i += 4) {
                    e.blockBegin(0, /*id=*/14);
                    for (unsigned u = 0; u < 4; ++u) {
                        const std::uint64_t b = i + u;
                        const std::uint64_t top =
                            (b / half) * 2 * half + (b % half);
                        const std::uint64_t bot = top + half;
                        tw = (tw + tw_step) % n;
                        e.load(1 + u * 7, data + top * 16, RVal,
                               RIdx);
                        e.load(2 + u * 7, data + bot * 16, RPtr,
                               RIdx);
                        e.load(3 + u * 7, twiddle + tw * 16, RCmp,
                               RIdx);
                        e.fp(4 + u * 7, RAcc, RVal, RCmp);
                        e.fp(5 + u * 7, RVal, RPtr, RCmp);
                        e.store(6 + u * 7, data + top * 16, RAcc,
                                RIdx);
                        e.store(7 + u * 7, data + bot * 16, RVal,
                                RIdx);
                    }
                    e.alu(29, RIdx, RIdx);
                    e.branch(30, i + 8 <= n / 2, 1, RIdx);
                    e.blockEnd(31, /*id=*/14);
                }
            }
        }
    }
};

/**
 * SPLASH radix-simlarge — radix sort permutation pass.
 *
 * Keys arrive in long same-digit runs (the sorted-ish distributions
 * the simlarge input produces after the first pass), so the read
 * stream and the active bucket's write stream both advance with
 * constant strides for hundreds of iterations: a block-structured
 * pattern the paper reports CBWS effectively eliminating misses on.
 */
class RadixWorkload : public Workload
{
  public:
    std::string name() const override { return "radix-simlarge"; }
    std::string suite() const override { return "PARSEC-SPLASH"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_keys = 2 * 1024 * 1024; // 4B keys
        const std::uint64_t radix = 64;
        const std::uint64_t bucket_span = num_keys / radix;
        const Addr keys = e.alloc(num_keys * 4);
        const Addr out = e.alloc(num_keys * 4);
        const Addr counts = e.alloc(radix * 8);

        std::vector<std::uint64_t> bucket_pos(radix);
        for (std::uint64_t d = 0; d < radix; ++d)
            bucket_pos[d] = d * bucket_span;

        std::uint64_t hist_pos = 0;
        while (!e.full()) {
            // Permutation pass on partially-sorted keys (a later
            // radix pass): digits arrive in 16-key runs that cycle
            // round-robin over the 64 buckets, so the iteration
            // working set hops bucket-to-bucket by a constant stride
            // — differential-predictable, while each bucket's 2 KB
            // region is touched far too rarely for SMS generations
            // to accumulate, and the alternating store stride keeps
            // the stride prefetcher from locking on.
            std::uint64_t digit = 0;
            for (std::uint64_t i = 0; i + 32 <= num_keys &&
                 !e.full(); i += 32) {
                e.blockBegin(0, /*id=*/15);
                // One 32-key run per iteration: two key lines in,
                // two output lines in the current bucket. Rank
                // counters stay in registers after the histogram
                // pass, so the block's working set is exactly the
                // key and output lines.
                e.load(1, keys + i * 4, RVal, RIdx, 4);
                e.load(2, keys + (i + 16) * 4, RPtr, RIdx, 4);
                e.alu(3, RPtr, RVal);                 // extract digit
                e.alu(4, RCmp, RPtr);                 // rank lookup
                for (unsigned u = 0; u < 8; ++u) {
                    const std::uint64_t dst = bucket_pos[digit];
                    bucket_pos[digit] = (dst + 4) % num_keys;
                    e.store(5 + u, out + dst * 4, RVal, RCmp, 4);
                }
                e.alu(13, RIdx, RIdx);
                e.branch(14, i + 64 <= num_keys, 1, RIdx);
                e.blockEnd(15, /*id=*/15);
                digit = (digit + 1) % radix;

                // Histogram/prefix-sum phase of the *next* pass
                // (non-loop runtime, Fig. 1: radix spends a large
                // share of time outside the permute loop).
                if (i % 128 == 0) {
                    for (unsigned s = 0; s < 8 && !e.full(); ++s) {
                        e.load(116 + s % 4, keys + hist_pos * 4,
                               e.temp(), RAcc, 4);
                        hist_pos = (hist_pos + 400) % num_keys;
                        e.load(120 + s % 4,
                               counts + (s % radix) * 8, e.temp(),
                               RAcc);
                        e.alu(124 + s % 4, RAcc, RAcc);
                    }
                    for (unsigned s = 0; s < 16; ++s)
                        e.alu(128 + s % 8, RAcc, RAcc);
                }
            }
        }
    }
};

/**
 * SPLASH lu-ncb-simlarge — LU with non-contiguous blocks.
 *
 * The daxpy-style inner loop updates a block column whose elements
 * are a full matrix row apart (non-contiguous allocation), giving
 * every access a long constant stride. CBWS captures the whole
 * iteration; SMS's 2 KB regions each catch only one line per visit.
 */
class LuNcbWorkload : public Workload
{
  public:
    std::string name() const override { return "lu-ncb-simlarge"; }
    std::string suite() const override { return "PARSEC-SPLASH"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 1024; // 8 MB matrix of doubles
        const Addr mat = e.alloc(n * n * 8);

        while (!e.full()) {
            for (std::uint64_t k = 0; k < n - 1 && !e.full(); ++k) {
                // Pivot selection (non-loop).
                for (unsigned s = 0; s < 20 && !e.full(); ++s)
                    e.alu(100 + s % 4, RAcc, RAcc);

                const std::uint64_t jmax = std::min<std::uint64_t>(
                    n, k + 1 + 24);
                for (std::uint64_t j = k + 1; j < jmax && !e.full();
                     ++j) {
                    // Update column j below the pivot: elements are n
                    // doubles apart (row-major), i.e., 128 lines.
                    // The i-loop is unrolled by 2, so an annotated
                    // block touches four long-stride lines.
                    for (std::uint64_t i = k + 1; i + 1 < n &&
                         !e.full(); i += 2) {
                        e.blockBegin(0, /*id=*/16);
                        for (unsigned u = 0; u < 2; ++u) {
                            e.load(1 + u * 5,
                                   mat + ((i + u) * n + k) * 8, RVal,
                                   RIdx);
                            e.load(2 + u * 5, mat + (k * n + j) * 8,
                                   RPtr, RJdx);
                            e.load(3 + u * 5,
                                   mat + ((i + u) * n + j) * 8, RAcc,
                                   RIdx);
                            e.fp(4 + u * 5, RAcc, RVal, RPtr);
                            e.store(5 + u * 5,
                                    mat + ((i + u) * n + j) * 8,
                                    RAcc, RIdx);
                        }
                        e.alu(12, RIdx, RIdx);
                        e.branch(13, i + 3 < n, 1, RIdx);
                        e.blockEnd(14, /*id=*/16);
                    }
                }
            }
        }
    }
};

/**
 * PARSEC streamcluster-simlarge — k-median distance evaluation.
 *
 * Each annotated iteration computes the distance from one point to
 * the currently considered centre. Points stream regularly but the
 * centre changes data-dependently every few points, so the
 * differential stream mixes many distinct vectors — like fft, too
 * many for the 16-entry table, making SMS the better standalone
 * scheme (the CBWS+SMS hybrid recovers the difference).
 */
class StreamclusterWorkload : public Workload
{
  public:
    std::string name() const override
    {
        return "streamcluster-simlarge";
    }
    std::string suite() const override { return "PARSEC"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_points = 65536;
        const std::uint64_t dim = 32; // 256 B per point: 4 lines
        const Addr points = e.alloc(num_points * dim * 8);
        const Addr centers = e.alloc(num_points * dim * 8);
        const Addr assign = e.alloc(num_points * 8);

        std::uint64_t center = 0;
        while (!e.full()) {
            for (std::uint64_t p = 0; p < num_points && !e.full();
                 ++p) {
                // Medoid shuffling and gain bookkeeping (non-loop
                // runtime): scattered reads between point scans.
                if (p % 40 == 0) {
                    for (unsigned s = 0; s < 5 && !e.full(); ++s) {
                        e.load(120 + s,
                               assign +
                                   e.rng().below(num_points) * 8,
                               e.temp(), RAcc);
                        e.alu(126 + s % 4, RAcc, RAcc);
                    }
                    for (unsigned s = 0; s < 10; ++s)
                        e.alu(130 + s % 5, RAcc, RAcc);
                }
                if (e.rng().chance(0.3))
                    center = e.rng().below(num_points);
                const Addr prow = points + p * dim * 8;
                const Addr crow = centers + center * dim * 8;
                const bool improved = e.rng().chance(0.25);
                e.blockBegin(0, /*id=*/17);
                for (unsigned d = 0; d < 4; ++d) {
                    e.load(1 + d * 3, prow + d * 64, RVal, RIdx);
                    e.load(2 + d * 3, crow + d * 64, RCmp, RJdx);
                    e.fp(3 + d * 3, RAcc, RVal, RCmp);
                }
                e.branch(13, !improved, 15, RAcc);
                if (improved)
                    e.store(14, assign + p * 8, RAcc, RIdx);
                e.alu(15, RIdx, RIdx);
                e.branch(16, p + 1 < num_points, 1, RIdx);
                e.blockEnd(17, /*id=*/17);
            }
        }
    }
};

/**
 * PARSEC canneal-simlarge — simulated-annealing element swaps
 * (low MPKI).
 *
 * Random pairs of netlist elements are read and occasionally swapped;
 * the netlist here fits in the L2, so misses are rare.
 */
class CannealWorkload : public Workload
{
  public:
    std::string name() const override { return "canneal-simlarge"; }
    std::string suite() const override { return "PARSEC"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t elements = 1024; // 64 KB
        const Addr netlist = e.alloc(elements * 64);

        while (!e.full()) {
            for (unsigned s = 0; s < 25 && !e.full(); ++s)
                e.alu(100 + s % 5, RAcc, RAcc);

            for (unsigned sw = 0; sw < 3000 && !e.full(); ++sw) {
                const std::uint64_t a = e.rng().below(elements);
                const std::uint64_t b = e.rng().below(elements);
                const bool accept = e.rng().chance(0.4);
                e.blockBegin(0, /*id=*/18);
                e.load(1, netlist + a * 64, RVal, RIdx);
                e.load(2, netlist + b * 64, RPtr, RIdx);
                e.alu(3, RCmp, RVal, RPtr);
                e.branch(4, !accept, 7, RCmp);
                if (accept) {
                    e.store(5, netlist + a * 64, RPtr, RIdx);
                    e.store(6, netlist + b * 64, RVal, RIdx);
                }
                e.alu(7, RIdx, RIdx);
                e.branch(8, sw + 1 < 3000, 1, RIdx);
                e.blockEnd(9, /*id=*/18);
            }
        }
    }
};

/**
 * SPLASH cholesky-tk29 — supernodal factorisation (low MPKI).
 *
 * Dense column updates within a factor that fits in the L2: floating
 * point dominated, few LLC misses.
 */
class CholeskyWorkload : public Workload
{
  public:
    std::string name() const override { return "cholesky-tk29"; }
    std::string suite() const override { return "PARSEC-SPLASH"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 128; // 128 KB factor
        const Addr mat = e.alloc(n * n * 8);

        while (!e.full()) {
            for (std::uint64_t k = 0; k < n && !e.full(); ++k) {
                for (unsigned s = 0; s < 15 && !e.full(); ++s)
                    e.fp(100 + s % 3, RAcc, RAcc);
                for (std::uint64_t i = k + 1; i < n && !e.full();
                     ++i) {
                    e.blockBegin(0, /*id=*/19);
                    e.load(1, mat + (i * n + k) * 8, RVal, RIdx);
                    e.load(2, mat + (k * n + k) * 8, RPtr, RJdx);
                    e.fp(3, RAcc, RVal, RPtr);
                    e.fp(4, RAcc, RAcc, RVal);
                    e.store(5, mat + (i * n + k) * 8, RAcc, RIdx);
                    e.alu(6, RIdx, RIdx);
                    e.branch(7, i + 1 < n, 1, RIdx);
                    e.blockEnd(8, /*id=*/19);
                }
            }
        }
    }
};

/**
 * PARSEC freqmine-simlarge — FP-growth tree walks (low MPKI).
 *
 * Short pointer chases through an FP-tree that fits in the L2, with
 * data-dependent fan-out branches.
 */
class FreqmineWorkload : public Workload
{
  public:
    std::string name() const override { return "freqmine-simlarge"; }
    std::string suite() const override { return "PARSEC"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t nodes = 1024; // 64 KB
        const Addr tree = e.alloc(nodes * 64);

        while (!e.full()) {
            for (unsigned s = 0; s < 20 && !e.full(); ++s)
                e.alu(100 + s % 4, RAcc, RAcc);

            for (unsigned w = 0; w < 600 && !e.full(); ++w) {
                std::uint64_t node = e.rng().below(nodes);
                for (unsigned d = 0; d < 8 && !e.full(); ++d) {
                    const bool descend = e.rng().chance(0.7);
                    e.blockBegin(0, /*id=*/20);
                    e.load(1, tree + node * 64, RPtr, RPtr);
                    e.load(2, tree + node * 64 + 16, RVal, RPtr);
                    e.alu(3, RAcc, RAcc, RVal);
                    e.branch(4, descend, 1, RVal);
                    e.blockEnd(5, /*id=*/20);
                    if (!descend)
                        break;
                    node = (node * 3 + 1 + e.rng().below(7)) % nodes;
                }
            }
        }
    }
};

/**
 * SPLASH ocean-cp-simlarge — red-black relaxation (low MPKI).
 *
 * A 5-point stencil over a grid small enough that successive sweeps
 * mostly hit in the L2.
 */
class OceanCpWorkload : public Workload
{
  public:
    std::string name() const override { return "ocean-cp-simlarge"; }
    std::string suite() const override { return "PARSEC-SPLASH"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 64; // 32 KB grid, L2 resident
        const Addr grid = e.alloc(n * n * 8);

        while (!e.full()) {
            for (std::uint64_t i = 1; i + 1 < n && !e.full(); ++i) {
                for (unsigned s = 0; s < 8; ++s)
                    e.alu(100 + s % 4, RAcc, RAcc);
                for (std::uint64_t j = 1; j + 1 < n && !e.full();
                     ++j) {
                    e.blockBegin(0, /*id=*/21);
                    e.load(1, grid + (i * n + j) * 8, RVal, RIdx);
                    e.load(2, grid + ((i - 1) * n + j) * 8, RPtr,
                           RIdx);
                    e.load(3, grid + ((i + 1) * n + j) * 8, RCmp,
                           RIdx);
                    e.load(4, grid + (i * n + j - 1) * 8, e.temp(),
                           RIdx);
                    e.load(5, grid + (i * n + j + 1) * 8, e.temp(),
                           RIdx);
                    e.fp(6, RAcc, RVal, RPtr);
                    e.fp(7, RAcc, RAcc, RCmp);
                    e.store(8, grid + (i * n + j) * 8, RAcc, RIdx);
                    e.alu(9, RIdx, RIdx);
                    e.branch(10, j + 2 < n, 1, RIdx);
                    e.blockEnd(11, /*id=*/21);
                }
            }
        }
    }
};

/**
 * SPLASH water-spatial-native — molecular dynamics in spatial boxes
 * (low MPKI).
 *
 * Pairwise force computation within small neighbour boxes: compute
 * heavy, working set resident in the L2.
 */
class WaterSpatialWorkload : public Workload
{
  public:
    std::string name() const override
    {
        return "water-spatial-native";
    }
    std::string suite() const override { return "PARSEC-SPLASH"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t molecules = 1024; // 256 KB
        const Addr mol = e.alloc(molecules * 256);

        while (!e.full()) {
            for (unsigned s = 0; s < 20 && !e.full(); ++s)
                e.fp(100 + s % 4, RAcc, RAcc);

            for (std::uint64_t m = 0; m < molecules && !e.full();
                 ++m) {
                const std::uint64_t nb =
                    (m + 1 + e.rng().below(8)) % molecules;
                e.blockBegin(0, /*id=*/22);
                e.load(1, mol + m * 256, RVal, RIdx);
                e.load(2, mol + m * 256 + 64, RPtr, RIdx);
                e.load(3, mol + nb * 256, RCmp, RJdx);
                e.fp(4, RAcc, RVal, RCmp);
                e.fp(5, RAcc, RAcc, RPtr);
                e.fp(6, RAcc, RAcc, RVal);
                e.fp(7, RAcc, RAcc, RCmp);
                e.store(8, mol + m * 256 + 128, RAcc, RIdx);
                e.alu(9, RIdx, RIdx);
                e.branch(10, m + 1 < molecules, 1, RIdx);
                e.blockEnd(11, /*id=*/22);
            }
        }
    }
};

} // anonymous namespace

WorkloadPtr
makeFft()
{
    return std::make_unique<FftWorkload>();
}

WorkloadPtr
makeRadix()
{
    return std::make_unique<RadixWorkload>();
}

WorkloadPtr
makeLuNcb()
{
    return std::make_unique<LuNcbWorkload>();
}

WorkloadPtr
makeStreamcluster()
{
    return std::make_unique<StreamclusterWorkload>();
}

WorkloadPtr
makeCanneal()
{
    return std::make_unique<CannealWorkload>();
}

WorkloadPtr
makeCholesky()
{
    return std::make_unique<CholeskyWorkload>();
}

WorkloadPtr
makeFreqmine()
{
    return std::make_unique<FreqmineWorkload>();
}

WorkloadPtr
makeOceanCp()
{
    return std::make_unique<OceanCpWorkload>();
}

WorkloadPtr
makeWaterSpatial()
{
    return std::make_unique<WaterSpatialWorkload>();
}

} // namespace kernels
} // namespace cbws
