/**
 * @file
 * Synthetic DBMS/server workload family: irregular, pointer-heavy,
 * data-dependent kernels modelled on the hpides prefetching-benchmark
 * catalog (hash_join, btree_benchmark, binary_search, pointer_chasing,
 * hashmap_benchmark, materialization).
 *
 * Where the 30 paper kernels are HPC-style loop nests — the easy case
 * for CBWS's loop-aware working sets — these six reproduce the
 * "millions of users" traffic shape of database engines: hash probes,
 * tree descents and dependent pointer walks whose iteration working
 * sets evolve by *data-dependent* differentials. Every structure is
 * sized well past the 2 MB L2, so the misses are real capacity misses,
 * not cold-start noise. This is the family where CBWS is expected to
 * lose on some kernels and the zoo's Markov/RL schemes take over.
 */

#include "workloads/emitter.hh"
#include "workloads/kernels/kernels.hh"

namespace cbws
{
namespace kernels
{

namespace
{

// Register conventions shared by the kernels in this file.
constexpr RegIndex RIdx = 1;   ///< primary induction variable
constexpr RegIndex RVal = 3;   ///< loaded data value
constexpr RegIndex RPtr = 4;   ///< pointer loaded from memory
constexpr RegIndex RAcc = 5;   ///< accumulator
constexpr RegIndex RCmp = 6;   ///< comparison result feeding branches

/**
 * Deterministic 64-bit mix (splitmix64 finaliser): used wherever a
 * kernel needs a *fixed* data structure (a pointer graph, a hash
 * function) rather than a fresh random draw — revisiting the same
 * node must follow the same edges, or the address stream would be
 * noise even to a Markov predictor.
 */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * hash-join — open-addressing hash-join build + probe.
 *
 * Build fills an 8 MB open-addressing table from a streamed build
 * column; probe streams the probe column (unit stride, the easy part)
 * and for each tuple walks the table from a hashed slot until the
 * match or an empty slot (1-3 dependent random-table loads, the hard
 * part). The per-iteration working set mixes one predictable column
 * line with hash-scattered table lines, so the CBWS differentials
 * are data dependent almost everywhere.
 */
class HashJoinWorkload : public Workload
{
  public:
    std::string name() const override { return "hash-join"; }
    std::string suite() const override { return "DBMS"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_slots = 1ull << 17; // x64B = 8 MB
        const std::uint64_t build_rows = 60000;
        const std::uint64_t probe_rows = 1ull << 20;
        const Addr table = e.alloc(num_slots * 64);
        const Addr build_col = e.alloc(build_rows * 16);
        const Addr probe_col = e.alloc(probe_rows * 16);
        const Addr out = e.alloc(probe_rows * 16);

        while (!e.full()) {
            // Build phase: stream the build column, scatter into the
            // table (annotated tight loop).
            for (std::uint64_t i = 0; i < build_rows && !e.full();
                 ++i) {
                const std::uint64_t slot =
                    mix64(i * 2654435761ull) % num_slots;
                e.blockBegin(0, /*id=*/10);
                e.load(1, build_col + i * 16, RVal, RIdx);
                e.alu(2, RPtr, RVal);                 // hash(key)
                e.load(3, table + slot * 64, RCmp, RPtr);
                e.store(4, table + slot * 64, RVal, RPtr);
                e.alu(5, RIdx, RIdx);                 // i++
                e.branch(6, i + 1 < build_rows, 1, RIdx);
                e.blockEnd(7, /*id=*/10);
            }

            // Probe phase: the dominant loop of every hash join.
            std::uint64_t matched = 0;
            for (std::uint64_t i = 0; i < probe_rows && !e.full();
                 ++i) {
                const std::uint64_t slot =
                    e.rng().below(num_slots);
                // Open addressing: geometric probe-run length.
                unsigned probes = 1;
                if (e.rng().chance(0.35))
                    ++probes;
                if (e.rng().chance(0.15))
                    ++probes;
                e.blockBegin(0, /*id=*/11);
                e.load(1, probe_col + i * 16, RVal, RIdx);
                e.alu(2, RPtr, RVal);                 // hash(key)
                for (unsigned p = 0; p < probes; ++p) {
                    e.load(3 + p * 2,
                           table + ((slot + p) % num_slots) * 64,
                           RCmp, RPtr);
                    e.alu(4 + p * 2, RCmp, RCmp, RVal); // key compare
                }
                const bool hit = e.rng().chance(0.45);
                e.branch(9, !hit, 12, RCmp);
                if (hit) {
                    // Materialise the joined tuple (sequential out).
                    e.store(10, out + matched * 16, RCmp, RPtr);
                    e.alu(11, RAcc, RAcc, RCmp);
                    ++matched;
                }
                e.alu(12, RIdx, RIdx);
                e.branch(13, i + 1 < probe_rows, 1, RIdx);
                e.blockEnd(14, /*id=*/11);

                // Operator glue between probe batches (non-loop
                // runtime): tuple-at-a-time bookkeeping.
                if (i % 64 == 63) {
                    for (unsigned s = 0; s < 8; ++s)
                        e.alu(100 + s % 4, RAcc, RAcc);
                }
            }
        }
    }
};

/**
 * btree-descent — B-tree point lookups with configurable fan-out.
 *
 * A four-level tree of 256-byte nodes (fan-out 16 by default) over a
 * 4 MB leaf array. Each level's key scan is the annotated tight loop:
 * the scan itself walks the node's lines sequentially (spatially
 * local — SMS territory), but consecutive blocks sit at unrelated
 * node addresses chosen by the descent, so block-to-block
 * differentials carry no recurring stride for CBWS to learn.
 */
class BtreeWorkload : public Workload
{
  public:
    explicit BtreeWorkload(unsigned fanout) : fanout_(fanout) {}

    std::string name() const override { return "btree-descent"; }
    std::string suite() const override { return "DBMS"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t fanout = fanout_;
        const std::uint64_t node_bytes = fanout * 16; // keys+children
        const unsigned levels = 4;
        // Nodes per level: 1, F, F^2, F^3.
        std::uint64_t level_nodes[levels];
        std::uint64_t total_nodes = 0;
        {
            std::uint64_t n = 1;
            for (unsigned l = 0; l < levels; ++l) {
                level_nodes[l] = n;
                total_nodes += n;
                n *= fanout;
            }
        }
        const std::uint64_t leaves = level_nodes[levels - 1] * fanout;
        const Addr nodes = e.alloc(total_nodes * node_bytes);
        const Addr leaf_arr = e.alloc(leaves * 64); // 4 MB at F=16

        std::uint64_t level_base[levels];
        {
            std::uint64_t off = 0;
            for (unsigned l = 0; l < levels; ++l) {
                level_base[l] = off;
                off += level_nodes[l];
            }
        }

        while (!e.full()) {
            // One point lookup: descend the inner levels, then touch
            // the leaf.
            std::uint64_t node = 0; // root
            for (unsigned l = 0; l < levels && !e.full(); ++l) {
                const Addr base = nodes + (level_base[l] + node) *
                                              node_bytes;
                // Key scan: one load per node line, early-exit
                // branch per line (the branchy separator search).
                const unsigned lines =
                    static_cast<unsigned>((node_bytes + 63) / 64);
                const unsigned stop =
                    1 + static_cast<unsigned>(e.rng().below(lines));
                e.blockBegin(0, /*id=*/12);
                for (unsigned k = 0; k < stop; ++k) {
                    e.load(1 + k * 2, base + k * 64, RVal, RPtr);
                    e.alu(2 + k * 2, RCmp, RVal, RAcc);
                }
                e.branch(11, stop < lines, 1, RCmp);
                e.alu(12, RPtr, RCmp);    // child pointer
                e.blockEnd(13, /*id=*/12);
                // The chosen child: data dependent (uniform key).
                node = node * fanout + e.rng().below(fanout);
            }
            // Leaf access + result bookkeeping (non-loop runtime).
            e.load(120, leaf_arr + (node % leaves) * 64, RVal, RPtr);
            for (unsigned s = 0; s < 6; ++s)
                e.alu(130 + s % 3, RAcc, RAcc, RVal);
        }
    }

  private:
    unsigned fanout_;
};

/**
 * binary-search — branchy binary search over a sorted column.
 *
 * Lookups over a 16 MB sorted column: every halving step is one
 * annotated block holding a single data-dependent load plus the
 * taken/not-taken compare. The first few steps of every search hit
 * the same central lines (cache-resident), the tail scatters over
 * the whole column — the classic pattern where stride, stream and
 * working-set prefetchers all collapse.
 */
class BinarySearchWorkload : public Workload
{
  public:
    std::string name() const override { return "binary-search"; }
    std::string suite() const override { return "DBMS"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 2ull * 1024 * 1024; // x8B = 16 MB
        const Addr column = e.alloc(n * 8);
        const Addr results = e.alloc(1ull << 20);

        std::uint64_t searches = 0;
        while (!e.full()) {
            const std::uint64_t key = e.rng().below(n);
            std::uint64_t lo = 0, hi = n;
            while (lo + 1 < hi && !e.full()) {
                const std::uint64_t mid = lo + (hi - lo) / 2;
                const bool go_right = key >= mid;
                e.blockBegin(0, /*id=*/13);
                e.load(1, column + mid * 8, RVal, RPtr);
                e.alu(2, RCmp, RVal, RAcc);       // key compare
                e.branch(3, go_right, 1, RCmp);
                e.blockEnd(4, /*id=*/13);
                if (go_right)
                    lo = mid;
                else
                    hi = mid;
            }
            // Row fetch + result append (non-loop runtime).
            e.load(110, column + lo * 8, RVal, RPtr);
            e.store(111, results + (searches % 131072) * 8, RVal,
                    RIdx);
            for (unsigned s = 0; s < 4; ++s)
                e.alu(120 + s % 2, RAcc, RAcc);
            ++searches;
        }
    }
};

/**
 * pointer-chase — dependent pointer chasing with configurable
 * out-degree.
 *
 * A fixed random graph of 256 K nodes (16 MB): every visit loads one
 * of the node's out-pointers and follows it, so each block's single
 * data line is the *loaded value* of the previous block — the
 * fully-dependent case where no working-set or stride scheme can
 * help. The graph's edges are frozen at synthesis, so a node's
 * successors repeat across visits: per-page Markov chains (Pangloss)
 * are the only registry schemes with anything to learn here.
 */
class PointerChaseWorkload : public Workload
{
  public:
    explicit PointerChaseWorkload(unsigned out_degree)
        : outDegree_(out_degree)
    {}

    std::string name() const override { return "pointer-chase"; }
    std::string suite() const override { return "DBMS"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_nodes = 1ull << 18; // x64B = 16 MB
        const Addr nodes = e.alloc(num_nodes * 64);

        std::uint64_t cur = e.rng().below(num_nodes);
        while (!e.full()) {
            // One chain: 64 dependent hops, then re-seed (a new
            // "request" arriving at the server).
            for (unsigned hop = 0; hop < 64 && !e.full(); ++hop) {
                const std::uint64_t pick =
                    e.rng().below(outDegree_);
                e.blockBegin(0, /*id=*/14);
                // The pointer slot: node header + pick*8.
                e.load(1, nodes + cur * 64 + pick * 8, RPtr, RPtr);
                // The payload the server actually wanted.
                e.load(2, nodes + cur * 64 + 32, RVal, RPtr);
                e.alu(3, RAcc, RAcc, RVal);
                e.branch(4, hop + 1 < 64, 1, RCmp);
                e.blockEnd(5, /*id=*/14);
                // Follow the frozen edge: successor j of node i is
                // a pure function of (i, j), not a fresh draw.
                cur = mix64(cur * (outDegree_ + 1) + pick) %
                      num_nodes;
            }
            // Request bookkeeping between chains (non-loop runtime).
            cur = e.rng().below(num_nodes);
            for (unsigned s = 0; s < 10; ++s)
                e.alu(100 + s % 5, RAcc, RAcc);
        }
    }

  private:
    unsigned outDegree_;
};

/**
 * hashmap-storm — open-addressing hashmap probe storms.
 *
 * Bursts of 256 get/put operations against an 8 MB open-addressing
 * table: every operation starts at a hashed (random) slot and walks a
 * short linear probe run — spatially local within the run, unrelated
 * across operations. Puts rewrite the probed slot, mixing stores into
 * the miss stream. Between storms the server formats responses into a
 * sequential buffer (the predictable non-loop runtime).
 */
class HashmapStormWorkload : public Workload
{
  public:
    std::string name() const override { return "hashmap-storm"; }
    std::string suite() const override { return "DBMS"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_slots = 1ull << 17; // x64B = 8 MB
        const Addr table = e.alloc(num_slots * 64);
        const Addr response = e.alloc(1ull << 20);

        std::uint64_t resp_pos = 0;
        while (!e.full()) {
            // One storm: a burst of operations back to back.
            for (unsigned op = 0; op < 256 && !e.full(); ++op) {
                const std::uint64_t slot =
                    e.rng().below(num_slots);
                const unsigned run =
                    1 + static_cast<unsigned>(e.rng().below(4));
                const bool put = e.rng().chance(0.25);
                e.blockBegin(0, /*id=*/15);
                for (unsigned p = 0; p < run; ++p) {
                    e.load(1 + p * 2,
                           table + ((slot + p) % num_slots) * 64,
                           RVal, RPtr);
                    e.alu(2 + p * 2, RCmp, RVal, RAcc);
                }
                e.branch(9, !put, 11, RCmp);
                if (put) {
                    e.store(10,
                            table +
                                ((slot + run - 1) % num_slots) * 64,
                            RVal, RPtr);
                }
                e.alu(11, RIdx, RIdx);
                e.branch(12, op + 1 < 256, 1, RIdx);
                e.blockEnd(13, /*id=*/15);
            }
            // Response serialisation between storms (non-loop
            // runtime): sequential stores, pure streaming.
            for (unsigned s = 0; s < 8 && !e.full(); ++s) {
                e.store(100 + s % 4,
                        response + (resp_pos % 131072) * 8, RAcc,
                        RIdx);
                ++resp_pos;
                e.alu(110 + s % 4, RAcc, RAcc);
            }
        }
    }
};

/**
 * column-materialize — late materialisation gather.
 *
 * The classic column-store gather: stream a row-id list (unit
 * stride), fetch three columns at each selected row id (scattered
 * over 16 MB+ arrays), append the stitched tuple to a sequential
 * output. Two of six memory streams are perfectly predictable, four
 * are data-dependent gathers — partial coverage for everyone, full
 * coverage for no one.
 */
class MaterializeWorkload : public Workload
{
  public:
    std::string name() const override { return "column-materialize"; }
    std::string suite() const override { return "DBMS"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_rows = 2ull * 1024 * 1024;
        const std::uint64_t num_ids = 1ull << 18;
        const Addr row_ids = e.alloc(num_ids * 4);
        const Addr col_a = e.alloc(num_rows * 8);   // 16 MB
        const Addr col_b = e.alloc(num_rows * 16);  // 32 MB
        const Addr col_c = e.alloc(num_rows * 8);   // 16 MB
        const Addr out = e.alloc(num_ids * 24);

        while (!e.full()) {
            for (std::uint64_t i = 0; i < num_ids && !e.full();
                 ++i) {
                // The selection vector is unsorted: gather targets
                // scatter over the full column extent.
                const std::uint64_t rid = e.rng().below(num_rows);
                e.blockBegin(0, /*id=*/16);
                e.load(1, row_ids + i * 4, RIdx, RIdx, 4);
                e.load(2, col_a + rid * 8, RVal, RIdx);
                e.load(3, col_b + rid * 16, RPtr, RIdx);
                e.load(4, col_c + rid * 8, RCmp, RIdx);
                e.alu(5, RAcc, RVal, RPtr);
                e.store(6, out + i * 24, RAcc, RIdx);
                e.branch(7, i + 1 < num_ids, 1, RIdx);
                e.blockEnd(8, /*id=*/16);

                // Vector-at-a-time operator boundary (non-loop).
                if (i % 128 == 127) {
                    for (unsigned s = 0; s < 10; ++s)
                        e.alu(100 + s % 5, RAcc, RAcc);
                }
            }
        }
    }
};

} // anonymous namespace

WorkloadPtr
makeHashJoin()
{
    return std::make_unique<HashJoinWorkload>();
}

WorkloadPtr
makeBtreeDescent()
{
    return std::make_unique<BtreeWorkload>(16);
}

WorkloadPtr
makeBtreeDescent(unsigned fanout)
{
    return std::make_unique<BtreeWorkload>(fanout);
}

WorkloadPtr
makeBinarySearch()
{
    return std::make_unique<BinarySearchWorkload>();
}

WorkloadPtr
makePointerChase()
{
    return std::make_unique<PointerChaseWorkload>(4);
}

WorkloadPtr
makePointerChase(unsigned out_degree)
{
    return std::make_unique<PointerChaseWorkload>(out_degree);
}

WorkloadPtr
makeHashmapStorm()
{
    return std::make_unique<HashmapStormWorkload>();
}

WorkloadPtr
makeColumnMaterialize()
{
    return std::make_unique<MaterializeWorkload>();
}

} // namespace kernels
} // namespace cbws
