/**
 * @file
 * Synthetic kernels for the SPEC CPU2006 benchmarks used in the paper:
 * 429.mcf, 450.soplex, 462.libquantum, 433.milc, 401.bzip2 (memory
 * intensive) and 458.sjeng, 471.omnetpp (low MPKI).
 *
 * Each kernel reproduces the memory behaviour of its benchmark's
 * dominant innermost loops: the address streams, the inter-iteration
 * dependencies, and the branch divergence that the paper's evaluation
 * attributes the per-benchmark prefetcher outcomes to.
 */

#include <vector>

#include "workloads/emitter.hh"
#include "workloads/kernels/kernels.hh"

namespace cbws
{
namespace kernels
{

namespace
{

// Register conventions shared by the kernels in this file.
constexpr RegIndex RIdx = 1;   ///< primary induction variable
constexpr RegIndex RIdx2 = 2;  ///< secondary induction variable
constexpr RegIndex RVal = 3;   ///< loaded data value
constexpr RegIndex RPtr = 4;   ///< pointer loaded from memory
constexpr RegIndex RAcc = 5;   ///< accumulator
constexpr RegIndex RCmp = 6;   ///< comparison result feeding branches

/**
 * 429.mcf-ref — network simplex pricing loop.
 *
 * The dominant loop walks the arc array linearly and dereferences each
 * arc's tail node to read its potential. Arc storage is linear (one
 * line per arc); node references exhibit the slowly-advancing-with-
 * noise locality of mcf's graph, so consecutive iterations' working
 * sets are often related by small, repeating stride vectors — which is
 * why the paper reports the integrated CBWS+SMS delivering the best
 * performance on mcf.
 */
class McfWorkload : public Workload
{
  public:
    std::string name() const override { return "429.mcf-ref"; }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_arcs = 120000;  // 7.5 MB arc array
        const std::uint64_t num_nodes = 65536;  // 4 MB node array
        const Addr arcs = e.alloc(num_arcs * 64);
        const Addr nodes = e.alloc(num_nodes * 64);

        std::uint64_t tree_pos = 0;
        while (!e.full()) {
            // Pricing loop over arcs (tight, innermost; annotated).
            // Arcs are sorted by tail node (as mcf's network storage
            // is), so the tail-node stream advances with the arc
            // stream modulo small graph noise — the iteration working
            // set evolves by a small, recurring stride vector.
            for (std::uint64_t i = 0; i < num_arcs && !e.full(); ++i) {
                // Node references scatter across the graph: mcf
                // is the benchmark no prefetcher tames.
                const std::uint64_t tail = e.rng().below(num_nodes);
                const bool negative_cost = e.rng().chance(0.30);

                e.blockBegin(0, /*id=*/0);
                e.load(1, arcs + i * 64, RVal, RIdx);       // arc cost
                e.load(2, arcs + i * 64 + 8, RPtr, RIdx);   // arc tail
                e.load(3, nodes + tail * 64, RAcc, RPtr);   // potential
                e.alu(4, RCmp, RVal, RAcc);                 // red. cost
                e.branch(5, !negative_cost, 9, RCmp);
                if (negative_cost) {
                    // Update the arc's flow in place (same line as
                    // the cost load, so the working set stays fixed).
                    e.store(6, arcs + i * 64 + 16, RCmp, RIdx);
                    e.alu(7, RAcc, RAcc, RCmp);
                    e.alu(8, RAcc, RAcc);
                }
                e.alu(9, RIdx, RIdx);                       // i++
                e.branch(10, i + 1 < num_arcs, 1, RIdx);
                e.blockEnd(11, /*id=*/0);

                // Basis-tree update (non-loop runtime, Fig. 1):
                // every few arcs the simplex walks spanning-tree
                // nodes and updates bookkeeping — outside any
                // annotated block.
                if (i % 24 == 23) {
                    for (unsigned s = 0; s < 4 && !e.full(); ++s) {
                        tree_pos = (tree_pos * 2 + 1 +
                                    e.rng().below(7)) % num_nodes;
                        e.load(110 + s, nodes + tree_pos * 64 + 8,
                               RPtr, RPtr);
                        e.alu(120 + s, RAcc, RAcc, RPtr);
                    }
                    for (unsigned s = 0; s < 10; ++s)
                        e.alu(130 + s % 6, RAcc, RAcc);
                }
            }
        }
    }
};

/**
 * 450.soplex-ref — sparse LP pricing/ratio-test loop.
 *
 * Iterations scan a sparse vector (value + index pairs) and gather
 * from the dense solution vector through the data-dependent index.
 * Roughly half the iterations take a value-dependent branch that adds
 * extra accesses, so working-set sizes diverge between iterations —
 * the branch divergence the paper blames for CBWS's failure to cut
 * soplex's MPKI despite its skewed differential distribution.
 */
class SoplexWorkload : public Workload
{
  public:
    std::string name() const override { return "450.soplex-ref"; }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t nnz = 400000;
        const std::uint64_t dense_n = 500000;
        const Addr vals = e.alloc(nnz * 8);
        const Addr idxs = e.alloc(nnz * 4);
        const Addr dense = e.alloc(dense_n * 8);
        const Addr work = e.alloc(dense_n * 8);

        std::uint64_t col_start = 0;
        while (!e.full()) {
            // Non-loop phase: simplex pivot bookkeeping.
            for (unsigned s = 0; s < 60 && !e.full(); ++s)
                e.alu(100 + s % 10, RAcc, RAcc);

            // One column scan. Sparse row indices advance by a
            // *small alphabet* of strides: the differential
            // distribution is highly skewed (Fig. 5: ~90% of
            // iterations from ~5% of vectors), but the stride
            // *sequence* is data dependent and the update branch
            // diverges, which is why CBWS still fails to predict
            // soplex (Section VII-A).
            const std::uint64_t len = 200 + e.rng().below(200);
            std::uint64_t row = e.rng().below(dense_n / 2);
            static const std::uint64_t row_strides[4] = {8, 24, 136,
                                                         1032};
            for (std::uint64_t j = 0; j < len && !e.full(); ++j) {
                const std::uint64_t k = (col_start + j) % nnz;
                row = (row + row_strides[e.rng().below(4)]) %
                      dense_n;
                const bool update = e.rng().chance(0.5);

                e.blockBegin(0, /*id=*/1);
                e.load(1, vals + k * 8, RVal, RIdx);
                e.load(2, idxs + k * 4, RPtr, RIdx, 4);
                e.load(3, dense + row * 8, RAcc, RPtr);
                e.alu(4, RCmp, RVal, RAcc);
                e.branch(5, !update, 10, RCmp);
                if (update) {
                    e.fp(6, RAcc, RVal, RAcc);
                    e.load(7, work + row * 8, e.temp(), RPtr);
                    e.store(8, work + row * 8, RAcc, RPtr);
                    e.alu(9, RCmp, RCmp);
                }
                e.alu(10, RIdx, RIdx);
                e.branch(11, j + 1 < len, 1, RIdx);
                e.blockEnd(12, /*id=*/1);
            }
            col_start += len;

            // Pivot selection and basis refactorisation (non-loop
            // runtime): scattered reads of the basis matrix.
            for (unsigned s = 0; s < 12 && !e.full(); ++s) {
                e.load(120 + s % 4,
                       dense + e.rng().below(dense_n) * 8, e.temp(),
                       RAcc);
                e.alu(130 + s % 6, RAcc, RAcc);
                e.alu(136 + s % 6, RCmp, RAcc);
            }
        }
    }
};

/**
 * 462.libquantum-ref — quantum gate application.
 *
 * A single tight loop streams the quantum register (16-byte
 * amplitude records), toggling each state: load, xor, store. The
 * pattern is pure unit-stride streaming, which every prefetcher in
 * the paper's evaluation handles.
 */
class LibquantumWorkload : public Workload
{
  public:
    std::string name() const override { return "462.libquantum-ref"; }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_states = 2 * 1024 * 1024;
        const Addr reg = e.alloc(num_states * 16);

        while (!e.full()) {
            // Gate setup (non-loop).
            for (unsigned s = 0; s < 30 && !e.full(); ++s)
                e.alu(100 + s % 6, RAcc, RAcc);

            // The gate loop is unrolled by 16 (four cache lines of
            // amplitude records per annotated block).
            for (std::uint64_t i = 0; i < num_states && !e.full();
                 i += 16) {
                e.blockBegin(0, /*id=*/2);
                for (unsigned u = 0; u < 16; ++u) {
                    e.load(1 + u * 3, reg + (i + u) * 16, RVal, RIdx);
                    e.alu(2 + u * 3, RVal, RVal); // toggle target bit
                    e.store(3 + u * 3, reg + (i + u) * 16, RVal,
                            RIdx);
                }
                e.alu(49, RIdx, RIdx);
                e.branch(50, i + 16 < num_states, 1, RIdx);
                e.blockEnd(51, /*id=*/2);
            }
        }
    }
};

/**
 * 433.milc-su3imp — SU(3) matrix-vector products over a 4D lattice.
 *
 * Each site multiplies a 3x3 complex matrix (from the gauge-link
 * array) with neighbour vectors: several concurrent streams with
 * large but constant strides, plus a long-stride neighbour gather in
 * the time direction. Iteration working sets (~7 lines) evolve by a
 * constant differential, which CBWS captures whole; the paper reports
 * CBWS+SMS delivering the best performance on milc.
 */
class MilcWorkload : public Workload
{
  public:
    std::string name() const override { return "433.milc-su3imp"; }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t sites = 64 * 1024;
        const std::uint64_t t_stride = 16 * 16 * 16; // x*y*z sites
        const Addr links = e.alloc(sites * 144); // 3x3 complex doubles
        const Addr src = e.alloc(sites * 48);    // su3_vector
        const Addr dst = e.alloc(sites * 48);

        while (!e.full()) {
            for (std::uint64_t i = 0; i < sites && !e.full(); ++i) {
                // Measurement/gauge-fixing work between site groups
                // (non-loop runtime).
                if (i % 96 == 0) {
                    for (unsigned s = 0; s < 3 && !e.full(); ++s) {
                        e.load(120 + s,
                               links + e.rng().below(sites) * 144,
                               e.temp(), RAcc);
                        e.fp(124 + s, RAcc, RAcc);
                    }
                    for (unsigned s = 0; s < 12; ++s)
                        e.fp(130 + s % 6, RAcc, RAcc);
                }
                const std::uint64_t fwd = (i + t_stride) % sites;
                e.blockBegin(0, /*id=*/3);
                // Gauge link: 144 bytes = 3 lines.
                e.load(1, links + i * 144, e.temp(), RIdx);
                e.load(2, links + i * 144 + 64, e.temp(), RIdx);
                e.load(3, links + i * 144 + 128, e.temp(), RIdx);
                // Source vector at this site and its time neighbour.
                e.load(4, src + i * 48, RVal, RIdx);
                e.load(5, src + fwd * 48, RPtr, RIdx);
                e.fp(6, RAcc, RVal, RPtr);
                e.fp(7, RAcc, RAcc, RVal);
                e.store(8, dst + i * 48, RAcc, RIdx);
                e.alu(9, RIdx, RIdx);
                e.branch(10, i + 1 < sites, 1, RIdx);
                e.blockEnd(11, /*id=*/3);
            }
        }
    }
};

/**
 * 401.bzip2-source — Burrows-Wheeler compression inner loop.
 *
 * The annotated tight loop iterates over symbol runs, but each
 * iteration gathers from ~20 different tables and buffer positions
 * (block, quadrant, sorting pointers, frequency tables...), so its
 * working set regularly exceeds the 16-line CBWS capacity. The paper
 * reports both CBWS schemes ~5% behind SMS on bzip2 for exactly this
 * reason.
 */
class Bzip2Workload : public Workload
{
  public:
    std::string name() const override { return "401.bzip2-source"; }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t block_size = 900000;
        const Addr block = e.alloc(block_size);
        const Addr zptr = e.alloc(block_size * 4);
        const Addr quadrant = e.alloc(block_size * 2);
        const Addr ftab = e.alloc(65536 * 4);

        std::uint64_t pos = 0;
        std::uint64_t file_pos = 0;
        const Addr file_buf = e.alloc(16 * 1024 * 1024);
        while (!e.full()) {
            for (unsigned r = 0; r < 4000 && !e.full(); ++r) {
                // Buffered file reads (non-loop runtime): every few
                // runs, bzip2 streams another chunk of the input.
                if (r % 48 == 0) {
                    for (unsigned s = 0; s < 6 && !e.full(); ++s) {
                        e.load(140 + s, file_buf + file_pos,
                               e.temp(), RAcc);
                        file_pos = (file_pos + 64) % (16 * 1024 *
                                                      1024);
                        e.alu(150 + s % 4, RAcc, RAcc);
                    }
                    for (unsigned s = 0; s < 12; ++s)
                        e.alu(160 + s % 6, RAcc, RAcc);
                }
                e.blockBegin(0, /*id=*/4);
                // Each iteration compares two rotations: gathers from
                // ~20 distinct cache lines spread over four tables.
                const std::uint64_t p1 = pos % block_size;
                const std::uint64_t p2 =
                    (pos * 7919 + e.rng().below(block_size)) %
                    block_size;
                unsigned site = 1;
                for (unsigned d = 0; d < 7; ++d, site += 2) {
                    e.load(site, block + (p1 + d * 97) % block_size,
                           e.temp(), RIdx, 1);
                    e.load(site + 1,
                           block + (p2 + d * 97) % block_size,
                           e.temp(), RPtr, 1);
                }
                e.load(site, zptr + (p1 % block_size) * 4, RVal, RIdx,
                       4);
                e.load(site + 1, zptr + (p2 % block_size) * 4, RPtr,
                       RPtr, 4);
                e.load(site + 2, quadrant + (p1 % block_size) * 2,
                       e.temp(), RIdx, 2);
                e.load(site + 3, quadrant + (p2 % block_size) * 2,
                       e.temp(), RPtr, 2);
                e.load(site + 4, ftab + (p1 % 65536) * 4, e.temp(),
                       RVal, 4);
                e.load(site + 5, ftab + (p2 % 65536) * 4, e.temp(),
                       RVal, 4);
                e.alu(site + 6, RCmp, RVal, RPtr);
                const bool swap = e.rng().chance(0.45);
                e.branch(site + 7, !swap, site + 10, RCmp);
                if (swap) {
                    e.store(site + 8, zptr + (p1 % block_size) * 4,
                            RPtr, RIdx, 4);
                    e.store(site + 9, zptr + (p2 % block_size) * 4,
                            RVal, RPtr, 4);
                }
                e.alu(site + 10, RIdx, RIdx);
                e.branch(site + 11, r + 1 < 4000, 1, RIdx);
                e.blockEnd(site + 12, /*id=*/4);
                pos += 311;
            }
        }
    }
};

/**
 * 458.sjeng-ref — game-tree search (low MPKI).
 *
 * Probes of a transposition table that fits comfortably in the L2,
 * plus branchy evaluation code: very few LLC misses, so prefetcher
 * choice barely matters.
 */
class SjengWorkload : public Workload
{
  public:
    std::string name() const override { return "458.sjeng-ref"; }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t tt_entries = 1024; // 64 KB: L2 resident
        const Addr tt = e.alloc(tt_entries * 64);
        const Addr board = e.alloc(64 * 16);

        while (!e.full()) {
            for (unsigned s = 0; s < 20 && !e.full(); ++s)
                e.alu(100 + s % 6, RAcc, RAcc);

            for (unsigned m = 0; m < 2000 && !e.full(); ++m) {
                const std::uint64_t slot = e.rng().below(tt_entries);
                const bool cutoff = e.rng().chance(0.35);
                e.blockBegin(0, /*id=*/5);
                e.load(1, board + (m % 64) * 16, RVal, RIdx);
                e.load(2, tt + slot * 64, RPtr, RVal);
                e.alu(3, RCmp, RPtr, RVal);
                e.branch(4, !cutoff, 7, RCmp);
                if (cutoff) {
                    e.alu(5, RAcc, RAcc, RCmp);
                    e.store(6, tt + slot * 64 + 8, RAcc, RVal);
                }
                e.alu(7, RIdx, RIdx);
                e.branch(8, m + 1 < 2000, 1, RIdx);
                e.blockEnd(9, /*id=*/5);
            }
        }
    }
};

/**
 * 471.omnetpp — discrete event simulation (low MPKI).
 *
 * Binary-heap event queue operations: short pointer walks of
 * logarithmic depth within a heap that fits in the L2.
 */
class OmnetppWorkload : public Workload
{
  public:
    std::string name() const override
    {
        return "471.omnetpp-omnetpp";
    }
    std::string suite() const override { return "SPEC2006"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t heap_entries = 1024; // 64 KB
        const Addr heap = e.alloc(heap_entries * 64);

        while (!e.full()) {
            for (unsigned s = 0; s < 25 && !e.full(); ++s)
                e.alu(100 + s % 5, RAcc, RAcc);

            for (unsigned ev = 0; ev < 300 && !e.full(); ++ev) {
                // Sift-down from the root: a 13-deep pointer walk.
                std::uint64_t node = 0;
                for (unsigned d = 0; d < 13 && !e.full(); ++d) {
                    const std::uint64_t child =
                        2 * node + 1 + e.rng().below(2);
                    if (child >= heap_entries)
                        break;
                    e.blockBegin(0, /*id=*/6);
                    e.load(1, heap + node * 64, RVal, RPtr);
                    e.load(2, heap + child * 64, RPtr, RPtr);
                    e.alu(3, RCmp, RVal, RPtr);
                    e.store(4, heap + node * 64, RPtr, RPtr);
                    e.alu(5, RIdx, RIdx);
                    e.branch(6, d + 1 < 13, 1, RCmp);
                    e.blockEnd(7, /*id=*/6);
                    node = child;
                }
            }
        }
    }
};

} // anonymous namespace

WorkloadPtr
makeMcf()
{
    return std::make_unique<McfWorkload>();
}

WorkloadPtr
makeSoplex()
{
    return std::make_unique<SoplexWorkload>();
}

WorkloadPtr
makeLibquantum()
{
    return std::make_unique<LibquantumWorkload>();
}

WorkloadPtr
makeMilc()
{
    return std::make_unique<MilcWorkload>();
}

WorkloadPtr
makeBzip2()
{
    return std::make_unique<Bzip2Workload>();
}

WorkloadPtr
makeSjeng()
{
    return std::make_unique<SjengWorkload>();
}

WorkloadPtr
makeOmnetpp()
{
    return std::make_unique<OmnetppWorkload>();
}

} // namespace kernels
} // namespace cbws
