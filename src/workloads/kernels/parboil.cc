/**
 * @file
 * Synthetic kernels for the Parboil benchmarks used in the paper:
 * stencil, sgemm, mri-q, histo and lbm (memory intensive) plus sad
 * and spmv (low MPKI).
 */

#include "workloads/emitter.hh"
#include "workloads/kernels/kernels.hh"

namespace cbws
{
namespace kernels
{

namespace
{

constexpr RegIndex RIdx = 1;
constexpr RegIndex RJdx = 2;
constexpr RegIndex RVal = 3;
constexpr RegIndex RPtr = 4;
constexpr RegIndex RAcc = 5;
constexpr RegIndex RCmp = 6;

/**
 * Parboil stencil-default — 7-point Jacobi on a 3D grid (Fig. 2 of
 * the paper).
 *
 * The paper's motivating example: IDX(nx,ny,x,y,z) = x + nx*(y+ny*z),
 * with the innermost loop over z, so every neighbour access jumps by
 * nx*ny floats per iteration. Each iteration touches seven distinct
 * lines plus two cached coefficient loads, and consecutive CBWSs
 * differ by a constant stride vector (Figs. 3-4).
 */
class StencilWorkload : public Workload
{
  public:
    std::string name() const override { return "stencil-default"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        // Parboil's default grid is 512x512x64; we keep the paper's
        // long-innermost-sweep shape (large nz) at a scaled size.
        const std::uint64_t nx = 64, ny = 64, nz = 512; // 8 MB grids
        const Addr a0 = e.alloc(nx * ny * nz * 4);
        const Addr a1 = e.alloc(nx * ny * nz * 4);
        const Addr stack = e.alloc(256);

        auto idx = [&](std::uint64_t x, std::uint64_t y,
                       std::uint64_t z) {
            return (x + nx * (y + ny * z)) * 4;
        };

        while (!e.full()) {
            for (std::uint64_t i = 1; i + 1 < nx && !e.full(); ++i) {
                // Outer-loop bookkeeping (non-loop runtime).
                for (unsigned s = 0; s < 12; ++s)
                    e.alu(100 + s % 4, RAcc, RAcc);
                for (std::uint64_t j = 1; j + 1 < ny && !e.full();
                     ++j) {
                    e.alu(120, RJdx, RJdx);
                    for (std::uint64_t k = 1; k + 1 < nz && !e.full();
                         ++k) {
                        e.blockBegin(0, /*id=*/7);
                        // c0, c1 coefficient reloads (always cached;
                        // the "80, 81" members of Fig. 3).
                        e.load(1, stack + 0, e.temp(), InvalidReg, 4);
                        e.load(2, stack + 8, e.temp(), InvalidReg, 4);
                        e.load(3, a0 + idx(i, j, k + 1), e.temp(),
                               RIdx, 4);
                        e.load(4, a0 + idx(i, j, k - 1), e.temp(),
                               RIdx, 4);
                        e.load(5, a0 + idx(i, j + 1, k), e.temp(),
                               RIdx, 4);
                        e.load(6, a0 + idx(i, j - 1, k), e.temp(),
                               RIdx, 4);
                        e.load(7, a0 + idx(i + 1, j, k), e.temp(),
                               RIdx, 4);
                        e.load(8, a0 + idx(i - 1, j, k), e.temp(),
                               RIdx, 4);
                        e.load(9, a0 + idx(i, j, k), RVal, RIdx, 4);
                        e.fp(10, RAcc, RVal);
                        e.fp(11, RAcc, RAcc, RVal);
                        e.store(12, a1 + idx(i, j, k), RAcc, RIdx, 4);
                        e.alu(13, RIdx, RIdx);
                        e.branch(14, k + 2 < nz, 1, RIdx);
                        e.blockEnd(15, /*id=*/7);
                    }
                }
            }
        }
    }
};

/**
 * Parboil sgemm-medium — dense matrix multiply, C += A*B.
 *
 * The innermost k-loop reads A row-wise (unit stride) and B
 * column-wise (stride = N floats = 16 lines), a block-structured
 * pattern whose CBWS differentials are constant. The long B-column
 * stride walks out of SMS's 2 KB regions after two iterations, which
 * is how the paper gets its headline 4x best case for CBWS on sgemm.
 */
class SgemmWorkload : public Workload
{
  public:
    std::string name() const override { return "sgemm-medium"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 1024; // 4 MB per matrix
        const Addr a = e.alloc(n * n * 4);
        const Addr b = e.alloc(n * n * 4);
        const Addr c = e.alloc(n * n * 4);

        std::uint64_t pass = 0;
        while (!e.full()) {
            for (std::uint64_t i = pass % n; i < n && !e.full(); ++i) {
                for (std::uint64_t j = 0; j < n && !e.full(); ++j) {
                    // Outer bookkeeping + C tile load (non-loop).
                    for (unsigned s = 0; s < 6; ++s)
                        e.alu(100 + s % 3, RAcc, RAcc);
                    e.load(110, c + (i * n + j) * 4, RAcc, RJdx, 4);
                    // The compiler unrolls the k-loop by 4 (as the
                    // Parboil build does), so one annotated block
                    // touches four B-column lines.
                    for (std::uint64_t k = 0; k < n && !e.full();
                         k += 4) {
                        e.blockBegin(0, /*id=*/8);
                        for (unsigned u = 0; u < 4; ++u) {
                            e.load(1 + u * 3,
                                   a + (i * n + k + u) * 4, RVal,
                                   RIdx, 4);
                            e.load(2 + u * 3,
                                   b + ((k + u) * n + j) * 4, RPtr,
                                   RIdx, 4);
                            e.fp(3 + u * 3, RAcc, RVal, RPtr);
                        }
                        e.alu(14, RIdx, RIdx);
                        e.branch(15, k + 4 < n, 1, RIdx);
                        e.blockEnd(16, /*id=*/8);
                    }
                    e.store(111, c + (i * n + j) * 4, RAcc, RJdx, 4);
                }
            }
            ++pass;
        }
    }
};

/**
 * Parboil mri-q-large — MRI Q-matrix computation.
 *
 * The inner loop streams the k-space trajectory array (three
 * coordinate streams plus phase tables) with unit stride while the
 * voxel coordinates stay in registers: several coordinated streams,
 * friendly to every prefetcher, with CBWS capturing the full
 * iteration working set.
 */
class MriQWorkload : public Workload
{
  public:
    std::string name() const override { return "mri-q-large"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t num_k = 1024 * 1024;
        const Addr kx = e.alloc(num_k * 4);
        const Addr ky = e.alloc(num_k * 4);
        const Addr kz = e.alloc(num_k * 4);
        const Addr phi_r = e.alloc(num_k * 4);
        const Addr phi_i = e.alloc(num_k * 4);

        while (!e.full()) {
            // Per-voxel setup (non-loop).
            for (unsigned s = 0; s < 25 && !e.full(); ++s)
                e.alu(100 + s % 5, RAcc, RAcc);

            // The k-space loop is unrolled by 4 in the Parboil build.
            for (std::uint64_t k = 0; k < num_k && !e.full(); k += 4) {
                e.blockBegin(0, /*id=*/9);
                for (unsigned u = 0; u < 4; ++u) {
                    e.load(1 + u * 7, kx + (k + u) * 4, RVal, RIdx, 4);
                    e.load(2 + u * 7, ky + (k + u) * 4, RPtr, RIdx, 4);
                    e.load(3 + u * 7, kz + (k + u) * 4, RCmp, RIdx, 4);
                    e.fp(4 + u * 7, RAcc, RVal, RPtr);
                    e.load(5 + u * 7, phi_r + (k + u) * 4, e.temp(),
                           RIdx, 4);
                    e.load(6 + u * 7, phi_i + (k + u) * 4, e.temp(),
                           RIdx, 4);
                    e.fp(7 + u * 7, RAcc, RAcc, RCmp);
                }
                e.alu(30, RIdx, RIdx);
                e.branch(31, k + 4 < num_k, 1, RIdx);
                e.blockEnd(32, /*id=*/9);
            }
        }
    }
};

/**
 * Parboil histo-large — image histogramming (Fig. 16 of the paper).
 *
 * Each iteration streams one pixel and then updates histo[value]: the
 * second access is purely input-data dependent, so no differential
 * representation can predict it. The paper singles histo out as a
 * benchmark where CBWS-based schemes are outperformed.
 */
class HistoWorkload : public Workload
{
  public:
    std::string name() const override { return "histo-large"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t pixels = 996 * 1040;
        const std::uint64_t bins = 256 * 4096; // large sparse histo
        const Addr img = e.alloc(pixels * 4);
        const Addr histo = e.alloc(bins);

        while (!e.full()) {
            for (unsigned s = 0; s < 30 && !e.full(); ++s)
                e.alu(100 + s % 6, RAcc, RAcc);

            for (std::uint64_t i = 0; i < pixels && !e.full(); ++i) {
                // Pixel values: a noisy 2D gradient, like the input
                // images Parboil ships: neither uniform nor constant.
                const std::uint64_t value =
                    (i / 1040 + e.rng().below(64 * 1024)) % bins;
                const bool saturated = e.rng().chance(0.02);
                e.blockBegin(0, /*id=*/10);
                e.load(1, img + i * 4, RVal, RIdx, 4);
                e.load(2, histo + value, RPtr, RVal, 1);
                e.alu(3, RCmp, RPtr);
                e.branch(4, saturated, 6, RCmp);
                if (!saturated)
                    e.store(5, histo + value, RPtr, RVal, 1);
                e.alu(6, RIdx, RIdx);
                e.branch(7, i + 1 < pixels, 1, RIdx);
                e.blockEnd(8, /*id=*/10);
            }
        }
    }
};

/**
 * Parboil lbm-long — lattice-Boltzmann collision/streaming step.
 *
 * Each cell update reads 19 distribution values from the source grid
 * and scatters to neighbour cells of the destination grid, with an
 * obstacle test making part of the pattern input dependent. The >16
 * distinct lines per iteration exceed CBWS's tracing capacity, and
 * the data-dependent scatter defeats differential prediction — lbm is
 * one of the benchmarks where the paper's CBWS schemes lose to SMS.
 */
class LbmWorkload : public Workload
{
  public:
    std::string name() const override { return "lbm-long"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t cells = 100 * 100 * 26;
        const std::uint64_t plane = 100 * 100;
        const Addr src_grid = e.alloc(cells * 19 * 8);
        const Addr dst_grid = e.alloc(cells * 19 * 8);
        const Addr flags = e.alloc(cells);

        while (!e.full()) {
            for (unsigned s = 0; s < 40 && !e.full(); ++s)
                e.alu(100 + s % 8, RAcc, RAcc);

            for (std::uint64_t c = 0; c < cells && !e.full(); ++c) {
                const bool obstacle = e.rng().chance(0.1);
                e.blockBegin(0, /*id=*/11);
                e.load(1, flags + c, RCmp, RIdx, 1);
                // 19 distribution functions: cell-major layout, so
                // each is one line away from the next.
                for (unsigned q = 0; q < 19; ++q) {
                    e.load(2 + q, src_grid + (c * 19 + q) * 8,
                           e.temp(), RIdx);
                }
                e.fp(21, RAcc, RVal);
                e.fp(22, RAcc, RAcc);
                e.branch(23, obstacle, 30, RCmp);
                if (!obstacle) {
                    // Stream to 4 representative neighbours.
                    e.store(24, dst_grid + (c * 19 + 0) * 8, RAcc,
                            RIdx);
                    e.store(25, dst_grid + ((c + 1) * 19 + 1) * 8,
                            RAcc, RIdx);
                    e.store(26,
                            dst_grid + ((c + 100) % cells * 19 + 5) *
                            8, RAcc, RIdx);
                    e.store(27,
                            dst_grid +
                            ((c + plane) % cells * 19 + 9) * 8,
                            RAcc, RIdx);
                } else {
                    // Bounce-back: write to own cell reversed.
                    e.store(28, dst_grid + (c * 19 + 2) * 8, RAcc,
                            RIdx);
                }
                e.alu(30, RIdx, RIdx);
                e.branch(31, c + 1 < cells, 1, RIdx);
                e.blockEnd(32, /*id=*/11);
            }
        }
    }
};

/**
 * Parboil sad-base-large — sum-of-absolute-differences motion search
 * (low MPKI).
 *
 * 16x16 macroblock comparisons stay inside two frames that are
 * re-walked continuously; after the first sweep, most accesses hit in
 * the L2.
 */
class SadWorkload : public Workload
{
  public:
    std::string name() const override { return "sad-base-large"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t w = 176, h = 128;
        const Addr cur = e.alloc(w * h);
        const Addr ref = e.alloc(w * h);

        while (!e.full()) {
            for (unsigned s = 0; s < 20 && !e.full(); ++s)
                e.alu(100 + s % 4, RAcc, RAcc);

            for (std::uint64_t mb = 0; mb < 88 && !e.full(); ++mb) {
                const std::uint64_t mbx = (mb % 11) * 16;
                const std::uint64_t mby = (mb / 11) * 16;
                for (std::uint64_t row = 0; row < 16 && !e.full();
                     ++row) {
                    const Addr c_row = cur + (mby + row) * w + mbx;
                    const Addr r_row = ref + (mby + row) * w + mbx;
                    e.blockBegin(0, /*id=*/12);
                    e.load(1, c_row, RVal, RIdx, 8);
                    e.load(2, c_row + 8, RPtr, RIdx, 8);
                    e.load(3, r_row, RCmp, RIdx, 8);
                    e.load(4, r_row + 8, RAcc, RIdx, 8);
                    e.alu(5, RAcc, RVal, RCmp);
                    e.alu(6, RAcc, RPtr, RAcc);
                    e.alu(7, RIdx, RIdx);
                    e.branch(8, row + 1 < 16, 1, RIdx);
                    e.blockEnd(9, /*id=*/12);
                }
            }
        }
    }
};

/**
 * Parboil spmv-large — sparse matrix-vector product, CSR (low MPKI).
 *
 * Row pointers, column indices and values stream with unit stride;
 * the x-vector gathers are irregular but x fits in the L2, so the
 * miss rate stays low.
 */
class SpmvWorkload : public Workload
{
  public:
    std::string name() const override { return "spmv-large"; }
    std::string suite() const override { return "Parboil"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 1024;   // rows; all arrays L2 resident
        const std::uint64_t nnz = 8192;
        const Addr vals = e.alloc(nnz * 8);
        const Addr cols = e.alloc(nnz * 4);
        const Addr x = e.alloc(n * 8);
        const Addr y = e.alloc(n * 8);

        while (!e.full()) {
            std::uint64_t k = 0;
            for (std::uint64_t row = 0; row < n && !e.full(); ++row) {
                for (unsigned s = 0; s < 4; ++s)
                    e.alu(100 + s, RAcc, RAcc);
                const std::uint64_t len = 4 + e.rng().below(8);
                for (std::uint64_t j = 0; j < len && !e.full(); ++j) {
                    const std::uint64_t kk = (k + j) % nnz;
                    const std::uint64_t col =
                        (row + e.rng().below(2048)) % n;
                    e.blockBegin(0, /*id=*/13);
                    e.load(1, vals + kk * 8, RVal, RIdx);
                    e.load(2, cols + kk * 4, RPtr, RIdx, 4);
                    e.load(3, x + col * 8, RCmp, RPtr);
                    e.fp(4, RAcc, RVal, RCmp);
                    e.alu(5, RIdx, RIdx);
                    e.branch(6, j + 1 < len, 1, RIdx);
                    e.blockEnd(7, /*id=*/13);
                }
                k += len;
                e.store(110, y + row * 8, RAcc, RJdx);
            }
        }
    }
};

} // anonymous namespace

WorkloadPtr
makeStencil()
{
    return std::make_unique<StencilWorkload>();
}

WorkloadPtr
makeSgemm()
{
    return std::make_unique<SgemmWorkload>();
}

WorkloadPtr
makeMriQ()
{
    return std::make_unique<MriQWorkload>();
}

WorkloadPtr
makeHisto()
{
    return std::make_unique<HistoWorkload>();
}

WorkloadPtr
makeLbm()
{
    return std::make_unique<LbmWorkload>();
}

WorkloadPtr
makeSad()
{
    return std::make_unique<SadWorkload>();
}

WorkloadPtr
makeSpmv()
{
    return std::make_unique<SpmvWorkload>();
}

} // namespace kernels
} // namespace cbws
