/**
 * @file
 * Factory functions for every synthetic benchmark kernel. One factory
 * per benchmark in the paper's evaluation (Table IV memory-intensive
 * group + the 15 low-MPKI benchmarks of Fig. 14).
 */

#ifndef CBWS_WORKLOADS_KERNELS_KERNELS_HH
#define CBWS_WORKLOADS_KERNELS_KERNELS_HH

#include "workloads/workload.hh"

namespace cbws
{
namespace kernels
{

// ---- Memory-intensive group (Table IV) ----
WorkloadPtr makeBzip2();        // 401.bzip2-source
WorkloadPtr makeHisto();        // Parboil histo-large
WorkloadPtr makeMcf();          // 429.mcf-ref
WorkloadPtr makeLbm();          // Parboil lbm-long
WorkloadPtr makeMriQ();         // Parboil mri-q-large
WorkloadPtr makeStencil();      // Parboil stencil-default
WorkloadPtr makeFft();          // SPLASH fft-simlarge
WorkloadPtr makeNw();           // Rodinia nw
WorkloadPtr makeLibquantum();   // 462.libquantum-ref
WorkloadPtr makeSoplex();       // 450.soplex-ref
WorkloadPtr makeLuNcb();        // SPLASH lu-ncb-simlarge
WorkloadPtr makeRadix();        // SPLASH radix-simlarge
WorkloadPtr makeMilc();         // 433.milc-su3imp
WorkloadPtr makeStreamcluster();// PARSEC streamcluster-simlarge
WorkloadPtr makeSgemm();        // Parboil sgemm-medium

// ---- Low-MPKI group (Fig. 14, bottom) ----
WorkloadPtr makeSjeng();        // 458.sjeng-ref
WorkloadPtr makeOmnetpp();      // 471.omnetpp
WorkloadPtr makeBfs();          // bfs-1m
WorkloadPtr makeCanneal();      // PARSEC canneal-simlarge
WorkloadPtr makeCholesky();     // SPLASH cholesky-tk29
WorkloadPtr makeFreqmine();     // PARSEC freqmine-simlarge
WorkloadPtr makeMdLinpack();    // md-linpack
WorkloadPtr makeMvxLinpack();   // mvx-linpack
WorkloadPtr makeMxmLinpack();   // mxm-linpack
WorkloadPtr makeOceanCp();      // SPLASH ocean-cp-simlarge
WorkloadPtr makeSad();          // Parboil sad-base-large
WorkloadPtr makeSpmv();         // Parboil spmv-large
WorkloadPtr makeWaterSpatial(); // SPLASH water-spatial-native
WorkloadPtr makeBackprop();     // Rodinia backprop
WorkloadPtr makeSradV1();       // Rodinia srad-v1

// ---- DBMS/server family (irregular, pointer-heavy; beyond the
// ---- paper, modelled on the hpides prefetching-benchmark catalog) ----
WorkloadPtr makeHashJoin();          // open-addressing build + probe
WorkloadPtr makeBtreeDescent();      // B-tree point lookups (fan-out 16)
WorkloadPtr makeBtreeDescent(unsigned fanout);
WorkloadPtr makeBinarySearch();      // branchy search, sorted column
WorkloadPtr makePointerChase();      // dependent walk (out-degree 4)
WorkloadPtr makePointerChase(unsigned out_degree);
WorkloadPtr makeHashmapStorm();      // open-addressing probe storms
WorkloadPtr makeColumnMaterialize(); // late-materialisation gather

} // namespace kernels
} // namespace cbws

#endif // CBWS_WORKLOADS_KERNELS_KERNELS_HH
