/**
 * @file
 * Synthetic kernels for the Rodinia and Linpack-style benchmarks used
 * in the paper: nw (memory intensive) plus bfs-1m, backprop, srad-v1,
 * md-linpack, mvx-linpack and mxm-linpack (low MPKI).
 */

#include <algorithm>

#include "workloads/emitter.hh"
#include "workloads/kernels/kernels.hh"

namespace cbws
{
namespace kernels
{

namespace
{

constexpr RegIndex RIdx = 1;
constexpr RegIndex RJdx = 2;
constexpr RegIndex RVal = 3;
constexpr RegIndex RPtr = 4;
constexpr RegIndex RAcc = 5;
constexpr RegIndex RCmp = 6;

/**
 * Rodinia nw — Needleman-Wunsch dynamic programming.
 *
 * The inner loop fills one DP row: each iteration reads the cell to
 * the left, the two cells in the previous row, and the reference
 * score. All four streams advance in lock step (unit stride within a
 * row, one row stride apart), so the iteration working set evolves by
 * a small constant differential — nw is one of the benchmarks where
 * the paper reports both CBWS schemes beating every other prefetcher.
 */
class NwWorkload : public Workload
{
  public:
    std::string name() const override { return "nw"; }
    std::string suite() const override { return "Rodinia"; }
    bool memoryIntensive() const override { return true; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 2048; // 16 MB DP matrix of ints
        const Addr dp = e.alloc(n * n * 4);
        const Addr ref = e.alloc(n * n * 4);

        // Rodinia nw walks anti-diagonals (the wavefront dependency
        // order), so consecutive iterations move to a different DP
        // row: every access lands on a fresh line, and the iteration
        // working set shifts by a constant (rowStride - cellSize)
        // differential.
        while (!e.full()) {
            for (std::uint64_t d = 2; d < 2 * n - 1 && !e.full();
                 ++d) {
                // Diagonal setup (non-loop).
                for (unsigned s = 0; s < 10; ++s)
                    e.alu(100 + s % 4, RAcc, RAcc);
                const std::uint64_t i_lo = d >= n ? d - n + 1 : 1;
                const std::uint64_t i_hi = std::min<std::uint64_t>(
                    d - 1, n - 1);
                for (std::uint64_t i = i_lo;
                     i <= i_hi && !e.full(); ++i) {
                    const std::uint64_t j = d - i;
                    if (j == 0 || j >= n)
                        continue;
                    e.blockBegin(0, /*id=*/23);
                    e.load(1, dp + ((i - 1) * n + j - 1) * 4, RVal,
                           RIdx, 4);
                    e.load(2, dp + ((i - 1) * n + j) * 4, RPtr, RIdx,
                           4);
                    e.load(3, dp + (i * n + j - 1) * 4, RCmp, RIdx,
                           4);
                    e.load(4, ref + (i * n + j) * 4, RAcc, RIdx, 4);
                    e.alu(5, RVal, RVal, RAcc);   // diag + score
                    e.alu(6, RVal, RVal, RPtr);   // max3
                    e.alu(7, RVal, RVal, RCmp);
                    e.store(8, dp + (i * n + j) * 4, RVal, RIdx, 4);
                    e.alu(9, RIdx, RIdx);
                    e.branch(10, i < i_hi, 1, RIdx);
                    e.blockEnd(11, /*id=*/23);
                }
            }
        }
    }
};

/**
 * bfs-1m — frontier breadth-first search (low MPKI).
 *
 * Frontier nodes and their adjacency lists live in arrays small
 * enough to stay L2-resident; the visited bitmap gathers are
 * irregular but cheap.
 */
class BfsWorkload : public Workload
{
  public:
    std::string name() const override { return "bfs-1m"; }
    std::string suite() const override { return "Rodinia"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t nodes = 8192;
        const Addr adj = e.alloc(nodes * 8 * 4); // 8 edges per node
        const Addr visited = e.alloc(nodes);
        const Addr frontier = e.alloc(nodes * 4);

        while (!e.full()) {
            for (unsigned s = 0; s < 25 && !e.full(); ++s)
                e.alu(100 + s % 5, RAcc, RAcc);

            for (std::uint64_t f = 0; f < 512 && !e.full(); ++f) {
                const std::uint64_t node = (f * 17) % nodes;
                for (unsigned ed = 0; ed < 8 && !e.full(); ++ed) {
                    const std::uint64_t nb = e.rng().below(nodes);
                    const bool unvisited = e.rng().chance(0.3);
                    e.blockBegin(0, /*id=*/24);
                    e.load(1, frontier + f * 4, RVal, RIdx, 4);
                    e.load(2, adj + (node * 8 + ed) * 4, RPtr, RVal,
                           4);
                    e.load(3, visited + nb, RCmp, RPtr, 1);
                    e.branch(4, !unvisited, 6, RCmp);
                    if (unvisited)
                        e.store(5, visited + nb, RCmp, RPtr, 1);
                    e.alu(6, RIdx, RIdx);
                    e.branch(7, ed + 1 < 8, 1, RIdx);
                    e.blockEnd(8, /*id=*/24);
                }
            }
        }
    }
};

/**
 * Rodinia backprop — neural network forward/backward pass (low MPKI).
 *
 * The weight matrix is deliberately L2-resident, so repeated layer
 * sweeps hit after the first pass.
 */
class BackpropWorkload : public Workload
{
  public:
    std::string name() const override { return "backprop"; }
    std::string suite() const override { return "Rodinia"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t in_n = 512, hid_n = 8;
        const Addr weights = e.alloc(in_n * hid_n * 4); // 16 KB
        const Addr input = e.alloc(in_n * 4);
        const Addr hidden = e.alloc(hid_n * 4);

        while (!e.full()) {
            for (std::uint64_t h = 0; h < hid_n && !e.full(); ++h) {
                for (unsigned s = 0; s < 8; ++s)
                    e.alu(100 + s % 4, RAcc, RAcc);
                for (std::uint64_t i = 0; i < in_n && !e.full();
                     ++i) {
                    e.blockBegin(0, /*id=*/25);
                    e.load(1, input + i * 4, RVal, RIdx, 4);
                    e.load(2, weights + (i * hid_n + h) * 4, RPtr,
                           RIdx, 4);
                    e.fp(3, RAcc, RVal, RPtr);
                    e.alu(4, RIdx, RIdx);
                    e.branch(5, i + 1 < in_n, 1, RIdx);
                    e.blockEnd(6, /*id=*/25);
                }
                e.store(110, hidden + h * 4, RAcc, RJdx, 4);
            }
        }
    }
};

/**
 * Rodinia srad-v1 — speckle-reducing anisotropic diffusion
 * (low MPKI).
 *
 * A 4-neighbour image stencil over an image that fits in the L2
 * after the first sweep.
 */
class SradWorkload : public Workload
{
  public:
    std::string name() const override { return "srad-v1"; }
    std::string suite() const override { return "Rodinia"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t rows = 64, cols = 64; // 16 KB, resident
        const Addr img = e.alloc(rows * cols * 4);
        const Addr coef = e.alloc(rows * cols * 4);

        while (!e.full()) {
            for (std::uint64_t i = 1; i + 1 < rows && !e.full();
                 ++i) {
                for (unsigned s = 0; s < 8; ++s)
                    e.alu(100 + s % 4, RAcc, RAcc);
                for (std::uint64_t j = 1; j + 1 < cols && !e.full();
                     ++j) {
                    const std::uint64_t c = i * cols + j;
                    e.blockBegin(0, /*id=*/26);
                    e.load(1, img + c * 4, RVal, RIdx, 4);
                    e.load(2, img + (c - cols) * 4, RPtr, RIdx, 4);
                    e.load(3, img + (c + cols) * 4, RCmp, RIdx, 4);
                    e.load(4, img + (c - 1) * 4, e.temp(), RIdx, 4);
                    e.load(5, img + (c + 1) * 4, e.temp(), RIdx, 4);
                    e.fp(6, RAcc, RVal, RPtr);
                    e.fp(7, RAcc, RAcc, RCmp);
                    e.store(8, coef + c * 4, RAcc, RIdx, 4);
                    e.alu(9, RIdx, RIdx);
                    e.branch(10, j + 2 < cols, 1, RIdx);
                    e.blockEnd(11, /*id=*/26);
                }
            }
        }
    }
};

/**
 * md-linpack — molecular dynamics neighbour-list forces (low MPKI).
 */
class MdWorkload : public Workload
{
  public:
    std::string name() const override { return "md-linpack"; }
    std::string suite() const override { return "Linpack"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t particles = 512; // 32 KB
        const Addr pos = e.alloc(particles * 32);
        const Addr force = e.alloc(particles * 32);
        const Addr neigh = e.alloc(particles * 16 * 4);

        while (!e.full()) {
            for (std::uint64_t p = 0; p < 512 && !e.full();
                 ++p) {
                for (unsigned s = 0; s < 6; ++s)
                    e.fp(100 + s % 3, RAcc, RAcc);
                for (unsigned k = 0; k < 8 && !e.full(); ++k) {
                    const std::uint64_t nb =
                        (p + 1 + e.rng().below(32)) % particles;
                    e.blockBegin(0, /*id=*/27);
                    e.load(1, neigh + (p * 16 + k) * 4, RPtr, RIdx,
                           4);
                    e.load(2, pos + p * 32, RVal, RIdx);
                    e.load(3, pos + nb * 32, RCmp, RPtr);
                    e.fp(4, RAcc, RVal, RCmp);
                    e.fp(5, RAcc, RAcc, RVal);
                    e.store(6, force + p * 32, RAcc, RIdx);
                    e.alu(7, RIdx, RIdx);
                    e.branch(8, k + 1 < 16, 1, RIdx);
                    e.blockEnd(9, /*id=*/27);
                }
            }
        }
    }
};

/**
 * mvx-linpack — repeated matrix-vector product (low MPKI).
 *
 * A 1.1 MB matrix streamed over and over: after the first sweep the
 * matrix is L2-resident.
 */
class MvxWorkload : public Workload
{
  public:
    std::string name() const override { return "mvx-linpack"; }
    std::string suite() const override { return "Linpack"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 64;
        const Addr mat = e.alloc(n * n * 8); // 32 KB, resident
        const Addr x = e.alloc(n * 8);
        const Addr y = e.alloc(n * 8);

        while (!e.full()) {
            for (std::uint64_t i = 0; i < n && !e.full(); ++i) {
                for (unsigned s = 0; s < 6; ++s)
                    e.alu(100 + s % 3, RAcc, RAcc);
                for (std::uint64_t j = 0; j < n && !e.full(); ++j) {
                    e.blockBegin(0, /*id=*/28);
                    e.load(1, mat + (i * n + j) * 8, RVal, RIdx);
                    e.load(2, x + j * 8, RPtr, RIdx);
                    e.fp(3, RAcc, RVal, RPtr);
                    e.alu(4, RIdx, RIdx);
                    e.branch(5, j + 1 < n, 1, RIdx);
                    e.blockEnd(6, /*id=*/28);
                }
                e.store(110, y + i * 8, RAcc, RJdx);
            }
        }
    }
};

/**
 * mxm-linpack — blocked matrix multiply on L2-resident matrices
 * (low MPKI).
 */
class MxmWorkload : public Workload
{
  public:
    std::string name() const override { return "mxm-linpack"; }
    std::string suite() const override { return "Linpack"; }
    bool memoryIntensive() const override { return false; }

    void
    generate(Trace &trace, const WorkloadParams &params) const override
    {
        Emitter e(trace, params);
        const std::uint64_t n = 128; // 128 KB per matrix
        const Addr a = e.alloc(n * n * 8);
        const Addr b = e.alloc(n * n * 8);
        const Addr c = e.alloc(n * n * 8);

        while (!e.full()) {
            for (std::uint64_t i = 0; i < n && !e.full(); ++i) {
                for (std::uint64_t j = 0; j < n && !e.full(); ++j) {
                    for (unsigned s = 0; s < 4; ++s)
                        e.alu(100 + s, RAcc, RAcc);
                    for (std::uint64_t k = 0; k < n && !e.full();
                         ++k) {
                        e.blockBegin(0, /*id=*/29);
                        e.load(1, a + (i * n + k) * 8, RVal, RIdx);
                        e.load(2, b + (k * n + j) * 8, RPtr, RIdx);
                        e.fp(3, RAcc, RVal, RPtr);
                        e.alu(4, RIdx, RIdx);
                        e.branch(5, k + 1 < n, 1, RIdx);
                        e.blockEnd(6, /*id=*/29);
                    }
                    e.store(110, c + (i * n + j) * 8, RAcc, RJdx);
                }
            }
        }
    }
};

} // anonymous namespace

WorkloadPtr
makeNw()
{
    return std::make_unique<NwWorkload>();
}

WorkloadPtr
makeBfs()
{
    return std::make_unique<BfsWorkload>();
}

WorkloadPtr
makeBackprop()
{
    return std::make_unique<BackpropWorkload>();
}

WorkloadPtr
makeSradV1()
{
    return std::make_unique<SradWorkload>();
}

WorkloadPtr
makeMdLinpack()
{
    return std::make_unique<MdWorkload>();
}

WorkloadPtr
makeMvxLinpack()
{
    return std::make_unique<MvxWorkload>();
}

WorkloadPtr
makeMxmLinpack()
{
    return std::make_unique<MxmWorkload>();
}

} // namespace kernels
} // namespace cbws
