/**
 * @file
 * Registry of the 30 synthetic benchmark kernels (Table IV MI group +
 * the 15 low-MPKI kernels of Fig. 14).
 */

#ifndef CBWS_WORKLOADS_REGISTRY_HH
#define CBWS_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace cbws
{

/** Instantiate every registered workload. */
std::vector<WorkloadPtr> allWorkloads();

/** The paper's memory-intensive group (Table IV order). */
std::vector<WorkloadPtr> memoryIntensiveWorkloads();

/** The 15 low-MPKI workloads (Fig. 14, bottom panel order). */
std::vector<WorkloadPtr> lowMpkiWorkloads();

/** Look up one workload by its figure name; nullptr when unknown. */
WorkloadPtr findWorkload(const std::string &name);

} // namespace cbws

#endif // CBWS_WORKLOADS_REGISTRY_HH
