/**
 * @file
 * Registry of the 36 synthetic benchmark kernels: the paper's 30
 * (Table IV MI group + the 15 low-MPKI kernels of Fig. 14) plus the
 * six-kernel DBMS/server family of irregular pointer-heavy kernels.
 */

#ifndef CBWS_WORKLOADS_REGISTRY_HH
#define CBWS_WORKLOADS_REGISTRY_HH

#include <string>
#include <vector>

#include "base/result.hh"
#include "workloads/workload.hh"

namespace cbws
{

/** Instantiate every registered workload. */
std::vector<WorkloadPtr> allWorkloads();

/** The paper's memory-intensive group (Table IV order). */
std::vector<WorkloadPtr> memoryIntensiveWorkloads();

/** The 15 low-MPKI workloads (Fig. 14, bottom panel order). */
std::vector<WorkloadPtr> lowMpkiWorkloads();

/** The DBMS/server family (hash-join ... column-materialize). */
std::vector<WorkloadPtr> dbmsWorkloads();

/** Names of every registered workload, registry order. */
std::vector<std::string> workloadNames();

/** Look up one workload by its figure name; nullptr when unknown. */
WorkloadPtr findWorkload(const std::string &name);

/**
 * findWorkload with fail-fast error reporting: an unknown name
 * produces an InvalidArgument error listing every valid workload
 * name, so CLI surfaces (`--core-workloads` lists, the serve
 * protocol) can reject typos before anything is simulated.
 */
Result<WorkloadPtr> findWorkloadChecked(const std::string &name);

} // namespace cbws

#endif // CBWS_WORKLOADS_REGISTRY_HH
