#include "workloads/registry.hh"

#include "workloads/kernels/kernels.hh"

namespace cbws
{

namespace
{

using Factory = WorkloadPtr (*)();

/** Fig. 12 x-axis order for the memory-intensive group. */
constexpr Factory MiFactories[] = {
    kernels::makeBzip2,
    kernels::makeHisto,
    kernels::makeMcf,
    kernels::makeLbm,
    kernels::makeMriQ,
    kernels::makeStencil,
    kernels::makeFft,
    kernels::makeNw,
    kernels::makeLibquantum,
    kernels::makeSoplex,
    kernels::makeLuNcb,
    kernels::makeRadix,
    kernels::makeMilc,
    kernels::makeStreamcluster,
    kernels::makeSgemm,
};

/** Fig. 14 bottom-panel order for the low-MPKI group. */
constexpr Factory LowFactories[] = {
    kernels::makeSjeng,
    kernels::makeOmnetpp,
    kernels::makeBfs,
    kernels::makeCanneal,
    kernels::makeCholesky,
    kernels::makeFreqmine,
    kernels::makeMdLinpack,
    kernels::makeMvxLinpack,
    kernels::makeMxmLinpack,
    kernels::makeOceanCp,
    kernels::makeSad,
    kernels::makeSpmv,
    kernels::makeWaterSpatial,
    kernels::makeBackprop,
    kernels::makeSradV1,
};

} // anonymous namespace

std::vector<WorkloadPtr>
memoryIntensiveWorkloads()
{
    std::vector<WorkloadPtr> out;
    for (Factory f : MiFactories)
        out.push_back(f());
    return out;
}

std::vector<WorkloadPtr>
lowMpkiWorkloads()
{
    std::vector<WorkloadPtr> out;
    for (Factory f : LowFactories)
        out.push_back(f());
    return out;
}

std::vector<WorkloadPtr>
allWorkloads()
{
    std::vector<WorkloadPtr> out = memoryIntensiveWorkloads();
    for (auto &w : lowMpkiWorkloads())
        out.push_back(std::move(w));
    return out;
}

WorkloadPtr
findWorkload(const std::string &name)
{
    for (auto &w : allWorkloads())
        if (w->name() == name)
            return std::move(w);
    return nullptr;
}

} // namespace cbws
