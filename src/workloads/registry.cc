#include "workloads/registry.hh"

#include "workloads/kernels/kernels.hh"

namespace cbws
{

namespace
{

using Factory = WorkloadPtr (*)();

/** Fig. 12 x-axis order for the memory-intensive group. */
constexpr Factory MiFactories[] = {
    kernels::makeBzip2,
    kernels::makeHisto,
    kernels::makeMcf,
    kernels::makeLbm,
    kernels::makeMriQ,
    kernels::makeStencil,
    kernels::makeFft,
    kernels::makeNw,
    kernels::makeLibquantum,
    kernels::makeSoplex,
    kernels::makeLuNcb,
    kernels::makeRadix,
    kernels::makeMilc,
    kernels::makeStreamcluster,
    kernels::makeSgemm,
};

/** Fig. 14 bottom-panel order for the low-MPKI group. */
constexpr Factory LowFactories[] = {
    kernels::makeSjeng,
    kernels::makeOmnetpp,
    kernels::makeBfs,
    kernels::makeCanneal,
    kernels::makeCholesky,
    kernels::makeFreqmine,
    kernels::makeMdLinpack,
    kernels::makeMvxLinpack,
    kernels::makeMxmLinpack,
    kernels::makeOceanCp,
    kernels::makeSad,
    kernels::makeSpmv,
    kernels::makeWaterSpatial,
    kernels::makeBackprop,
    kernels::makeSradV1,
};

/** The DBMS/server family, build-side to output-side order. */
constexpr Factory DbmsFactories[] = {
    kernels::makeHashJoin,
    kernels::makeBtreeDescent,
    kernels::makeBinarySearch,
    kernels::makePointerChase,
    kernels::makeHashmapStorm,
    kernels::makeColumnMaterialize,
};

} // anonymous namespace

std::vector<WorkloadPtr>
memoryIntensiveWorkloads()
{
    std::vector<WorkloadPtr> out;
    for (Factory f : MiFactories)
        out.push_back(f());
    return out;
}

std::vector<WorkloadPtr>
lowMpkiWorkloads()
{
    std::vector<WorkloadPtr> out;
    for (Factory f : LowFactories)
        out.push_back(f());
    return out;
}

std::vector<WorkloadPtr>
dbmsWorkloads()
{
    std::vector<WorkloadPtr> out;
    for (Factory f : DbmsFactories)
        out.push_back(f());
    return out;
}

std::vector<WorkloadPtr>
allWorkloads()
{
    std::vector<WorkloadPtr> out = memoryIntensiveWorkloads();
    for (auto &w : lowMpkiWorkloads())
        out.push_back(std::move(w));
    for (auto &w : dbmsWorkloads())
        out.push_back(std::move(w));
    return out;
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : allWorkloads())
        names.push_back(w->name());
    return names;
}

WorkloadPtr
findWorkload(const std::string &name)
{
    for (auto &w : allWorkloads())
        if (w->name() == name)
            return std::move(w);
    return nullptr;
}

Result<WorkloadPtr>
findWorkloadChecked(const std::string &name)
{
    WorkloadPtr w = findWorkload(name);
    if (w)
        return w;
    std::string valid;
    for (const auto &n : workloadNames()) {
        if (!valid.empty())
            valid += ", ";
        valid += n;
    }
    return Result<WorkloadPtr>(
        Errc::InvalidArgument,
        "unknown workload '" + name + "' (valid: " + valid + ")");
}

} // namespace cbws
