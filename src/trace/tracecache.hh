/**
 * @file
 * On-disk cache of synthesised workload traces.
 *
 * Synthesising a workload trace costs real time (the kernels execute
 * their full algorithms), and every figure-regenerating bench
 * re-synthesises the same 30 traces. The cache stores each trace once
 * in a compact binary file keyed by everything that determines its
 * contents — workload name, instruction budget, seed and the
 * TraceRecord layout — so the second and subsequent binaries load
 * instead of recompute.
 *
 * Cache files are written atomically (temp file + rename), so
 * concurrent processes racing on a cold cache at worst both
 * synthesise; neither can observe a half-written file. Any mismatch
 * — stale embedded key, wrong format version, truncation — is
 * treated as a miss and falls back to re-synthesis.
 *
 * The cache is an opt-in surface: construct with a directory, or use
 * fromEnv() which reads CBWS_TRACE_CACHE (unset, empty, "0" or "off"
 * disable caching entirely).
 */

#ifndef CBWS_TRACE_TRACECACHE_HH
#define CBWS_TRACE_TRACECACHE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "base/result.hh"
#include "trace/trace.hh"

namespace cbws
{

class TraceCache
{
  public:
    /** Everything that determines a synthesised trace's contents. */
    struct Key
    {
        std::string workload;
        std::uint64_t maxInstructions = 0;
        std::uint64_t seed = 0;
    };

    /** A disabled cache: every load misses, every store is a no-op. */
    TraceCache() = default;

    /** Cache rooted at @p dir (created, with parents, on first use). */
    explicit TraceCache(std::string dir);

    /** Cache configured by the CBWS_TRACE_CACHE environment variable. */
    static TraceCache fromEnv();

    // The atomic counters delete the implicit copy operations;
    // copying a cache transfers a snapshot of them.
    TraceCache(const TraceCache &o)
        : dir_(o.dir_), hits_(o.hits_.load()), misses_(o.misses_.load())
    {}

    TraceCache &
    operator=(const TraceCache &o)
    {
        dir_ = o.dir_;
        hits_.store(o.hits_.load());
        misses_.store(o.misses_.load());
        return *this;
    }

    bool enabled() const { return !dir_.empty(); }
    const std::string &directory() const { return dir_; }

    /** File a trace with @p key lives in (empty when disabled). */
    std::string pathFor(const Key &key) const;

    /**
     * Load the trace cached under @p key into @p trace. Any failure
     * leaves @p trace empty and reports why: NotFound when the cache
     * is disabled or the key absent, Corrupt when the file exists but
     * is stale/truncated/garbled (the caller re-synthesises — and
     * typically store()s — in every failure case, so each code is
     * advisory, not fatal).
     */
    Result<void> load(const Key &key, Trace &trace) const;

    /** Persist @p trace under @p key (atomic publish). */
    Result<void> store(const Key &key, const Trace &trace) const;

    /** Cache effectiveness counters (cumulative, thread-safe). */
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }

  private:
    bool ensureDirectory() const;

    std::string dir_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

} // namespace cbws

#endif // CBWS_TRACE_TRACECACHE_HH
