#include "trace/loop_annotator.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cbws
{

void
LoopAnnotator::detectLoops(const Trace &input)
{
    // Gather taken backward branches: branchPc -> (headerPc, count).
    struct Candidate
    {
        Addr header;
        std::uint64_t taken;
    };
    std::map<Addr, Candidate> candidates;
    for (const auto &rec : input) {
        if (rec.cls != InstClass::Branch || !rec.taken)
            continue;
        if (rec.effAddr > rec.pc)
            continue; // forward branch
        auto [it, inserted] =
            candidates.try_emplace(rec.pc,
                                   Candidate{rec.effAddr, 0});
        if (!inserted && it->second.header != rec.effAddr) {
            // Indirect backward branch with varying targets: keep the
            // smallest header so the body range is conservative.
            it->second.header = std::min(it->second.header, rec.effAddr);
        }
        ++it->second.taken;
    }

    // Filter: tight (small static body), hot enough, and innermost
    // (no other candidate body nested strictly inside).
    loops_.clear();
    byHeader_.clear();
    for (const auto &[branch_pc, cand] : candidates) {
        if (cand.taken < params_.minIterations)
            continue;
        const Addr span = branch_pc - cand.header;
        if (span / params_.instBytes + 1 > params_.maxBodyInsts)
            continue;
        bool innermost = true;
        for (const auto &[other_pc, other] : candidates) {
            if (other_pc == branch_pc ||
                other.taken < params_.minIterations) {
                continue;
            }
            // other strictly inside [header, branch_pc]?
            if (other.header >= cand.header && other_pc <= branch_pc &&
                (other.header > cand.header || other_pc < branch_pc)) {
                innermost = false;
                break;
            }
        }
        if (!innermost)
            continue;
        DetectedLoop loop;
        loop.headerPc = cand.header;
        loop.branchPc = branch_pc;
        loop.id = static_cast<BlockId>(loops_.size());
        loops_.push_back(loop);
    }

    for (std::size_t i = 0; i < loops_.size(); ++i)
        byHeader_[loops_[i].headerPc] = i;
}

Trace
LoopAnnotator::annotate(const Trace &input)
{
    panic_if(input.countClass(InstClass::BlockBegin) != 0,
             "LoopAnnotator input already contains block markers");

    detectLoops(input);

    Trace out;
    out.reserve(input.size() + input.size() / 4);

    // Rewrite pass: insert BLOCK_BEGIN when control reaches a loop
    // header, BLOCK_END after the loop's backward branch (taken or
    // not: a not-taken closing branch still ends the final iteration).
    bool in_block = false;
    std::size_t active = 0;
    for (const auto &rec : input) {
        if (!in_block) {
            auto it = byHeader_.find(rec.pc);
            if (it != byHeader_.end()) {
                active = it->second;
                in_block = true;
                out.append(TraceRecord::blockBegin(
                    rec.pc, loops_[active].id));
            }
        }
        out.append(rec);
        if (in_block && rec.pc == loops_[active].branchPc &&
            rec.cls == InstClass::Branch) {
            out.append(TraceRecord::blockEnd(rec.pc, loops_[active].id));
            in_block = false;
            if (rec.taken)
                ++loops_[active].iterations;
        }
    }
    return out;
}

} // namespace cbws
