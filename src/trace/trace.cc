#include "trace/trace.hh"

#include <cstdio>
#include <cstring>

#include "base/logging.hh"
#include "base/profiler.hh"
#include "trace/decoded.hh"

namespace cbws
{

namespace
{

/** On-disk header for the CBT1 trace format. */
struct TraceFileHeader
{
    char magic[4];           // "CBT1"
    std::uint32_t recordSize;
    std::uint64_t numRecords;
};

constexpr char TraceMagic[4] = {'C', 'B', 'T', '1'};
constexpr char TraceMagic2[4] = {'C', 'B', 'T', '2'};

/** LEB128-style unsigned varint. */
void
putVarint(std::FILE *f, std::uint64_t v)
{
    while (v >= 0x80) {
        std::fputc(static_cast<int>((v & 0x7f) | 0x80), f);
        v >>= 7;
    }
    std::fputc(static_cast<int>(v), f);
}

bool
getVarint(std::FILE *f, std::uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    while (true) {
        const int c = std::fgetc(f);
        if (c == EOF || shift >= 64)
            return false;
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return true;
        shift += 7;
    }
}

/** Zigzag encoding maps small signed deltas to small varints. */
std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // anonymous namespace

std::size_t
Trace::countClass(InstClass cls) const
{
    std::size_t n = 0;
    for (const auto &r : records_)
        if (r.cls == cls)
            ++n;
    return n;
}

std::string
Trace::validate() const
{
    bool in_block = false;
    BlockId open_id = 0;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const TraceRecord &r = records_[i];
        switch (r.cls) {
          case InstClass::BlockBegin:
            if (in_block) {
                return vformat("record %zu: nested BLOCK_BEGIN",
                               i);
            }
            in_block = true;
            open_id = r.blockId;
            break;
          case InstClass::BlockEnd:
            if (!in_block) {
                return vformat("record %zu: unmatched BLOCK_END",
                               i);
            }
            if (r.blockId != open_id) {
                return vformat(
                    "record %zu: BLOCK_END id %u does not match "
                    "BLOCK_BEGIN id %u",
                    i, r.blockId, open_id);
            }
            in_block = false;
            break;
          case InstClass::Load:
          case InstClass::Store:
            if (r.effAddr == 0)
                return vformat("record %zu: memory access to 0", i);
            break;
          default:
            break;
        }
    }
    // A trailing open block is legal (budget may cut generation
    // mid-iteration).
    return std::string();
}

Result<void>
Trace::saveTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return Error(Errc::IoError,
                     path + ": cannot open for writing");
    TraceFileHeader hdr;
    std::memcpy(hdr.magic, TraceMagic, sizeof(hdr.magic));
    hdr.recordSize = sizeof(TraceRecord);
    hdr.numRecords = records_.size();
    bool ok = std::fwrite(&hdr, sizeof(hdr), 1, f) == 1;
    if (ok && !records_.empty()) {
        ok = std::fwrite(records_.data(), sizeof(TraceRecord),
                         records_.size(), f) == records_.size();
    }
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return Error(Errc::IoError, path + ": short write");
    return Result<void>();
}

namespace tracecodec
{

bool
writeBody(std::FILE *f, const std::vector<TraceRecord> &records)
{
    putVarint(f, records.size());
    Addr prev_pc = 0;
    Addr prev_addr = 0;
    for (const auto &r : records) {
        std::fputc(static_cast<int>(r.cls), f);
        std::fputc(r.taken ? 1 : 0, f);
        putVarint(f, zigzag(static_cast<std::int64_t>(r.pc) -
                            static_cast<std::int64_t>(prev_pc)));
        prev_pc = r.pc;
        std::fputc(r.src1, f);
        std::fputc(r.src2, f);
        std::fputc(r.dest, f);
        std::fputc(r.size, f);
        if (isMemory(r.cls)) {
            putVarint(f,
                      zigzag(static_cast<std::int64_t>(r.effAddr) -
                             static_cast<std::int64_t>(prev_addr)));
            prev_addr = r.effAddr;
        } else if (r.cls == InstClass::Branch) {
            putVarint(f,
                      zigzag(static_cast<std::int64_t>(r.effAddr) -
                             static_cast<std::int64_t>(r.pc)));
        } else if (isBlockMarker(r.cls)) {
            putVarint(f, r.blockId);
        }
    }
    return std::ferror(f) == 0;
}

bool
readBody(std::FILE *f, std::vector<TraceRecord> &records)
{
    std::uint64_t count = 0;
    if (!getVarint(f, count))
        return false;
    records.clear();
    records.reserve(count);
    Addr prev_pc = 0;
    Addr prev_addr = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceRecord r;
        const int cls = std::fgetc(f);
        const int taken = std::fgetc(f);
        if (cls == EOF || taken == EOF)
            return false;
        r.cls = static_cast<InstClass>(cls);
        r.taken = taken != 0;
        std::uint64_t v;
        if (!getVarint(f, v))
            return false;
        r.pc = static_cast<Addr>(static_cast<std::int64_t>(prev_pc) +
                                 unzigzag(v));
        prev_pc = r.pc;
        const int s1 = std::fgetc(f);
        const int s2 = std::fgetc(f);
        const int dst = std::fgetc(f);
        const int size = std::fgetc(f);
        if (size == EOF)
            return false;
        r.src1 = static_cast<RegIndex>(s1);
        r.src2 = static_cast<RegIndex>(s2);
        r.dest = static_cast<RegIndex>(dst);
        r.size = static_cast<std::uint8_t>(size);
        if (isMemory(r.cls)) {
            if (!getVarint(f, v))
                return false;
            r.effAddr = static_cast<Addr>(
                static_cast<std::int64_t>(prev_addr) + unzigzag(v));
            prev_addr = r.effAddr;
        } else if (r.cls == InstClass::Branch) {
            if (!getVarint(f, v))
                return false;
            r.effAddr = static_cast<Addr>(
                static_cast<std::int64_t>(r.pc) + unzigzag(v));
        } else if (isBlockMarker(r.cls)) {
            if (!getVarint(f, v))
                return false;
            r.blockId = static_cast<BlockId>(v);
        }
        records.push_back(r);
    }
    return true;
}

} // namespace tracecodec

Result<void>
Trace::saveCompressed(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return Error(Errc::IoError,
                     path + ": cannot open for writing");
    std::fwrite(TraceMagic2, 1, sizeof(TraceMagic2), f);
    bool ok = tracecodec::writeBody(f, records_);
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return Error(Errc::IoError, path + ": short write");
    return Result<void>();
}

const DecodedTrace &
Trace::ensureDecoded() const
{
    if (!decoded_) {
        PROF_SCOPE(prof::Phase::DecodeBatch);
        decoded_ =
            std::make_shared<const DecodedTrace>(
                DecodedTrace::build(records_));
    }
    return *decoded_;
}

Result<void>
Trace::loadFrom(const std::string &path)
{
    decoded_.reset();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return Error(Errc::IoError,
                     path + ": cannot open for reading");
    char magic[4];
    bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic);
    if (ok && std::memcmp(magic, TraceMagic2, sizeof(magic)) == 0) {
        ok = tracecodec::readBody(f, records_);
    } else if (ok &&
               std::memcmp(magic, TraceMagic, sizeof(magic)) == 0) {
        // CBT1: raw records after the fixed header.
        TraceFileHeader hdr;
        std::memcpy(hdr.magic, magic, sizeof(magic));
        ok = std::fread(&hdr.recordSize,
                        sizeof(hdr) - sizeof(hdr.magic), 1, f) == 1 &&
             hdr.recordSize == sizeof(TraceRecord);
        if (ok) {
            records_.resize(hdr.numRecords);
            if (hdr.numRecords > 0) {
                ok = std::fread(records_.data(), sizeof(TraceRecord),
                                records_.size(),
                                f) == records_.size();
            }
        }
    } else {
        ok = false;
    }
    std::fclose(f);
    if (!ok) {
        records_.clear();
        return Error(Errc::Corrupt,
                     path + ": corrupt or incompatible trace file");
    }
    return Result<void>();
}

} // namespace cbws
