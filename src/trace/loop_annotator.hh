/**
 * @file
 * Automatic annotation of tight, innermost loops in a raw instruction
 * trace.
 *
 * The paper annotates loop iterations with a dedicated LLVM pass that
 * wraps each innermost tight loop body in BLOCK_BEGIN / BLOCK_END ISA
 * markers. The only architecturally visible product of that pass is
 * the placement of the markers, so this module reproduces it at the
 * trace level: it detects innermost tight loops from taken backward
 * branches, assigns each loop a static BlockId, and rewrites the trace
 * with markers inserted around every dynamic iteration.
 *
 * Detection rules (mirroring the pass's "tight innermost loop" filter):
 *  - a loop candidate is a taken backward branch (target <= pc); the
 *    body is the static PC range [target, branch pc];
 *  - a candidate is *innermost* if no other candidate's body nests
 *    strictly inside it;
 *  - a candidate is *tight* if its static body spans at most
 *    maxBodyInsts instructions.
 */

#ifndef CBWS_TRACE_LOOP_ANNOTATOR_HH
#define CBWS_TRACE_LOOP_ANNOTATOR_HH

#include <cstddef>
#include <map>
#include <vector>

#include "trace/trace.hh"

namespace cbws
{

/** Static description of one detected loop. */
struct DetectedLoop
{
    Addr headerPc = 0;   ///< first instruction of the loop body
    Addr branchPc = 0;   ///< the backward branch closing the loop
    BlockId id = 0;      ///< assigned static block identifier
    std::uint64_t iterations = 0; ///< dynamic iteration count observed
};

/**
 * Detects innermost tight loops in a trace and inserts block markers.
 */
class LoopAnnotator
{
  public:
    struct Params
    {
        /** Maximum static body size (in instructions) of a tight
         *  loop; bodies larger than this are left unannotated. */
        std::size_t maxBodyInsts = 64;
        /** Minimum dynamic iteration count before a loop is deemed
         *  worth annotating. */
        std::uint64_t minIterations = 4;
        /** Assumed instruction size, used to measure body spans. */
        unsigned instBytes = 4;
    };

    LoopAnnotator() : LoopAnnotator(Params{}) {}

    explicit LoopAnnotator(const Params &params) : params_(params) {}

    /**
     * Analyse @p input and return a copy with BLOCK_BEGIN/BLOCK_END
     * records inserted around every iteration of each detected loop.
     * Input must not already contain block markers.
     */
    Trace annotate(const Trace &input);

    /** Loops found by the most recent annotate() call. */
    const std::vector<DetectedLoop> &loops() const { return loops_; }

  private:
    /** First pass: find innermost tight loop candidates. */
    void detectLoops(const Trace &input);

    Params params_;
    std::vector<DetectedLoop> loops_;
    /** headerPc -> index into loops_, for the rewrite pass. */
    std::map<Addr, std::size_t> byHeader_;
};

} // namespace cbws

#endif // CBWS_TRACE_LOOP_ANNOTATOR_HH
