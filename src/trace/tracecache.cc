#include "trace/tracecache.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "base/faultinject.hh"
#include "base/logging.hh"
#include "base/profiler.hh"

namespace cbws
{

namespace
{

constexpr char CacheMagic[4] = {'C', 'B', 'T', 'C'};
constexpr std::uint32_t CacheVersion = 1;

void
putVarint(std::FILE *f, std::uint64_t v)
{
    while (v >= 0x80) {
        std::fputc(static_cast<int>((v & 0x7f) | 0x80), f);
        v >>= 7;
    }
    std::fputc(static_cast<int>(v), f);
}

bool
getVarint(std::FILE *f, std::uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    while (true) {
        const int c = std::fgetc(f);
        if (c == EOF || shift >= 64)
            return false;
        v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return true;
        shift += 7;
    }
}

void
putString(std::FILE *f, const std::string &s)
{
    putVarint(f, s.size());
    std::fwrite(s.data(), 1, s.size(), f);
}

bool
getString(std::FILE *f, std::string &s)
{
    std::uint64_t len = 0;
    if (!getVarint(f, len) || len > 4096)
        return false;
    s.resize(len);
    return len == 0 ||
           std::fread(&s[0], 1, len, f) == len;
}

/** Keep the filename readable while staying filesystem-safe. */
std::string
sanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' ||
                          c == '_' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out;
}

/** mkdir -p; true when the directory exists afterwards. */
bool
makeDirs(const std::string &path)
{
    std::string partial;
    partial.reserve(path.size());
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial.push_back(path[i]);
            continue;
        }
        if (!partial.empty() &&
            ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
            return false;
        }
        if (i < path.size())
            partial.push_back('/');
    }
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

} // anonymous namespace

TraceCache::TraceCache(std::string dir) : dir_(std::move(dir)) {}

TraceCache
TraceCache::fromEnv()
{
    const char *env = std::getenv("CBWS_TRACE_CACHE");
    if (!env || !*env || std::strcmp(env, "0") == 0 ||
        std::strcmp(env, "off") == 0) {
        return TraceCache();
    }
    return TraceCache(env);
}

std::string
TraceCache::pathFor(const Key &key) const
{
    if (!enabled())
        return std::string();
    return dir_ + "/" + sanitize(key.workload) + "-i" +
           std::to_string(key.maxInstructions) + "-s" +
           std::to_string(key.seed) + ".cbtc";
}

bool
TraceCache::ensureDirectory() const
{
    if (makeDirs(dir_))
        return true;
    warn("trace cache: cannot create directory '%s'", dir_.c_str());
    return false;
}

Result<void>
TraceCache::load(const Key &key, Trace &trace) const
{
    trace.clear();
    if (!enabled())
        return Error(Errc::NotFound, "trace cache disabled");
    PROF_SCOPE(prof::Phase::TraceCacheIO);
    const std::string path = pathFor(key);
    if (FaultInjector::instance().shouldFire(
            FaultSite::TraceCacheLoad)) {
        ++misses_;
        return Error(Errc::FaultInjected,
                     path + ": injected trace-cache load failure");
    }
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        ++misses_;
        return Error(Errc::NotFound, path + ": not cached");
    }

    char magic[4];
    std::uint32_t version = 0;
    std::uint32_t rec_size = 0;
    std::string workload;
    std::uint64_t insts = 0;
    std::uint64_t seed = 0;
    bool ok =
        std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
        std::memcmp(magic, CacheMagic, sizeof(magic)) == 0 &&
        std::fread(&version, sizeof(version), 1, f) == 1 &&
        version == CacheVersion &&
        std::fread(&rec_size, sizeof(rec_size), 1, f) == 1 &&
        rec_size == sizeof(TraceRecord) && getString(f, workload) &&
        getVarint(f, insts) && getVarint(f, seed);
    // The key is embedded redundantly with the filename: a renamed or
    // regenerated-under-different-parameters file must never be
    // served (stale-key protection).
    ok = ok && workload == key.workload &&
         insts == key.maxInstructions && seed == key.seed;
    ok = ok && tracecodec::readBody(f, trace.records());
    std::fclose(f);
    if (FaultInjector::instance().shouldFire(
            FaultSite::TraceCacheCorrupt))
        ok = false;
    if (!ok) {
        trace.clear();
        ++misses_;
        return Error(Errc::Corrupt,
                     path + ": stale or corrupt cache entry");
    }
    ++hits_;
    return Result<void>();
}

Result<void>
TraceCache::store(const Key &key, const Trace &trace) const
{
    if (!enabled())
        return Error(Errc::NotFound, "trace cache disabled");
    PROF_SCOPE(prof::Phase::TraceCacheIO);
    if (!ensureDirectory())
        return Error(Errc::IoError,
                     dir_ + ": cannot create cache directory");
    const std::string path = pathFor(key);
    if (FaultInjector::instance().shouldFire(
            FaultSite::TraceCacheStore))
        return Error(Errc::FaultInjected,
                     path + ": injected trace-cache store failure");
    // Unique temp name per process+thread so concurrent writers of the
    // same key never interleave; rename() makes publication atomic.
    static std::atomic<unsigned> unique{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(unique.fetch_add(1));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        warn("trace cache: cannot write '%s'", tmp.c_str());
        return Error(Errc::IoError, tmp + ": cannot open for write");
    }
    std::fwrite(CacheMagic, 1, sizeof(CacheMagic), f);
    std::fwrite(&CacheVersion, sizeof(CacheVersion), 1, f);
    const std::uint32_t rec_size = sizeof(TraceRecord);
    std::fwrite(&rec_size, sizeof(rec_size), 1, f);
    putString(f, key.workload);
    putVarint(f, key.maxInstructions);
    putVarint(f, key.seed);
    bool ok = tracecodec::writeBody(f, trace.records());
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        warn("trace cache: failed to publish '%s'", path.c_str());
        std::remove(tmp.c_str());
        return Error(Errc::IoError, path + ": publish failed");
    }
    return Result<void>();
}

} // namespace cbws
