/**
 * @file
 * In-memory instruction trace container plus a simple binary on-disk
 * format for saving and replaying traces.
 */

#ifndef CBWS_TRACE_TRACE_HH
#define CBWS_TRACE_TRACE_HH

#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "base/result.hh"
#include "trace/record.hh"

namespace cbws
{

struct DecodedTrace;

/**
 * The CBT2 record codec (per-field delta + varint encoding), shared
 * by Trace::saveCompressed/loadFrom and the on-disk trace cache.
 * Both operate on an already-positioned stdio stream: the caller
 * owns the surrounding magic/header bytes.
 */
namespace tracecodec
{

/** Append the record count + encoded records to @p f. */
bool writeBody(std::FILE *f, const std::vector<TraceRecord> &records);

/**
 * Decode a body written by writeBody() into @p records (replacing
 * its contents). Returns false on EOF/corruption; @p records is then
 * in an unspecified state and the caller must discard it.
 */
bool readBody(std::FILE *f, std::vector<TraceRecord> &records);

} // namespace tracecodec

/**
 * A dynamic instruction trace: an append-only sequence of TraceRecords
 * produced by a workload kernel and consumed by the core model.
 */
class Trace
{
  public:
    void
    append(const TraceRecord &rec)
    {
        decoded_.reset();
        records_.push_back(rec);
    }

    const TraceRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    void
    clear()
    {
        decoded_.reset();
        records_.clear();
    }

    void reserve(std::size_t n) { records_.reserve(n); }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /** Mutable record access conservatively drops any cached decode
     *  (the caller may rewrite records). */
    std::vector<TraceRecord> &
    records()
    {
        decoded_.reset();
        return records_;
    }

    const std::vector<TraceRecord> &records() const { return records_; }

    /**
     * Cached SoA pre-decode of the records (trace/decoded.hh), or
     * nullptr when none has been built. Invalidated by any mutating
     * access.
     */
    const DecodedTrace *decoded() const { return decoded_.get(); }

    /**
     * Build (and cache) the SoA pre-decode. NOT thread-safe on the
     * first call for a given trace: when several simulation cells
     * share one Trace across worker threads, the matrix runner
     * pre-decodes in its serial-per-workload synthesis phase; after
     * that, concurrent readers only ever see the built pointer.
     */
    const DecodedTrace &ensureDecoded() const;

    /** Count of records of a given class. */
    std::size_t countClass(InstClass cls) const;

    /**
     * Structural validation: block markers balanced and non-nested,
     * BLOCK_END ids matching their BLOCK_BEGIN, memory records with
     * non-zero addresses. Returns an empty string when valid, or a
     * description of the first violation.
     */
    std::string validate() const;

    /**
     * Serialise to the CBT1 binary format (raw records). IoError on
     * open or short-write failure.
     */
    Result<void> saveTo(const std::string &path) const;

    /**
     * Load a trace previously written by saveTo() or
     * saveCompressed() (the magic selects the decoder). IoError when
     * the file cannot be opened, Corrupt on a bad magic, version or
     * truncated body; the trace is left empty on failure.
     */
    Result<void> loadFrom(const std::string &path);

    /**
     * Serialise to the CBT2 compact format: per-field delta +
     * varint encoding, typically 3-4x smaller than CBT1. Loadable
     * via loadFrom().
     */
    Result<void> saveCompressed(const std::string &path) const;

  private:
    std::vector<TraceRecord> records_;
    /** Cached SoA decode; shared so Trace copies stay cheap (a copy
     *  that later mutates only drops its own pointer). */
    mutable std::shared_ptr<const DecodedTrace> decoded_;
};

} // namespace cbws

#endif // CBWS_TRACE_TRACE_HH
