/**
 * @file
 * Definition of the dynamic instruction trace record consumed by the
 * out-of-order core model.
 *
 * Workload kernels (src/workloads) execute their real algorithm and
 * emit one TraceRecord per dynamic instruction: program counter,
 * instruction class, up to two source registers and one destination
 * register (which the core uses for dependency-driven scheduling), the
 * effective address for memory operations, and the outcome/target for
 * branches. Code block boundaries — the paper's BLOCK_BEGIN and
 * BLOCK_END ISA extensions — travel in the same stream as marker
 * records.
 */

#ifndef CBWS_TRACE_RECORD_HH
#define CBWS_TRACE_RECORD_HH

#include <cstddef>
#include <type_traits>

#include "base/types.hh"

namespace cbws
{

/** Broad classification of a dynamic instruction. */
enum class InstClass : std::uint8_t
{
    IntAlu,     ///< single-cycle integer operation
    IntMul,     ///< multi-cycle integer multiply/divide
    FpAlu,      ///< floating-point operation
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< conditional or unconditional control transfer
    BlockBegin, ///< BLOCK_BEGIN marker (paper's ISA extension)
    BlockEnd,   ///< BLOCK_END marker
    Nop,        ///< no-operation placeholder
};

/** True for Load and Store records. */
constexpr bool
isMemory(InstClass cls)
{
    return cls == InstClass::Load || cls == InstClass::Store;
}

/** True for the BLOCK_BEGIN / BLOCK_END markers. */
constexpr bool
isBlockMarker(InstClass cls)
{
    return cls == InstClass::BlockBegin || cls == InstClass::BlockEnd;
}

/**
 * One dynamic instruction.
 *
 * The layout is kept POD and packed to exactly 24 bytes (2.7 records
 * per cache line) so multi-million instruction traces stay cheap to
 * hold, cheap to stream from disk, and light on memory bandwidth in
 * the replay loop. The static_asserts below pin the layout: a field
 * added or reordered carelessly fails the build instead of silently
 * bloating every trace and invalidating the CBT1/trace-cache on-disk
 * formats (which write raw records / record-size tags).
 */
struct TraceRecord
{
    Addr pc = 0;              ///< virtual address of the instruction
    Addr effAddr = 0;         ///< effective address (Load/Store) or
                              ///< branch target (Branch)
    InstClass cls = InstClass::Nop;
    std::uint8_t size = 0;    ///< access size in bytes (Load/Store)
    RegIndex src1 = InvalidReg;
    RegIndex src2 = InvalidReg;
    RegIndex dest = InvalidReg;
    bool taken = false;       ///< actual branch outcome
    BlockId blockId = 0;      ///< block identifier for marker records

    /** Cache line touched by a memory record. */
    LineAddr line() const { return lineOf(effAddr); }

    static TraceRecord
    alu(Addr pc, RegIndex dest, RegIndex src1 = InvalidReg,
        RegIndex src2 = InvalidReg)
    {
        TraceRecord r;
        r.pc = pc;
        r.cls = InstClass::IntAlu;
        r.dest = dest;
        r.src1 = src1;
        r.src2 = src2;
        return r;
    }

    static TraceRecord
    fp(Addr pc, RegIndex dest, RegIndex src1 = InvalidReg,
       RegIndex src2 = InvalidReg)
    {
        TraceRecord r = alu(pc, dest, src1, src2);
        r.cls = InstClass::FpAlu;
        return r;
    }

    static TraceRecord
    load(Addr pc, Addr addr, RegIndex dest, RegIndex addr_reg = InvalidReg,
         std::uint8_t size = 8)
    {
        TraceRecord r;
        r.pc = pc;
        r.cls = InstClass::Load;
        r.effAddr = addr;
        r.size = size;
        r.dest = dest;
        r.src1 = addr_reg;
        return r;
    }

    static TraceRecord
    store(Addr pc, Addr addr, RegIndex data_reg,
          RegIndex addr_reg = InvalidReg, std::uint8_t size = 8)
    {
        TraceRecord r;
        r.pc = pc;
        r.cls = InstClass::Store;
        r.effAddr = addr;
        r.size = size;
        r.src1 = data_reg;
        r.src2 = addr_reg;
        return r;
    }

    static TraceRecord
    branch(Addr pc, bool taken, Addr target,
           RegIndex cond_reg = InvalidReg)
    {
        TraceRecord r;
        r.pc = pc;
        r.cls = InstClass::Branch;
        r.taken = taken;
        r.effAddr = target;
        r.src1 = cond_reg;
        return r;
    }

    static TraceRecord
    blockBegin(Addr pc, BlockId id)
    {
        TraceRecord r;
        r.pc = pc;
        r.cls = InstClass::BlockBegin;
        r.blockId = id;
        return r;
    }

    static TraceRecord
    blockEnd(Addr pc, BlockId id)
    {
        TraceRecord r;
        r.pc = pc;
        r.cls = InstClass::BlockEnd;
        r.blockId = id;
        return r;
    }
};

static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "TraceRecord is memcpy'd to/from disk");
static_assert(sizeof(TraceRecord) == 24,
              "TraceRecord must stay packed at 24 bytes");
static_assert(offsetof(TraceRecord, blockId) == 22,
              "TraceRecord fields must leave no padding holes");

} // namespace cbws

#endif // CBWS_TRACE_RECORD_HH
