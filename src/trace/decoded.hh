/**
 * @file
 * SoA (structure-of-arrays) batch pre-decode of an instruction trace.
 *
 * The replay loop used to re-derive three things per record, every
 * time a trace was simulated: the fetch/effective cache lines, the
 * register-renaming producer of each source operand, and whether the
 * record sits inside an annotated code block. All three are pure
 * functions of the trace prefix — the core dispatches every record
 * exactly once, in program order, so a record's ROB sequence number
 * *is* its trace index, which makes the renaming result (the trace
 * index of the latest older writer of each source register) a static
 * property of the trace. DecodedTrace computes them once, in one
 * linear pass, into flat parallel arrays that all seven prefetcher
 * configurations of a matrix row then share read-only.
 *
 * Bit-identity: replaying from these buffers must be architecturally
 * invisible. tests/test_replay_opt.cc compares full simulation
 * results with the batch path on and off (CBWS_BATCH_DECODE gates
 * it at runtime, see base/tuning.hh).
 */

#ifndef CBWS_TRACE_DECODED_HH
#define CBWS_TRACE_DECODED_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "trace/record.hh"

namespace cbws
{

/**
 * Per-record derived values for one trace, stored column-wise.
 * Indices parallel the source trace's record indices.
 */
struct DecodedTrace
{
    /** Producer sentinel: the source register holds an architectural
     *  value (no older in-trace writer). */
    static constexpr std::uint32_t NoProd = ~std::uint32_t(0);

    /** flags bit: record was fetched inside an annotated block
     *  (BLOCK_END itself counts as inside, matching the fetch
     *  stage's attribution). */
    static constexpr std::uint8_t InBlock = 1u << 0;

    std::vector<LineAddr> pcLine;  ///< lineOf(pc) per record
    std::vector<LineAddr> effLine; ///< lineOf(effAddr) per record
    /** Trace index of the latest older record writing src1/src2, or
     *  NoProd. Equals the producer's ROB sequence number. */
    std::vector<std::uint32_t> src1Prod;
    std::vector<std::uint32_t> src2Prod;
    std::vector<std::uint8_t> flags;

    std::size_t size() const { return flags.size(); }

    /**
     * One-pass decode of @p records. The renaming column replays the
     * dispatch stage's order exactly: a record's sources resolve
     * against the writers *before* it, then it claims its own
     * destination.
     */
    static DecodedTrace build(const std::vector<TraceRecord> &records);
};

} // namespace cbws

#endif // CBWS_TRACE_DECODED_HH
