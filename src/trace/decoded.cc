#include "trace/decoded.hh"

#include "base/logging.hh"

namespace cbws
{

DecodedTrace
DecodedTrace::build(const std::vector<TraceRecord> &records)
{
    const std::size_t n = records.size();
    fatal_if(n >= NoProd,
             "DecodedTrace: trace of %zu records overflows the 32-bit "
             "producer index space",
             n);

    DecodedTrace d;
    d.pcLine.resize(n);
    d.effLine.resize(n);
    d.src1Prod.resize(n);
    d.src2Prod.resize(n);
    d.flags.resize(n);

    std::uint32_t last_writer[NumArchRegs];
    for (auto &w : last_writer)
        w = NoProd;
    bool in_block = false;

    for (std::size_t i = 0; i < n; ++i) {
        const TraceRecord &rec = records[i];
        d.pcLine[i] = lineOf(rec.pc);
        d.effLine[i] = lineOf(rec.effAddr);
        // Sources resolve before the destination is claimed — the
        // same order dispatch renames in, so a self-referencing
        // record (dest == src) reads its *older* producer.
        d.src1Prod[i] = rec.src1 != InvalidReg ? last_writer[rec.src1]
                                               : NoProd;
        d.src2Prod[i] = rec.src2 != InvalidReg ? last_writer[rec.src2]
                                               : NoProd;
        if (rec.dest != InvalidReg)
            last_writer[rec.dest] = static_cast<std::uint32_t>(i);
        if (rec.cls == InstClass::BlockBegin)
            in_block = true;
        d.flags[i] =
            (in_block || rec.cls == InstClass::BlockEnd) ? InBlock : 0;
        if (rec.cls == InstClass::BlockEnd)
            in_block = false;
    }
    return d;
}

} // namespace cbws
