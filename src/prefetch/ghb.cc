#include "prefetch/ghb.hh"

#include <algorithm>

#include "prefetch/registry.hh"

namespace cbws
{

GhbPrefetcher::GhbPrefetcher(Mode mode, const GhbParams &params)
    : mode_(mode), params_(params), buffer_(params.bufferEntries)
{
}

const GhbPrefetcher::Entry *
GhbPrefetcher::entryFor(std::uint64_t seq) const
{
    if (seq == InvalidSeq || seq >= nextSeq_)
        return nullptr;
    if (nextSeq_ - seq > buffer_.size())
        return nullptr; // overwritten by wraparound
    return &buffer_[seq % buffer_.size()];
}

std::vector<LineAddr>
GhbPrefetcher::collect(std::uint64_t head_seq, unsigned max) const
{
    std::vector<LineAddr> lines;
    std::uint64_t seq = head_seq;
    while (lines.size() < max) {
        const Entry *e = entryFor(seq);
        if (!e)
            break;
        lines.push_back(e->line);
        seq = e->prevSeq;
    }
    return lines;
}

void
GhbPrefetcher::observeAccess(const PrefetchContext &ctx, PrefetchSink &sink)
{
    // GHB records cache *misses* (Nesbit & Smith): only accesses that
    // found the L2 without ready data train and trigger.
    if (!ctx.l2Miss && !params_.trainOnHits)
        return;

    const Addr key = mode_ == Mode::GlobalDC ? 0 : ctx.pc;

    // Link the new miss into its stream and update the index table.
    std::uint64_t prev_seq = InvalidSeq;
    if (auto it = indexTable_.find(key); it != indexTable_.end())
        prev_seq = it->second;
    const std::uint64_t seq = nextSeq_++;
    buffer_[seq % buffer_.size()] = Entry{ctx.line, prev_seq};
    indexTable_[key] = seq;

    // Bound the index table: entries whose head has been overwritten
    // are useless; prune opportunistically to keep memory bounded.
    if (indexTable_.size() > 4 * params_.bufferEntries) {
        for (auto it = indexTable_.begin(); it != indexTable_.end();) {
            if (!entryFor(it->second))
                it = indexTable_.erase(it);
            else
                ++it;
        }
    }

    // Delta correlation over this stream's recent history.
    std::vector<LineAddr> recent = collect(seq, params_.maxChainWalk);
    if (recent.size() < params_.historyLength + 1)
        return;
    std::reverse(recent.begin(), recent.end()); // oldest -> newest

    const std::size_t m = recent.size();
    std::vector<std::int64_t> deltas(m - 1);
    for (std::size_t i = 0; i + 1 < m; ++i) {
        deltas[i] = static_cast<std::int64_t>(recent[i + 1]) -
                    static_cast<std::int64_t>(recent[i]);
    }

    // Correlate on the last two deltas (history length 3 addresses).
    const std::size_t n = deltas.size();
    if (n < 2)
        return;
    const std::int64_t d1 = deltas[n - 2];
    const std::int64_t d2 = deltas[n - 1];

    for (std::size_t k = n - 2; k >= 2; --k) {
        if (deltas[k - 2] == d1 && deltas[k - 1] == d2) {
            // Replay the deltas that followed the earlier occurrence.
            LineAddr target = ctx.line;
            for (unsigned d = 0; d < params_.degree && k + d < n;
                 ++d) {
                target = static_cast<LineAddr>(
                    static_cast<std::int64_t>(target) + deltas[k + d]);
                if (!sink.isCached(target))
                    sink.issuePrefetch(target, PfSource::Ghb);
            }
            return;
        }
    }
}

std::uint64_t
GhbPrefetcher::storageBits() const
{
    // Table III: G/DC is (3 history strides + 3 prefetch strides) per
    // entry; PC/DC additionally stores a PC per entry.
    std::uint64_t bits_per_entry = 2ull * params_.historyLength *
                                   params_.strideBits;
    if (mode_ == Mode::PcDC)
        bits_per_entry += params_.pcBits;
    return bits_per_entry * params_.bufferEntries;
}

CBWS_REGISTER_PREFETCHER(ghb_pc_dc, "GHB-PC/DC",
                         "global history buffer, per-PC delta "
                         "correlation",
                         [](const ParamSet &p) {
                             return std::make_unique<GhbPrefetcher>(
                                 GhbPrefetcher::Mode::PcDC,
                                 p.getOr<GhbParams>());
                         })

CBWS_REGISTER_PREFETCHER(ghb_g_dc, "GHB-G/DC",
                         "global history buffer, global delta "
                         "correlation",
                         [](const ParamSet &p) {
                             return std::make_unique<GhbPrefetcher>(
                                 GhbPrefetcher::Mode::GlobalDC,
                                 p.getOr<GhbParams>());
                         })

} // namespace cbws
