#include "prefetch/ghb.hh"

#include <algorithm>

#include "prefetch/registry.hh"

namespace cbws
{

GhbPrefetcher::GhbPrefetcher(Mode mode, const GhbParams &params)
    : mode_(mode), params_(params), buffer_(params.bufferEntries)
{
}

const GhbPrefetcher::Entry *
GhbPrefetcher::entryFor(std::uint64_t seq) const
{
    if (seq == InvalidSeq || seq >= nextSeq_)
        return nullptr;
    if (nextSeq_ - seq > buffer_.size())
        return nullptr; // overwritten by wraparound
    return &buffer_[seq % buffer_.size()];
}

std::vector<LineAddr>
GhbPrefetcher::collect(std::uint64_t head_seq, unsigned max) const
{
    std::vector<LineAddr> lines;
    std::uint64_t seq = head_seq;
    while (lines.size() < max) {
        const Entry *e = entryFor(seq);
        if (!e)
            break;
        lines.push_back(e->line);
        seq = e->prevSeq;
    }
    return lines;
}

void
GhbPrefetcher::observeAccess(const PrefetchContext &ctx, PrefetchSink &sink)
{
    // GHB records cache *misses* (Nesbit & Smith): only accesses that
    // found the L2 without ready data train and trigger.
    if (!ctx.l2Miss && !params_.trainOnHits)
        return;

    const Addr key = mode_ == Mode::GlobalDC ? 0 : ctx.pc;

    // Link the new miss into its stream and update the index table.
    std::uint64_t prev_seq = InvalidSeq;
    const std::uint64_t seq = nextSeq_++;
    if (auto [it, inserted] = indexTable_.try_emplace(key, seq);
        !inserted) {
        prev_seq = it->second;
        it->second = seq;
    }
    buffer_[seq % buffer_.size()] = Entry{ctx.line, prev_seq};

    // Bound the index table: entries whose head has been overwritten
    // are useless; prune opportunistically to keep memory bounded.
    if (indexTable_.size() > 4 * params_.bufferEntries) {
        for (auto it = indexTable_.begin(); it != indexTable_.end();) {
            if (!entryFor(it->second))
                it = indexTable_.erase(it);
            else
                ++it;
        }
    }

    // Delta correlation over this stream's recent history. The walk
    // is bounded by maxChainWalk, so for the default configuration it
    // fits a fixed stack buffer and the training path allocates
    // nothing; oversized configurations fall back to collect().
    constexpr unsigned WalkCap = 64;
    LineAddr recent_buf[WalkCap];
    std::size_t m = 0;
    if (params_.maxChainWalk <= WalkCap) {
        std::uint64_t s = seq;
        while (m < params_.maxChainWalk) {
            const Entry *e = entryFor(s);
            if (!e)
                break;
            recent_buf[m++] = e->line;
            s = e->prevSeq;
        }
    } else {
        const std::vector<LineAddr> heap =
            collect(seq, params_.maxChainWalk);
        if (heap.size() < params_.historyLength + 1)
            return;
        std::vector<LineAddr> rev(heap.rbegin(), heap.rend());
        std::vector<std::int64_t> hdeltas(rev.size() - 1);
        for (std::size_t i = 0; i + 1 < rev.size(); ++i) {
            hdeltas[i] = static_cast<std::int64_t>(rev[i + 1]) -
                         static_cast<std::int64_t>(rev[i]);
        }
        correlateAndIssue(hdeltas.data(), hdeltas.size(), ctx.line,
                          sink);
        return;
    }
    if (m < params_.historyLength + 1)
        return;
    std::reverse(recent_buf, recent_buf + m); // oldest -> newest

    std::int64_t deltas_buf[WalkCap];
    for (std::size_t i = 0; i + 1 < m; ++i) {
        deltas_buf[i] = static_cast<std::int64_t>(recent_buf[i + 1]) -
                        static_cast<std::int64_t>(recent_buf[i]);
    }
    correlateAndIssue(deltas_buf, m - 1, ctx.line, sink);
}

void
GhbPrefetcher::correlateAndIssue(const std::int64_t *deltas,
                                 std::size_t n, LineAddr trigger,
                                 PrefetchSink &sink) const
{
    // Correlate on the last two deltas (history length 3 addresses).
    if (n < 2)
        return;
    const std::int64_t d1 = deltas[n - 2];
    const std::int64_t d2 = deltas[n - 1];

    for (std::size_t k = n - 2; k >= 2; --k) {
        if (deltas[k - 2] == d1 && deltas[k - 1] == d2) {
            // Replay the deltas that followed the earlier occurrence.
            LineAddr target = trigger;
            for (unsigned d = 0; d < params_.degree && k + d < n;
                 ++d) {
                target = static_cast<LineAddr>(
                    static_cast<std::int64_t>(target) + deltas[k + d]);
                if (!sink.isCached(target))
                    sink.issuePrefetch(target, PfSource::Ghb);
            }
            return;
        }
    }
}

std::uint64_t
GhbPrefetcher::storageBits() const
{
    // Table III: G/DC is (3 history strides + 3 prefetch strides) per
    // entry; PC/DC additionally stores a PC per entry.
    std::uint64_t bits_per_entry = 2ull * params_.historyLength *
                                   params_.strideBits;
    if (mode_ == Mode::PcDC)
        bits_per_entry += params_.pcBits;
    return bits_per_entry * params_.bufferEntries;
}

ParamSchema
ghbParamSchema()
{
    return ParamSchema()
        .field("buffer-entries", &GhbParams::bufferEntries,
               "circular global history buffer entries")
        .field("history-length", &GhbParams::historyLength,
               "addresses per delta-correlation window")
        .field("degree", &GhbParams::degree,
               "deltas prefetched on a correlation match")
        .field("max-chain-walk", &GhbParams::maxChainWalk,
               "buffer entries examined per lookup")
        .field("train-on-hits", &GhbParams::trainOnHits,
               "train on L1 hits as well as misses")
        .field("pc-bits", &GhbParams::pcBits,
               "PC tag width (storage accounting)")
        .field("stride-bits", &GhbParams::strideBits,
               "delta field width (storage accounting)");
}

CBWS_REGISTER_PREFETCHER(ghb_pc_dc, "GHB-PC/DC",
                         "global history buffer, per-PC delta "
                         "correlation",
                         ghbParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<GhbPrefetcher>(
                                 GhbPrefetcher::Mode::PcDC,
                                 p.getOr<GhbParams>());
                         })

CBWS_REGISTER_PREFETCHER(ghb_g_dc, "GHB-G/DC",
                         "global history buffer, global delta "
                         "correlation",
                         ghbParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<GhbPrefetcher>(
                                 GhbPrefetcher::Mode::GlobalDC,
                                 p.getOr<GhbParams>());
                         })

} // namespace cbws
