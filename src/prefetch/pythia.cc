#include "prefetch/pythia.hh"

#include <algorithm>

#include "base/metrics.hh"
#include "prefetch/registry.hh"

namespace cbws
{

namespace
{

/** Lines per 4 KB page (the action space is in-page). */
constexpr unsigned PageLines = 4096 / LineBytes;

/** 64-bit mix (splitmix64 finalizer) for feature hashing. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

PythiaPrefetcher::PythiaPrefetcher(const PythiaParams &params)
    : params_(params),
      q_(params.qEntries ? params.qEntries : 1),
      lcgState_(params.seed)
{
    for (auto &row : q_)
        row.fill(0.0);
}

std::uint32_t
PythiaPrefetcher::lcg()
{
    // Numerical Recipes LCG; deterministic per instance.
    lcgState_ = lcgState_ * 6364136223846793005ull +
                1442695040888963407ull;
    return static_cast<std::uint32_t>(lcgState_ >> 33);
}

std::uint32_t
PythiaPrefetcher::stateOf(const PrefetchContext &ctx) const
{
    std::uint64_t h = 0x5368;
    if (params_.usePc)
        h = mix(h ^ ctx.pc);
    if (params_.useDeltaHistory)
        h = mix(h ^ deltaHistoryReg_);
    if (params_.usePageOffset)
        h = mix(h ^ (ctx.line % PageLines));
    return static_cast<std::uint32_t>(h % q_.size());
}

std::uint8_t
PythiaPrefetcher::selectAction(std::uint32_t state)
{
    if (params_.epsilonPct > 0 && lcg() % 100 < params_.epsilonPct) {
        ++explorations_;
        return static_cast<std::uint8_t>(lcg() % Actions.size());
    }
    const auto &row = q_[state];
    std::uint8_t best = 0;
    for (std::uint8_t a = 1; a < Actions.size(); ++a)
        if (row[a] > row[best]) // ties break to the lowest index
            best = a;
    return best;
}

void
PythiaPrefetcher::reward(const Pending &pending, int value,
                         std::uint32_t next_state)
{
    // Q-learning update: Q(s,a) += alpha (r + gamma max_a' Q(s',a')
    // - Q(s,a)), all rates in percent to keep the knobs integral.
    const auto &next_row = q_[next_state];
    const double best_next =
        *std::max_element(next_row.begin(), next_row.end());
    double &cell = q_[pending.state][pending.action];
    const double alpha = params_.alphaPct / 100.0;
    const double gamma = params_.gammaPct / 100.0;
    cell += alpha * (value + gamma * best_next - cell);
    ++qUpdates_;
}

void
PythiaPrefetcher::observeAccess(const PrefetchContext &ctx,
                                PrefetchSink &sink)
{
    if (ctx.l1Hit && !params_.trainOnHits)
        return;
    const std::uint32_t state = stateOf(ctx);

    // Settle queued prefetches this demand access proves accurate.
    for (auto it = evalQueue_.begin(); it != evalQueue_.end();) {
        if (it->line == ctx.line) {
            reward(*it, params_.rewardAccurate, state);
            ++accurate_;
            it = evalQueue_.erase(it);
        } else {
            ++it;
        }
    }

    const std::uint8_t action = selectAction(state);
    const int delta = Actions[action];
    bool issued_one = false;
    if (delta != 0) {
        const LineAddr target = static_cast<LineAddr>(
            static_cast<std::int64_t>(ctx.line) + delta);
        // Stay within the page, like the hardware scheme: an
        // out-of-page pick scores as "no prefetch".
        if (target / PageLines == ctx.line / PageLines) {
            if (!sink.isCached(target)) {
                sink.issuePrefetch(target, PfSource::Rl);
                ++issued_;
            }
            // Queue even already-cached picks: the demand stream
            // still tells us whether the *choice* was useful.
            while (evalQueue_.size() >= params_.eqEntries) {
                reward(evalQueue_.front(), params_.rewardInaccurate,
                       state);
                ++agedOut_;
                evalQueue_.pop_front();
            }
            evalQueue_.push_back({target, state, action});
            issued_one = true;
        }
    }
    if (!issued_one)
        reward({ctx.line, state, action}, params_.rewardNoPrefetch,
               state);

    // Fold this access's delta into the history feature.
    if (primed_) {
        const std::int64_t d =
            static_cast<std::int64_t>(ctx.line) -
            static_cast<std::int64_t>(lastLine_);
        const unsigned bits = 7 * params_.deltaHistory;
        deltaHistoryReg_ =
            ((deltaHistoryReg_ << 7) |
             (static_cast<std::uint64_t>(d) & 0x7f)) &
            ((bits >= 64 ? ~0ull : (1ull << bits) - 1));
    }
    lastLine_ = ctx.line;
    primed_ = true;
}

std::uint64_t
PythiaPrefetcher::storageBits() const
{
    // Q-table (quantised weights in hardware), evaluation queue
    // (line tag + state + action), delta-history register.
    const std::uint64_t qBits =
        static_cast<std::uint64_t>(q_.size()) * Actions.size() *
        params_.qBits;
    const std::uint64_t eqBits =
        static_cast<std::uint64_t>(params_.eqEntries) *
        (36 + floorLog2(q_.size()) + 1 + 4);
    return qBits + eqBits + 7ull * params_.deltaHistory;
}

void
PythiaPrefetcher::exportMetrics(MetricsRegistry &reg,
                                const std::string &prefix) const
{
    const std::string p = prefix + ".pythia.";
    reg.addScalar(p + "qUpdates", qUpdates_,
                  "Q-learning updates applied");
    reg.addScalar(p + "explorations", explorations_,
                  "epsilon-greedy random actions taken");
    reg.addScalar(p + "issued", issued_,
                  "prefetches handed to the sink");
    reg.addScalar(p + "accurate", accurate_,
                  "queued prefetches proven accurate by a demand");
    reg.addScalar(p + "agedOut", agedOut_,
                  "queued prefetches aged out untouched");
    reg.addScalar(p + "evalQueueDepth", evalQueue_.size(),
                  "evaluation-queue entries at end of run");
}

ParamSchema
pythiaParamSchema()
{
    return ParamSchema()
        .field("q-entries", &PythiaParams::qEntries,
               "hashed Q-table rows")
        .field("eq-entries", &PythiaParams::eqEntries,
               "evaluation-queue depth")
        .field("delta-history", &PythiaParams::deltaHistory,
               "deltas folded into the state feature")
        .field("use-pc", &PythiaParams::usePc,
               "feature: program counter")
        .field("use-delta-history", &PythiaParams::useDeltaHistory,
               "feature: recent delta history")
        .field("use-page-offset", &PythiaParams::usePageOffset,
               "feature: line offset within the page")
        .field("alpha-pct", &PythiaParams::alphaPct,
               "learning rate x100")
        .field("gamma-pct", &PythiaParams::gammaPct,
               "discount factor x100")
        .field("epsilon-pct", &PythiaParams::epsilonPct,
               "exploration rate x100")
        .field("reward-accurate", &PythiaParams::rewardAccurate,
               "reward: queued prefetch hit by a demand")
        .field("reward-inaccurate", &PythiaParams::rewardInaccurate,
               "reward: queued prefetch aged out untouched")
        .field("reward-no-prefetch", &PythiaParams::rewardNoPrefetch,
               "reward: no (usable) prefetch issued")
        .field("train-on-hits", &PythiaParams::trainOnHits,
               "observe L1 hits as well as misses")
        .field("seed", &PythiaParams::seed,
               "epsilon-greedy LCG seed")
        .field("q-bits", &PythiaParams::qBits,
               "per-weight width (storage accounting)");
}

CBWS_REGISTER_PREFETCHER(pythia, "Pythia",
                         "online-RL prefetcher: pluggable features, "
                         "discrete actions, shaped rewards",
                         pythiaParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<PythiaPrefetcher>(
                                 p.getOr<PythiaParams>());
                         })

} // namespace cbws
