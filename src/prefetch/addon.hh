/**
 * @file
 * Generic CBWS add-on: the paper designs CBWS "as an add-on component"
 * that happens to be integrated with SMS in the evaluation. This
 * wrapper realises the general form — CBWS handles annotated tight
 * loops, and *any* base prefetcher acts as the fallback under exactly
 * the integrated policy ("CBWS issues a prefetch only if the current
 * access pattern hits in the history table; otherwise the base
 * prefetcher issues the prefetch").
 *
 * CbwsSmsPrefetcher remains the paper-faithful, fixed SMS pairing;
 * this class powers the extension bench (CBWS+AMPM etc.).
 */

#ifndef CBWS_PREFETCH_ADDON_HH
#define CBWS_PREFETCH_ADDON_HH

#include <memory>

#include "base/metrics.hh"
#include "core/cbws_prefetcher.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/**
 * CBWS bolted onto an arbitrary base prefetcher.
 */
class CbwsAddOnPrefetcher : public Prefetcher
{
  public:
    CbwsAddOnPrefetcher(std::unique_ptr<Prefetcher> base,
                        const CbwsParams &cbws_params = CbwsParams());

    void observeAccess(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;
    void observeCommit(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;
    void blockBegin(BlockId id, PrefetchSink &sink) override;
    void blockEnd(BlockId id, PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override;

    void
    exportMetrics(MetricsRegistry &reg,
                  const std::string &prefix) const override
    {
        cbws_.exportMetrics(reg, prefix);
        base_->exportMetrics(reg, prefix);
        reg.addScalar(prefix + ".suppressedBaseIssues", suppressed_,
                      "base-prefetcher issues muted by a confident "
                      "CBWS");
    }

    CbwsPrefetcher &cbws() { return cbws_; }
    Prefetcher &base() { return *base_; }

    /** Base-prefetcher issues suppressed by a confident CBWS. */
    std::uint64_t suppressedBaseIssues() const { return suppressed_; }

  private:
    std::unique_ptr<Prefetcher> base_;
    CbwsPrefetcher cbws_;
    std::uint64_t suppressed_ = 0;
};

} // namespace cbws

#endif // CBWS_PREFETCH_ADDON_HH
