#include "prefetch/addon.hh"

#include "base/logging.hh"
#include "prefetch/ampm.hh"
#include "prefetch/registry.hh"

namespace cbws
{

namespace
{

/** Sink wrapper dropping issues while muted (shared with the SMS
 *  composite's semantics). */
class MutedSink : public PrefetchSink
{
  public:
    MutedSink(PrefetchSink &inner, bool muted,
              std::uint64_t &suppressed)
        : inner_(inner), muted_(muted), suppressed_(suppressed)
    {
    }

    void
    issuePrefetch(LineAddr line, PfSource src) override
    {
        if (muted_) {
            ++suppressed_;
            return;
        }
        inner_.issuePrefetch(line, src);
    }

    bool
    isCached(LineAddr line) const override
    {
        return inner_.isCached(line);
    }

  private:
    PrefetchSink &inner_;
    bool muted_;
    std::uint64_t &suppressed_;
};

} // anonymous namespace

CbwsAddOnPrefetcher::CbwsAddOnPrefetcher(
    std::unique_ptr<Prefetcher> base, const CbwsParams &cbws_params)
    : base_(std::move(base)), cbws_(cbws_params)
{
    panic_if(!base_, "CBWS add-on needs a base prefetcher");
}

void
CbwsAddOnPrefetcher::observeAccess(const PrefetchContext &ctx,
                                   PrefetchSink &sink)
{
    const bool muted = cbws_.inBlock() && cbws_.lastBlockPredicted();
    MutedSink gate(sink, muted, suppressed_);
    base_->observeAccess(ctx, gate);
}

void
CbwsAddOnPrefetcher::observeCommit(const PrefetchContext &ctx,
                                   PrefetchSink &sink)
{
    cbws_.observeCommit(ctx, sink);
    // The base also receives commit-time notifications in case it is
    // itself commit-trained; its issues stay gated.
    const bool muted = cbws_.inBlock() && cbws_.lastBlockPredicted();
    MutedSink gate(sink, muted, suppressed_);
    base_->observeCommit(ctx, gate);
}

void
CbwsAddOnPrefetcher::blockBegin(BlockId id, PrefetchSink &sink)
{
    cbws_.blockBegin(id, sink);
    base_->blockBegin(id, sink);
}

void
CbwsAddOnPrefetcher::blockEnd(BlockId id, PrefetchSink &sink)
{
    cbws_.blockEnd(id, sink);
    base_->blockEnd(id, sink);
}

std::uint64_t
CbwsAddOnPrefetcher::storageBits() const
{
    return cbws_.storageBits() + base_->storageBits();
}

std::string
CbwsAddOnPrefetcher::name() const
{
    return "CBWS+" + base_->name();
}

CBWS_REGISTER_PREFETCHER(cbws_ampm, "CBWS+AMPM",
                         "CBWS gating an AMPM base prefetcher",
                         ParamSchema()
                             .scoped("cbws", cbwsParamSchema())
                             .scoped("ampm", ampmParamSchema()),
                         [](const ParamSet &p) {
                             return std::make_unique<
                                 CbwsAddOnPrefetcher>(
                                 std::make_unique<AmpmPrefetcher>(
                                     p.getOr<AmpmParams>()),
                                 p.getOr<CbwsParams>());
                         })

} // namespace cbws
