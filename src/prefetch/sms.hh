/**
 * @file
 * Spatial Memory Streaming prefetcher (Somogyi et al., ISCA'06), the
 * paper's best-performing baseline and the fallback component of the
 * integrated CBWS+SMS scheme.
 *
 * SMS divides memory into fixed spatial regions (2 KB in Table II) and
 * learns, per trigger (PC + region offset), the bit pattern of lines
 * touched during one *generation* of accesses to the region. When a
 * region is next triggered by the same PC/offset, the recorded pattern
 * is streamed into the L2.
 *
 * Structures per Table II: 32-entry accumulation (active generation)
 * table, 32-entry filter table, 512-entry pattern history table.
 *
 * Generation termination: the original design ends a generation when a
 * line of the region is evicted or invalidated. This model ends a
 * generation on capacity eviction from the accumulation table (LRU)
 * and at simulation end, which tracks the original closely at these
 * table sizes and keeps the prefetcher decoupled from cache internals
 * (see DESIGN.md).
 */

#ifndef CBWS_PREFETCH_SMS_HH
#define CBWS_PREFETCH_SMS_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** SMS configuration (Table II / III defaults). */
struct SmsParams
{
    std::uint64_t regionBytes = 2048;
    unsigned agtEntries = 32;
    unsigned filterEntries = 32;
    unsigned phtEntries = 512;
    unsigned phtAssoc = 4;
    bool trainOnHits = true; ///< SMS observes all L1 accesses
    unsigned pcBits = 48;    ///< storage accounting (Table III)
    unsigned offsetBits = 5;
    unsigned tagBits = 36;
    /** Pattern width used in Table III's budget. The paper accounts
     *  a 16-bit region pattern (2-line granularity) even though the
     *  functional pattern covers all 32 lines; we follow its
     *  arithmetic so the storage comparison reproduces exactly. */
    unsigned storagePatternBits = 16;
};

/** `--pf-opt` keys for SmsParams (also mounted by CBWS+SMS). */
ParamSchema smsParamSchema();

/**
 * The SMS prefetcher.
 */
class SmsPrefetcher : public Prefetcher
{
  public:
    explicit SmsPrefetcher(const SmsParams &params = SmsParams());

    void observeAccess(const PrefetchContext &ctx,
                 PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "SMS"; }

    void exportMetrics(MetricsRegistry &reg,
                       const std::string &prefix) const override;

    /** Lines per region (pattern width). */
    unsigned linesPerRegion() const { return linesPerRegion_; }

  private:
    struct Generation
    {
        Addr triggerPc = 0;
        unsigned triggerOffset = 0;
        std::uint64_t pattern = 0;
        std::list<Addr>::iterator lruIt;
    };

    Addr regionOf(Addr addr) const { return addr / params_.regionBytes; }
    unsigned offsetOf(Addr addr) const
    {
        return static_cast<unsigned>((addr % params_.regionBytes) >>
                                     LineShift);
    }
    std::uint64_t phtKey(Addr pc, unsigned offset) const
    {
        return (pc << params_.offsetBits) | offset;
    }

    /** Move a finished generation's pattern into the PHT. */
    void endGeneration(const Generation &gen);

    /** PHT lookup; returns 0 when absent. */
    std::uint64_t phtLookup(std::uint64_t key);

    void phtInsert(std::uint64_t key, std::uint64_t pattern);

    SmsParams params_;
    unsigned linesPerRegion_;

    /** Active generation table: region -> accumulating pattern. */
    std::unordered_map<Addr, Generation> agt_;
    std::list<Addr> agtLru_; ///< front = most recent region

    /** Filter table: regions touched once (region -> first access). */
    struct FilterEntry
    {
        Addr triggerPc = 0;
        unsigned triggerOffset = 0;
        std::list<Addr>::iterator lruIt;
    };
    std::unordered_map<Addr, FilterEntry> filter_;
    std::list<Addr> filterLru_;

    /** Pattern history table, set-associative with LRU. */
    struct PhtEntry
    {
        std::uint64_t key = 0;
        std::uint64_t pattern = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };
    std::vector<PhtEntry> pht_;
    std::uint64_t useTick_ = 0;
};

} // namespace cbws

#endif // CBWS_PREFETCH_SMS_HH
