/**
 * @file
 * Access Map Pattern Matching prefetcher (Ishii, Inaba & Hiraki,
 * JILP 2011) — discussed in the paper's related work (Section III-A)
 * as a zone-based scheme with no notion of code blocks.
 *
 * Memory is divided into fixed zones; each tracked zone carries a
 * per-line access bitmap. On every trained access the prefetcher
 * pattern-matches candidate strides k against the map: if lines
 * (l - k) and (l - 2k) were accessed, line (l + k) is predicted hot
 * and prefetched. As the paper notes, AMPM "first identifies patterns
 * inside an iteration and, only if such patterns are not found, may
 * identify patterns across iterations" — it is PC-blind, which is
 * exactly the contrast the CBWS add-on extension bench explores.
 */

#ifndef CBWS_PREFETCH_AMPM_HH
#define CBWS_PREFETCH_AMPM_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** AMPM configuration. */
struct AmpmParams
{
    std::uint64_t zoneBytes = 4096; ///< access-map granularity
    unsigned mapEntries = 64;       ///< tracked zones, LRU
    unsigned maxStride = 16;        ///< candidate strides: +-1..max
    unsigned degree = 2;            ///< prefetches per trained access
    bool trainOnHits = false;       ///< misses-only, like GHB
    unsigned tagBits = 36;          ///< for storage accounting
};

/** `--pf-opt` keys for AmpmParams (also mounted by CBWS+AMPM). */
ParamSchema ampmParamSchema();

/**
 * The AMPM prefetcher.
 */
class AmpmPrefetcher : public Prefetcher
{
  public:
    explicit AmpmPrefetcher(const AmpmParams &params = AmpmParams());

    void observeAccess(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "AMPM"; }

    unsigned linesPerZone() const { return linesPerZone_; }

  private:
    struct ZoneMap
    {
        std::vector<bool> accessed;
        std::list<Addr>::iterator lruIt;
    };

    AmpmParams params_;
    unsigned linesPerZone_;
    std::unordered_map<Addr, ZoneMap> maps_;
    std::list<Addr> lru_; ///< front = most recent zone
};

} // namespace cbws

#endif // CBWS_PREFETCH_AMPM_HH
