/**
 * @file
 * Pythia-style online reinforcement-learning prefetcher (after
 * "Pythia: A Customizable Hardware Prefetching Framework Using Online
 * Reinforcement Learning").
 *
 * Every trained access is folded into a *state* through a pluggable
 * feature vector — program counter, recent delta history, and page
 * offset, each individually switchable — and an agent picks one of a
 * discrete set of in-page prefetch deltas (including "don't
 * prefetch") by tabular Q-learning. Issued prefetches sit in an
 * evaluation queue until a demand access proves them accurate
 * (positive reward) or they age out untouched (negative reward), so
 * the reward seam directly shapes coverage against pollution; the
 * reward levels themselves are parameters.
 *
 * Everything is tabular and integer/LCG-driven, so runs are exactly
 * reproducible: no wall-clock, no global randomness.
 */

#ifndef CBWS_PREFETCH_PYTHIA_HH
#define CBWS_PREFETCH_PYTHIA_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** Pythia prefetcher configuration. */
struct PythiaParams
{
    unsigned qEntries = 4096; ///< hashed Q-table rows
    unsigned eqEntries = 64;  ///< evaluation-queue depth
    unsigned deltaHistory = 4; ///< deltas folded into the state
    bool usePc = true;         ///< feature: program counter
    bool useDeltaHistory = true; ///< feature: recent deltas
    bool usePageOffset = true; ///< feature: line offset in page
    unsigned alphaPct = 20;    ///< learning rate x100
    unsigned gammaPct = 55;    ///< discount factor x100
    unsigned epsilonPct = 2;   ///< exploration rate x100
    int rewardAccurate = 20;   ///< demand hit on a queued prefetch
    int rewardInaccurate = -8; ///< aged out of the queue untouched
    int rewardNoPrefetch = -2; ///< chose not to (or could not) issue
    bool trainOnHits = true;   ///< the agent sees the full stream
    std::uint64_t seed = 0x7954; ///< epsilon-greedy LCG seed
    unsigned qBits = 8;        ///< per-weight width (storage acct.)
};

/** `--pf-opt` keys for PythiaParams. */
ParamSchema pythiaParamSchema();

/**
 * Tabular Q-learning agent over a discrete in-page prefetch-delta
 * action space.
 */
class PythiaPrefetcher : public Prefetcher
{
  public:
    /** In-page line-delta actions; 0 means "don't prefetch". */
    static constexpr std::array<int, 12> Actions = {
        1, 2, 3, 4, 6, 8, 12, 16, -1, -2, -4, 0};

    explicit PythiaPrefetcher(
        const PythiaParams &params = PythiaParams());

    void observeAccess(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "Pythia"; }

    void exportMetrics(MetricsRegistry &reg,
                       const std::string &prefix) const override;

  private:
    /** One issued prefetch awaiting its accuracy verdict. */
    struct Pending
    {
        LineAddr line = 0;
        std::uint32_t state = 0;
        std::uint8_t action = 0;
    };

    std::uint32_t stateOf(const PrefetchContext &ctx) const;
    std::uint8_t selectAction(std::uint32_t state);
    void reward(const Pending &pending, int value,
                std::uint32_t next_state);
    std::uint32_t lcg();

    PythiaParams params_;
    std::vector<std::array<double, Actions.size()>> q_;
    std::deque<Pending> evalQueue_;
    std::uint64_t deltaHistoryReg_ = 0; ///< 7 bits per recent delta
    LineAddr lastLine_ = 0;
    bool primed_ = false;
    std::uint64_t lcgState_;

    std::uint64_t qUpdates_ = 0;
    std::uint64_t explorations_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t accurate_ = 0;
    std::uint64_t agedOut_ = 0;
};

} // namespace cbws

#endif // CBWS_PREFETCH_PYTHIA_HH
