#include "prefetch/pangloss.hh"

#include "base/metrics.hh"
#include "prefetch/registry.hh"

namespace cbws
{

PanglossPrefetcher::PanglossPrefetcher(const PanglossParams &params)
    : params_(params)
{
    transitions_.resize(2 * linesPerPage() - 1);
}

unsigned
PanglossPrefetcher::linesPerPage() const
{
    const std::uint64_t lines = params_.pageBytes / LineBytes;
    return lines ? static_cast<unsigned>(lines) : 1u;
}

std::size_t
PanglossPrefetcher::setIndex(std::int32_t delta) const
{
    // Deltas span [-(L-1), L-1]; shift into [0, 2L-2]. Zero never
    // occurs (same-line accesses record no transition) but maps to a
    // valid slot regardless.
    return static_cast<std::size_t>(
        delta + static_cast<std::int32_t>(linesPerPage()) - 1);
}

PanglossPrefetcher::PageEntry &
PanglossPrefetcher::lookupPage(std::uint64_t page)
{
    auto it = pages_.find(page);
    if (it != pages_.end()) {
        pageLru_.splice(pageLru_.begin(), pageLru_, it->second.lruIt);
        return it->second;
    }
    if (pages_.size() >= params_.pageEntries) {
        pages_.erase(pageLru_.back());
        pageLru_.pop_back();
    }
    pageLru_.push_front(page);
    PageEntry &e = pages_[page];
    e.lruIt = pageLru_.begin();
    return e;
}

void
PanglossPrefetcher::recordTransition(std::int32_t from,
                                     std::int32_t to)
{
    std::vector<Candidate> &set = transitions_[setIndex(from)];
    ++transitionsRecorded_;
    for (Candidate &cand : set) {
        if (cand.delta != to)
            continue;
        if (++cand.count > params_.maxCounter) {
            // Compression: halve the whole set, dropping the
            // candidates that round to zero.
            ++setsCompressed_;
            std::vector<Candidate> kept;
            kept.reserve(set.size());
            for (const Candidate &c : set)
                if (c.count / 2 > 0)
                    kept.push_back({c.delta, c.count / 2});
            set = std::move(kept);
        }
        return;
    }
    if (set.size() < params_.assoc) {
        set.push_back({to, 1});
        return;
    }
    // Evict the least-frequent candidate (first such entry, so the
    // choice is deterministic).
    std::size_t victim = 0;
    for (std::size_t i = 1; i < set.size(); ++i)
        if (set[i].count < set[victim].count)
            victim = i;
    set[victim] = {to, 1};
}

const PanglossPrefetcher::Candidate *
PanglossPrefetcher::bestNext(std::int32_t from) const
{
    const std::vector<Candidate> &set = transitions_[setIndex(from)];
    if (set.empty())
        return nullptr;
    const Candidate *best = nullptr;
    unsigned total = 0;
    for (const Candidate &cand : set) {
        total += cand.count;
        // Ties break toward the smaller delta for determinism.
        if (!best || cand.count > best->count ||
            (cand.count == best->count && cand.delta < best->delta))
            best = &cand;
    }
    if (best->count * 100 < total * params_.confidencePct)
        return nullptr;
    return best;
}

void
PanglossPrefetcher::observeAccess(const PrefetchContext &ctx,
                                  PrefetchSink &sink)
{
    if (ctx.l1Hit && !params_.trainOnHits)
        return;
    const unsigned lines = linesPerPage();
    const std::uint64_t page = ctx.line / lines;
    const unsigned offset = static_cast<unsigned>(ctx.line % lines);

    PageEntry &entry = lookupPage(page);
    const std::int32_t delta =
        static_cast<std::int32_t>(offset) -
        static_cast<std::int32_t>(entry.lastOffset);
    const bool hadDelta = entry.haveDelta;
    const std::int32_t prevDelta = entry.lastDelta;
    entry.lastOffset = offset;
    if (delta == 0)
        return; // same line: no transition, chain state unchanged
    entry.lastDelta = delta;
    entry.haveDelta = true;
    if (hadDelta)
        recordTransition(prevDelta, delta);

    // Chain-walk the Markov table from the current delta, staying
    // within the page.
    ++chainWalks_;
    std::int32_t cur = delta;
    std::int32_t walkOffset = static_cast<std::int32_t>(offset);
    const LineAddr pageBase = ctx.line - offset;
    for (unsigned d = 0; d < params_.degree; ++d) {
        const Candidate *next = bestNext(cur);
        if (!next)
            break;
        walkOffset += next->delta;
        if (walkOffset < 0 ||
            walkOffset >= static_cast<std::int32_t>(lines))
            break;
        const LineAddr target =
            pageBase + static_cast<unsigned>(walkOffset);
        if (!sink.isCached(target)) {
            sink.issuePrefetch(target, PfSource::Markov);
            ++issued_;
        }
        cur = next->delta;
    }
}

std::uint64_t
PanglossPrefetcher::storageBits() const
{
    const unsigned lines = linesPerPage();
    const unsigned offsetBits = floorLog2(lines) + 1;
    const unsigned deltaBits = offsetBits + 1; ///< signed in-page delta
    // Page cache: tag + last offset + last delta + valid. Transition
    // table: per set, assoc x (delta + counter).
    const std::uint64_t pageCacheBits =
        static_cast<std::uint64_t>(params_.pageEntries) *
        (params_.tagBits + offsetBits + deltaBits + 1);
    const std::uint64_t tableBits =
        static_cast<std::uint64_t>(2 * lines - 1) * params_.assoc *
        (deltaBits + params_.counterBits);
    return pageCacheBits + tableBits;
}

void
PanglossPrefetcher::exportMetrics(MetricsRegistry &reg,
                                  const std::string &prefix) const
{
    const std::string p = prefix + ".pangloss.";
    reg.addScalar(p + "pageOccupancy", pages_.size(),
                  "page-cache entries in use");
    reg.addScalar(p + "transitionsRecorded", transitionsRecorded_,
                  "delta transitions trained into the Markov table");
    reg.addScalar(p + "setsCompressed", setsCompressed_,
                  "transition sets halved on counter saturation");
    reg.addScalar(p + "chainWalks", chainWalks_,
                  "prediction walks started");
    reg.addScalar(p + "issued", issued_,
                  "prefetches handed to the sink");
}

ParamSchema
panglossParamSchema()
{
    return ParamSchema()
        .field("page-bytes", &PanglossParams::pageBytes,
               "delta-tracking page size in bytes")
        .field("page-entries", &PanglossParams::pageEntries,
               "tracked pages (LRU)")
        .field("assoc", &PanglossParams::assoc,
               "candidates per transition set")
        .field("max-counter", &PanglossParams::maxCounter,
               "saturating count before the set is halved")
        .field("degree", &PanglossParams::degree,
               "deepest chain walk per trigger")
        .field("confidence-pct", &PanglossParams::confidencePct,
               "min share (%) of a set's total count to follow")
        .field("train-on-hits", &PanglossParams::trainOnHits,
               "train on L1 hits as well as misses")
        .field("counter-bits", &PanglossParams::counterBits,
               "counter width (storage accounting)")
        .field("tag-bits", &PanglossParams::tagBits,
               "page tag width (storage accounting)");
}

CBWS_REGISTER_PREFETCHER(pangloss, "Pangloss",
                         "per-page Markov chain over line deltas, "
                         "compressed transition table",
                         panglossParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<
                                 PanglossPrefetcher>(
                                 p.getOr<PanglossParams>());
                         })

} // namespace cbws
