#include "prefetch/ampm.hh"

#include "base/logging.hh"
#include "prefetch/registry.hh"

namespace cbws
{

AmpmPrefetcher::AmpmPrefetcher(const AmpmParams &params)
    : params_(params)
{
    fatal_if(params_.zoneBytes < LineBytes ||
             !isPowerOf2(params_.zoneBytes),
             "AMPM zone size must be a power-of-two >= one line");
    linesPerZone_ =
        static_cast<unsigned>(params_.zoneBytes / LineBytes);
}

void
AmpmPrefetcher::observeAccess(const PrefetchContext &ctx,
                              PrefetchSink &sink)
{
    if (!ctx.l2Miss && !params_.trainOnHits)
        return;

    const Addr zone = ctx.addr / params_.zoneBytes;
    const int offset = static_cast<int>(
        (ctx.addr % params_.zoneBytes) >> LineShift);

    // Find or allocate the zone's access map.
    auto it = maps_.find(zone);
    if (it == maps_.end()) {
        if (maps_.size() >= params_.mapEntries) {
            maps_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(zone);
        ZoneMap map;
        map.accessed.assign(linesPerZone_, false);
        map.lruIt = lru_.begin();
        it = maps_.emplace(zone, std::move(map)).first;
    } else {
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
    }
    ZoneMap &map = it->second;
    map.accessed[static_cast<std::size_t>(offset)] = true;

    // Pattern match: stride k is hot when (l-k) and (l-2k) were both
    // accessed; prefetch (l+k). Small |k| first (spatial locality).
    const Addr zone_base = zone * params_.zoneBytes;
    unsigned issued = 0;
    for (unsigned k = 1;
         k <= params_.maxStride && issued < params_.degree; ++k) {
        for (int sign : {+1, -1}) {
            const int stride = sign * static_cast<int>(k);
            const int b1 = offset - stride;
            const int b2 = offset - 2 * stride;
            const int target = offset + stride;
            if (b1 < 0 || b2 < 0 || target < 0 ||
                b1 >= static_cast<int>(linesPerZone_) ||
                b2 >= static_cast<int>(linesPerZone_) ||
                target >= static_cast<int>(linesPerZone_)) {
                continue;
            }
            if (!map.accessed[static_cast<std::size_t>(b1)] ||
                !map.accessed[static_cast<std::size_t>(b2)] ||
                map.accessed[static_cast<std::size_t>(target)]) {
                continue;
            }
            const LineAddr line = lineOf(
                zone_base +
                static_cast<Addr>(target) * LineBytes);
            if (!sink.isCached(line)) {
                sink.issuePrefetch(line, PfSource::Ampm);
                if (++issued >= params_.degree)
                    break;
            }
        }
    }
}

std::uint64_t
AmpmPrefetcher::storageBits() const
{
    // Per entry: zone tag + 1 bit per line.
    return static_cast<std::uint64_t>(params_.mapEntries) *
           (params_.tagBits + linesPerZone_);
}

ParamSchema
ampmParamSchema()
{
    return ParamSchema()
        .field("zone-bytes", &AmpmParams::zoneBytes,
               "access-map zone size in bytes")
        .field("map-entries", &AmpmParams::mapEntries,
               "tracked zones (LRU)")
        .field("max-stride", &AmpmParams::maxStride,
               "largest candidate stride pattern-matched")
        .field("degree", &AmpmParams::degree,
               "prefetches per trained access")
        .field("train-on-hits", &AmpmParams::trainOnHits,
               "train on L1 hits as well as misses")
        .field("tag-bits", &AmpmParams::tagBits,
               "zone tag width (storage accounting)");
}

CBWS_REGISTER_PREFETCHER(ampm, "AMPM",
                         "access map pattern matching prefetcher",
                         ampmParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<AmpmPrefetcher>(
                                 p.getOr<AmpmParams>());
                         })

} // namespace cbws
