#include "prefetch/stride.hh"

#include "prefetch/registry.hh"

namespace cbws
{

StridePrefetcher::StridePrefetcher(const StrideParams &params)
    : params_(params)
{
}

void
StridePrefetcher::observeAccess(const PrefetchContext &ctx,
                          PrefetchSink &sink)
{
    // Classic miss-triggered configuration: only true cache misses
    // train and trigger (the conservatism the paper's Section II
    // contrasts CBWS against).
    if (!ctx.l2Miss && !params_.trainOnHits)
        return;

    auto it = table_.find(ctx.pc);
    if (it == table_.end()) {
        if (table_.size() >= params_.tableEntries) {
            // Evict the LRU stream.
            table_.erase(lru_.back());
            lru_.pop_back();
        }
        lru_.push_front(ctx.pc);
        Entry e;
        e.lastLine = ctx.line;
        e.lruIt = lru_.begin();
        table_.emplace(ctx.pc, e);
        return;
    }

    Entry &e = it->second;
    lru_.splice(lru_.begin(), lru_, e.lruIt);

    const std::int64_t delta =
        static_cast<std::int64_t>(ctx.line) -
        static_cast<std::int64_t>(e.lastLine);
    if (delta == e.stride && delta != 0) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = delta;
        }
    }
    e.lastLine = ctx.line;

    if (e.confidence >= params_.confidenceThreshold && e.stride != 0) {
        LineAddr target = ctx.line;
        for (unsigned d = 0; d < params_.degree; ++d) {
            target = static_cast<LineAddr>(
                static_cast<std::int64_t>(target) + e.stride);
            if (!sink.isCached(target))
                sink.issuePrefetch(target, PfSource::Stride);
        }
    }
}

std::uint64_t
StridePrefetcher::storageBits() const
{
    // Table III: (PC + 2 x stride) x entries.
    return static_cast<std::uint64_t>(params_.pcBits +
                                      2 * params_.strideBits) *
           params_.tableEntries;
}

ParamSchema
strideParamSchema()
{
    return ParamSchema()
        .field("table-entries", &StrideParams::tableEntries,
               "reference prediction table entries (LRU)")
        .field("degree", &StrideParams::degree,
               "lines prefetched per trigger")
        .field("confidence-threshold",
               &StrideParams::confidenceThreshold,
               "stride repeats required before issuing")
        .field("train-on-hits", &StrideParams::trainOnHits,
               "train on L1 hits as well as misses")
        .field("pc-bits", &StrideParams::pcBits,
               "PC tag width (storage accounting)")
        .field("stride-bits", &StrideParams::strideBits,
               "stride field width (storage accounting)");
}

CBWS_REGISTER_PREFETCHER(stride, "Stride",
                         "reference-prediction-table stride prefetcher",
                         strideParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<StridePrefetcher>(
                                 p.getOr<StrideParams>());
                         })

} // namespace cbws
