#include "prefetch/composite.hh"

#include "prefetch/registry.hh"

namespace cbws
{

CbwsSmsPrefetcher::CbwsSmsPrefetcher(const CbwsParams &cbws_params,
                                     const SmsParams &sms_params)
    : cbws_(cbws_params), sms_(sms_params)
{
}

void
CbwsSmsPrefetcher::observeAccess(const PrefetchContext &ctx,
                                 PrefetchSink &sink)
{
    // SMS always trains (cache-access time, like the standalone
    // scheme), but only issues when CBWS is not confidently covering
    // the current block.
    const bool muted = cbws_.inBlock() && cbws_.lastBlockPredicted();
    GatedSink gate(sink, muted, suppressed_);
    sms_.observeAccess(ctx, gate);
}

void
CbwsSmsPrefetcher::observeCommit(const PrefetchContext &ctx,
                                 PrefetchSink &sink)
{
    cbws_.observeCommit(ctx, sink);
}

void
CbwsSmsPrefetcher::blockBegin(BlockId id, PrefetchSink &sink)
{
    cbws_.blockBegin(id, sink);
}

void
CbwsSmsPrefetcher::blockEnd(BlockId id, PrefetchSink &sink)
{
    cbws_.blockEnd(id, sink);
}

std::uint64_t
CbwsSmsPrefetcher::storageBits() const
{
    return cbws_.storageBits() + sms_.storageBits();
}

// Composite schemes expose per-component tuning through scoped keys:
// `--pf-opt cbws.table-entries=32 --pf-opt sms.region-bytes=4096`.
CBWS_REGISTER_PREFETCHER(cbws_sms, "CBWS+SMS",
                         "CBWS with SMS fallback (Section VI "
                         "integration)",
                         ParamSchema()
                             .scoped("cbws", cbwsParamSchema())
                             .scoped("sms", smsParamSchema()),
                         [](const ParamSet &p) {
                             return std::make_unique<CbwsSmsPrefetcher>(
                                 p.getOr<CbwsParams>(),
                                 p.getOr<SmsParams>());
                         })

} // namespace cbws
