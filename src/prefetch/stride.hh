/**
 * @file
 * Classic PC-indexed stride prefetcher (reference-prediction-table
 * style, Fu/Patel/Janssens and Jouppi) with the paper's unrealistically
 * large 256-stream fully-associative table (Table II).
 */

#ifndef CBWS_PREFETCH_STRIDE_HH
#define CBWS_PREFETCH_STRIDE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** Stride prefetcher configuration. */
struct StrideParams
{
    unsigned tableEntries = 256; ///< fully associative, LRU
    unsigned degree = 2;         ///< lines prefetched per trigger
    unsigned confidenceThreshold = 2;
    bool trainOnHits = false;    ///< classic config: misses only
    unsigned pcBits = 48;        ///< for storage accounting
    unsigned strideBits = 12;
};

/** `--pf-opt` keys for StrideParams (also mounted by composites). */
ParamSchema strideParamSchema();

/**
 * Reference prediction table stride prefetcher.
 */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideParams &params =
                              StrideParams());

    void observeAccess(const PrefetchContext &ctx,
                 PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "Stride"; }

  private:
    struct Entry
    {
        LineAddr lastLine = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
        std::list<Addr>::iterator lruIt;
    };

    StrideParams params_;
    std::unordered_map<Addr, Entry> table_;
    std::list<Addr> lru_; ///< front = most recent
};

} // namespace cbws

#endif // CBWS_PREFETCH_STRIDE_HH
