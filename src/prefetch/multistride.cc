#include "prefetch/multistride.hh"

#include "base/metrics.hh"
#include "prefetch/registry.hh"

namespace cbws
{

MultistridePrefetcher::MultistridePrefetcher(
    const MultistrideParams &params)
    : params_(params)
{
}

MultistridePrefetcher::Entry &
MultistridePrefetcher::lookup(Addr pc)
{
    auto it = table_.find(pc);
    if (it != table_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lruIt);
        return it->second;
    }
    if (table_.size() >= params_.tableEntries) {
        table_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(pc);
    Entry &e = table_[pc];
    e.deltas.reserve(params_.historyLength);
    e.lruIt = lru_.begin();
    return e;
}

unsigned
MultistridePrefetcher::detectPeriod(
    const std::vector<std::int64_t> &deltas) const
{
    const std::size_t n = deltas.size();
    for (unsigned p = 1; p <= params_.maxPeriod; ++p) {
        // Demand two full cycles so a lone coincidence cannot match.
        if (n < 2u * p)
            break;
        bool periodic = true;
        for (std::size_t i = p; i < n && periodic; ++i)
            periodic = deltas[i] == deltas[i - p];
        if (periodic)
            return p;
    }
    return 0;
}

void
MultistridePrefetcher::observeAccess(const PrefetchContext &ctx,
                                     PrefetchSink &sink)
{
    if (ctx.l1Hit && !params_.trainOnHits)
        return;
    ++trainedAccesses_;

    Entry &e = lookup(ctx.pc);
    if (!e.primed) {
        e.primed = true;
        e.lastLine = ctx.line;
        return;
    }
    const std::int64_t delta =
        static_cast<std::int64_t>(ctx.line) -
        static_cast<std::int64_t>(e.lastLine);
    e.lastLine = ctx.line;
    if (delta == 0)
        return; // same line again: no pattern information

    if (e.deltas.size() >= params_.historyLength)
        e.deltas.erase(e.deltas.begin());
    e.deltas.push_back(delta);

    const unsigned period = detectPeriod(e.deltas);
    if (period == 0) {
        e.period = 0;
        e.confidence = 0;
        return;
    }
    if (period == e.period) {
        if (e.confidence < params_.confidenceThreshold + 4)
            ++e.confidence;
    } else {
        e.period = period;
        e.confidence = 1;
    }
    ++periodsDetected_;
    if (e.confidence < params_.confidenceThreshold)
        return;

    // The cycle is the last `period` deltas; the next delta repeats
    // the one `period` positions back from the upcoming slot.
    const std::size_t n = e.deltas.size();
    LineAddr target = ctx.line;
    for (unsigned d = 0; d < params_.degree; ++d) {
        const std::int64_t next =
            e.deltas[n - period + (d % period)];
        target = static_cast<LineAddr>(
            static_cast<std::int64_t>(target) + next);
        if (!sink.isCached(target)) {
            sink.issuePrefetch(target, PfSource::Multistride);
            ++issued_;
        }
    }
}

std::uint64_t
MultistridePrefetcher::storageBits() const
{
    // Per entry: PC tag, last line (lower 36 bits), the delta
    // history, 2-bit period, 3-bit confidence.
    return static_cast<std::uint64_t>(params_.tableEntries) *
           (params_.pcBits + 36 +
            params_.historyLength * params_.strideBits + 2 + 3);
}

void
MultistridePrefetcher::exportMetrics(MetricsRegistry &reg,
                                     const std::string &prefix) const
{
    const std::string p = prefix + ".multistride.";
    reg.addScalar(p + "tableOccupancy", table_.size(),
                  "PC table entries in use");
    reg.addScalar(p + "trainedAccesses", trainedAccesses_,
                  "accesses used for training");
    reg.addScalar(p + "periodsDetected", periodsDetected_,
                  "accesses whose delta history matched a cycle");
    reg.addScalar(p + "issued", issued_,
                  "prefetches handed to the sink");
}

ParamSchema
multistrideParamSchema()
{
    return ParamSchema()
        .field("table-entries", &MultistrideParams::tableEntries,
               "PC-indexed table entries (LRU)")
        .field("history-length", &MultistrideParams::historyLength,
               "line deltas remembered per PC")
        .field("max-period", &MultistrideParams::maxPeriod,
               "longest repeating delta cycle detected")
        .field("degree", &MultistrideParams::degree,
               "lines prefetched per trigger")
        .field("confidence-threshold",
               &MultistrideParams::confidenceThreshold,
               "cycle repeats required before issuing")
        .field("train-on-hits", &MultistrideParams::trainOnHits,
               "train on L1 hits as well as misses")
        .field("pc-bits", &MultistrideParams::pcBits,
               "PC tag width (storage accounting)")
        .field("stride-bits", &MultistrideParams::strideBits,
               "delta field width (storage accounting)");
}

CBWS_REGISTER_PREFETCHER(multistride, "Multistride",
                         "IP-indexed multi-stride hybrid (Blom et "
                         "al.)",
                         multistrideParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<
                                 MultistridePrefetcher>(
                                 p.getOr<MultistrideParams>());
                         })

} // namespace cbws
