/**
 * @file
 * Registration of the trivial baseline. Every real scheme registers
 * from its own translation unit; the no-prefetching baseline has no
 * TU of its own (NullPrefetcher is header-only), so it lives with
 * the registry.
 */

#include "prefetch/registry.hh"

namespace cbws
{

CBWS_REGISTER_PREFETCHER(none, "No-Prefetch",
                         "baseline without any prefetching",
                         [](const ParamSet &) {
                             return std::make_unique<NullPrefetcher>();
                         })

} // namespace cbws
