/**
 * @file
 * Pangloss-style Markov-chain delta prefetcher (after "Pangloss: a
 * novel Markov chain prefetcher").
 *
 * Accesses are tracked per 4 KB page. The transition from the
 * previous in-page line delta to the current one feeds a Markov chain
 * stored as a compressed transition table: one set per source delta,
 * each holding a handful of (next-delta, count) candidates with small
 * saturating counters. When a counter saturates every counter in the
 * set is halved (zeros are dropped), which both compresses the table
 * and ages out stale transitions — the frequency ordering survives at
 * a fraction of the storage of a full Markov matrix.
 *
 * Prediction chain-walks the table: starting from the current delta,
 * repeatedly follow the most probable next delta while its share of
 * the set's total count clears the confidence threshold, issuing up
 * to degree prefetches without leaving the page.
 */

#ifndef CBWS_PREFETCH_PANGLOSS_HH
#define CBWS_PREFETCH_PANGLOSS_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** Pangloss prefetcher configuration. */
struct PanglossParams
{
    std::uint64_t pageBytes = 4096; ///< delta-tracking granularity
    unsigned pageEntries = 256;     ///< tracked pages, LRU
    unsigned assoc = 16;     ///< candidates per transition set
    unsigned maxCounter = 15; ///< saturating count; halve set beyond
    unsigned degree = 6;     ///< deepest chain walk per trigger
    unsigned confidencePct = 25; ///< min share of set total to follow
    bool trainOnHits = true; ///< the chain needs the full stream
    unsigned counterBits = 4; ///< for storage accounting
    unsigned tagBits = 36;    ///< page tag width (storage accounting)
};

/** `--pf-opt` keys for PanglossParams. */
ParamSchema panglossParamSchema();

/**
 * Per-page Markov chain over cache-line deltas with a compressed
 * transition table and confidence-thresholded multi-degree issue.
 */
class PanglossPrefetcher : public Prefetcher
{
  public:
    explicit PanglossPrefetcher(
        const PanglossParams &params = PanglossParams());

    void observeAccess(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "Pangloss"; }

    void exportMetrics(MetricsRegistry &reg,
                       const std::string &prefix) const override;

  private:
    struct PageEntry
    {
        unsigned lastOffset = 0;  ///< line index within the page
        std::int32_t lastDelta = 0;
        bool haveDelta = false;   ///< lastDelta holds a transition src
        std::list<std::uint64_t>::iterator lruIt;
    };

    /** One (next-delta, count) candidate of a transition set. */
    struct Candidate
    {
        std::int32_t delta = 0;
        unsigned count = 0;
    };

    unsigned linesPerPage() const;
    /** Transition-set index of a (non-zero) in-page delta. */
    std::size_t setIndex(std::int32_t delta) const;
    PageEntry &lookupPage(std::uint64_t page);
    void recordTransition(std::int32_t from, std::int32_t to);
    /** Most probable candidate clearing confidencePct, or nullptr. */
    const Candidate *bestNext(std::int32_t from) const;

    PanglossParams params_;
    std::unordered_map<std::uint64_t, PageEntry> pages_;
    std::list<std::uint64_t> pageLru_; ///< front = most recent
    /** Transition sets indexed by setIndex(from). */
    std::vector<std::vector<Candidate>> transitions_;

    std::uint64_t transitionsRecorded_ = 0;
    std::uint64_t setsCompressed_ = 0;
    std::uint64_t chainWalks_ = 0;
    std::uint64_t issued_ = 0;
};

} // namespace cbws

#endif // CBWS_PREFETCH_PANGLOSS_HH
