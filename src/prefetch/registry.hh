/**
 * @file
 * String-keyed prefetcher registry.
 *
 * Pythia-style customisable framework: every scheme registers a
 * factory under the name the paper's figures use ("CBWS+SMS",
 * "GHB-PC/DC", ...), from its *own* translation unit, and consumers
 * instantiate by name:
 *
 *     auto pf = prefetcherRegistry().create("cbws+sms", params);
 *
 * Lookup is case-insensitive, so CLI surfaces accept "cbws+sms" for
 * "CBWS+SMS". Factories receive a ParamSet — a type-erased bag of
 * the per-scheme parameter structs — and fall back to each struct's
 * Table II defaults when a slot is absent. The PrefetcherKind enum
 * in sim/config.hh survives only as a thin compat shim that maps to
 * registry names.
 *
 * Static-archive caveat: a registration living in an otherwise
 * unreferenced object file is dropped by the linker. Each
 * CBWS_REGISTER_PREFETCHER therefore also defines a linker anchor,
 * and any always-linked TU (sim/config.cc for the built-ins) pins the
 * scheme with CBWS_FORCE_LINK_PREFETCHER. Schemes registered from an
 * executable's own sources need no anchor.
 */

#ifndef CBWS_PREFETCH_REGISTRY_HH
#define CBWS_PREFETCH_REGISTRY_HH

#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <vector>

#include "base/logging.hh"
#include "base/result.hh"
#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/**
 * Type-erased bag of per-scheme parameter structs, keyed by type.
 * set(StrideParams{...}) stores a copy; get<StrideParams>() returns
 * it (or nullptr when absent — use getOr() for defaulting).
 */
class ParamSet
{
  public:
    template <typename T>
    void
    set(const T &value)
    {
        slots_[std::type_index(typeid(T))] =
            std::make_shared<T>(value);
    }

    template <typename T>
    const T *
    get() const
    {
        const auto it = slots_.find(std::type_index(typeid(T)));
        return it == slots_.end()
                   ? nullptr
                   : static_cast<const T *>(it->second.get());
    }

    /** The stored T, or a default-constructed one (Table II). */
    template <typename T>
    T
    getOr() const
    {
        const T *p = get<T>();
        return p ? *p : T();
    }

  private:
    std::map<std::type_index, std::shared_ptr<const void>> slots_;
};

// ParamSchema's member writers (paramschema.hh) need a complete
// ParamSet: read the scheme's current struct (Table II defaults when
// absent), mutate one member, store it back.
template <typename S>
S
ParamSchema::getCurrent(const ParamSet &params)
{
    return params.getOr<S>();
}

template <typename S>
void
ParamSchema::setCurrent(ParamSet &params, const S &value)
{
    params.set(value);
}

/**
 * Fully inline so registration TUs in any library (cbws_core hosts
 * CBWS, cbws_prefetch the rest) can use it without a link-time
 * dependency between those libraries.
 */
class PrefetcherRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Prefetcher>(
        const ParamSet &params)>;

    /**
     * Register @p factory under @p name (the canonical display name).
     * First registration wins, so a mislinked duplicate cannot
     * silently shadow a scheme: a duplicate is a hard error (panic)
     * in strict mode — on by default under the test suite via
     * CBWS_STRICT_REGISTRY=1 — and returns false with a warning
     * otherwise.
     */
    bool
    add(const std::string &name, const std::string &description,
        Factory factory)
    {
        return add(name, description, ParamSchema(),
                   std::move(factory));
    }

    /**
     * Register @p factory together with the scheme's parameter
     * schema — the describe() seam behind `--scheme help` and
     * `--pf-opt`.
     */
    bool
    add(const std::string &name, const std::string &description,
        ParamSchema schema, Factory factory)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto [it, inserted] = entries_.emplace(
            canon(name), Entry{name, description, std::move(schema),
                               std::move(factory)});
        (void)it;
        if (!inserted) {
            panic_if(strictDuplicates_,
                     "prefetcher registry: duplicate registration of "
                     "'%s' — a mistyped self-registration would "
                     "shadow a real scheme (set CBWS_STRICT_REGISTRY=0 "
                     "to downgrade to a warning)",
                     name.c_str());
            warn("prefetcher registry: duplicate registration of "
                 "'%s' ignored",
                 name.c_str());
        }
        return inserted;
    }

    /**
     * Toggle the duplicate-registration hard error; returns the
     * previous setting. Defaults to the CBWS_STRICT_REGISTRY
     * environment variable ("0"/unset = warn, anything else = panic).
     */
    bool
    setStrictDuplicates(bool strict)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const bool previous = strictDuplicates_;
        strictDuplicates_ = strict;
        return previous;
    }

    /** Instantiate the scheme registered under @p name
     *  (case-insensitive). NotFound lists the registered names. */
    Result<std::unique_ptr<Prefetcher>>
    create(const std::string &name,
           const ParamSet &params = ParamSet()) const
    {
        Factory factory;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(canon(name));
            if (it != entries_.end())
                factory = it->second.factory;
        }
        if (!factory) {
            std::string known;
            for (const auto &n : names())
                known += (known.empty() ? "" : ", ") + n;
            return Error(Errc::NotFound,
                         "no prefetcher registered as '" + name +
                             "' (registered: " + known + ")");
        }
        return factory(params);
    }

    bool
    contains(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.count(canon(name)) != 0;
    }

    /** Canonical names, sorted case-insensitively (stable output for
     *  `--scheme help` regardless of registration order). */
    std::vector<std::string>
    names() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &entry : entries_)
            out.push_back(entry.second.name);
        return out; // map order == sorted canonical order
    }

    /** Canonical display form of @p name ("cbws+sms" -> "CBWS+SMS");
     *  empty when unknown. */
    std::string
    canonicalName(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(canon(name));
        return it == entries_.end() ? std::string()
                                    : it->second.name;
    }

    /** Registered description of @p name (empty when unknown). */
    std::string
    describe(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(canon(name));
        return it == entries_.end() ? std::string()
                                    : it->second.description;
    }

    /** The scheme's parameter schema (empty when unknown or when the
     *  scheme registered without one). */
    ParamSchema
    paramSchema(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(canon(name));
        return it == entries_.end() ? ParamSchema()
                                    : it->second.schema;
    }

    /** The describe() seam: accepted keys + Table II defaults of
     *  @p name, in declaration order (empty when unknown). */
    std::vector<ParamSchema::KeyInfo>
    describeParams(const std::string &name) const
    {
        return paramSchema(name).keys();
    }

    /**
     * Apply `key=value` option strings onto @p params through
     * @p name's schema. With @p ignore_unknown, keys the scheme does
     * not accept are skipped (multi-scheme runs pre-validate each key
     * against the whole selection with validateOptions()); otherwise
     * an unknown key is an InvalidArgument error listing the accepted
     * keys. Malformed values always fail.
     */
    Result<void>
    applyOptions(const std::string &name, ParamSet &params,
                 const std::vector<std::string> &opts,
                 bool ignore_unknown = false) const
    {
        const ParamSchema schema = paramSchema(name);
        for (const auto &opt : opts) {
            std::string key, value;
            Result<void> split = splitOption(opt, key, value);
            if (!split.ok())
                return split;
            if (!schema.accepts(key)) {
                if (ignore_unknown)
                    continue;
                return Error(
                    Errc::InvalidArgument,
                    "scheme '" + name + "' does not accept "
                    "parameter '" + key + "'" +
                        (schema.empty()
                             ? " (it has no tunable parameters)"
                             : " (accepted: " + schema.keyList() +
                                   ")"));
            }
            Result<void> applied = schema.apply(params, key, value);
            if (!applied.ok())
                return Error(applied.error().code,
                             "scheme '" + name +
                                 "': " + applied.error().message);
        }
        return Result<void>();
    }

    /**
     * Validate `--pf-opt` strings against a run's scheme selection:
     * every scheme must be registered, every option must be
     * `key=value`, every key must be accepted by at least one
     * selected scheme, and the value must parse for every scheme
     * that accepts it. This is the fail-fast gate CLI surfaces and
     * runMatrix call before any simulation starts.
     */
    Result<void>
    validateOptions(const std::vector<std::string> &schemes,
                    const std::vector<std::string> &opts) const
    {
        for (const auto &scheme : schemes) {
            if (contains(scheme))
                continue;
            std::string known;
            for (const auto &n : names())
                known += (known.empty() ? "" : ", ") + n;
            return Error(Errc::NotFound,
                         "no prefetcher registered as '" + scheme +
                             "' (registered: " + known + ")");
        }
        for (const auto &opt : opts) {
            std::string key, value;
            Result<void> split = splitOption(opt, key, value);
            if (!split.ok())
                return split;
            unsigned acceptors = 0;
            for (const auto &scheme : schemes) {
                const ParamSchema schema = paramSchema(scheme);
                if (!schema.accepts(key))
                    continue;
                ++acceptors;
                ParamSet scratch;
                Result<void> applied =
                    schema.apply(scratch, key, value);
                if (!applied.ok())
                    return Error(applied.error().code,
                                 "scheme '" + scheme +
                                     "': " + applied.error().message);
            }
            if (acceptors == 0) {
                std::string accepted;
                for (const auto &scheme : schemes) {
                    const std::string keys =
                        paramSchema(scheme).keyList();
                    if (keys.empty())
                        continue;
                    accepted += (accepted.empty() ? "" : "; ") +
                                scheme + ": " + keys;
                }
                return Error(
                    Errc::InvalidArgument,
                    "no selected scheme accepts parameter '" + key +
                        "'" +
                        (accepted.empty()
                             ? ""
                             : " (accepted keys — " + accepted +
                                   ")"));
            }
        }
        return Result<void>();
    }

  private:
    struct Entry
    {
        std::string name; ///< canonical display form
        std::string description;
        ParamSchema schema;
        Factory factory;
    };

    /** Split "key=value" (both non-empty) or fail InvalidArgument. */
    static Result<void>
    splitOption(const std::string &opt, std::string &key,
                std::string &value)
    {
        const auto eq = opt.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == opt.size())
            return Error(Errc::InvalidArgument,
                         "--pf-opt '" + opt +
                             "' is not of the form key=value");
        key = opt.substr(0, eq);
        value = opt.substr(eq + 1);
        return Result<void>();
    }

    static std::string
    canon(const std::string &name)
    {
        std::string out;
        out.reserve(name.size());
        for (char c : name)
            out.push_back(c >= 'A' && c <= 'Z'
                              ? static_cast<char>(c - 'A' + 'a')
                              : c);
        return out;
    }

    /** CBWS_STRICT_REGISTRY: "0"/unset = warn, else hard error. */
    static bool
    strictFromEnv()
    {
        const char *env = std::getenv("CBWS_STRICT_REGISTRY");
        return env != nullptr && std::string(env) != "0";
    }

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_; ///< canon(name) -> entry
    bool strictDuplicates_ = strictFromEnv();
};

/** The process-wide registry (safe across static initialisers). */
inline PrefetcherRegistry &
prefetcherRegistry()
{
    static PrefetcherRegistry registry;
    return registry;
}

/**
 * Self-registration from a scheme's translation unit:
 *
 *   CBWS_REGISTER_PREFETCHER(stride, "Stride", "RPT stride prefetcher",
 *       strideParamSchema(),
 *       [](const ParamSet &p) {
 *           return std::make_unique<StridePrefetcher>(
 *               p.getOr<StrideParams>());
 *       })
 *
 * The ParamSchema argument is optional (schemes without tunables omit
 * it); @p tag is a C identifier naming the linker anchor.
 */
#define CBWS_REGISTER_PREFETCHER(tag, name, description, ...)          \
    extern "C" char cbwsPrefetcherAnchor_##tag;                        \
    char cbwsPrefetcherAnchor_##tag = 0;                               \
    namespace {                                                        \
    const bool cbwsPrefetcherReg_##tag [[maybe_unused]] =              \
        ::cbws::prefetcherRegistry().add(name, description,            \
                                         __VA_ARGS__);                 \
    }

/**
 * Pin a scheme's registration TU into the link (see file comment).
 * Lives in an always-linked TU of the consumer.
 */
#define CBWS_FORCE_LINK_PREFETCHER(tag)                                \
    extern "C" char cbwsPrefetcherAnchor_##tag;                        \
    namespace {                                                        \
    /* [[gnu::used]]: an unreferenced internal-linkage constant would \
     * otherwise be discarded before it creates the relocation that   \
     * drags the registration TU out of its archive. */               \
    [[gnu::used, maybe_unused]] const char                             \
        *const cbwsPrefetcherPin_##tag = &cbwsPrefetcherAnchor_##tag;  \
    }

} // namespace cbws

#endif // CBWS_PREFETCH_REGISTRY_HH
