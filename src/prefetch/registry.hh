/**
 * @file
 * String-keyed prefetcher registry.
 *
 * Pythia-style customisable framework: every scheme registers a
 * factory under the name the paper's figures use ("CBWS+SMS",
 * "GHB-PC/DC", ...), from its *own* translation unit, and consumers
 * instantiate by name:
 *
 *     auto pf = prefetcherRegistry().create("cbws+sms", params);
 *
 * Lookup is case-insensitive, so CLI surfaces accept "cbws+sms" for
 * "CBWS+SMS". Factories receive a ParamSet — a type-erased bag of
 * the per-scheme parameter structs — and fall back to each struct's
 * Table II defaults when a slot is absent. The PrefetcherKind enum
 * in sim/config.hh survives only as a thin compat shim that maps to
 * registry names.
 *
 * Static-archive caveat: a registration living in an otherwise
 * unreferenced object file is dropped by the linker. Each
 * CBWS_REGISTER_PREFETCHER therefore also defines a linker anchor,
 * and any always-linked TU (sim/config.cc for the built-ins) pins the
 * scheme with CBWS_FORCE_LINK_PREFETCHER. Schemes registered from an
 * executable's own sources need no anchor.
 */

#ifndef CBWS_PREFETCH_REGISTRY_HH
#define CBWS_PREFETCH_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <vector>

#include "base/logging.hh"
#include "base/result.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/**
 * Type-erased bag of per-scheme parameter structs, keyed by type.
 * set(StrideParams{...}) stores a copy; get<StrideParams>() returns
 * it (or nullptr when absent — use getOr() for defaulting).
 */
class ParamSet
{
  public:
    template <typename T>
    void
    set(const T &value)
    {
        slots_[std::type_index(typeid(T))] =
            std::make_shared<T>(value);
    }

    template <typename T>
    const T *
    get() const
    {
        const auto it = slots_.find(std::type_index(typeid(T)));
        return it == slots_.end()
                   ? nullptr
                   : static_cast<const T *>(it->second.get());
    }

    /** The stored T, or a default-constructed one (Table II). */
    template <typename T>
    T
    getOr() const
    {
        const T *p = get<T>();
        return p ? *p : T();
    }

  private:
    std::map<std::type_index, std::shared_ptr<const void>> slots_;
};

/**
 * Fully inline so registration TUs in any library (cbws_core hosts
 * CBWS, cbws_prefetch the rest) can use it without a link-time
 * dependency between those libraries.
 */
class PrefetcherRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Prefetcher>(
        const ParamSet &params)>;

    /**
     * Register @p factory under @p name (the canonical display name).
     * Returns false (and warns) on a duplicate instead of replacing:
     * first registration wins, so a mislinked duplicate cannot
     * silently shadow a scheme.
     */
    bool
    add(const std::string &name, const std::string &description,
        Factory factory)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto [it, inserted] = entries_.emplace(
            canon(name),
            Entry{name, description, std::move(factory)});
        (void)it;
        if (!inserted)
            warn("prefetcher registry: duplicate registration of "
                 "'%s' ignored",
                 name.c_str());
        return inserted;
    }

    /** Instantiate the scheme registered under @p name
     *  (case-insensitive). NotFound lists the registered names. */
    Result<std::unique_ptr<Prefetcher>>
    create(const std::string &name,
           const ParamSet &params = ParamSet()) const
    {
        Factory factory;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(canon(name));
            if (it != entries_.end())
                factory = it->second.factory;
        }
        if (!factory) {
            std::string known;
            for (const auto &n : names())
                known += (known.empty() ? "" : ", ") + n;
            return Error(Errc::NotFound,
                         "no prefetcher registered as '" + name +
                             "' (registered: " + known + ")");
        }
        return factory(params);
    }

    bool
    contains(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.count(canon(name)) != 0;
    }

    /** Canonical names, sorted case-insensitively (stable output for
     *  `--scheme help` regardless of registration order). */
    std::vector<std::string>
    names() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &entry : entries_)
            out.push_back(entry.second.name);
        return out; // map order == sorted canonical order
    }

    /** Registered description of @p name (empty when unknown). */
    std::string
    describe(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(canon(name));
        return it == entries_.end() ? std::string()
                                    : it->second.description;
    }

  private:
    struct Entry
    {
        std::string name; ///< canonical display form
        std::string description;
        Factory factory;
    };

    static std::string
    canon(const std::string &name)
    {
        std::string out;
        out.reserve(name.size());
        for (char c : name)
            out.push_back(c >= 'A' && c <= 'Z'
                              ? static_cast<char>(c - 'A' + 'a')
                              : c);
        return out;
    }

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_; ///< canon(name) -> entry
};

/** The process-wide registry (safe across static initialisers). */
inline PrefetcherRegistry &
prefetcherRegistry()
{
    static PrefetcherRegistry registry;
    return registry;
}

/**
 * Self-registration from a scheme's translation unit:
 *
 *   CBWS_REGISTER_PREFETCHER(stride, "Stride", "RPT stride prefetcher",
 *       [](const ParamSet &p) {
 *           return std::make_unique<StridePrefetcher>(
 *               p.getOr<StrideParams>());
 *       })
 *
 * @p tag is a C identifier naming the linker anchor.
 */
#define CBWS_REGISTER_PREFETCHER(tag, name, description, ...)          \
    extern "C" char cbwsPrefetcherAnchor_##tag;                        \
    char cbwsPrefetcherAnchor_##tag = 0;                               \
    namespace {                                                        \
    const bool cbwsPrefetcherReg_##tag [[maybe_unused]] =              \
        ::cbws::prefetcherRegistry().add(name, description,            \
                                         __VA_ARGS__);                 \
    }

/**
 * Pin a scheme's registration TU into the link (see file comment).
 * Lives in an always-linked TU of the consumer.
 */
#define CBWS_FORCE_LINK_PREFETCHER(tag)                                \
    extern "C" char cbwsPrefetcherAnchor_##tag;                        \
    namespace {                                                        \
    /* [[gnu::used]]: an unreferenced internal-linkage constant would \
     * otherwise be discarded before it creates the relocation that   \
     * drags the registration TU out of its archive. */               \
    [[gnu::used, maybe_unused]] const char                             \
        *const cbwsPrefetcherPin_##tag = &cbwsPrefetcherAnchor_##tag;  \
    }

} // namespace cbws

#endif // CBWS_PREFETCH_REGISTRY_HH
