/**
 * @file
 * Abstract prefetcher interface.
 *
 * Prefetchers are trained from the core's in-order commit stage: every
 * committed memory operation is delivered via observe() together with
 * its execute-time L1 hit/miss outcome, and the BLOCK_BEGIN/BLOCK_END
 * markers are delivered via blockBegin()/blockEnd(). Prefetch requests
 * are emitted through a PrefetchSink, which the simulator connects to
 * the hierarchy's prefetch-into-L2 queue.
 */

#ifndef CBWS_PREFETCH_PREFETCHER_HH
#define CBWS_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace cbws
{

class MetricsRegistry;

/** One committed memory access, as seen by a prefetcher. */
struct PrefetchContext
{
    Addr pc = 0;
    Addr addr = 0;
    LineAddr line = 0;
    bool isWrite = false;
    bool l1Hit = false;
    /** Demand access reached the L2 and the data was not ready (a
     *  true last-level miss, including merges into in-flight fills).
     *  Miss-triggered prefetchers (Stride, GHB) train on this. */
    bool l2Miss = false;
};

/** Where prefetchers send their requests. */
class PrefetchSink
{
  public:
    virtual ~PrefetchSink() = default;

    /**
     * Request that @p line be brought into the L2. @p src identifies
     * the component that generated the request, for lifecycle
     * accounting; sinks that do not track attribution ignore it.
     * (Single entry point — the old unattributed overload is gone.)
     */
    virtual void issuePrefetch(LineAddr line,
                               PfSource src = PfSource::Unknown) = 0;

    /**
     * True when @p line is already resident in (or in flight to) the
     * L2 — used by prefetchers to skip useless requests ("skipping
     * addresses that are already cached").
     */
    virtual bool isCached(LineAddr line) const = 0;
};

/** Pipeline stage a training notification originates from. */
enum class PfStage : std::uint8_t
{
    Access, ///< the operation accessed the cache (execute time)
    Commit, ///< the operation committed, in program order
};

/**
 * One training notification delivered to a prefetcher: the committed
 * or executed access plus the stage it was observed at. The single
 * struct replaces the parallel observeAccess/observeCommit plumbing
 * between the core models and the prefetchers.
 */
struct PrefetchEvent
{
    PfStage stage = PfStage::Access;
    PrefetchContext ctx;
};

/**
 * Base class of all prefetchers.
 *
 * Two training points are offered, matching how the paper's schemes
 * are attached in gem5:
 *  - observeAccess(): invoked when a memory operation accesses the
 *    cache (loads at execute — possibly out of program order — and
 *    stores at commit). This is where conventional cache-attached
 *    prefetchers (Stride, GHB, SMS) train.
 *  - observeCommit(): invoked from the in-order commit stage, in
 *    program order. The CBWS prefetcher trains here, as Section V
 *    requires ("the prefetcher obtains the address sequence from the
 *    in-order commit stage").
 */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Single delivery point used by the simulator plumbing: routes
     * @p event to the per-stage training hook matching its stage.
     * Schemes override the hooks; composite schemes that need the
     * whole event may call this on their children.
     */
    void
    observe(const PrefetchEvent &event, PrefetchSink &sink)
    {
        if (event.stage == PfStage::Access)
            observeAccess(event.ctx, sink);
        else
            observeCommit(event.ctx, sink);
    }

    /** A memory operation accessing the cache (execute time). */
    virtual void
    observeAccess(const PrefetchContext &ctx, PrefetchSink &sink)
    {
        (void)ctx;
        (void)sink;
    }

    /** A committed memory access, delivered in program order. */
    virtual void
    observeCommit(const PrefetchContext &ctx, PrefetchSink &sink)
    {
        (void)ctx;
        (void)sink;
    }

    /** A committed BLOCK_BEGIN marker. */
    virtual void blockBegin(BlockId id, PrefetchSink &sink)
    {
        (void)id;
        (void)sink;
    }

    /** A committed BLOCK_END marker. */
    virtual void blockEnd(BlockId id, PrefetchSink &sink)
    {
        (void)id;
        (void)sink;
    }

    /** Hardware budget of the scheme, in bits (Table III). */
    virtual std::uint64_t storageBits() const = 0;

    /** Human-readable scheme name. */
    virtual std::string name() const = 0;

    /**
     * Register scheme-internal counters (table occupancy, training
     * hits, ...) into @p reg under dotted paths below @p prefix
     * (e.g. "pf.scheme"). The default exports nothing; composite
     * schemes should delegate to their components. Called once at the
     * end of a run, so implementations need not be cheap.
     */
    virtual void
    exportMetrics(MetricsRegistry &reg, const std::string &prefix) const
    {
        (void)reg;
        (void)prefix;
    }
};

/**
 * The no-prefetching baseline.
 */
class NullPrefetcher : public Prefetcher
{
  public:
    std::uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "No-Prefetch"; }
};

} // namespace cbws

#endif // CBWS_PREFETCH_PREFETCHER_HH
