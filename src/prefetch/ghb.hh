/**
 * @file
 * Global History Buffer prefetching (Nesbit & Smith, HPCA'04) in its
 * two delta-correlation flavours used by the paper:
 *
 *  - GHB G/DC  — global delta correlation: one global miss stream.
 *  - GHB PC/DC — PC-localised delta correlation: per-PC miss streams
 *    threaded through the shared buffer.
 *
 * Both use a 256-entry circular history buffer, correlate on the last
 * two deltas (history length 3 addresses), and prefetch 3 deltas ahead
 * (Table II: history length 3, prefetch degree 3).
 */

#ifndef CBWS_PREFETCH_GHB_HH
#define CBWS_PREFETCH_GHB_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** GHB configuration (Table II defaults). */
struct GhbParams
{
    unsigned bufferEntries = 256;
    unsigned historyLength = 3; ///< addresses per correlation window
    unsigned degree = 3;        ///< deltas prefetched on a match
    unsigned maxChainWalk = 64; ///< entries examined per lookup
    bool trainOnHits = false;
    unsigned pcBits = 48;       ///< for storage accounting
    unsigned strideBits = 12;
};

/** `--pf-opt` keys for GhbParams (shared by both GHB flavours). */
ParamSchema ghbParamSchema();

/**
 * Shared implementation of both GHB delta-correlation prefetchers.
 */
class GhbPrefetcher : public Prefetcher
{
  public:
    enum class Mode
    {
        GlobalDC,
        PcDC,
    };

    GhbPrefetcher(Mode mode, const GhbParams &params = GhbParams());

    void observeAccess(const PrefetchContext &ctx,
                 PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;

    std::string
    name() const override
    {
        return mode_ == Mode::GlobalDC ? "GHB-G/DC" : "GHB-PC/DC";
    }

  private:
    struct Entry
    {
        LineAddr line = 0;
        /** Sequence number of the previous entry in this stream, or
         *  InvalidSeq. Sequence numbers (not buffer slots) make stale
         *  links detectable after wraparound. */
        std::uint64_t prevSeq = InvalidSeq;
    };

    static constexpr std::uint64_t InvalidSeq = ~std::uint64_t(0);

    /** Slot holding a sequence number, or nullptr if overwritten. */
    const Entry *entryFor(std::uint64_t seq) const;

    /**
     * Walk the stream backwards from @p head_seq collecting up to
     * @p max lines (most recent first).
     */
    std::vector<LineAddr> collect(std::uint64_t head_seq,
                                  unsigned max) const;

    /**
     * Scan @p deltas (oldest -> newest, @p n entries) for the most
     * recent earlier occurrence of the trailing delta pair and issue
     * up to degree prefetches from @p trigger.
     */
    void correlateAndIssue(const std::int64_t *deltas, std::size_t n,
                           LineAddr trigger, PrefetchSink &sink) const;

    Mode mode_;
    GhbParams params_;
    std::vector<Entry> buffer_;
    std::uint64_t nextSeq_ = 0;
    /** Index table: key (0 for global mode, PC otherwise) -> newest
     *  sequence number of that stream. */
    std::unordered_map<Addr, std::uint64_t> indexTable_;
};

} // namespace cbws

#endif // CBWS_PREFETCH_GHB_HH
