#include "prefetch/sms.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"
#include "base/metrics.hh"
#include "prefetch/registry.hh"

namespace cbws
{

SmsPrefetcher::SmsPrefetcher(const SmsParams &params) : params_(params)
{
    fatal_if(params_.regionBytes < LineBytes ||
             !isPowerOf2(params_.regionBytes),
             "SMS region size must be a power-of-two >= one line");
    linesPerRegion_ =
        static_cast<unsigned>(params_.regionBytes / LineBytes);
    fatal_if(linesPerRegion_ > 64,
             "SMS pattern is limited to 64 lines per region");
    pht_.assign(params_.phtEntries, PhtEntry{});
}

void
SmsPrefetcher::endGeneration(const Generation &gen)
{
    DPRINTF(SMS, "generation end: pc=%#llx offset=%u pattern=%#llx",
            static_cast<unsigned long long>(gen.triggerPc),
            gen.triggerOffset,
            static_cast<unsigned long long>(gen.pattern));
    phtInsert(phtKey(gen.triggerPc, gen.triggerOffset), gen.pattern);
}

std::uint64_t
SmsPrefetcher::phtLookup(std::uint64_t key)
{
    const std::size_t num_sets = pht_.size() / params_.phtAssoc;
    const std::size_t set = key % num_sets;
    for (unsigned w = 0; w < params_.phtAssoc; ++w) {
        PhtEntry &e = pht_[set * params_.phtAssoc + w];
        if (e.valid && e.key == key) {
            e.lastUse = ++useTick_;
            return e.pattern;
        }
    }
    return 0;
}

void
SmsPrefetcher::phtInsert(std::uint64_t key, std::uint64_t pattern)
{
    const std::size_t num_sets = pht_.size() / params_.phtAssoc;
    const std::size_t set = key % num_sets;
    PhtEntry *victim = nullptr;
    for (unsigned w = 0; w < params_.phtAssoc; ++w) {
        PhtEntry &e = pht_[set * params_.phtAssoc + w];
        if (e.valid && e.key == key) {
            e.pattern = pattern;
            e.lastUse = ++useTick_;
            return;
        }
    }
    for (unsigned w = 0; w < params_.phtAssoc && !victim; ++w) {
        PhtEntry &e = pht_[set * params_.phtAssoc + w];
        if (!e.valid)
            victim = &e;
    }
    if (!victim) {
        victim = &pht_[set * params_.phtAssoc];
        for (unsigned w = 1; w < params_.phtAssoc; ++w) {
            PhtEntry &e = pht_[set * params_.phtAssoc + w];
            if (e.lastUse < victim->lastUse)
                victim = &e;
        }
    }
    victim->valid = true;
    victim->key = key;
    victim->pattern = pattern;
    victim->lastUse = ++useTick_;
}

void
SmsPrefetcher::observeAccess(const PrefetchContext &ctx, PrefetchSink &sink)
{
    if (ctx.l1Hit && !params_.trainOnHits)
        return;

    const Addr region = regionOf(ctx.addr);
    const unsigned offset = offsetOf(ctx.addr);
    const std::uint64_t bit = 1ull << offset;

    // Already accumulating this region?
    if (auto it = agt_.find(region); it != agt_.end()) {
        it->second.pattern |= bit;
        agtLru_.splice(agtLru_.begin(), agtLru_, it->second.lruIt);
        return;
    }

    // Second distinct access promotes the region out of the filter.
    if (auto it = filter_.find(region); it != filter_.end()) {
        if (it->second.triggerOffset == offset) {
            filterLru_.splice(filterLru_.begin(), filterLru_,
                              it->second.lruIt);
            return; // same line again: stays in the filter
        }
        Generation gen;
        gen.triggerPc = it->second.triggerPc;
        gen.triggerOffset = it->second.triggerOffset;
        gen.pattern = (1ull << it->second.triggerOffset) | bit;
        filterLru_.erase(it->second.lruIt);
        filter_.erase(it);

        if (agt_.size() >= params_.agtEntries) {
            // Capacity eviction ends the oldest generation.
            const Addr victim_region = agtLru_.back();
            auto vit = agt_.find(victim_region);
            endGeneration(vit->second);
            agtLru_.pop_back();
            agt_.erase(vit);
        }
        agtLru_.push_front(region);
        gen.lruIt = agtLru_.begin();
        agt_.emplace(region, gen);
        return;
    }

    // New region: trigger access. Predict from the PHT, then start
    // tracking the new generation in the filter.
    if (const std::uint64_t pattern = phtLookup(phtKey(ctx.pc, offset))) {
        DPRINTF(SMS, "trigger pc=%#llx region=%#llx: replaying "
                "pattern=%#llx",
                static_cast<unsigned long long>(ctx.pc),
                static_cast<unsigned long long>(region),
                static_cast<unsigned long long>(pattern));
        const Addr region_base = region * params_.regionBytes;
        for (unsigned l = 0; l < linesPerRegion_; ++l) {
            if (l == offset || !(pattern & (1ull << l)))
                continue;
            const LineAddr line = lineOf(region_base +
                                         static_cast<Addr>(l) *
                                         LineBytes);
            if (!sink.isCached(line))
                sink.issuePrefetch(line, PfSource::Sms);
        }
    }

    if (filter_.size() >= params_.filterEntries) {
        // Single-access generations are discarded, which is the
        // filter's purpose.
        filter_.erase(filterLru_.back());
        filterLru_.pop_back();
    }
    filterLru_.push_front(region);
    FilterEntry fe;
    fe.triggerPc = ctx.pc;
    fe.triggerOffset = offset;
    fe.lruIt = filterLru_.begin();
    filter_.emplace(region, fe);
}

std::uint64_t
SmsPrefetcher::storageBits() const
{
    // Table III: AGT + Filter + PHT.
    const std::uint64_t pattern_bits = params_.storagePatternBits;
    const std::uint64_t agt =
        static_cast<std::uint64_t>(params_.offsetBits + params_.pcBits +
                                   params_.tagBits) *
        params_.agtEntries;
    const std::uint64_t filter =
        static_cast<std::uint64_t>(params_.offsetBits + params_.pcBits +
                                   params_.tagBits + pattern_bits) *
        params_.filterEntries;
    const std::uint64_t pht =
        (pattern_bits + params_.pcBits + params_.offsetBits) *
        params_.phtEntries;
    return agt + filter + pht;
}

void
SmsPrefetcher::exportMetrics(MetricsRegistry &reg,
                             const std::string &prefix) const
{
    const std::string p = prefix + ".sms.";
    reg.addScalar(p + "agtOccupancy", agt_.size(),
                  "active-generation-table entries in use");
    reg.addScalar(p + "agtCapacity", params_.agtEntries,
                  "active-generation-table entry capacity");
    reg.addScalar(p + "filterOccupancy", filter_.size(),
                  "filter-table entries in use");
    reg.addScalar(p + "filterCapacity", params_.filterEntries,
                  "filter-table entry capacity");
    const std::size_t pht_valid = static_cast<std::size_t>(
        std::count_if(pht_.begin(), pht_.end(),
                      [](const PhtEntry &e) { return e.valid; }));
    reg.addScalar(p + "phtOccupancy", pht_valid,
                  "pattern-history-table entries in use");
    reg.addScalar(p + "phtCapacity", params_.phtEntries,
                  "pattern-history-table entry capacity");
}

ParamSchema
smsParamSchema()
{
    return ParamSchema()
        .field("region-bytes", &SmsParams::regionBytes,
               "spatial region size in bytes")
        .field("agt-entries", &SmsParams::agtEntries,
               "active generation (accumulation) table entries")
        .field("filter-entries", &SmsParams::filterEntries,
               "filter table entries")
        .field("pht-entries", &SmsParams::phtEntries,
               "pattern history table entries")
        .field("pht-assoc", &SmsParams::phtAssoc,
               "pattern history table associativity")
        .field("train-on-hits", &SmsParams::trainOnHits,
               "observe L1 hits as well as misses")
        .field("pc-bits", &SmsParams::pcBits,
               "PC tag width (storage accounting)")
        .field("offset-bits", &SmsParams::offsetBits,
               "region-offset width (storage accounting)")
        .field("tag-bits", &SmsParams::tagBits,
               "region tag width (storage accounting)")
        .field("storage-pattern-bits",
               &SmsParams::storagePatternBits,
               "pattern width in Table III's budget");
}

CBWS_REGISTER_PREFETCHER(sms, "SMS",
                         "spatial memory streaming prefetcher",
                         smsParamSchema(),
                         [](const ParamSet &p) {
                             return std::make_unique<SmsPrefetcher>(
                                 p.getOr<SmsParams>());
                         })

} // namespace cbws
