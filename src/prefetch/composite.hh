/**
 * @file
 * The integrated CBWS+SMS prefetcher (Section VI): CBWS handles
 * annotated tight loops and SMS acts as the fallback.
 *
 * Policy per the paper: "The CBWS prefetcher issues a prefetch only if
 * the current access pattern hits in the history table. Otherwise, the
 * SMS prefetcher issues the prefetch." Both components observe every
 * committed access (SMS keeps training so its patterns stay warm), but
 * SMS's *issues* are suppressed while execution is inside a block whose
 * CBWS history is currently predicting.
 */

#ifndef CBWS_PREFETCH_COMPOSITE_HH
#define CBWS_PREFETCH_COMPOSITE_HH

#include "base/metrics.hh"
#include "core/cbws_prefetcher.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/sms.hh"

namespace cbws
{

/**
 * CBWS add-on integrated with the SMS prefetcher.
 */
class CbwsSmsPrefetcher : public Prefetcher
{
  public:
    CbwsSmsPrefetcher(const CbwsParams &cbws_params = CbwsParams(),
                      const SmsParams &sms_params = SmsParams());

    void observeAccess(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;
    void observeCommit(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;
    void blockBegin(BlockId id, PrefetchSink &sink) override;
    void blockEnd(BlockId id, PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "CBWS+SMS"; }

    void
    exportMetrics(MetricsRegistry &reg,
                  const std::string &prefix) const override
    {
        cbws_.exportMetrics(reg, prefix);
        sms_.exportMetrics(reg, prefix);
        reg.addScalar(prefix + ".suppressedSmsIssues", suppressed_,
                      "SMS issues muted because CBWS covered the block");
    }

    CbwsPrefetcher &cbws() { return cbws_; }
    SmsPrefetcher &sms() { return sms_; }
    const CbwsPrefetcher &cbws() const { return cbws_; }

    /** SMS issues suppressed because CBWS covered the block. */
    std::uint64_t suppressedSmsIssues() const { return suppressed_; }

  private:
    /** Sink wrapper that can mute issues while forwarding queries. */
    class GatedSink : public PrefetchSink
    {
      public:
        GatedSink(PrefetchSink &inner, bool muted,
                  std::uint64_t &suppressed)
            : inner_(inner), muted_(muted), suppressed_(suppressed)
        {
        }

        void
        issuePrefetch(LineAddr line, PfSource src) override
        {
            if (muted_) {
                ++suppressed_;
                return;
            }
            inner_.issuePrefetch(line, src);
        }

        bool
        isCached(LineAddr line) const override
        {
            return inner_.isCached(line);
        }

      private:
        PrefetchSink &inner_;
        bool muted_;
        std::uint64_t &suppressed_;
    };

    CbwsPrefetcher cbws_;
    SmsPrefetcher sms_;
    std::uint64_t suppressed_ = 0;
};

} // namespace cbws

#endif // CBWS_PREFETCH_COMPOSITE_HH
