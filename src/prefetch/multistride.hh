/**
 * @file
 * IP-indexed multi-stride prefetcher (after Blom et al.): a hybrid
 * between the classic reference-prediction-table stride scheme and a
 * short per-PC delta-pattern matcher.
 *
 * Each table entry remembers the last few line deltas produced by one
 * PC and looks for the shortest repeating cycle of period p <=
 * max-period. Period 1 degenerates to the classic stride case;
 * periods 2..p capture the multi-strided sequences that interleaved
 * array walks (A[i], B[i], A[i+1], ... from a single load PC after
 * unrolling, or strided accesses with a wrap-around correction)
 * produce and that a single-stride table mispredicts. Once a period
 * has repeated confidence-threshold times, the upcoming deltas of the
 * cycle are issued degree lines ahead.
 */

#ifndef CBWS_PREFETCH_MULTISTRIDE_HH
#define CBWS_PREFETCH_MULTISTRIDE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "prefetch/paramschema.hh"
#include "prefetch/prefetcher.hh"

namespace cbws
{

/** Multi-stride prefetcher configuration. */
struct MultistrideParams
{
    unsigned tableEntries = 256; ///< PC-indexed, fully assoc., LRU
    unsigned historyLength = 8;  ///< line deltas remembered per PC
    unsigned maxPeriod = 4;      ///< longest repeating delta cycle
    unsigned degree = 4;         ///< lines prefetched per trigger
    unsigned confidenceThreshold = 2; ///< period repeats before issue
    bool trainOnHits = true;     ///< patterns live in the hit stream
    unsigned pcBits = 48;        ///< for storage accounting
    unsigned strideBits = 16;
};

/** `--pf-opt` keys for MultistrideParams. */
ParamSchema multistrideParamSchema();

/**
 * Per-PC delta-cycle detector with multi-degree issue.
 */
class MultistridePrefetcher : public Prefetcher
{
  public:
    explicit MultistridePrefetcher(
        const MultistrideParams &params = MultistrideParams());

    void observeAccess(const PrefetchContext &ctx,
                       PrefetchSink &sink) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "Multistride"; }

    void exportMetrics(MetricsRegistry &reg,
                       const std::string &prefix) const override;

  private:
    struct Entry
    {
        LineAddr lastLine = 0;
        bool primed = false;     ///< lastLine holds a real address
        std::vector<std::int64_t> deltas; ///< oldest first
        unsigned period = 0;     ///< detected cycle length (0 = none)
        unsigned confidence = 0;
        std::list<Addr>::iterator lruIt;
    };

    /** Shortest p <= maxPeriod with deltas[i] == deltas[i-p]. */
    unsigned detectPeriod(const std::vector<std::int64_t> &deltas)
        const;

    Entry &lookup(Addr pc);

    MultistrideParams params_;
    std::unordered_map<Addr, Entry> table_;
    std::list<Addr> lru_; ///< front = most recent

    std::uint64_t trainedAccesses_ = 0;
    std::uint64_t periodsDetected_ = 0;
    std::uint64_t issued_ = 0;
};

} // namespace cbws

#endif // CBWS_PREFETCH_MULTISTRIDE_HH
