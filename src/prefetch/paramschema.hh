/**
 * @file
 * Typed, self-describing parameter schemas for registry prefetchers.
 *
 * Every scheme's factory owns a parameter struct whose default
 * construction reproduces Table II. A ParamSchema binds user-facing
 * keys ("degree", "table-entries") to members of that struct so CLI
 * surfaces can
 *
 *   - list each scheme's accepted keys, types, defaults and help
 *     text (`--scheme help`), and
 *   - apply `--pf-opt key=value` strings onto the ParamSet handed to
 *     the factory, failing fast with Result errors on unknown keys or
 *     malformed values instead of silently ignoring them.
 *
 * Composite schemes mount their components' schemas under a scope
 * prefix (scoped("cbws", ...) turns "table-entries" into
 * "cbws.table-entries"), so "CBWS+SMS" tunes each side independently.
 */

#ifndef CBWS_PREFETCH_PARAMSCHEMA_HH
#define CBWS_PREFETCH_PARAMSCHEMA_HH

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <typeindex>
#include <vector>

#include "base/result.hh"

namespace cbws
{

class ParamSet; // registry.hh; only referenced through std::function

namespace detail
{

/** Stable type label shown in `--scheme help` output. */
template <typename M>
constexpr const char *
paramTypeName()
{
    if constexpr (std::is_same_v<M, bool>)
        return "bool";
    else if constexpr (std::is_floating_point_v<M>)
        return "float";
    else if constexpr (std::is_signed_v<M>)
        return "int";
    else
        return "uint";
}

/** Render a member's default value for help text. */
template <typename M>
inline std::string
paramValueToString(M value)
{
    if constexpr (std::is_same_v<M, bool>)
        return value ? "true" : "false";
    else
        return std::to_string(value);
}

/** Parse @p text into @p out; InvalidArgument on junk or overflow. */
template <typename M>
inline Result<void>
parseParamValue(const std::string &text, M &out)
{
    if (text.empty())
        return Error(Errc::InvalidArgument, "empty value");
    if constexpr (std::is_same_v<M, bool>) {
        if (text == "1" || text == "true" || text == "on" ||
            text == "yes") {
            out = true;
            return Result<void>();
        }
        if (text == "0" || text == "false" || text == "off" ||
            text == "no") {
            out = false;
            return Result<void>();
        }
        return Error(Errc::InvalidArgument,
                     "'" + text + "' is not a bool (use true/false)");
    } else if constexpr (std::is_floating_point_v<M>) {
        char *end = nullptr;
        const double v = std::strtod(text.c_str(), &end);
        if (end == text.c_str() || *end != '\0')
            return Error(Errc::InvalidArgument,
                         "'" + text + "' is not a number");
        out = static_cast<M>(v);
        return Result<void>();
    } else if constexpr (std::is_signed_v<M>) {
        char *end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 0);
        if (end == text.c_str() || *end != '\0')
            return Error(Errc::InvalidArgument,
                         "'" + text + "' is not an integer");
        if (v < static_cast<long long>(std::numeric_limits<M>::min()) ||
            v > static_cast<long long>(std::numeric_limits<M>::max()))
            return Error(Errc::InvalidArgument,
                         "'" + text + "' is out of range");
        out = static_cast<M>(v);
        return Result<void>();
    } else {
        if (text[0] == '-')
            return Error(Errc::InvalidArgument,
                         "'" + text + "' is negative (key is uint)");
        char *end = nullptr;
        const unsigned long long v =
            std::strtoull(text.c_str(), &end, 0);
        if (end == text.c_str() || *end != '\0')
            return Error(Errc::InvalidArgument,
                         "'" + text + "' is not an unsigned integer");
        if (v > std::numeric_limits<M>::max())
            return Error(Errc::InvalidArgument,
                         "'" + text + "' is out of range");
        out = static_cast<M>(v);
        return Result<void>();
    }
}

} // namespace detail

/**
 * Ordered set of key -> struct-member bindings for one scheme. Built
 * at registration time next to the factory; see file comment.
 *
 * The apply functions capture only member pointers, so a schema is
 * cheap to copy and safe to hand out by value.
 */
class ParamSchema
{
  public:
    /** One accepted key, as shown by `--scheme help`. */
    struct KeyInfo
    {
        std::string key;          ///< user-facing spelling
        std::string type;         ///< "uint" | "int" | "bool" | "float"
        std::string defaultValue; ///< Table II default, rendered
        std::string help;
    };

    /**
     * Bind @p key to member @p member of param struct @p S. The
     * default shown in help text is taken from a default-constructed
     * S, so it always matches what the factory uses.
     */
    template <typename S, typename M>
    ParamSchema &
    field(const std::string &key, M S::*member, const std::string &help)
    {
        KeyInfo info;
        info.key = key;
        info.type = detail::paramTypeName<M>();
        info.defaultValue = detail::paramValueToString(S{}.*member);
        info.help = help;
        return bind(std::move(info),
                    [member](ParamSet &params,
                             const std::string &value) -> Result<void> {
                        M parsed{};
                        Result<void> r =
                            detail::parseParamValue(value, parsed);
                        if (!r.ok())
                            return r;
                        S current = getCurrent<S>(params);
                        current.*member = parsed;
                        setCurrent(params, current);
                        return Result<void>();
                    });
    }

    /**
     * Mount every key of @p component under "@p scope." — the way
     * composite schemes ("CBWS+SMS") expose per-component tuning
     * (`cbws.table-entries=32`, `sms.degree=2`).
     */
    ParamSchema &
    scoped(const std::string &scope, const ParamSchema &component)
    {
        for (const auto &info : component.infos_) {
            KeyInfo mounted = info;
            mounted.key = scope + "." + info.key;
            bind(std::move(mounted),
                 component.apply_.at(info.key));
        }
        return *this;
    }

    bool
    accepts(const std::string &key) const
    {
        return apply_.count(key) != 0;
    }

    /**
     * Parse @p value and write it through @p key's binding into
     * @p params. NotFound when the key is not bound here;
     * InvalidArgument when the value does not parse.
     */
    Result<void>
    apply(ParamSet &params, const std::string &key,
          const std::string &value) const
    {
        const auto it = apply_.find(key);
        if (it == apply_.end())
            return Error(Errc::NotFound,
                         "unknown parameter '" + key + "'");
        Result<void> r = it->second(params, value);
        if (!r.ok())
            return Error(r.error().code,
                         "parameter '" + key +
                             "': " + r.error().message);
        return r;
    }

    /** Accepted keys in declaration order (stable help output). */
    const std::vector<KeyInfo> &keys() const { return infos_; }

    bool empty() const { return infos_.empty(); }

    /** "degree, table-entries, ..." for error messages. */
    std::string
    keyList() const
    {
        std::string out;
        for (const auto &info : infos_)
            out += (out.empty() ? "" : ", ") + info.key;
        return out;
    }

  private:
    using ApplyFn =
        std::function<Result<void>(ParamSet &, const std::string &)>;

    ParamSchema &
    bind(KeyInfo info, ApplyFn fn)
    {
        if (apply_.emplace(info.key, std::move(fn)).second)
            infos_.push_back(std::move(info));
        return *this;
    }

    // Defined in registry.hh once ParamSet is complete.
    template <typename S>
    static S getCurrent(const ParamSet &params);
    template <typename S>
    static void setCurrent(ParamSet &params, const S &value);

    std::vector<KeyInfo> infos_;         ///< declaration order
    std::map<std::string, ApplyFn> apply_; ///< key -> writer
};

} // namespace cbws

#endif // CBWS_PREFETCH_PARAMSCHEMA_HH
