/**
 * @file
 * The cycle-level banked DRAM backend (see ddr.hh for the model).
 */

#include "mem/dram/ddr.hh"

#include <algorithm>
#include <functional>
#include <memory>

#include "base/debug.hh"
#include "base/logging.hh"

namespace cbws
{

DdrBackend::DdrBackend(const HierarchyParams &params)
    : ddr_(params.ddr),
      banks_(ddr_.totalBanks()),
      ranks_(static_cast<std::size_t>(ddr_.channels) *
             ddr_.ranksPerChannel),
      channels_(ddr_.channels)
{
    panic_if(ddr_.channels == 0 || ddr_.ranksPerChannel == 0 ||
                 ddr_.banksPerRank == 0,
             "ddr backend: geometry must be nonzero");
    panic_if(ddr_.rowBytes < LineBytes,
             "ddr backend: rowBytes must hold at least one line");
    panic_if(ddr_.tREFI != 0 && ddr_.tRFC >= ddr_.tREFI,
             "ddr backend: tRFC must be < tREFI");
    panic_if(ddr_.writeLowWatermark >= ddr_.writeHighWatermark,
             "ddr backend: writeLowWatermark must be < "
             "writeHighWatermark");
    if (params.dramMinInterval != 0) {
        // Warn once per process: the legacy flat throttle and the
        // banked model are mutually exclusive bandwidth models.
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("dramMinInterval=%llu is ignored by the ddr backend "
                 "(deprecated flat throttle; bandwidth comes from "
                 "tBURST). Use --dram fixed to keep it.",
                 static_cast<unsigned long long>(
                     params.dramMinInterval));
        }
    }
    stats_.bankRowHits.assign(banks_.size(), 0);
    stats_.bankRowMisses.assign(banks_.size(), 0);
}

void
DdrBackend::resetStats()
{
    stats_ = DramStats();
    stats_.bankRowHits.assign(banks_.size(), 0);
    stats_.bankRowMisses.assign(banks_.size(), 0);
}

DdrBackend::Decoded
DdrBackend::decode(LineAddr line) const
{
    Decoded d;
    std::uint64_t rest = line;
    d.channel = static_cast<unsigned>(rest % ddr_.channels);
    rest /= ddr_.channels;
    rest /= ddr_.linesPerRow(); // column bits: timing-irrelevant
    const unsigned bankInChannel =
        static_cast<unsigned>(rest % ddr_.banksPerChannel());
    rest /= ddr_.banksPerChannel();
    d.row = rest;
    d.bank = d.channel * ddr_.banksPerChannel() + bankInChannel;
    d.rank = d.channel * ddr_.ranksPerChannel +
             bankInChannel / ddr_.banksPerRank;
    return d;
}

void
DdrBackend::retireReads(Channel &ch, Cycle now)
{
    auto &heap = ch.readOutstanding;
    while (!heap.empty() && heap.front() <= now) {
        std::pop_heap(heap.begin(), heap.end(),
                      std::greater<Cycle>());
        heap.pop_back();
    }
}

Cycle
DdrBackend::popEarliestRead(Channel &ch)
{
    auto &heap = ch.readOutstanding;
    const Cycle earliest = heap.front();
    std::pop_heap(heap.begin(), heap.end(), std::greater<Cycle>());
    heap.pop_back();
    return earliest;
}

Cycle
DdrBackend::refreshAdjust(unsigned rank, Cycle t)
{
    if (ddr_.tREFI == 0 || ddr_.tRFC == 0)
        return t;
    Rank &r = ranks_[rank];
    const Cycle epoch = t / ddr_.tREFI;
    if (epoch > r.refreshEpoch) {
        // A refresh happened since this rank was last touched:
        // refresh ends with all banks precharged.
        r.refreshEpoch = epoch;
        const unsigned banksPerRank = ddr_.banksPerRank;
        const unsigned first = rank * banksPerRank;
        for (unsigned b = first; b < first + banksPerRank; ++b)
            banks_[b].openRow = Bank::NoRow;
    }
    // Inside the blackout [n*tREFI, n*tREFI + tRFC)? Wait it out.
    // (Epoch 0 has no refresh: the first falls at tREFI.)
    const Cycle blackoutStart = epoch * ddr_.tREFI;
    if (epoch > 0 && t < blackoutStart + ddr_.tRFC) {
        ++stats_.refreshStalls;
        return blackoutStart + ddr_.tRFC;
    }
    return t;
}

Cycle
DdrBackend::fawAdjust(Rank &rank, Cycle t)
{
    auto &acts = rank.actTimes;
    // Keep the ACT history non-decreasing so the sliding window is
    // well-defined under near-monotone arrivals.
    if (!acts.empty() && t < acts.back())
        t = acts.back();
    if (acts.size() == 4) {
        const Cycle windowEnd = acts.front() + ddr_.tFAW;
        if (t < windowEnd) {
            t = windowEnd;
            ++stats_.fawStalls;
        }
        acts.pop_front();
    }
    acts.push_back(t);
    ++stats_.activates;
    return t;
}

Cycle
DdrBackend::serviceColumn(const Decoded &d, Cycle t, bool is_write)
{
    t = refreshAdjust(d.rank, t);

    Bank &bank = banks_[d.bank];
    Cycle cas;
    if (bank.openRow == d.row) {
        ++stats_.rowHits;
        ++stats_.bankRowHits[d.bank];
        cas = std::max(t, bank.readyAt);
    } else if (bank.openRow != Bank::NoRow) {
        ++stats_.rowMisses;
        ++stats_.bankRowMisses[d.bank];
        const Cycle pre = std::max(t, bank.readyAt);
        const Cycle act =
            fawAdjust(ranks_[d.rank], pre + ddr_.tRP);
        cas = act + ddr_.tRCD;
        bank.openRow = d.row;
    } else {
        ++stats_.rowClosed;
        const Cycle act =
            fawAdjust(ranks_[d.rank], std::max(t, bank.readyAt));
        cas = act + ddr_.tRCD;
        bank.openRow = d.row;
    }

    Channel &ch = channels_[d.channel];
    const Cycle dataReady = cas + ddr_.tCL;
    const Cycle busStart = std::max(dataReady, ch.busFreeAt);
    ch.busFreeAt = busStart + ddr_.tBURST;
    stats_.busBusyCycles += ddr_.tBURST;

    // Next CAS to this bank must leave room for this burst (tCCD).
    bank.readyAt = cas + ddr_.tBURST;

    Cycle completion = busStart + ddr_.tBURST;
    // Per-bank monotonicity clamp: a later request to this bank
    // never completes before an earlier one.
    completion = std::max(completion, bank.lastCompletion);
    bank.lastCompletion = completion;

    DPRINTF(DRAM,
            "%s ch=%u bank=%u row=%llu cas=%llu done=%llu\n",
            is_write ? "WR" : "RD", d.channel, d.bank,
            static_cast<unsigned long long>(d.row),
            static_cast<unsigned long long>(cas),
            static_cast<unsigned long long>(completion));

    return completion;
}

Cycle
DdrBackend::read(const DramRequest &req)
{
    ++stats_.reads;
    const Decoded d = decode(req.line);
    Channel &ch = channels_[d.channel];

    retireReads(ch, req.arrival);
    stats_.readQueueDepthSum += ch.readOutstanding.size();

    Cycle t = req.arrival;

    // Bounded read queue: a full queue back-pressures admission
    // until the earliest outstanding read completes.
    if (ch.readOutstanding.size() >= ddr_.readQueueEntries) {
        ++stats_.readQueueFullStalls;
        while (ch.readOutstanding.size() >= ddr_.readQueueEntries)
            t = std::max(t, popEarliestRead(ch));
    }

    // Bandwidth-aware prefetch throttle: under queue pressure,
    // prefetch-sourced reads wait for demands to drain.
    if (req.isPrefetch && ddr_.prefetchDeferThreshold != 0 &&
        ch.readOutstanding.size() >= ddr_.prefetchDeferThreshold) {
        Cycle deferredTo = t;
        while (ch.readOutstanding.size() >=
               ddr_.prefetchDeferThreshold)
            deferredTo = std::max(deferredTo, popEarliestRead(ch));
        ++stats_.prefetchesDeferred;
        stats_.deferralCycles += deferredTo - t;
        DPRINTF(DRAM, "defer prefetch src=%s by %llu cycles\n",
                toString(req.src),
                static_cast<unsigned long long>(deferredTo - t));
        t = deferredTo;
    }

    // Reads arriving during a write-drain burst wait for it.
    t = std::max(t, ch.drainBusyUntil);

    const Cycle busDone =
        serviceColumn(d, t + ddr_.frontendLatency, false);
    const Cycle completion = busDone + ddr_.backendLatency;

    ch.readOutstanding.push_back(completion);
    std::push_heap(ch.readOutstanding.begin(),
                   ch.readOutstanding.end(), std::greater<Cycle>());

    return completion;
}

void
DdrBackend::write(LineAddr line, Cycle arrival)
{
    ++stats_.writes;
    const Decoded d = decode(line);
    Channel &ch = channels_[d.channel];

    stats_.writeQueueDepthSum += ch.writeQueue.size();
    ch.writeQueue.push_back({line, arrival});

    if (ch.writeQueue.size() >= ddr_.writeHighWatermark ||
        ch.writeQueue.size() >= ddr_.writeQueueEntries)
        drainWrites(ch, arrival);
}

void
DdrBackend::drainWrites(Channel &ch, Cycle now)
{
    ++stats_.writeDrains;
    Cycle t = std::max(now, ch.drainBusyUntil);
    DPRINTF(DRAM, "write drain: %zu buffered at cycle %llu\n",
            ch.writeQueue.size(),
            static_cast<unsigned long long>(t));
    while (ch.writeQueue.size() > ddr_.writeLowWatermark) {
        const BufferedWrite w = ch.writeQueue.front();
        ch.writeQueue.pop_front();
        t = serviceColumn(decode(w.line),
                          std::max(t, w.arrival), true);
    }
    ch.drainBusyUntil = t;
}

unsigned
DdrBackend::readQueueDepth(Cycle now) const
{
    unsigned depth = 0;
    for (const Channel &ch : channels_)
        for (Cycle c : ch.readOutstanding)
            depth += c > now ? 1 : 0;
    return depth;
}

unsigned
DdrBackend::writeQueueDepth(Cycle now) const
{
    (void)now;
    unsigned depth = 0;
    for (const Channel &ch : channels_)
        depth += static_cast<unsigned>(ch.writeQueue.size());
    return depth;
}

CBWS_REGISTER_DRAM_BACKEND(
    ddr, "ddr",
    "cycle-level banked model: channels/ranks/banks, open-page rows, "
    "tRCD/tRP/tCL/tFAW/refresh, read/write queues with write-drain, "
    "FR-FCFS-style scheduling that defers prefetches under queue "
    "pressure",
    [](const HierarchyParams &params) {
        return std::make_unique<DdrBackend>(params);
    })

} // namespace cbws
