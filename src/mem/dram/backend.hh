/**
 * @file
 * Pluggable main-memory timing backends.
 *
 * The hierarchy used to hard-code one flat formula (dramLatency plus
 * an optional global issue throttle). That made prefetch timeliness
 * and bandwidth contention — the effects the paper's Fig. 10-13
 * coverage/accuracy analysis hinges on — invisible below the L2.
 * A DramBackend answers the only question the hierarchy asks of main
 * memory ("a fill request reaches the controller at cycle T; when is
 * its data back at the L2?") while modelling whatever it likes
 * internally: the `fixed` backend reproduces the legacy behaviour
 * bit-for-bit, the `ddr` backend models channels/ranks/banks with
 * open-page row buffers, DDR timing constraints, read/write queues
 * and an FR-FCFS-style scheduler that deprioritises prefetch-sourced
 * requests under queue pressure.
 *
 * Backends register by name in a string-keyed registry (mirroring
 * PrefetcherRegistry) from their own translation units; consumers
 * select one via HierarchyParams::dramBackend ("fixed" is the
 * default) or the `cbws-sim --dram <backend>` flag.
 *
 * Contract required of every backend:
 *  - Deterministic: completion cycles are a pure function of the
 *    request sequence (no wall clock, no randomness), so matrix
 *    results stay bit-identical across --jobs and resume.
 *  - Near-monotone arrivals: the hierarchy issues requests in
 *    simulation order, but arrival stamps may regress by a few cycles
 *    (prefetch issue vs. demand paths add different upstream
 *    latencies). Backends must tolerate that.
 *  - Responses per bank/stream are monotone: a later request to the
 *    same internal resource never completes before an earlier one.
 */

#ifndef CBWS_MEM_DRAM_BACKEND_HH
#define CBWS_MEM_DRAM_BACKEND_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/result.hh"
#include "base/types.hh"

namespace cbws
{

struct HierarchyParams;

/** One fill request as seen by the memory controller. */
struct DramRequest
{
    LineAddr line = 0;
    /** Cycle the request reaches the controller. */
    Cycle arrival = 0;
    /** The fill was initiated by a prefetcher (deprioritisable). */
    bool isPrefetch = false;
    /** Lifecycle attribution of prefetch-initiated fills. */
    PfSource src = PfSource::Unknown;
};

/** Counters every backend maintains (zeros where not modelled). */
struct DramStats
{
    std::uint64_t reads = 0;  ///< fill requests serviced
    std::uint64_t writes = 0; ///< writebacks accepted

    // Row-buffer outcome of each serviced column access.
    std::uint64_t rowHits = 0;   ///< open row matched
    std::uint64_t rowMisses = 0; ///< conflicting row was open
    std::uint64_t rowClosed = 0; ///< bank had no open row

    std::uint64_t activates = 0;     ///< ACT commands issued
    std::uint64_t fawStalls = 0;     ///< ACTs delayed by tFAW
    std::uint64_t refreshStalls = 0; ///< requests delayed by refresh

    /** Prefetch reads deferred by the bandwidth-aware throttle. */
    std::uint64_t prefetchesDeferred = 0;
    /** Total cycles deferred prefetches waited out. */
    std::uint64_t deferralCycles = 0;

    std::uint64_t readQueueFullStalls = 0; ///< admissions blocked
    std::uint64_t writeDrains = 0;         ///< drain bursts entered

    /** Data-bus busy cycles (utilisation = busy / elapsed). */
    std::uint64_t busBusyCycles = 0;

    // Queue-depth-at-arrival accumulators (averages = sum / reads).
    std::uint64_t readQueueDepthSum = 0;
    std::uint64_t writeQueueDepthSum = 0;

    /** Per-bank row-buffer outcomes (empty for flat backends). */
    std::vector<std::uint64_t> bankRowHits;
    std::vector<std::uint64_t> bankRowMisses;

    /** Row hits per column access ([0,1]; 0 when nothing serviced). */
    double
    rowHitRate() const
    {
        const std::uint64_t total = rowHits + rowMisses + rowClosed;
        return total ? static_cast<double>(rowHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    double
    avgReadQueueDepth() const
    {
        return reads ? static_cast<double>(readQueueDepthSum) /
                           static_cast<double>(reads)
                     : 0.0;
    }

    double
    avgWriteQueueDepth() const
    {
        return writes ? static_cast<double>(writeQueueDepthSum) /
                            static_cast<double>(writes)
                      : 0.0;
    }

    /** Exact equality (determinism assertions in tests). */
    bool
    operator==(const DramStats &o) const
    {
        return reads == o.reads && writes == o.writes &&
               rowHits == o.rowHits && rowMisses == o.rowMisses &&
               rowClosed == o.rowClosed &&
               activates == o.activates &&
               fawStalls == o.fawStalls &&
               refreshStalls == o.refreshStalls &&
               prefetchesDeferred == o.prefetchesDeferred &&
               deferralCycles == o.deferralCycles &&
               readQueueFullStalls == o.readQueueFullStalls &&
               writeDrains == o.writeDrains &&
               busBusyCycles == o.busBusyCycles &&
               readQueueDepthSum == o.readQueueDepthSum &&
               writeQueueDepthSum == o.writeQueueDepthSum &&
               bankRowHits == o.bankRowHits &&
               bankRowMisses == o.bankRowMisses;
    }

    bool operator!=(const DramStats &o) const { return !(*this == o); }
};

/**
 * A main-memory timing model. One instance per Hierarchy (per
 * simulation cell), so implementations need no thread safety.
 */
class DramBackend
{
  public:
    virtual ~DramBackend() = default;

    /** Registry name this instance was created under. */
    virtual const char *name() const = 0;

    /**
     * Service a fill request; returns the cycle the line is available
     * at the L2. Must be >= req.arrival and deterministic.
     */
    virtual Cycle read(const DramRequest &req) = 0;

    /**
     * Accept a writeback leaving the L2 at @p arrival. Writes are
     * fire-and-forget for the hierarchy (a store buffer is assumed);
     * backends may queue them and steal read bandwidth to drain.
     */
    virtual void write(LineAddr line, Cycle arrival) = 0;

    /** Reads still outstanding at @p now (snapshot gauge). */
    virtual unsigned readQueueDepth(Cycle now) const
    {
        (void)now;
        return 0;
    }

    /** Writebacks buffered at @p now (snapshot gauge). */
    virtual unsigned writeQueueDepth(Cycle now) const
    {
        (void)now;
        return 0;
    }

    const DramStats &stats() const { return stats_; }

    /** Zero the counters; timing state is preserved (warm-up). */
    virtual void resetStats() { stats_ = DramStats(); }

  protected:
    DramStats stats_;
};

/**
 * String-keyed backend registry, mirroring PrefetcherRegistry: each
 * backend registers a factory from its own translation unit, lookup
 * is case-insensitive, and duplicates warn instead of replacing.
 * Fully inline for the same archive-layout reasons (see
 * prefetch/registry.hh).
 */
class DramBackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<DramBackend>(
        const HierarchyParams &params)>;

    bool
    add(const std::string &name, const std::string &description,
        Factory factory)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto [it, inserted] = entries_.emplace(
            canon(name),
            Entry{name, description, std::move(factory)});
        (void)it;
        if (!inserted)
            warn("dram backend registry: duplicate registration of "
                 "'%s' ignored",
                 name.c_str());
        return inserted;
    }

    /** Instantiate the backend registered under @p name
     *  (case-insensitive). NotFound lists the registered names. */
    Result<std::unique_ptr<DramBackend>>
    create(const std::string &name,
           const HierarchyParams &params) const
    {
        Factory factory;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const auto it = entries_.find(canon(name));
            if (it != entries_.end())
                factory = it->second.factory;
        }
        if (!factory) {
            std::string known;
            for (const auto &n : names())
                known += (known.empty() ? "" : ", ") + n;
            return Error(Errc::NotFound,
                         "no DRAM backend registered as '" + name +
                             "' (registered: " + known + ")");
        }
        return factory(params);
    }

    bool
    contains(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return entries_.count(canon(name)) != 0;
    }

    /** Canonical names, sorted (stable `--dram help` output). */
    std::vector<std::string>
    names() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        std::vector<std::string> out;
        out.reserve(entries_.size());
        for (const auto &entry : entries_)
            out.push_back(entry.second.name);
        return out; // map order == sorted canonical order
    }

    /** Registered description of @p name (empty when unknown). */
    std::string
    describe(const std::string &name) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(canon(name));
        return it == entries_.end() ? std::string()
                                    : it->second.description;
    }

  private:
    struct Entry
    {
        std::string name; ///< canonical display form
        std::string description;
        Factory factory;
    };

    static std::string
    canon(const std::string &name)
    {
        std::string out;
        out.reserve(name.size());
        for (char c : name)
            out.push_back(c >= 'A' && c <= 'Z'
                              ? static_cast<char>(c - 'A' + 'a')
                              : c);
        return out;
    }

    mutable std::mutex mutex_;
    std::map<std::string, Entry> entries_; ///< canon(name) -> entry
};

/** The process-wide registry (safe across static initialisers). */
inline DramBackendRegistry &
dramBackendRegistry()
{
    static DramBackendRegistry registry;
    return registry;
}

/**
 * Self-registration from a backend's translation unit:
 *
 *   CBWS_REGISTER_DRAM_BACKEND(fixed, "fixed", "flat latency",
 *       [](const HierarchyParams &p) {
 *           return std::make_unique<FixedDramBackend>(p);
 *       })
 *
 * @p tag is a C identifier naming the linker anchor.
 */
#define CBWS_REGISTER_DRAM_BACKEND(tag, name, description, ...)        \
    extern "C" char cbwsDramBackendAnchor_##tag;                       \
    char cbwsDramBackendAnchor_##tag = 0;                              \
    namespace {                                                        \
    const bool cbwsDramBackendReg_##tag [[maybe_unused]] =             \
        ::cbws::dramBackendRegistry().add(name, description,           \
                                          __VA_ARGS__);                \
    }

/**
 * Pin a backend's registration TU into the link (static-archive
 * caveat; see prefetch/registry.hh). Lives in an always-linked TU of
 * the consumer — hierarchy.cc pins the built-ins.
 */
#define CBWS_FORCE_LINK_DRAM_BACKEND(tag)                              \
    extern "C" char cbwsDramBackendAnchor_##tag;                       \
    namespace {                                                        \
    [[gnu::used, maybe_unused]] const char                             \
        *const cbwsDramBackendPin_##tag =                              \
            &cbwsDramBackendAnchor_##tag;                              \
    }

} // namespace cbws

#endif // CBWS_MEM_DRAM_BACKEND_HH
