/**
 * @file
 * The `fixed` DRAM backend: the paper's flat-latency main memory,
 * plus the legacy optional global issue throttle (dramMinInterval).
 *
 * This reproduces the pre-backend Hierarchy::dramFillReady behaviour
 * bit-for-bit — same formula, same single piece of state — so the
 * default configuration's results are byte-identical to historical
 * runs. Writebacks are free, exactly as before.
 */

#include <memory>

#include "mem/dram/backend.hh"
#include "mem/params.hh"

namespace cbws
{

namespace
{

class FixedDramBackend : public DramBackend
{
  public:
    explicit FixedDramBackend(const HierarchyParams &params)
        : latency_(params.dramLatency),
          minInterval_(params.dramMinInterval)
    {
    }

    const char *name() const override { return "fixed"; }

    Cycle
    read(const DramRequest &req) override
    {
        ++stats_.reads;
        if (minInterval_ == 0)
            return req.arrival + latency_;
        const Cycle start =
            req.arrival > nextFree_ ? req.arrival : nextFree_;
        nextFree_ = start + minInterval_;
        stats_.busBusyCycles += minInterval_;
        return start + latency_;
    }

    void
    write(LineAddr line, Cycle arrival) override
    {
        // Writebacks cost nothing in the flat model (the legacy
        // behaviour: only byte counters, which the hierarchy keeps).
        (void)line;
        (void)arrival;
        ++stats_.writes;
    }

  private:
    const Cycle latency_;
    const Cycle minInterval_;
    /** Next cycle the DRAM accepts a request (throttle state). */
    Cycle nextFree_ = 0;
};

} // anonymous namespace

CBWS_REGISTER_DRAM_BACKEND(
    fixed, "fixed",
    "flat latency (Table II: 300 cycles) + optional legacy "
    "min-interval throttle; the default, bit-identical to the "
    "paper's model",
    [](const HierarchyParams &params) {
        return std::make_unique<FixedDramBackend>(params);
    })

} // namespace cbws
