/**
 * @file
 * The `ddr` DRAM backend: a cycle-level banked timing model.
 *
 * Geometry: channels x ranks x banks, open-page row-buffer policy.
 * Each fill request decodes to (channel, rank, bank, row) with
 * consecutive lines filling a row before moving to the next bank —
 * the streaming-friendly mapping open-page controllers use — and is
 * scheduled against:
 *
 *  - the bank's row buffer (row hit: CAS only; row miss: PRE + ACT +
 *    CAS; closed bank: ACT + CAS) with tRCD/tRP/tCL timing,
 *  - the rank's four-activate window (tFAW): a 5th ACT inside the
 *    window waits until the oldest of the last four leaves it,
 *  - per-rank refresh: every tREFI cycles the rank is busy for tRFC
 *    and all of its row buffers are closed,
 *  - the channel data bus (tBURST per 64 B line), and
 *  - the controller queues: a bounded read queue (a full queue
 *    back-pressures admission) and a separate write queue drained in
 *    bursts — when buffered writebacks reach the high watermark the
 *    controller switches to write-drain mode, servicing writes
 *    back-to-back down to the low watermark while arriving reads
 *    wait.
 *
 * Scheduling is an FR-FCFS approximation at request granularity:
 * requests are admitted in arrival order, row hits are served at CAS
 * speed while conflicts pay the precharge/activate path, and the
 * scheduler deprioritises prefetch-sourced requests under queue
 * pressure — a prefetch arriving when the read queue holds
 * `prefetchDeferThreshold` or more entries is deferred until the
 * queue drains below the threshold (the bandwidth-aware throttle
 * keyed off the request's PfSource tag). Demands are never deferred.
 *
 * Everything is computed at request time from integer state, so
 * completion cycles are a pure function of the request sequence:
 * deterministic across --jobs counts and checkpoint resume. Per-bank
 * responses are clamped monotone (a later request to a bank never
 * completes before an earlier one).
 */

#ifndef CBWS_MEM_DRAM_DDR_HH
#define CBWS_MEM_DRAM_DDR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/dram/backend.hh"
#include "mem/params.hh"

namespace cbws
{

class DdrBackend : public DramBackend
{
  public:
    explicit DdrBackend(const HierarchyParams &params);

    const char *name() const override { return "ddr"; }

    Cycle read(const DramRequest &req) override;
    void write(LineAddr line, Cycle arrival) override;

    unsigned readQueueDepth(Cycle now) const override;
    unsigned writeQueueDepth(Cycle now) const override;

    void resetStats() override;

    /** The geometry/timing this instance runs with. */
    const DdrParams &timing() const { return ddr_; }

  private:
    /** A line address decoded to its DRAM coordinates. */
    struct Decoded
    {
        unsigned channel = 0;
        unsigned bank = 0; ///< global bank index
        unsigned rank = 0; ///< global rank index
        std::uint64_t row = 0;
    };

    struct Bank
    {
        static constexpr std::uint64_t NoRow = ~std::uint64_t(0);
        std::uint64_t openRow = NoRow;
        /** Earliest cycle the bank accepts its next command. */
        Cycle readyAt = 0;
        /** Monotonicity clamp for responses from this bank. */
        Cycle lastCompletion = 0;
    };

    struct Rank
    {
        /** Completion times of the last <= 4 ACTs (tFAW window). */
        std::deque<Cycle> actTimes;
        /** Last refresh epoch whose row-close was applied. */
        Cycle refreshEpoch = 0;
    };

    struct BufferedWrite
    {
        LineAddr line = 0;
        Cycle arrival = 0;
    };

    struct Channel
    {
        /** Cycle the data bus frees up. */
        Cycle busFreeAt = 0;
        /** End of the write-drain burst in progress, if any. */
        Cycle drainBusyUntil = 0;
        /** Min-heap of outstanding read completion times. */
        std::vector<Cycle> readOutstanding;
        std::deque<BufferedWrite> writeQueue;
    };

    Decoded decode(LineAddr line) const;

    /** Retire outstanding reads completed by @p now. */
    void retireReads(Channel &ch, Cycle now);

    /** Pop the earliest outstanding read; returns its completion. */
    Cycle popEarliestRead(Channel &ch);

    /**
     * Apply refresh to a command wanting to start at @p t on
     * @p rank: advance past an active tRFC blackout and close the
     * rank's row buffers when a new refresh epoch began.
     */
    Cycle refreshAdjust(unsigned rank, Cycle t);

    /** Constrain an ACT at @p t by the rank's tFAW window. */
    Cycle fawAdjust(Rank &rank, Cycle t);

    /**
     * Schedule the bank/bus portion of one column access starting no
     * earlier than @p t; returns the cycle its data leaves the bus.
     * Updates row-buffer state and the row-hit statistics.
     */
    Cycle serviceColumn(const Decoded &d, Cycle t, bool is_write);

    /** Write-drain burst: service buffered writes down to the low
     *  watermark, starting at @p now. */
    void drainWrites(Channel &ch, Cycle now);

    const DdrParams ddr_;
    std::vector<Bank> banks_;       ///< [totalBanks]
    std::vector<Rank> ranks_;       ///< [channels * ranksPerChannel]
    std::vector<Channel> channels_; ///< [channels]
};

} // namespace cbws

#endif // CBWS_MEM_DRAM_DDR_HH
