/**
 * @file
 * Configuration structures for the memory hierarchy, with defaults
 * matching Table II of the paper.
 */

#ifndef CBWS_MEM_PARAMS_HH
#define CBWS_MEM_PARAMS_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace cbws
{

/** Replacement policy selection for a cache. */
enum class ReplPolicy : std::uint8_t
{
    LRU,
    RandomRepl,
};

/** Parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    Cycle latency = 2;
    unsigned mshrs = 4;
    ReplPolicy repl = ReplPolicy::LRU;

    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) *
                            LineBytes);
    }
};

/** Parameters of the whole hierarchy (Table II defaults). */
struct HierarchyParams
{
    CacheParams l1d{"L1D", 32 * 1024, 4, 2, 4, ReplPolicy::LRU};
    CacheParams l1i{"L1I", 32 * 1024, 2, 2, 4, ReplPolicy::LRU};
    CacheParams l2{"L2", 2 * 1024 * 1024, 8, 30, 32, ReplPolicy::LRU};
    /** Fixed main-memory access latency (Table II: 300 cycles). */
    Cycle dramLatency = 300;
    /**
     * Minimum spacing between DRAM request issues, in cycles: a
     * simple bandwidth model (64 B / interval bytes-per-cycle).
     * 0 disables the throttle — the paper's latency-only
     * configuration, and the default for all reproduction benches.
     */
    Cycle dramMinInterval = 0;
    /** Prefetch request queue between prefetcher and L2. */
    unsigned prefetchQueueEntries = 32;
    /** Prefetches issued from the queue per cycle. */
    unsigned prefetchIssuePerCycle = 2;
    /** L2 MSHRs kept free for demand misses: prefetches may not
     *  starve the demand stream. */
    unsigned prefetchMshrReserve = 4;
    /** Also install prefetched lines into the L1D (the paper fills
     *  the L2 only; this is an ablation knob). */
    bool prefetchToL1 = false;
};

} // namespace cbws

#endif // CBWS_MEM_PARAMS_HH
