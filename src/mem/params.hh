/**
 * @file
 * Configuration structures for the memory hierarchy, with defaults
 * matching Table II of the paper.
 */

#ifndef CBWS_MEM_PARAMS_HH
#define CBWS_MEM_PARAMS_HH

#include <cstdint>
#include <string>

#include "base/types.hh"

namespace cbws
{

/** Replacement policy selection for a cache. */
enum class ReplPolicy : std::uint8_t
{
    LRU,
    RandomRepl,
};

/** Parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    Cycle latency = 2;
    unsigned mshrs = 4;
    ReplPolicy repl = ReplPolicy::LRU;

    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(assoc) *
                            LineBytes);
    }
};

/**
 * Timing parameters of the cycle-level `ddr` backend
 * (mem/dram/ddr.hh). All times are core cycles (the simulator has a
 * single clock domain); defaults approximate a DDR4-like part behind
 * a 300-cycle-loaded-latency memory subsystem so the backend is
 * comparable to the paper's Table II flat model.
 */
struct DdrParams
{
    unsigned channels = 1;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    /** Row-buffer capacity; 8 KB = 128 lines per row. */
    std::uint64_t rowBytes = 8 * 1024;

    Cycle tCL = 22;  ///< CAS to first data beat
    Cycle tRCD = 22; ///< ACT to CAS
    Cycle tRP = 22;  ///< PRE to ACT
    /** Data-bus occupancy of one 64 B line; bandwidth = 64/tBURST
     *  bytes per cycle (default 8 B/cycle). */
    Cycle tBURST = 8;
    /** Four-activate window per rank (tFAW). */
    Cycle tFAW = 120;
    /** Refresh interval and duration: every tREFI cycles a rank is
     *  unavailable for tRFC. 0 disables refresh. */
    Cycle tREFI = 3900;
    Cycle tRFC = 180;

    /** Controller pipeline ahead of the first DRAM command. */
    Cycle frontendLatency = 100;
    /** Response path from the data bus back to the L2. */
    Cycle backendLatency = 100;

    unsigned readQueueEntries = 32;
    unsigned writeQueueEntries = 64;
    /** Buffered writes that trigger / end a write-drain burst. */
    unsigned writeHighWatermark = 48;
    unsigned writeLowWatermark = 16;
    /**
     * Read-queue occupancy at which prefetch-sourced requests are
     * deferred behind demands (the bandwidth-aware throttle keyed
     * off PfSource). 0 disables deferral.
     */
    unsigned prefetchDeferThreshold = 16;

    std::uint64_t linesPerRow() const { return rowBytes / LineBytes; }
    unsigned banksPerChannel() const
    {
        return ranksPerChannel * banksPerRank;
    }
    unsigned totalBanks() const
    {
        return channels * banksPerChannel();
    }
};

/** Parameters of the whole hierarchy (Table II defaults). */
struct HierarchyParams
{
    CacheParams l1d{"L1D", 32 * 1024, 4, 2, 4, ReplPolicy::LRU};
    CacheParams l1i{"L1I", 32 * 1024, 2, 2, 4, ReplPolicy::LRU};
    CacheParams l2{"L2", 2 * 1024 * 1024, 8, 30, 32, ReplPolicy::LRU};
    /**
     * Simulated cores sharing this hierarchy. Each core owns a private
     * L1I/L1D (and their MSHR files); the L2, the prefetch queue and
     * the DRAM backend are shared. 1 preserves the paper's single-core
     * system bit-for-bit (no banking, no interference accounting).
     */
    unsigned numCores = 1;
    /**
     * Shared-L2 banks arbitrating concurrent accesses when
     * numCores > 1: each bank accepts one access per cycle, later
     * same-cycle accesses to a busy bank queue behind it. Single-core
     * runs bypass the arbiter entirely.
     */
    unsigned l2Banks = 4;
    /**
     * Entries of the prefetch-pollution filter that remembers lines
     * recently evicted by prefetch fills (per owner core) so demand
     * misses on them can be attributed as cross-core pollution.
     * Only allocated when numCores > 1.
     */
    unsigned pollutionFilterEntries = 4096;
    /**
     * Main-memory timing backend (mem/dram/backend.hh registry
     * name). "fixed" reproduces the paper's flat-latency model
     * bit-for-bit; "ddr" is the cycle-level banked model.
     */
    std::string dramBackend = "fixed";
    /** Fixed main-memory access latency (Table II: 300 cycles). */
    Cycle dramLatency = 300;
    /**
     * DEPRECATED: minimum spacing between DRAM request issues, in
     * cycles — the legacy flat bandwidth model (64 B / interval
     * bytes-per-cycle). Honoured only by the `fixed` backend, so a
     * run has exactly one bandwidth model; the `ddr` backend warns
     * once and ignores it. 0 disables the throttle — the paper's
     * latency-only configuration, and the default for all
     * reproduction benches.
     */
    Cycle dramMinInterval = 0;
    /** Timing of the `ddr` backend (unused by `fixed`). */
    DdrParams ddr;
    /** Prefetch request queue between prefetcher and L2. */
    unsigned prefetchQueueEntries = 32;
    /** Prefetches issued from the queue per cycle. */
    unsigned prefetchIssuePerCycle = 2;
    /** L2 MSHRs kept free for demand misses: prefetches may not
     *  starve the demand stream. */
    unsigned prefetchMshrReserve = 4;
    /** Also install prefetched lines into the L1D (the paper fills
     *  the L2 only; this is an ablation knob). */
    bool prefetchToL1 = false;
};

} // namespace cbws

#endif // CBWS_MEM_PARAMS_HH
