#include "mem/mshr.hh"

#include "base/logging.hh"

namespace cbws
{

MshrFile::Entry *
MshrFile::find(LineAddr line)
{
    for (auto &e : entries_)
        if (e.valid && e.line == line)
            return &e;
    return nullptr;
}

const MshrFile::Entry *
MshrFile::find(LineAddr line) const
{
    for (const auto &e : entries_)
        if (e.valid && e.line == line)
            return &e;
    return nullptr;
}

MshrFile::Entry &
MshrFile::allocate(LineAddr line, Cycle ready_at, bool is_prefetch,
                   bool is_write)
{
    panic_if(find(line) != nullptr,
             "MSHR double-allocation for line %llx",
             static_cast<unsigned long long>(line));
    for (auto &e : entries_) {
        if (!e.valid) {
            e.valid = true;
            e.line = line;
            e.readyAt = ready_at;
            e.isPrefetch = is_prefetch;
            e.isWrite = is_write;
            e.demanded = false;
            e.pfSource = PfSource::Unknown;
            e.pfId = 0;
            e.firstDemandAt = 0;
            ++numValid_;
            if (ready_at < nextReady_)
                nextReady_ = ready_at;
            return e;
        }
    }
    panic("MSHR allocation with a full file");
}

void
MshrFile::clear()
{
    for (auto &e : entries_)
        e.valid = false;
    numValid_ = 0;
    nextReady_ = NoEvent;
}

} // namespace cbws
