#include "mem/cache.hh"

#include "base/logging.hh"

namespace cbws
{

Cache::Cache(const CacheParams &params, std::uint64_t repl_seed)
    : params_(params), replRng_(repl_seed)
{
    const std::uint64_t num_sets = params_.numSets();
    fatal_if(num_sets == 0 || !isPowerOf2(num_sets),
             "%s: number of sets (%llu) must be a non-zero power of 2",
             params_.name.c_str(),
             static_cast<unsigned long long>(num_sets));
    numSets_ = static_cast<std::size_t>(num_sets);
    assoc_ = params_.assoc;
    ways_.assign(numSets_ * assoc_, Way());
    setMask_ = num_sets - 1;
}

Cache::Way *
Cache::setFor(LineAddr line)
{
    return &ways_[(line & setMask_) * assoc_];
}

const Cache::Way *
Cache::setFor(LineAddr line) const
{
    return &ways_[(line & setMask_) * assoc_];
}

Cache::Way *
Cache::findWay(LineAddr line)
{
    // Invalid ways hold the NoLine sentinel, so the tag compare alone
    // decides — one branch per way on the simulator's hottest path.
    Way *set = setFor(line);
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].line == line)
            return &set[w];
    return nullptr;
}

const Cache::Way *
Cache::findWay(LineAddr line) const
{
    const Way *set = setFor(line);
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].line == line)
            return &set[w];
    return nullptr;
}

bool
Cache::access(LineAddr line, Cycle now, bool is_write)
{
    Way *way = findWay(line);
    if (!way)
        return false;
    way->lastTouch = now;
    way->usedAfterPrefetch = true;
    if (is_write)
        way->dirty = true;
    return true;
}

Cache::Probe
Cache::accessClassify(LineAddr line, Cycle now, bool is_write)
{
    Probe probe;
    Way *way = findWay(line);
    if (!way)
        return probe;
    probe.hit = true;
    probe.wasUnusedPrefetch =
        way->prefetched && !way->usedAfterPrefetch;
    if (probe.wasUnusedPrefetch)
        probe.pfSource = way->pfSource;
    way->lastTouch = now;
    way->usedAfterPrefetch = true;
    if (is_write)
        way->dirty = true;
    return probe;
}

bool
Cache::contains(LineAddr line) const
{
    return findWay(line) != nullptr;
}

bool
Cache::isUnusedPrefetch(LineAddr line) const
{
    const Way *way = findWay(line);
    return way && way->prefetched && !way->usedAfterPrefetch;
}

PfSource
Cache::prefetchSource(LineAddr line) const
{
    const Way *way = findWay(line);
    return way && way->prefetched ? way->pfSource : PfSource::Unknown;
}

Cache::Victim
Cache::insert(LineAddr line, Cycle now, bool prefetched, PfSource src,
              std::uint8_t owner)
{
    Way *set = setFor(line);

    // Refill of a line that is somehow already present: refresh it.
    if (Way *way = findWay(line)) {
        way->lastTouch = now;
        return Victim{};
    }

    // Prefer an invalid way.
    Way *victim_way = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!set[w].valid) {
            victim_way = &set[w];
            break;
        }
    }

    Victim victim;
    if (!victim_way) {
        if (params_.repl == ReplPolicy::RandomRepl) {
            victim_way = &set[replRng_.below(assoc_)];
        } else {
            victim_way = &set[0];
            for (unsigned w = 0; w < assoc_; ++w)
                if (set[w].lastTouch < victim_way->lastTouch)
                    victim_way = &set[w];
        }
        victim.valid = true;
        victim.line = victim_way->line;
        victim.dirty = victim_way->dirty;
        victim.prefetched = victim_way->prefetched;
        victim.usedAfterPrefetch = victim_way->usedAfterPrefetch;
        victim.pfSource = victim_way->pfSource;
        victim.ownerCore = victim_way->ownerCore;
    }

    victim_way->line = line;
    victim_way->valid = true;
    victim_way->dirty = false;
    victim_way->prefetched = prefetched;
    victim_way->usedAfterPrefetch = false;
    victim_way->pfSource = prefetched ? src : PfSource::Unknown;
    victim_way->ownerCore = owner;
    victim_way->lastTouch = now;
    return victim;
}

Cache::Victim
Cache::invalidate(LineAddr line)
{
    Victim victim;
    if (Way *way = findWay(line)) {
        victim.valid = true;
        victim.line = way->line;
        victim.dirty = way->dirty;
        victim.prefetched = way->prefetched;
        victim.usedAfterPrefetch = way->usedAfterPrefetch;
        victim.pfSource = way->pfSource;
        victim.ownerCore = way->ownerCore;
        way->valid = false;
        way->dirty = false;
        way->line = NoLine;
    }
    return victim;
}

void
Cache::setDirty(LineAddr line)
{
    if (Way *way = findWay(line))
        way->dirty = true;
}

std::uint64_t
Cache::countUnusedPrefetched() const
{
    std::uint64_t count = 0;
    for (const auto &way : ways_)
        if (way.valid && way.prefetched && !way.usedAfterPrefetch)
            ++count;
    return count;
}

void
Cache::countUnusedPrefetchedBySource(std::uint64_t *counts) const
{
    for (const auto &way : ways_)
        if (way.valid && way.prefetched && !way.usedAfterPrefetch)
            ++counts[static_cast<unsigned>(way.pfSource)];
}

void
Cache::countResidentByOwner(std::uint64_t *counts,
                            unsigned num_cores) const
{
    for (const auto &way : ways_)
        if (way.valid) {
            unsigned owner = way.ownerCore;
            if (owner >= num_cores)
                owner = num_cores - 1;
            ++counts[owner];
        }
}

} // namespace cbws
