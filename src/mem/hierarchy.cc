#include "mem/hierarchy.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"

namespace cbws
{

namespace
{

/** Event/trace label of a demand classification. */
const char *
className(DemandClass cls)
{
    switch (cls) {
      case DemandClass::CachedHit:
        return "hit";
      case DemandClass::Timely:
        return "hit:timely-pf";
      case DemandClass::Shorter:
        return "miss:late-pf";
      case DemandClass::NonTimely:
        return "miss:nontimely-pf";
      case DemandClass::Missing:
        return "miss";
      default:
        return "none";
    }
}

} // anonymous namespace

// The built-in backends live in their own TUs inside a static
// archive; pin them into any link that uses the hierarchy.
CBWS_FORCE_LINK_DRAM_BACKEND(fixed)
CBWS_FORCE_LINK_DRAM_BACKEND(ddr)

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params),
      l1d_(params.l1d, 0x11d),
      l1i_(params.l1i, 0x111),
      l2_(params.l2, 0x122),
      l1dMshr_(params.l1d.mshrs),
      l1iMshr_(params.l1i.mshrs),
      l2Mshr_(params.l2.mshrs)
{
    auto backend =
        dramBackendRegistry().create(params.dramBackend, params);
    if (!backend.ok())
        panic("hierarchy: %s", backend.error().str().c_str());
    dram_ = std::move(backend).value();
}

void
Hierarchy::recordLateness(PfSource src, Cycle lateness)
{
    stats_.pfLife[static_cast<unsigned>(src)].latenessCycles +=
        lateness;
    unsigned bucket = 0;
    if (lateness > 0)
        bucket = floorLog2(lateness) + 1;
    if (bucket >= LatenessBuckets)
        bucket = LatenessBuckets - 1;
    ++stats_.latenessHist[bucket];
}

void
Hierarchy::drainL2(Cycle now)
{
    l2Mshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        const bool prefetched = e.isPrefetch && !e.demanded;
        if (e.isPrefetch) {
            auto &life = stats_.pfLife[static_cast<unsigned>(
                e.pfSource)];
            ++life.filled;
            if (e.demanded) {
                // The demand merged into the fill while it was in
                // flight: useful but late by the wait it imposed.
                ++life.demandHitLate;
                recordLateness(e.pfSource, e.readyAt > e.firstDemandAt
                                               ? e.readyAt -
                                                     e.firstDemandAt
                                               : 0);
            }
            DPRINTF(Prefetch,
                    "fill line=%#llx src=%s id=%llu%s",
                    static_cast<unsigned long long>(e.line),
                    toString(e.pfSource),
                    static_cast<unsigned long long>(e.pfId),
                    e.demanded ? " (late: demand waited)" : "");
        }
        Cache::Victim victim =
            l2_.insert(e.line, now, prefetched, e.pfSource);
        if (prefetched && params_.prefetchToL1) {
            // Ablation: fill the L1D as well (evictions write back
            // into the inclusive L2, which now holds the line).
            Cache::Victim l1v =
                l1d_.insert(e.line, now, true, e.pfSource);
            if (l1v.valid && l1v.dirty)
                l2_.setDirty(l1v.line);
        }
        if (e.isPrefetch && e.demanded) {
            // The prefetch was useful while still in flight; mark the
            // line as used so it is not later counted as wrong.
            l2_.access(e.line, now, e.isWrite);
        } else if (e.isWrite) {
            l2_.setDirty(e.line);
        }
        if (victim.valid) {
            if (victim.prefetched && !victim.usedAfterPrefetch) {
                ++stats_.wrongPrefetches;
                ++stats_
                      .pfLife[static_cast<unsigned>(victim.pfSource)]
                      .evictedUnused;
                DPRINTF(Prefetch, "evict-unused line=%#llx src=%s",
                        static_cast<unsigned long long>(victim.line),
                        toString(victim.pfSource));
                if (trace_ && trace_->wants(now)) {
                    trace_->instant("prefetch", "evict-unused",
                                    TraceTrack::Prefetch, now,
                                    victim.line);
                }
            }
            if (victim.dirty) {
                stats_.dramBytesWritten += LineBytes;
                dram_->write(victim.line, now);
            }
            // Inclusive L2: evictions invalidate the L1 copies.
            Cache::Victim l1v = l1d_.invalidate(victim.line);
            if (l1v.valid && l1v.dirty) {
                stats_.dramBytesWritten += LineBytes;
                dram_->write(l1v.line, now);
            }
            l1i_.invalidate(victim.line);
            DPRINTF(Cache, "L2 evict line=%#llx%s",
                    static_cast<unsigned long long>(victim.line),
                    victim.dirty ? " (writeback)" : "");
        }
    });
}

void
Hierarchy::drainL1(Cycle now)
{
    l1dMshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        Cache::Victim victim = l1d_.insert(e.line, now, false);
        if (e.isWrite)
            l1d_.setDirty(e.line);
        if (victim.valid && victim.dirty) {
            // Writeback into the (inclusive) L2.
            if (l2_.contains(victim.line)) {
                l2_.setDirty(victim.line);
            } else {
                stats_.dramBytesWritten += LineBytes;
                dram_->write(victim.line, now);
            }
        }
    });
    l1iMshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        l1i_.insert(e.line, now, false);
    });
}

void
Hierarchy::issuePrefetches(Cycle now)
{
    unsigned issued = 0;
    while (!prefetchQueue_.empty() &&
           issued < params_.prefetchIssuePerCycle) {
        const QueuedPrefetch &req = prefetchQueue_.front();
        if (l2_.contains(req.line) || l2Mshr_.find(req.line)) {
            ++stats_.prefetchesFiltered;
            ++stats_.pfLife[static_cast<unsigned>(req.src)].merged;
            DPRINTF(Prefetch, "merge-at-issue line=%#llx src=%s "
                    "id=%llu (already cached/in flight)",
                    static_cast<unsigned long long>(req.line),
                    toString(req.src),
                    static_cast<unsigned long long>(req.id));
            queuedLines_.erase(req.line);
            prefetchQueue_.pop_front();
            continue;
        }
        if (l2Mshr_.inFlight() + params_.prefetchMshrReserve >=
            params_.l2.mshrs) {
            break; // leave room for demand misses; retry next cycle
        }
        const Cycle ready = dram_->read(
            {req.line, now + params_.l2.latency,
             /*isPrefetch=*/true, req.src});
        MshrFile::Entry &e =
            l2Mshr_.allocate(req.line, ready,
                             /*is_prefetch=*/true, /*is_write=*/false);
        e.pfSource = req.src;
        e.pfId = req.id;
        stats_.dramBytesRead += LineBytes;
        ++stats_.prefetchesIssued;
        ++issued;
        DPRINTF(Prefetch, "issue line=%#llx src=%s id=%llu readyAt=%llu",
                static_cast<unsigned long long>(req.line),
                toString(req.src),
                static_cast<unsigned long long>(req.id),
                static_cast<unsigned long long>(ready));
        if (trace_ && trace_->wants(now)) {
            trace_->complete("prefetch", toString(req.src),
                             TraceTrack::Prefetch, now, ready - now,
                             req.line);
        }
        queuedLines_.erase(req.line);
        prefetchQueue_.pop_front();
    }
}

void
Hierarchy::tick(Cycle now)
{
    if (__builtin_expect(debug::state.anyEnabled, 0))
        debug::setCycle(now);
    drainL2(now);
    drainL1(now);
    if (!prefetchQueue_.empty())
        issuePrefetches(now);
}

bool
Hierarchy::prefetchQueued(LineAddr line) const
{
    return queuedLines_.count(line) != 0;
}

void
Hierarchy::mergeQueuedPrefetch(LineAddr line, Cycle now)
{
    if (!prefetchQueued(line))
        return;
    auto it = std::find_if(prefetchQueue_.begin(),
                           prefetchQueue_.end(),
                           [line](const QueuedPrefetch &q) {
                               return q.line == line;
                           });
    if (it == prefetchQueue_.end())
        return;
    ++stats_.pfLife[static_cast<unsigned>(it->src)].merged;
    DPRINTF(Prefetch,
            "merge-by-demand line=%#llx src=%s id=%llu (non-timely)",
            static_cast<unsigned long long>(line), toString(it->src),
            static_cast<unsigned long long>(it->id));
    if (trace_ && trace_->wants(now)) {
        trace_->instant("prefetch", "overtaken-by-demand",
                        TraceTrack::Prefetch, now, line);
    }
    queuedLines_.erase(line);
    prefetchQueue_.erase(it);
}

Cycle
Hierarchy::l2DemandAccess(LineAddr line, Cycle t_l2, bool is_write,
                          bool is_data, DemandClass &cls, bool &stall)
{
    stall = false;
    if (is_data)
        ++stats_.demandL2Accesses;

    // Hit in the L2 arrays?
    const bool was_unused_prefetch = l2_.isUnusedPrefetch(line);
    if (l2_.access(line, t_l2, is_write)) {
        if (was_unused_prefetch) {
            cls = DemandClass::Timely;
            const PfSource src = l2_.prefetchSource(line);
            ++stats_.pfLife[static_cast<unsigned>(src)]
                  .demandHitTimely;
            recordLateness(src, 0);
            DPRINTF(Prefetch, "demand-hit-timely line=%#llx src=%s",
                    static_cast<unsigned long long>(line),
                    toString(src));
        } else {
            cls = DemandClass::CachedHit;
        }
        return t_l2 + params_.l2.latency;
    }

    // Merge into an in-flight fill?
    if (MshrFile::Entry *e = l2Mshr_.find(line)) {
        cls = e->isPrefetch && !e->demanded ? DemandClass::Shorter
                                            : DemandClass::Missing;
        if (!e->demanded)
            e->firstDemandAt = t_l2;
        e->demanded = true;
        e->isWrite |= is_write;
        return std::max(e->readyAt, t_l2 + params_.l2.latency);
    }

    // Identified by the prefetcher but the request is still queued:
    // the demand takes over (non-timely prefetch).
    if (prefetchQueued(line)) {
        mergeQueuedPrefetch(line, t_l2);
        cls = DemandClass::NonTimely;
    } else {
        cls = DemandClass::Missing;
    }

    if (l2Mshr_.full()) {
        stall = true;
        DPRINTF(MSHR, "L2 MSHR full: stalling demand line=%#llx",
                static_cast<unsigned long long>(line));
        return 0;
    }
    const Cycle ready = dram_->read(
        {line, t_l2 + params_.l2.latency,
         /*isPrefetch=*/false, PfSource::Unknown});
    l2Mshr_.allocate(line, ready, /*is_prefetch=*/false, is_write);
    if (is_data)
        ++stats_.llcDemandMisses;
    stats_.dramBytesRead += LineBytes;
    return ready;
}

AccessOutcome
Hierarchy::demandAccess(LineAddr line, Cycle now, bool is_write,
                        bool is_data, bool can_stall)
{
    tick(now);

    Cache &l1 = is_data ? l1d_ : l1i_;
    MshrFile &l1m = is_data ? l1dMshr_ : l1iMshr_;
    const CacheParams &l1p = is_data ? params_.l1d : params_.l1i;

    if (is_data)
        ++stats_.l1dAccesses;
    else
        ++stats_.l1iAccesses;

    AccessOutcome out;
    if (l1.access(line, now, is_write)) {
        out.l1Hit = true;
        out.readyAt = now + l1p.latency;
        return out;
    }
    if (is_data)
        ++stats_.l1dMisses;
    else
        ++stats_.l1iMisses;

    // Merge into an in-flight L1 fill: the L2-level classification
    // already happened when the primary miss went out.
    if (MshrFile::Entry *e = l1m.find(line)) {
        e->isWrite |= is_write;
        out.readyAt = std::max(e->readyAt, now + l1p.latency);
        return out;
    }

    if (l1m.full()) {
        if (can_stall) {
            ++stats_.mshrStalls;
            out.ok = false;
            // Undo the access counts so the retry is not
            // double-counted.
            if (is_data) {
                --stats_.l1dMisses;
                --stats_.l1dAccesses;
            } else {
                --stats_.l1iMisses;
                --stats_.l1iAccesses;
            }
            return out;
        }
        // Non-stalling requester (stores): account the L2 access for
        // MPKI purposes but skip the fill.
        bool stall = false;
        DemandClass cls = DemandClass::None;
        Cycle ready = l2DemandAccess(line, now + l1p.latency, is_write,
                                     is_data, cls, stall);
        if (!stall && is_data && cls != DemandClass::None)
            ++stats_.classCounts[static_cast<int>(cls)];
        out.readyAt = stall ? now + l1p.latency : ready;
        out.cls = cls;
        return out;
    }

    bool stall = false;
    DemandClass cls = DemandClass::None;
    const Cycle l2_ready = l2DemandAccess(line, now + l1p.latency,
                                          is_write, is_data, cls, stall);
    if (stall) {
        if (can_stall) {
            ++stats_.mshrStalls;
            out.ok = false;
            // Undo the demand-access count so the retry is not
            // double-counted.
            if (is_data) {
                --stats_.demandL2Accesses;
                --stats_.l1dMisses;
                --stats_.l1dAccesses;
            } else {
                --stats_.l1iMisses;
                --stats_.l1iAccesses;
            }
            return out;
        }
        out.readyAt = now + l1p.latency;
        return out;
    }
    if (is_data && cls != DemandClass::None) {
        ++stats_.classCounts[static_cast<int>(cls)];
        DPRINTF(Cache, "demand %s line=%#llx -> %s readyAt=%llu",
                is_write ? "store" : "load",
                static_cast<unsigned long long>(line), className(cls),
                static_cast<unsigned long long>(l2_ready));
        if (trace_ && cls != DemandClass::CachedHit &&
            trace_->wants(now)) {
            trace_->complete("cache", className(cls),
                             TraceTrack::Cache, now,
                             l2_ready > now ? l2_ready - now : 1,
                             line);
        }
    }

    const Cycle l1_ready = l2_ready + l1p.latency;
    l1m.allocate(line, l1_ready, /*is_prefetch=*/false, is_write);
    out.readyAt = l1_ready;
    out.cls = cls;
    return out;
}

AccessOutcome
Hierarchy::load(Addr addr, Cycle now)
{
    return demandAccess(lineOf(addr), now, /*is_write=*/false,
                        /*is_data=*/true, /*can_stall=*/true);
}

AccessOutcome
Hierarchy::store(Addr addr, Cycle now)
{
    return demandAccess(lineOf(addr), now, /*is_write=*/true,
                        /*is_data=*/true, /*can_stall=*/false);
}

AccessOutcome
Hierarchy::fetch(Addr pc, Cycle now)
{
    return demandAccess(lineOf(pc), now, /*is_write=*/false,
                        /*is_data=*/false, /*can_stall=*/true);
}

void
Hierarchy::enqueuePrefetch(LineAddr line, PfSource src)
{
    ++stats_.prefetchesRequested;
    auto &life = stats_.pfLife[static_cast<unsigned>(src)];
    ++life.issued;
    const std::uint64_t id = nextPfId_++;
    if (l2_.contains(line) || l2Mshr_.find(line) ||
        prefetchQueued(line)) {
        ++stats_.prefetchesFiltered;
        ++life.merged;
        DPRINTF(Prefetch, "merge-at-enqueue line=%#llx src=%s id=%llu",
                static_cast<unsigned long long>(line), toString(src),
                static_cast<unsigned long long>(id));
        return;
    }
    if (prefetchQueue_.size() >= params_.prefetchQueueEntries) {
        const QueuedPrefetch &old = prefetchQueue_.front();
        ++stats_.prefetchesDropped;
        ++stats_.pfLife[static_cast<unsigned>(old.src)].dropped;
        DPRINTF(Prefetch, "drop line=%#llx src=%s id=%llu (overflow)",
                static_cast<unsigned long long>(old.line),
                toString(old.src),
                static_cast<unsigned long long>(old.id));
        queuedLines_.erase(old.line);
        prefetchQueue_.pop_front();
    }
    DPRINTF(Prefetch, "enqueue line=%#llx src=%s id=%llu",
            static_cast<unsigned long long>(line), toString(src),
            static_cast<unsigned long long>(id));
    queuedLines_.insert(line);
    prefetchQueue_.push_back(QueuedPrefetch{line, src, id});
}

bool
Hierarchy::isCachedOrInFlightL2(LineAddr line) const
{
    return l2_.contains(line) || l2Mshr_.find(line) != nullptr;
}

bool
Hierarchy::isCachedL1D(LineAddr line) const
{
    return l1d_.contains(line);
}

Cycle
Hierarchy::nextEventCycle() const
{
    Cycle next = l2Mshr_.nextReady();
    if (l1dMshr_.nextReady() < next)
        next = l1dMshr_.nextReady();
    if (l1iMshr_.nextReady() < next)
        next = l1iMshr_.nextReady();
    return next;
}

bool
Hierarchy::prefetchWorkPending() const
{
    return !prefetchQueue_.empty() &&
           l2Mshr_.inFlight() + params_.prefetchMshrReserve <
           params_.l2.mshrs;
}

void
Hierarchy::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    stats_.wrongPrefetches += l2_.countUnusedPrefetched();

    // Lifecycle epilogue: settle every request that is still somewhere
    // in the machine so the conservation laws close.
    std::uint64_t resident[NumPfSources] = {};
    l2_.countUnusedPrefetchedBySource(resident);
    for (unsigned s = 0; s < NumPfSources; ++s)
        stats_.pfLife[s].residentAtEnd += resident[s];

    // In-flight prefetch fills: account them as if the fill completed
    // (the DRAM read already happened).
    for (const auto &e : l2Mshr_.entries()) {
        if (!e.valid || !e.isPrefetch)
            continue;
        auto &life = stats_.pfLife[static_cast<unsigned>(e.pfSource)];
        ++life.filled;
        if (e.demanded) {
            ++life.demandHitLate;
            recordLateness(e.pfSource,
                           e.readyAt > e.firstDemandAt
                               ? e.readyAt - e.firstDemandAt
                               : 0);
        } else {
            ++life.residentAtEnd;
        }
    }

    // Requests still queued never reached memory at all.
    for (const auto &req : prefetchQueue_) {
        ++stats_.pfLife[static_cast<unsigned>(req.src)].dropped;
    }
    prefetchQueue_.clear();
    queuedLines_.clear();

    DPRINTF(Sim, "hierarchy finalized: %llu wrong prefetches",
            static_cast<unsigned long long>(stats_.wrongPrefetches));
}

} // namespace cbws
