#include "mem/hierarchy.hh"

#include <algorithm>

#include "base/debug.hh"
#include "base/logging.hh"
#include "base/profiler.hh"

namespace cbws
{

namespace
{

/** Event/trace label of a demand classification. */
const char *
className(DemandClass cls)
{
    switch (cls) {
      case DemandClass::CachedHit:
        return "hit";
      case DemandClass::Timely:
        return "hit:timely-pf";
      case DemandClass::Shorter:
        return "miss:late-pf";
      case DemandClass::NonTimely:
        return "miss:nontimely-pf";
      case DemandClass::Missing:
        return "miss";
      default:
        return "none";
    }
}

} // anonymous namespace

// The built-in backends live in their own TUs inside a static
// archive; pin them into any link that uses the hierarchy.
CBWS_FORCE_LINK_DRAM_BACKEND(fixed)
CBWS_FORCE_LINK_DRAM_BACKEND(ddr)

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params),
      l2_(params.l2, 0x122),
      l2Mshr_(params.l2.mshrs)
{
    fatal_if(params_.numCores == 0, "hierarchy: numCores must be >= 1");
    fatal_if(params_.numCores > 1 && params_.l2Banks == 0,
             "hierarchy: l2Banks must be >= 1 for multicore");
    // Core 0 keeps the historic replacement seeds so a one-core
    // hierarchy is bit-identical to the original single-core model.
    for (unsigned c = 0; c < params_.numCores; ++c) {
        l1d_.emplace_back(params_.l1d, 0x11d + c);
        l1i_.emplace_back(params_.l1i, 0x111 + c);
        l1dMshr_.emplace_back(params_.l1d.mshrs);
        l1iMshr_.emplace_back(params_.l1i.mshrs);
    }
    if (params_.numCores > 1) {
        bankBusyUntil_.assign(params_.l2Banks, 0);
        stats_.perCore.resize(params_.numCores);
    }
    auto backend =
        dramBackendRegistry().create(params.dramBackend, params);
    if (!backend.ok())
        panic("hierarchy: %s", backend.error().str().c_str());
    dram_ = std::move(backend).value();
}

Cycle
Hierarchy::arbitrateL2(LineAddr line, Cycle t)
{
    if (bankBusyUntil_.empty())
        return t;
    Cycle &busy = bankBusyUntil_[line % bankBusyUntil_.size()];
    Cycle start = t;
    if (busy > start) {
        start = busy;
        ++stats_.l2BankConflicts;
    }
    busy = start + 1;
    return start;
}

void
Hierarchy::recordPollutionEviction(LineAddr victim, unsigned aggressor)
{
    if (params_.numCores <= 1 || params_.pollutionFilterEntries == 0)
        return;
    // Bound the filter FIFO-style. Stale FIFO entries (already erased
    // on a pollution hit) just fall out without touching the map.
    while (pollutionFifo_.size() >= params_.pollutionFilterEntries) {
        pollutionMap_.erase(pollutionFifo_.front());
        pollutionFifo_.pop_front();
    }
    auto [it, inserted] = pollutionMap_.emplace(
        victim, static_cast<std::uint8_t>(aggressor));
    if (inserted)
        pollutionFifo_.push_back(victim);
    else
        it->second = static_cast<std::uint8_t>(aggressor);
}

void
Hierarchy::attributePollution(LineAddr line, unsigned core)
{
    if (pollutionMap_.empty())
        return;
    auto it = pollutionMap_.find(line);
    if (it == pollutionMap_.end())
        return;
    const unsigned aggressor = it->second;
    pollutionMap_.erase(it);
    if (aggressor == core)
        return; // a core thrashing itself is not interference
    ++stats_.crossCorePollutionMisses;
    stats_.perCore[core].pollutionVictimMisses++;
    stats_.perCore[aggressor].pollutionCausedMisses++;
    DPRINTF(Prefetch,
            "pollution miss line=%#llx victim-core=%u aggressor=%u",
            static_cast<unsigned long long>(line), core, aggressor);
}

void
Hierarchy::recordLateness(PfSource src, Cycle lateness)
{
    stats_.pfLife[static_cast<unsigned>(src)].latenessCycles +=
        lateness;
    unsigned bucket = 0;
    if (lateness > 0)
        bucket = floorLog2(lateness) + 1;
    if (bucket >= LatenessBuckets)
        bucket = LatenessBuckets - 1;
    ++stats_.latenessHist[bucket];
}

void
Hierarchy::drainL2(Cycle now)
{
    l2Mshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        const bool prefetched = e.isPrefetch && !e.demanded;
        if (e.isPrefetch) {
            auto &life = stats_.pfLife[static_cast<unsigned>(
                e.pfSource)];
            ++life.filled;
            if (e.demanded) {
                // The demand merged into the fill while it was in
                // flight: useful but late by the wait it imposed.
                ++life.demandHitLate;
                recordLateness(e.pfSource, e.readyAt > e.firstDemandAt
                                               ? e.readyAt -
                                                     e.firstDemandAt
                                               : 0);
            }
            DPRINTF(Prefetch,
                    "fill line=%#llx src=%s id=%llu%s",
                    static_cast<unsigned long long>(e.line),
                    toString(e.pfSource),
                    static_cast<unsigned long long>(e.pfId),
                    e.demanded ? " (late: demand waited)" : "");
        }
        Cache::Victim victim =
            l2_.insert(e.line, now, prefetched, e.pfSource, e.core);
        if (prefetched && params_.prefetchToL1) {
            // Ablation: fill the requesting core's L1D as well
            // (evictions write back into the inclusive L2, which now
            // holds the line).
            Cache::Victim l1v =
                l1d_[e.core].insert(e.line, now, true, e.pfSource);
            if (l1v.valid && l1v.dirty)
                l2_.setDirty(l1v.line);
        }
        if (e.isPrefetch && e.demanded) {
            // The prefetch was useful while still in flight; mark the
            // line as used so it is not later counted as wrong.
            l2_.access(e.line, now, e.isWrite);
        } else if (e.isWrite) {
            l2_.setDirty(e.line);
        }
        if (victim.valid) {
            if (victim.prefetched && !victim.usedAfterPrefetch) {
                ++stats_.wrongPrefetches;
                ++stats_
                      .pfLife[static_cast<unsigned>(victim.pfSource)]
                      .evictedUnused;
                DPRINTF(Prefetch, "evict-unused line=%#llx src=%s",
                        static_cast<unsigned long long>(victim.line),
                        toString(victim.pfSource));
                if (trace_ && trace_->wants(now)) {
                    trace_->instant("prefetch", "evict-unused",
                                    TraceTrack::Prefetch, now,
                                    victim.line);
                }
            }
            if (victim.dirty) {
                stats_.dramBytesWritten += LineBytes;
                dram_->write(victim.line, now);
            }
            // A prefetch fill displacing another core's line is the
            // pollution event the interference accounting tracks.
            if (prefetched)
                recordPollutionEviction(victim.line, e.core);
            // Inclusive L2: evictions invalidate every core's L1
            // copies.
            for (unsigned c = 0; c < l1d_.size(); ++c) {
                Cache::Victim l1v = l1d_[c].invalidate(victim.line);
                if (l1v.valid && l1v.dirty) {
                    stats_.dramBytesWritten += LineBytes;
                    dram_->write(l1v.line, now);
                }
                l1i_[c].invalidate(victim.line);
            }
            DPRINTF(Cache, "L2 evict line=%#llx%s",
                    static_cast<unsigned long long>(victim.line),
                    victim.dirty ? " (writeback)" : "");
        }
    });
}

void
Hierarchy::drainL1(Cycle now)
{
    for (unsigned c = 0; c < l1dMshr_.size(); ++c) {
        l1dMshr_[c].drain(now, [this, now, c](
                                   const MshrFile::Entry &e) {
            Cache::Victim victim = l1d_[c].insert(e.line, now, false);
            if (e.isWrite)
                l1d_[c].setDirty(e.line);
            if (victim.valid && victim.dirty) {
                // Writeback into the (inclusive) L2.
                if (l2_.contains(victim.line)) {
                    l2_.setDirty(victim.line);
                } else {
                    stats_.dramBytesWritten += LineBytes;
                    dram_->write(victim.line, now);
                }
            }
        });
        l1iMshr_[c].drain(now, [this, now, c](
                                   const MshrFile::Entry &e) {
            l1i_[c].insert(e.line, now, false);
        });
    }
}

void
Hierarchy::issuePrefetches(Cycle now)
{
    unsigned issued = 0;
    while (!prefetchQueue_.empty() &&
           issued < params_.prefetchIssuePerCycle) {
        const QueuedPrefetch &req = prefetchQueue_.front();
        if (l2_.contains(req.line) || l2Mshr_.find(req.line)) {
            ++stats_.prefetchesFiltered;
            ++stats_.pfLife[static_cast<unsigned>(req.src)].merged;
            DPRINTF(Prefetch, "merge-at-issue line=%#llx src=%s "
                    "id=%llu (already cached/in flight)",
                    static_cast<unsigned long long>(req.line),
                    toString(req.src),
                    static_cast<unsigned long long>(req.id));
            queuedLines_.erase(req.line);
            prefetchQueue_.pop_front();
            continue;
        }
        if (l2Mshr_.inFlight() + params_.prefetchMshrReserve >=
            params_.l2.mshrs) {
            break; // leave room for demand misses; retry next cycle
        }
        // Prefetch issues contend for the shared-L2 banks like
        // demands (no-op in single-core runs).
        const Cycle t_bank = arbitrateL2(req.line, now);
        const Cycle ready = dram_->read(
            {req.line, t_bank + params_.l2.latency,
             /*isPrefetch=*/true, req.src});
        MshrFile::Entry &e =
            l2Mshr_.allocate(req.line, ready,
                             /*is_prefetch=*/true, /*is_write=*/false);
        e.pfSource = req.src;
        e.pfId = req.id;
        e.core = req.core;
        stats_.dramBytesRead += LineBytes;
        ++stats_.prefetchesIssued;
        if (!stats_.perCore.empty())
            ++stats_.perCore[req.core].prefetchesIssued;
        ++issued;
        DPRINTF(Prefetch, "issue line=%#llx src=%s id=%llu readyAt=%llu",
                static_cast<unsigned long long>(req.line),
                toString(req.src),
                static_cast<unsigned long long>(req.id),
                static_cast<unsigned long long>(ready));
        if (trace_ && trace_->wants(now)) {
            trace_->complete("prefetch", toString(req.src),
                             TraceTrack::Prefetch, now, ready - now,
                             req.line);
        }
        queuedLines_.erase(req.line);
        prefetchQueue_.pop_front();
    }
}

void
Hierarchy::tick(Cycle now)
{
    if (__builtin_expect(debug::state.anyEnabled, 0))
        debug::setCycle(now);
    if (lastDrainCycle_ == now) {
        // Drains already ran this cycle (the common repeat is the
        // tick() inside each demand access); only the prefetch issue
        // budget renews per invocation.
        if (!prefetchQueue_.empty())
            issuePrefetches(now);
        return;
    }
    lastDrainCycle_ = now;
    if (__builtin_expect(prof::enabled(), 0)) {
        // Profiled path only: tick() runs every simulated cycle, so
        // the scope cost stays off the default path entirely. Only
        // bracket ticks where a fill actually completes (nextReady
        // due); in-flight-but-not-ready ticks early-out inside
        // drain() in a few ns, which a ~35 ns timed scope would
        // swamp — and those account for ~98% of all ticks.
        bool fill_work = l2Mshr_.nextReady() <= now;
        for (std::size_t c = 0; !fill_work && c < l1dMshr_.size();
             ++c) {
            fill_work = l1dMshr_[c].nextReady() <= now ||
                        l1iMshr_[c].nextReady() <= now;
        }
        if (fill_work) {
            PROF_SCOPE_SAMPLED(prof::Phase::Dram, 3);
            drainL2(now);
            drainL1(now);
        } else {
            drainL2(now);
            drainL1(now);
        }
        if (!prefetchQueue_.empty()) {
            PROF_SCOPE_SAMPLED(prof::Phase::PfIssue, 3);
            issuePrefetches(now);
        }
        return;
    }
    drainL2(now);
    drainL1(now);
    if (!prefetchQueue_.empty())
        issuePrefetches(now);
}

bool
Hierarchy::prefetchQueued(LineAddr line) const
{
    return queuedLines_.count(line) != 0;
}

void
Hierarchy::mergeQueuedPrefetch(LineAddr line, Cycle now)
{
    if (!prefetchQueued(line))
        return;
    auto it = std::find_if(prefetchQueue_.begin(),
                           prefetchQueue_.end(),
                           [line](const QueuedPrefetch &q) {
                               return q.line == line;
                           });
    if (it == prefetchQueue_.end())
        return;
    ++stats_.pfLife[static_cast<unsigned>(it->src)].merged;
    DPRINTF(Prefetch,
            "merge-by-demand line=%#llx src=%s id=%llu (non-timely)",
            static_cast<unsigned long long>(line), toString(it->src),
            static_cast<unsigned long long>(it->id));
    if (trace_ && trace_->wants(now)) {
        trace_->instant("prefetch", "overtaken-by-demand",
                        TraceTrack::Prefetch, now, line);
    }
    queuedLines_.erase(line);
    prefetchQueue_.erase(it);
}

Cycle
Hierarchy::l2DemandAccess(LineAddr line, Cycle t_l2, bool is_write,
                          bool is_data, unsigned core,
                          DemandClass &cls, bool &stall)
{
    stall = false;
    t_l2 = arbitrateL2(line, t_l2);
    if (is_data) {
        ++stats_.demandL2Accesses;
        if (!stats_.perCore.empty())
            ++stats_.perCore[core].demandL2Accesses;
    }

    // Hit in the L2 arrays? One walk answers presence, timeliness
    // classification and prefetch-source attribution together.
    const Cache::Probe probe = l2_.accessClassify(line, t_l2, is_write);
    if (probe.hit) {
        if (probe.wasUnusedPrefetch) {
            cls = DemandClass::Timely;
            const PfSource src = probe.pfSource;
            ++stats_.pfLife[static_cast<unsigned>(src)]
                  .demandHitTimely;
            recordLateness(src, 0);
            DPRINTF(Prefetch, "demand-hit-timely line=%#llx src=%s",
                    static_cast<unsigned long long>(line),
                    toString(src));
        } else {
            cls = DemandClass::CachedHit;
        }
        return t_l2 + params_.l2.latency;
    }

    // Merge into an in-flight fill?
    if (MshrFile::Entry *e = l2Mshr_.find(line)) {
        cls = e->isPrefetch && !e->demanded ? DemandClass::Shorter
                                            : DemandClass::Missing;
        if (!e->demanded)
            e->firstDemandAt = t_l2;
        e->demanded = true;
        e->isWrite |= is_write;
        return std::max(e->readyAt, t_l2 + params_.l2.latency);
    }

    // Identified by the prefetcher but the request is still queued:
    // the demand takes over (non-timely prefetch).
    if (prefetchQueued(line)) {
        mergeQueuedPrefetch(line, t_l2);
        cls = DemandClass::NonTimely;
    } else {
        cls = DemandClass::Missing;
    }

    if (l2Mshr_.full()) {
        stall = true;
        DPRINTF(MSHR, "L2 MSHR full: stalling demand line=%#llx",
                static_cast<unsigned long long>(line));
        return 0;
    }
    const Cycle ready = dram_->read(
        {line, t_l2 + params_.l2.latency,
         /*isPrefetch=*/false, PfSource::Unknown});
    MshrFile::Entry &e =
        l2Mshr_.allocate(line, ready, /*is_prefetch=*/false, is_write);
    e.core = static_cast<std::uint8_t>(core);
    if (is_data) {
        ++stats_.llcDemandMisses;
        if (!stats_.perCore.empty()) {
            ++stats_.perCore[core].llcDemandMisses;
            attributePollution(line, core);
        }
    }
    stats_.dramBytesRead += LineBytes;
    return ready;
}

AccessOutcome
Hierarchy::demandAccess(LineAddr line, Cycle now, bool is_write,
                        bool is_data, bool can_stall, unsigned core)
{
    tick(now);

    Cache &l1 = is_data ? l1d_[core] : l1i_[core];
    MshrFile &l1m = is_data ? l1dMshr_[core] : l1iMshr_[core];
    const CacheParams &l1p = is_data ? params_.l1d : params_.l1i;
    CoreMemStats *cstats =
        stats_.perCore.empty() ? nullptr : &stats_.perCore[core];

    // Back-pressured retry fast path. A stalling requester whose line
    // neither hits the L1 (access() is side-effect-free on a miss)
    // nor merges into an in-flight fill, while the L1 MSHR file is
    // full, fails with exactly one observable effect: the mshrStalls
    // count. The core retries such a load every cycle during a stall
    // epoch, so skipping the count-then-undo bookkeeping of the slow
    // path below matters; the outcome is bit-identical.
    if (can_stall && l1m.full() && !l1.contains(line)) {
        if (MshrFile::Entry *e = l1m.find(line)) {
            e->isWrite |= is_write;
            if (is_data) {
                ++stats_.l1dAccesses;
                ++stats_.l1dMisses;
                if (cstats) {
                    ++cstats->l1dAccesses;
                    ++cstats->l1dMisses;
                }
            } else {
                ++stats_.l1iAccesses;
                ++stats_.l1iMisses;
                if (cstats) {
                    ++cstats->l1iAccesses;
                    ++cstats->l1iMisses;
                }
            }
            AccessOutcome out;
            out.readyAt = std::max(e->readyAt, now + l1p.latency);
            return out;
        }
        ++stats_.mshrStalls;
        AccessOutcome out;
        out.ok = false;
        return out;
    }

    if (is_data) {
        ++stats_.l1dAccesses;
        if (cstats)
            ++cstats->l1dAccesses;
    } else {
        ++stats_.l1iAccesses;
        if (cstats)
            ++cstats->l1iAccesses;
    }

    AccessOutcome out;
    if (l1.access(line, now, is_write)) {
        out.l1Hit = true;
        out.readyAt = now + l1p.latency;
        return out;
    }
    if (is_data) {
        ++stats_.l1dMisses;
        if (cstats)
            ++cstats->l1dMisses;
    } else {
        ++stats_.l1iMisses;
        if (cstats)
            ++cstats->l1iMisses;
    }

    // Merge into an in-flight L1 fill: the L2-level classification
    // already happened when the primary miss went out.
    if (MshrFile::Entry *e = l1m.find(line)) {
        e->isWrite |= is_write;
        out.readyAt = std::max(e->readyAt, now + l1p.latency);
        return out;
    }

    if (l1m.full()) {
        if (can_stall) {
            ++stats_.mshrStalls;
            out.ok = false;
            // Undo the access counts so the retry is not
            // double-counted.
            if (is_data) {
                --stats_.l1dMisses;
                --stats_.l1dAccesses;
                if (cstats) {
                    --cstats->l1dMisses;
                    --cstats->l1dAccesses;
                }
            } else {
                --stats_.l1iMisses;
                --stats_.l1iAccesses;
                if (cstats) {
                    --cstats->l1iMisses;
                    --cstats->l1iAccesses;
                }
            }
            return out;
        }
        // Non-stalling requester (stores): account the L2 access for
        // MPKI purposes but skip the fill.
        PROF_SCOPE_SAMPLED(prof::Phase::CacheLookup, 3);
        bool stall = false;
        DemandClass cls = DemandClass::None;
        Cycle ready = l2DemandAccess(line, now + l1p.latency, is_write,
                                     is_data, core, cls, stall);
        if (!stall && is_data && cls != DemandClass::None)
            ++stats_.classCounts[static_cast<int>(cls)];
        out.readyAt = stall ? now + l1p.latency : ready;
        out.cls = cls;
        return out;
    }

    // The timed scope brackets only the primary-miss path (L2 arrays
    // + DRAM timing + MSHR allocate): L1 hits, secondary-miss merges
    // and MSHR-full retries are each a handful of ns and fire per
    // replayed access, so a ~35 ns scope around them would measure
    // mostly itself (their time reports under the caller's phase).
    PROF_SCOPE_SAMPLED(prof::Phase::CacheLookup, 3);
    bool stall = false;
    DemandClass cls = DemandClass::None;
    const Cycle l2_ready =
        l2DemandAccess(line, now + l1p.latency, is_write, is_data,
                       core, cls, stall);
    if (stall) {
        if (can_stall) {
            ++stats_.mshrStalls;
            out.ok = false;
            // Undo the demand-access count so the retry is not
            // double-counted.
            if (is_data) {
                --stats_.demandL2Accesses;
                --stats_.l1dMisses;
                --stats_.l1dAccesses;
                if (cstats) {
                    --cstats->demandL2Accesses;
                    --cstats->l1dMisses;
                    --cstats->l1dAccesses;
                }
            } else {
                --stats_.l1iMisses;
                --stats_.l1iAccesses;
                if (cstats) {
                    --cstats->l1iMisses;
                    --cstats->l1iAccesses;
                }
            }
            return out;
        }
        out.readyAt = now + l1p.latency;
        return out;
    }
    if (is_data && cls != DemandClass::None) {
        ++stats_.classCounts[static_cast<int>(cls)];
        DPRINTF(Cache, "demand %s line=%#llx -> %s readyAt=%llu",
                is_write ? "store" : "load",
                static_cast<unsigned long long>(line), className(cls),
                static_cast<unsigned long long>(l2_ready));
        if (trace_ && cls != DemandClass::CachedHit &&
            trace_->wants(now)) {
            trace_->complete("cache", className(cls),
                             TraceTrack::Cache, now,
                             l2_ready > now ? l2_ready - now : 1,
                             line);
        }
    }

    const Cycle l1_ready = l2_ready + l1p.latency;
    l1m.allocate(line, l1_ready, /*is_prefetch=*/false, is_write);
    out.readyAt = l1_ready;
    out.cls = cls;
    return out;
}

AccessOutcome
Hierarchy::load(Addr addr, Cycle now, unsigned core)
{
    return demandAccess(lineOf(addr), now, /*is_write=*/false,
                        /*is_data=*/true, /*can_stall=*/true, core);
}

AccessOutcome
Hierarchy::store(Addr addr, Cycle now, unsigned core)
{
    return demandAccess(lineOf(addr), now, /*is_write=*/true,
                        /*is_data=*/true, /*can_stall=*/false, core);
}

AccessOutcome
Hierarchy::fetch(Addr pc, Cycle now, unsigned core)
{
    return demandAccess(lineOf(pc), now, /*is_write=*/false,
                        /*is_data=*/false, /*can_stall=*/true, core);
}

void
Hierarchy::enqueuePrefetch(LineAddr line, PfSource src, unsigned core)
{
    ++stats_.prefetchesRequested;
    if (!stats_.perCore.empty())
        ++stats_.perCore[core].prefetchesRequested;
    auto &life = stats_.pfLife[static_cast<unsigned>(src)];
    ++life.issued;
    const std::uint64_t id = nextPfId_++;
    if (l2_.contains(line) || l2Mshr_.find(line) ||
        prefetchQueued(line)) {
        ++stats_.prefetchesFiltered;
        ++life.merged;
        DPRINTF(Prefetch, "merge-at-enqueue line=%#llx src=%s id=%llu",
                static_cast<unsigned long long>(line), toString(src),
                static_cast<unsigned long long>(id));
        return;
    }
    if (prefetchQueue_.size() >= params_.prefetchQueueEntries) {
        const QueuedPrefetch &old = prefetchQueue_.front();
        ++stats_.prefetchesDropped;
        ++stats_.pfLife[static_cast<unsigned>(old.src)].dropped;
        DPRINTF(Prefetch, "drop line=%#llx src=%s id=%llu (overflow)",
                static_cast<unsigned long long>(old.line),
                toString(old.src),
                static_cast<unsigned long long>(old.id));
        queuedLines_.erase(old.line);
        prefetchQueue_.pop_front();
    }
    DPRINTF(Prefetch, "enqueue line=%#llx src=%s id=%llu",
            static_cast<unsigned long long>(line), toString(src),
            static_cast<unsigned long long>(id));
    queuedLines_.insert(line);
    prefetchQueue_.push_back(
        QueuedPrefetch{line, src, id, static_cast<std::uint8_t>(core)});
}

bool
Hierarchy::isCachedOrInFlightL2(LineAddr line) const
{
    return l2_.contains(line) || l2Mshr_.find(line) != nullptr;
}

bool
Hierarchy::isCachedL1D(LineAddr line, unsigned core) const
{
    return l1d_[core].contains(line);
}

Cycle
Hierarchy::nextEventCycle() const
{
    Cycle next = l2Mshr_.nextReady();
    for (unsigned c = 0; c < l1dMshr_.size(); ++c) {
        if (l1dMshr_[c].nextReady() < next)
            next = l1dMshr_[c].nextReady();
        if (l1iMshr_[c].nextReady() < next)
            next = l1iMshr_[c].nextReady();
    }
    return next;
}

bool
Hierarchy::prefetchWorkPending() const
{
    return !prefetchQueue_.empty() &&
           l2Mshr_.inFlight() + params_.prefetchMshrReserve <
           params_.l2.mshrs;
}

void
Hierarchy::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;

    stats_.wrongPrefetches += l2_.countUnusedPrefetched();

    // Lifecycle epilogue: settle every request that is still somewhere
    // in the machine so the conservation laws close.
    std::uint64_t resident[NumPfSources] = {};
    l2_.countUnusedPrefetchedBySource(resident);
    for (unsigned s = 0; s < NumPfSources; ++s)
        stats_.pfLife[s].residentAtEnd += resident[s];

    // In-flight prefetch fills: account them as if the fill completed
    // (the DRAM read already happened).
    for (const auto &e : l2Mshr_.entries()) {
        if (!e.valid || !e.isPrefetch)
            continue;
        auto &life = stats_.pfLife[static_cast<unsigned>(e.pfSource)];
        ++life.filled;
        if (e.demanded) {
            ++life.demandHitLate;
            recordLateness(e.pfSource,
                           e.readyAt > e.firstDemandAt
                               ? e.readyAt - e.firstDemandAt
                               : 0);
        } else {
            ++life.residentAtEnd;
        }
    }

    // Requests still queued never reached memory at all.
    for (const auto &req : prefetchQueue_) {
        ++stats_.pfLife[static_cast<unsigned>(req.src)].dropped;
    }
    prefetchQueue_.clear();
    queuedLines_.clear();

    // Shared-L2 occupancy attribution by owner core.
    if (!stats_.perCore.empty()) {
        std::vector<std::uint64_t> owned(stats_.perCore.size(), 0);
        l2_.countResidentByOwner(owned.data(),
                                 static_cast<unsigned>(owned.size()));
        for (unsigned c = 0; c < stats_.perCore.size(); ++c)
            stats_.perCore[c].l2ResidentLines = owned[c];
    }

    DPRINTF(Sim, "hierarchy finalized: %llu wrong prefetches",
            static_cast<unsigned long long>(stats_.wrongPrefetches));
}

} // namespace cbws
