#include "mem/hierarchy.hh"

#include <algorithm>

#include "base/logging.hh"

namespace cbws
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params),
      l1d_(params.l1d, 0x11d),
      l1i_(params.l1i, 0x111),
      l2_(params.l2, 0x122),
      l1dMshr_(params.l1d.mshrs),
      l1iMshr_(params.l1i.mshrs),
      l2Mshr_(params.l2.mshrs)
{
}

void
Hierarchy::drainL2(Cycle now)
{
    l2Mshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        const bool prefetched = e.isPrefetch && !e.demanded;
        Cache::Victim victim = l2_.insert(e.line, now, prefetched);
        if (prefetched && params_.prefetchToL1) {
            // Ablation: fill the L1D as well (evictions write back
            // into the inclusive L2, which now holds the line).
            Cache::Victim l1v = l1d_.insert(e.line, now, true);
            if (l1v.valid && l1v.dirty)
                l2_.setDirty(l1v.line);
        }
        if (e.isPrefetch && e.demanded) {
            // The prefetch was useful while still in flight; mark the
            // line as used so it is not later counted as wrong.
            l2_.access(e.line, now, e.isWrite);
        } else if (e.isWrite) {
            l2_.setDirty(e.line);
        }
        if (victim.valid) {
            if (victim.prefetched && !victim.usedAfterPrefetch)
                ++stats_.wrongPrefetches;
            if (victim.dirty)
                stats_.dramBytesWritten += LineBytes;
            // Inclusive L2: evictions invalidate the L1 copies.
            Cache::Victim l1v = l1d_.invalidate(victim.line);
            if (l1v.valid && l1v.dirty)
                stats_.dramBytesWritten += LineBytes;
            l1i_.invalidate(victim.line);
        }
    });
}

void
Hierarchy::drainL1(Cycle now)
{
    l1dMshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        Cache::Victim victim = l1d_.insert(e.line, now, false);
        if (e.isWrite)
            l1d_.setDirty(e.line);
        if (victim.valid && victim.dirty) {
            // Writeback into the (inclusive) L2.
            if (l2_.contains(victim.line))
                l2_.setDirty(victim.line);
            else
                stats_.dramBytesWritten += LineBytes;
        }
    });
    l1iMshr_.drain(now, [this, now](const MshrFile::Entry &e) {
        l1i_.insert(e.line, now, false);
    });
}

Cycle
Hierarchy::dramFillReady(Cycle t)
{
    if (params_.dramMinInterval == 0)
        return t + params_.dramLatency;
    const Cycle start = std::max(t, nextDramFree_);
    nextDramFree_ = start + params_.dramMinInterval;
    return start + params_.dramLatency;
}

void
Hierarchy::issuePrefetches(Cycle now)
{
    unsigned issued = 0;
    while (!prefetchQueue_.empty() &&
           issued < params_.prefetchIssuePerCycle) {
        const LineAddr line = prefetchQueue_.front();
        if (l2_.contains(line) || l2Mshr_.find(line)) {
            prefetchQueue_.pop_front();
            ++stats_.prefetchesFiltered;
            continue;
        }
        if (l2Mshr_.inFlight() + params_.prefetchMshrReserve >=
            params_.l2.mshrs) {
            break; // leave room for demand misses; retry next cycle
        }
        prefetchQueue_.pop_front();
        l2Mshr_.allocate(line,
                         dramFillReady(now + params_.l2.latency),
                         /*is_prefetch=*/true, /*is_write=*/false);
        stats_.dramBytesRead += LineBytes;
        ++stats_.prefetchesIssued;
        ++issued;
    }
}

void
Hierarchy::tick(Cycle now)
{
    drainL2(now);
    drainL1(now);
    if (!prefetchQueue_.empty())
        issuePrefetches(now);
}

bool
Hierarchy::prefetchQueued(LineAddr line) const
{
    return std::find(prefetchQueue_.begin(), prefetchQueue_.end(),
                     line) != prefetchQueue_.end();
}

void
Hierarchy::removeQueuedPrefetch(LineAddr line)
{
    auto it = std::find(prefetchQueue_.begin(), prefetchQueue_.end(),
                        line);
    if (it != prefetchQueue_.end())
        prefetchQueue_.erase(it);
}

Cycle
Hierarchy::l2DemandAccess(LineAddr line, Cycle t_l2, bool is_write,
                          bool is_data, DemandClass &cls, bool &stall)
{
    stall = false;
    if (is_data)
        ++stats_.demandL2Accesses;

    // Hit in the L2 arrays?
    const bool was_unused_prefetch = l2_.isUnusedPrefetch(line);
    if (l2_.access(line, t_l2, is_write)) {
        cls = was_unused_prefetch ? DemandClass::Timely
                                  : DemandClass::CachedHit;
        return t_l2 + params_.l2.latency;
    }

    // Merge into an in-flight fill?
    if (MshrFile::Entry *e = l2Mshr_.find(line)) {
        cls = e->isPrefetch && !e->demanded ? DemandClass::Shorter
                                            : DemandClass::Missing;
        e->demanded = true;
        e->isWrite |= is_write;
        return std::max(e->readyAt, t_l2 + params_.l2.latency);
    }

    // Identified by the prefetcher but the request is still queued:
    // the demand takes over (non-timely prefetch).
    if (prefetchQueued(line)) {
        removeQueuedPrefetch(line);
        cls = DemandClass::NonTimely;
    } else {
        cls = DemandClass::Missing;
    }

    if (l2Mshr_.full()) {
        stall = true;
        return 0;
    }
    const Cycle ready = dramFillReady(t_l2 + params_.l2.latency);
    l2Mshr_.allocate(line, ready, /*is_prefetch=*/false, is_write);
    if (is_data)
        ++stats_.llcDemandMisses;
    stats_.dramBytesRead += LineBytes;
    return ready;
}

AccessOutcome
Hierarchy::demandAccess(LineAddr line, Cycle now, bool is_write,
                        bool is_data, bool can_stall)
{
    tick(now);

    Cache &l1 = is_data ? l1d_ : l1i_;
    MshrFile &l1m = is_data ? l1dMshr_ : l1iMshr_;
    const CacheParams &l1p = is_data ? params_.l1d : params_.l1i;

    if (is_data)
        ++stats_.l1dAccesses;
    else
        ++stats_.l1iAccesses;

    AccessOutcome out;
    if (l1.access(line, now, is_write)) {
        out.l1Hit = true;
        out.readyAt = now + l1p.latency;
        return out;
    }
    if (is_data)
        ++stats_.l1dMisses;
    else
        ++stats_.l1iMisses;

    // Merge into an in-flight L1 fill: the L2-level classification
    // already happened when the primary miss went out.
    if (MshrFile::Entry *e = l1m.find(line)) {
        e->isWrite |= is_write;
        out.readyAt = std::max(e->readyAt, now + l1p.latency);
        return out;
    }

    if (l1m.full()) {
        if (can_stall) {
            ++stats_.mshrStalls;
            out.ok = false;
            // Undo the access counts so the retry is not
            // double-counted.
            if (is_data) {
                --stats_.l1dMisses;
                --stats_.l1dAccesses;
            } else {
                --stats_.l1iMisses;
                --stats_.l1iAccesses;
            }
            return out;
        }
        // Non-stalling requester (stores): account the L2 access for
        // MPKI purposes but skip the fill.
        bool stall = false;
        DemandClass cls = DemandClass::None;
        Cycle ready = l2DemandAccess(line, now + l1p.latency, is_write,
                                     is_data, cls, stall);
        if (!stall && is_data && cls != DemandClass::None)
            ++stats_.classCounts[static_cast<int>(cls)];
        out.readyAt = stall ? now + l1p.latency : ready;
        out.cls = cls;
        return out;
    }

    bool stall = false;
    DemandClass cls = DemandClass::None;
    const Cycle l2_ready = l2DemandAccess(line, now + l1p.latency,
                                          is_write, is_data, cls, stall);
    if (stall) {
        if (can_stall) {
            ++stats_.mshrStalls;
            out.ok = false;
            // Undo the demand-access count so the retry is not
            // double-counted.
            if (is_data) {
                --stats_.demandL2Accesses;
                --stats_.l1dMisses;
                --stats_.l1dAccesses;
            } else {
                --stats_.l1iMisses;
                --stats_.l1iAccesses;
            }
            return out;
        }
        out.readyAt = now + l1p.latency;
        return out;
    }
    if (is_data && cls != DemandClass::None)
        ++stats_.classCounts[static_cast<int>(cls)];

    const Cycle l1_ready = l2_ready + l1p.latency;
    l1m.allocate(line, l1_ready, /*is_prefetch=*/false, is_write);
    out.readyAt = l1_ready;
    out.cls = cls;
    return out;
}

AccessOutcome
Hierarchy::load(Addr addr, Cycle now)
{
    return demandAccess(lineOf(addr), now, /*is_write=*/false,
                        /*is_data=*/true, /*can_stall=*/true);
}

AccessOutcome
Hierarchy::store(Addr addr, Cycle now)
{
    return demandAccess(lineOf(addr), now, /*is_write=*/true,
                        /*is_data=*/true, /*can_stall=*/false);
}

AccessOutcome
Hierarchy::fetch(Addr pc, Cycle now)
{
    return demandAccess(lineOf(pc), now, /*is_write=*/false,
                        /*is_data=*/false, /*can_stall=*/true);
}

void
Hierarchy::enqueuePrefetch(LineAddr line)
{
    ++stats_.prefetchesRequested;
    if (l2_.contains(line) || l2Mshr_.find(line) ||
        prefetchQueued(line)) {
        ++stats_.prefetchesFiltered;
        return;
    }
    if (prefetchQueue_.size() >= params_.prefetchQueueEntries) {
        prefetchQueue_.pop_front();
        ++stats_.prefetchesDropped;
    }
    prefetchQueue_.push_back(line);
}

bool
Hierarchy::isCachedOrInFlightL2(LineAddr line) const
{
    return l2_.contains(line) || l2Mshr_.find(line) != nullptr;
}

bool
Hierarchy::isCachedL1D(LineAddr line) const
{
    return l1d_.contains(line);
}

Cycle
Hierarchy::nextEventCycle() const
{
    Cycle next = l2Mshr_.nextReady();
    if (l1dMshr_.nextReady() < next)
        next = l1dMshr_.nextReady();
    if (l1iMshr_.nextReady() < next)
        next = l1iMshr_.nextReady();
    return next;
}

bool
Hierarchy::prefetchWorkPending() const
{
    return !prefetchQueue_.empty() &&
           l2Mshr_.inFlight() + params_.prefetchMshrReserve <
           params_.l2.mshrs;
}

void
Hierarchy::finalize()
{
    stats_.wrongPrefetches += l2_.countUnusedPrefetched();
}

} // namespace cbws
