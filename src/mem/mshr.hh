/**
 * @file
 * Miss status holding registers (MSHRs) with merge semantics.
 *
 * Each cache level owns an MshrFile. A miss allocates an entry with the
 * cycle at which its fill completes; later misses to the same line merge
 * into the existing entry (secondary misses) instead of generating new
 * downstream traffic. A full MSHR file back-pressures the core: loads
 * that cannot allocate retry the following cycle, which is what limits
 * memory-level parallelism to the 4 L1 / 32 L2 MSHRs of Table II.
 */

#ifndef CBWS_MEM_MSHR_HH
#define CBWS_MEM_MSHR_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace cbws
{

/**
 * Fixed-capacity MSHR file for one cache level.
 */
class MshrFile
{
  public:
    struct Entry
    {
        LineAddr line = 0;
        Cycle readyAt = 0;
        bool valid = false;
        bool isPrefetch = false; ///< fill initiated by the prefetcher
        bool isWrite = false;    ///< any merged request was a store
        bool demanded = false;   ///< a demand access merged into this
                                 ///< entry while it was in flight
        /** Lifecycle attribution of prefetch-initiated fills. */
        PfSource pfSource = PfSource::Unknown;
        /** Unique id assigned to the prefetch request (0 = none). */
        std::uint64_t pfId = 0;
        /** Cycle the first demand merged in (lateness accounting). */
        Cycle firstDemandAt = 0;
        /** Requesting core (fill ownership; 0 in single-core). */
        std::uint8_t core = 0;
    };

    explicit MshrFile(unsigned capacity) : entries_(capacity) {}

    /** Find the in-flight entry for @p line, if any. */
    Entry *find(LineAddr line);
    const Entry *find(LineAddr line) const;

    /**
     * True when no entry can be allocated. O(1): the valid count is
     * maintained at allocate/drain/clear, because full() guards every
     * demand miss and inFlight() every prefetch issue — the two
     * hottest queries in the hierarchy.
     */
    bool full() const { return numValid_ == entries_.size(); }

    /** Number of valid (in-flight) entries. O(1). */
    unsigned inFlight() const { return numValid_; }

    /**
     * Allocate an entry; the caller must have checked full() and
     * find() first. Returns the new entry.
     */
    Entry &allocate(LineAddr line, Cycle ready_at, bool is_prefetch,
                    bool is_write);

    /**
     * Retire every entry whose fill completed at or before @p now,
     * invoking @p on_fill for each (used by the hierarchy to install
     * lines into the tag arrays at fill time). Entries retire in
     * entry-array order (allocation-slot order), which callers'
     * replacement state depends on — do not reorder.
     *
     * Templated so the idle early-out (by far the most frequent
     * outcome: the hierarchy probes every MSHR file every simulated
     * cycle) inlines to a single compare at the call site, and so the
     * callback lambdas are invoked directly instead of being wrapped
     * in a std::function per call.
     */
    template <typename OnFill>
    void
    drain(Cycle now, OnFill &&on_fill)
    {
        if (now < nextReady_)
            return;
        Cycle next = NoEvent;
        for (auto &e : entries_) {
            if (!e.valid)
                continue;
            if (e.readyAt <= now) {
                on_fill(static_cast<const Entry &>(e));
                e.valid = false;
                --numValid_;
            } else if (e.readyAt < next) {
                next = e.readyAt;
            }
        }
        nextReady_ = next;
    }

    /** Drop all entries (end of simulation). */
    void clear();

    /** Raw entry array (end-of-run lifecycle accounting only). */
    const std::vector<Entry> &entries() const { return entries_; }

    /**
     * Cycle of the earliest pending fill, or a huge sentinel when the
     * file is idle; lets the hierarchy skip drain scans on idle cycles.
     */
    Cycle nextReady() const { return nextReady_; }

  private:
    std::vector<Entry> entries_;
    unsigned numValid_ = 0;
    Cycle nextReady_ = NoEvent;

    static constexpr Cycle NoEvent = ~Cycle(0);
};

} // namespace cbws

#endif // CBWS_MEM_MSHR_HH
