/**
 * @file
 * Set-associative cache tag array with LRU or random replacement and
 * per-line prefetch bookkeeping.
 *
 * The tag array is purely structural: timing lives in the hierarchy
 * (mem/hierarchy.hh), which composes lookup results with the per-level
 * latencies and MSHR state. Each line carries a `prefetched` bit and a
 * `usedAfterPrefetch` bit, which drive the paper's Fig. 13 timeliness
 * and accuracy classification: a demand hit on a prefetched-but-unused
 * line is a *timely* prefetch; a prefetched line evicted unused is a
 * *wrong* prefetch.
 */

#ifndef CBWS_MEM_CACHE_HH
#define CBWS_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "mem/params.hh"

namespace cbws
{

/**
 * A single cache level's tag array.
 */
class Cache
{
  public:
    /** Outcome of inserting a line: the evicted victim, if any. */
    struct Victim
    {
        bool valid = false;
        LineAddr line = 0;
        bool dirty = false;
        bool prefetched = false;
        bool usedAfterPrefetch = false;
        PfSource pfSource = PfSource::Unknown;
        /** Core whose fill installed the evicted line. */
        std::uint8_t ownerCore = 0;
    };

    explicit Cache(const CacheParams &params,
                   std::uint64_t repl_seed = 1);

    const CacheParams &params() const { return params_; }

    /**
     * Demand lookup. On a hit the replacement state is updated and the
     * line's use bit is set.
     * @return true on hit.
     */
    bool access(LineAddr line, Cycle now, bool is_write);

    /** Everything a demand access needs to know about the line it
     *  (possibly) hit, gathered in one tag walk. */
    struct Probe
    {
        bool hit = false;
        /** Line was prefetched and not yet demanded before this
         *  access (classifies the hit as a timely prefetch). */
        bool wasUnusedPrefetch = false;
        /** Source of the prefetch that filled the line (valid only
         *  when wasUnusedPrefetch). */
        PfSource pfSource = PfSource::Unknown;
    };

    /**
     * Flattened demand path: exactly isUnusedPrefetch() +
     * prefetchSource() + access() with a single set walk instead of
     * three. Replacement/use/dirty state updates match access().
     */
    Probe accessClassify(LineAddr line, Cycle now, bool is_write);

    /** Tag probe without touching replacement or use state. */
    bool contains(LineAddr line) const;

    /**
     * True when @p line is present, was filled by a prefetch, and has
     * not been demanded since the fill. Callers use this *before*
     * access() to classify a demand hit as a timely prefetch.
     */
    bool isUnusedPrefetch(LineAddr line) const;

    /**
     * Install @p line, evicting the replacement victim if the set is
     * full.
     * @param prefetched marks the fill as prefetcher-initiated.
     * @param src the prefetcher component that requested the fill
     *        (lifecycle attribution; meaningful only when prefetched).
     * @param owner the core whose demand or prefetch initiated the
     *        fill (shared-L2 occupancy attribution; 0 in single-core
     *        systems).
     * @return the victim (valid == false when an invalid way was used).
     */
    Victim insert(LineAddr line, Cycle now, bool prefetched,
                  PfSource src = PfSource::Unknown,
                  std::uint8_t owner = 0);

    /**
     * Source tag of the prefetch that filled @p line (Unknown when the
     * line is absent or was demand-filled).
     */
    PfSource prefetchSource(LineAddr line) const;

    /** Drop @p line if present; returns victim-style info about it. */
    Victim invalidate(LineAddr line);

    /** Mark @p line dirty (no-op when absent). */
    void setDirty(LineAddr line);

    /**
     * Count lines currently resident that are prefetched and unused;
     * used at end-of-simulation to finalise the wrong-prefetch count.
     */
    std::uint64_t countUnusedPrefetched() const;

    /**
     * Per-source breakdown of countUnusedPrefetched(): adds the count
     * of resident prefetched-but-unused lines from each source into
     * @p counts (an array of at least NumPfSources elements).
     */
    void countUnusedPrefetchedBySource(std::uint64_t *counts) const;

    /**
     * Shared-cache occupancy attribution: adds the number of resident
     * lines installed by each owner core into @p counts (an array of
     * at least @p num_cores elements; larger owner tags are clamped).
     */
    void countResidentByOwner(std::uint64_t *counts,
                              unsigned num_cores) const;

    std::uint64_t numSets() const { return numSets_; }

  private:
    /**
     * Tag sentinel stored in invalid ways. Real line addresses are
     * byte addresses shifted right by LineShift, so ~0 can never
     * collide — which lets findWay() compare tags alone, without
     * also testing the valid bit, in the hottest loop of the whole
     * simulator (every L1 access walks one set).
     */
    static constexpr LineAddr NoLine = ~LineAddr(0);

    struct Way
    {
        LineAddr line = NoLine;
        Cycle lastTouch = 0;
        bool valid = false;
        bool dirty = false;
        bool prefetched = false;
        bool usedAfterPrefetch = false;
        PfSource pfSource = PfSource::Unknown;
        /** Core whose fill installed the line (0 in single-core). */
        std::uint8_t ownerCore = 0;
    };

    /** First way of the set holding @p line. Ways live in one flat
     *  array (sets_ x assoc_), so a whole cache is two allocations
     *  instead of one per set — cheaper to construct per simulation
     *  cell and friendlier to the allocator when cells run in
     *  parallel — and a set probe walks `assoc_` contiguous
     *  entries. */
    Way *setFor(LineAddr line);
    const Way *setFor(LineAddr line) const;
    Way *findWay(LineAddr line);
    const Way *findWay(LineAddr line) const;

    CacheParams params_;
    std::vector<Way> ways_; ///< flat: set-major, assoc_ per set
    std::size_t numSets_ = 0;
    unsigned assoc_ = 0;
    std::uint64_t setMask_;
    Random replRng_;
};

} // namespace cbws

#endif // CBWS_MEM_CACHE_HH
