/**
 * @file
 * Two-level inclusive cache hierarchy over a pluggable DRAM timing
 * backend (mem/dram/backend.hh), with a prefetch-into-L2 path and the
 * per-demand-access timeliness/accuracy classification of the paper's
 * Fig. 13.
 *
 * Timing model: latency composition. A demand access resolves, at issue
 * time, to the cycle its data becomes available, by walking L1 -> L2 ->
 * DRAM and consulting the MSHR files for in-flight fills. Limited MSHRs
 * provide structural back-pressure (the access reports `ok == false`
 * and the core retries next cycle). Fills install into the tag arrays
 * when their MSHR entry drains, so replacement decisions happen at fill
 * time, in fill order.
 *
 * Per the paper's methodology, prefetchers fetch data into the L2 only.
 */

#ifndef CBWS_MEM_HIERARCHY_HH
#define CBWS_MEM_HIERARCHY_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/tracesink.hh"
#include "mem/cache.hh"
#include "mem/dram/backend.hh"
#include "mem/mshr.hh"
#include "mem/params.hh"

namespace cbws
{

/**
 * Fig. 13 classification of one demand L2 access (i.e., one L1D miss).
 */
enum class DemandClass : std::uint8_t
{
    None,       ///< not a demand L2 access (L1 hit / L1-MSHR merge)
    CachedHit,  ///< L2 hit on a line not owed to an unused prefetch
    Timely,     ///< L2 hit on a prefetched, not-yet-used line
    Shorter,    ///< merged into an in-flight prefetch (partial hiding)
    NonTimely,  ///< line was identified (queued) but not yet issued
    Missing,    ///< plain miss: no prefetch issued, or evicted early
    NumClasses,
};

/** Result of a demand access into the hierarchy. */
struct AccessOutcome
{
    bool ok = true;       ///< false: structural stall, retry next cycle
    Cycle readyAt = 0;    ///< cycle the data is usable by the core
    bool l1Hit = false;
    DemandClass cls = DemandClass::None;
};

/** Number of log2 buckets in the prefetch lateness histogram. */
constexpr unsigned LatenessBuckets = 24;

/**
 * Lifecycle accounting for the prefetches of one source: every request
 * is tagged with an id at the prefetcher's issue and tracked until it
 * is conclusively resolved. Two conservation laws hold for any
 * finalized run without a warmup window:
 *
 *   issued == dropped + merged + filled
 *   filled == demandHitTimely + demandHitLate
 *             + evictedUnused + residentAtEnd
 *
 * "merged" covers every way a request is subsumed without its own
 * fill: the line was already cached or in flight, or a demand access
 * overtook the still-queued request (the paper's non-timely class).
 */
struct PrefetchLifecycle
{
    std::uint64_t issued = 0;  ///< requests tagged by the prefetcher
    std::uint64_t dropped = 0; ///< queue overflow / never left queue
    std::uint64_t merged = 0;  ///< subsumed by a copy or a demand
    std::uint64_t filled = 0;  ///< brought a line into the L2
    std::uint64_t demandHitTimely = 0; ///< line demanded after fill
    std::uint64_t demandHitLate = 0;   ///< demanded while in flight
    std::uint64_t evictedUnused = 0;   ///< pollution: evicted unused
    std::uint64_t residentAtEnd = 0;   ///< unused but still resident
    /** Total cycles demands waited on late prefetch fills. */
    std::uint64_t latenessCycles = 0;

    std::uint64_t
    demandHits() const
    {
        return demandHitTimely + demandHitLate;
    }

    /** Useful fraction of the lines this source brought in. */
    double
    accuracy() const
    {
        return filled ? static_cast<double>(demandHits()) /
                            static_cast<double>(filled)
                      : 0.0;
    }

    /** Fraction of useful prefetches that arrived after the demand. */
    double
    lateFraction() const
    {
        return demandHits() ? static_cast<double>(demandHitLate) /
                                  static_cast<double>(demandHits())
                            : 0.0;
    }

    /** Fraction of filled lines that only polluted the cache. */
    double
    pollutionRate() const
    {
        return filled ? static_cast<double>(evictedUnused) /
                            static_cast<double>(filled)
                      : 0.0;
    }

    bool
    operator==(const PrefetchLifecycle &o) const
    {
        return issued == o.issued && dropped == o.dropped &&
               merged == o.merged && filled == o.filled &&
               demandHitTimely == o.demandHitTimely &&
               demandHitLate == o.demandHitLate &&
               evictedUnused == o.evictedUnused &&
               residentAtEnd == o.residentAtEnd &&
               latenessCycles == o.latenessCycles;
    }

    void
    add(const PrefetchLifecycle &o)
    {
        issued += o.issued;
        dropped += o.dropped;
        merged += o.merged;
        filled += o.filled;
        demandHitTimely += o.demandHitTimely;
        demandHitLate += o.demandHitLate;
        evictedUnused += o.evictedUnused;
        residentAtEnd += o.residentAtEnd;
        latenessCycles += o.latenessCycles;
    }
};

/**
 * Per-core slice of the hierarchy statistics; only populated when the
 * hierarchy simulates more than one core (HierarchyStats::perCore is
 * empty in single-core runs, keeping them bit-identical to the
 * original single-core model).
 */
struct CoreMemStats
{
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t demandL2Accesses = 0;
    /** Primary demand misses in the shared LLC by this core. */
    std::uint64_t llcDemandMisses = 0;
    std::uint64_t prefetchesRequested = 0;
    std::uint64_t prefetchesIssued = 0;
    /**
     * Demand misses this core took on lines another core's prefetch
     * evicted (this core is the pollution *victim*).
     */
    std::uint64_t pollutionVictimMisses = 0;
    /**
     * Demand misses this core's prefetches inflicted on other cores
     * (this core is the pollution *aggressor*).
     */
    std::uint64_t pollutionCausedMisses = 0;
    /** Shared-L2 lines owned by this core at finalize(). */
    std::uint64_t l2ResidentLines = 0;

    bool
    operator==(const CoreMemStats &o) const
    {
        return l1dAccesses == o.l1dAccesses &&
               l1dMisses == o.l1dMisses &&
               l1iAccesses == o.l1iAccesses &&
               l1iMisses == o.l1iMisses &&
               demandL2Accesses == o.demandL2Accesses &&
               llcDemandMisses == o.llcDemandMisses &&
               prefetchesRequested == o.prefetchesRequested &&
               prefetchesIssued == o.prefetchesIssued &&
               pollutionVictimMisses == o.pollutionVictimMisses &&
               pollutionCausedMisses == o.pollutionCausedMisses &&
               l2ResidentLines == o.l2ResidentLines;
    }
};

/** Aggregate statistics of the hierarchy. */
struct HierarchyStats
{
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t demandL2Accesses = 0;
    /** Primary demand misses in the LLC (drives Fig. 12 MPKI). */
    std::uint64_t llcDemandMisses = 0;
    std::uint64_t classCounts[static_cast<int>(
        DemandClass::NumClasses)] = {};
    /** Prefetched lines evicted (or left) without ever being used. */
    std::uint64_t wrongPrefetches = 0;
    std::uint64_t prefetchesRequested = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesFiltered = 0; ///< already cached/in flight
    std::uint64_t prefetchesDropped = 0;  ///< queue overflow
    std::uint64_t dramBytesRead = 0;
    std::uint64_t dramBytesWritten = 0;
    std::uint64_t mshrStalls = 0;
    /**
     * Demand misses whose line a *different* core's prefetch evicted
     * from the shared L2 (cross-core prefetch pollution). Always 0
     * in single-core runs.
     */
    std::uint64_t crossCorePollutionMisses = 0;
    /**
     * Shared-L2 accesses delayed by bank arbitration (another core's
     * same-cycle access held the bank). Always 0 in single-core runs,
     * where the arbiter is bypassed.
     */
    std::uint64_t l2BankConflicts = 0;
    /** Per-core slices; empty unless numCores > 1. */
    std::vector<CoreMemStats> perCore;

    /**
     * Counters of the DRAM timing backend (mem/dram/backend.hh).
     * Kept live by the Hierarchy (mirrored from the backend on every
     * stats read), so reports/snapshots/checkpoints see them like any
     * other hierarchy counter.
     */
    DramStats dram;

    /** Per-source prefetch lifecycle accounting. */
    PrefetchLifecycle pfLife[NumPfSources];
    /**
     * Histogram of fill lateness of useful prefetches: bucket 0 holds
     * timely hits (the fill beat the demand), bucket b >= 1 holds late
     * hits whose demand waited in [2^(b-1), 2^b) cycles.
     */
    std::uint64_t latenessHist[LatenessBuckets] = {};

    std::uint64_t
    classCount(DemandClass cls) const
    {
        return classCounts[static_cast<int>(cls)];
    }

    /** Lifecycle counters summed over every source. */
    PrefetchLifecycle
    pfLifeTotal() const
    {
        PrefetchLifecycle total;
        for (const auto &life : pfLife)
            total.add(life);
        return total;
    }

    /** Exact memberwise equality (the struct holds vectors now, so
     *  memcmp no longer works; tests assert determinism with this). */
    bool
    operator==(const HierarchyStats &o) const
    {
        for (int c = 0; c < static_cast<int>(DemandClass::NumClasses);
             ++c)
            if (classCounts[c] != o.classCounts[c])
                return false;
        for (unsigned b = 0; b < LatenessBuckets; ++b)
            if (latenessHist[b] != o.latenessHist[b])
                return false;
        for (unsigned s = 0; s < NumPfSources; ++s)
            if (!(pfLife[s] == o.pfLife[s]))
                return false;
        return l1dAccesses == o.l1dAccesses &&
               l1dMisses == o.l1dMisses &&
               l1iAccesses == o.l1iAccesses &&
               l1iMisses == o.l1iMisses &&
               demandL2Accesses == o.demandL2Accesses &&
               llcDemandMisses == o.llcDemandMisses &&
               wrongPrefetches == o.wrongPrefetches &&
               prefetchesRequested == o.prefetchesRequested &&
               prefetchesIssued == o.prefetchesIssued &&
               prefetchesFiltered == o.prefetchesFiltered &&
               prefetchesDropped == o.prefetchesDropped &&
               dramBytesRead == o.dramBytesRead &&
               dramBytesWritten == o.dramBytesWritten &&
               mshrStalls == o.mshrStalls &&
               crossCorePollutionMisses == o.crossCorePollutionMisses &&
               l2BankConflicts == o.l2BankConflicts &&
               perCore == o.perCore && dram == o.dram;
    }

    bool
    operator!=(const HierarchyStats &o) const
    {
        return !(*this == o);
    }
};

/**
 * The memory system: L1I + L1D backed by an inclusive L2 and DRAM.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params);

    /**
     * Advance bookkeeping to @p now: drain completed fills and issue
     * queued prefetches. Must be called with non-decreasing cycles;
     * the demand-access entry points call it internally as well.
     */
    void tick(Cycle now);

    /** Demand load from core @p core at cycle @p now. */
    AccessOutcome load(Addr addr, Cycle now, unsigned core = 0);

    /**
     * Demand store (write-allocate, writeback). Stores never stall the
     * core in this model: if no MSHR is free the miss is counted but
     * the fill is skipped.
     */
    AccessOutcome store(Addr addr, Cycle now, unsigned core = 0);

    /** Instruction fetch through core @p core's L1I. */
    AccessOutcome fetch(Addr pc, Cycle now, unsigned core = 0);

    /**
     * Queue a prefetch request for @p line (issued to the L2 by
     * tick(), bandwidth- and MSHR-permitting). Oldest requests are
     * dropped on overflow. @p src attributes the request's lifecycle
     * to the prefetcher component that generated it; @p core to the
     * core whose private prefetcher instance requested it.
     */
    void enqueuePrefetch(LineAddr line,
                         PfSource src = PfSource::Unknown,
                         unsigned core = 0);

    /** True when @p line is in the L2 or already being fetched. */
    bool isCachedOrInFlightL2(LineAddr line) const;

    /** True when @p line is resident in core @p core's L1D. */
    bool isCachedL1D(LineAddr line, unsigned core = 0) const;

    /**
     * End-of-run accounting: resident prefetched-but-unused lines are
     * counted as wrong prefetches.
     */
    void finalize();

    /** Zero the statistics (cache/MSHR/DRAM timing state is
     *  preserved) — used at the end of the warm-up window. */
    void
    resetStats()
    {
        stats_ = HierarchyStats();
        if (params_.numCores > 1)
            stats_.perCore.resize(params_.numCores);
        dram_->resetStats();
    }

    const HierarchyStats &
    stats() const
    {
        stats_.dram = dram_->stats();
        return stats_;
    }

    const HierarchyParams &params() const { return params_; }

    /** The main-memory timing backend this hierarchy runs over. */
    const DramBackend &dram() const { return *dram_; }

    /**
     * Attach a timeline-event sink (Chrome trace export); nullptr
     * detaches. Events are only constructed for cycles the sink
     * wants().
     */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    /**
     * Earliest cycle at which any in-flight fill completes (a huge
     * sentinel when idle) — lets the core fast-forward idle stretches.
     */
    Cycle nextEventCycle() const;

    /**
     * True when queued prefetches could issue right now; the core must
     * not fast-forward past cycles in which the queue would drain.
     */
    bool prefetchWorkPending() const;

    /**
     * Idle skip-ahead support: each skipped cycle would have repeated
     * the last stepped cycle's failed MSHR retries exactly (no fill
     * drains inside the window, so every retry fails the same way);
     * the driver folds those counts back in to keep mshrStalls
     * bit-identical with the unskipped replay.
     */
    void addSkippedMshrStalls(std::uint64_t n)
    {
        stats_.mshrStalls += n;
    }

  private:
    /** Access the L2 on behalf of a data-side L1 miss. */
    Cycle l2DemandAccess(LineAddr line, Cycle t_l2, bool is_write,
                         bool is_data, unsigned core,
                         DemandClass &cls, bool &stall);

    /** Common L1 + L2 demand path for loads, stores and fetches. */
    AccessOutcome demandAccess(LineAddr line, Cycle now, bool is_write,
                               bool is_data, bool can_stall,
                               unsigned core);

    void drainL2(Cycle now);
    void drainL1(Cycle now);
    void issuePrefetches(Cycle now);
    bool prefetchQueued(LineAddr line) const;

    /**
     * Banked shared-L2 arbitration: returns the cycle the access to
     * @p line actually enters the L2 (>= @p t). Each bank accepts one
     * access per cycle; a busy bank delays the access and counts a
     * conflict. Bypassed (returns @p t) in single-core runs.
     */
    Cycle arbitrateL2(LineAddr line, Cycle t);

    /**
     * Remember that @p aggressor's prefetch fill evicted the valid
     * line @p victim from the shared L2 (multicore only; the filter
     * is bounded at params.pollutionFilterEntries).
     */
    void recordPollutionEviction(LineAddr victim, unsigned aggressor);

    /**
     * Attribute a primary demand L2 miss by @p core on @p line: if a
     * different core's prefetch recently evicted the line, count it
     * as cross-core pollution against the aggressor.
     */
    void attributePollution(LineAddr line, unsigned core);

    /** One tagged entry of the prefetch request queue. */
    struct QueuedPrefetch
    {
        LineAddr line = 0;
        PfSource src = PfSource::Unknown;
        std::uint64_t id = 0;
        std::uint8_t core = 0;
    };

    /**
     * Remove the queued request for @p line, if any, recording it as
     * merged (a demand access took the miss over).
     */
    void mergeQueuedPrefetch(LineAddr line, Cycle now);

    /** Record a useful prefetch's lateness in the histogram. */
    void recordLateness(PfSource src, Cycle lateness);

    HierarchyParams params_;
    /**
     * Private L1s, one per core (index = core id). Single-core runs
     * hold exactly one of each, built with the original seeds, so the
     * one-core hierarchy is structurally identical to the historic
     * single-core model.
     */
    std::vector<Cache> l1d_;
    std::vector<Cache> l1i_;
    Cache l2_;
    std::vector<MshrFile> l1dMshr_;
    std::vector<MshrFile> l1iMshr_;
    MshrFile l2Mshr_;
    /**
     * Cycle up to which each shared-L2 bank is busy; sized l2Banks
     * when numCores > 1, empty (arbiter bypassed) otherwise.
     */
    std::vector<Cycle> bankBusyUntil_;
    /**
     * Bounded pollution filter: shared-L2 lines recently evicted by a
     * prefetch fill, mapped to the aggressor core. FIFO-bounded at
     * params.pollutionFilterEntries; empty in single-core runs.
     */
    std::unordered_map<LineAddr, std::uint8_t> pollutionMap_;
    std::deque<LineAddr> pollutionFifo_;
    std::deque<QueuedPrefetch> prefetchQueue_;
    /**
     * Lines currently in prefetchQueue_ (which never holds
     * duplicates). Demand misses and enqueue filtering probe queue
     * membership on the hot path; this index answers in O(1) what a
     * deque scan answered in O(queue depth).
     */
    std::unordered_set<LineAddr> queuedLines_;
    /** Mutable so stats() can mirror the backend counters in. */
    mutable HierarchyStats stats_;
    /** Main-memory timing model (selected by params.dramBackend). */
    std::unique_ptr<DramBackend> dram_;
    /** Id assigned to the next tracked prefetch request. */
    std::uint64_t nextPfId_ = 1;
    /**
     * Cycle whose MSHR drains have already run. tick() is invoked
     * once per cycle by the driver and again by every demand access,
     * but the drains are idempotent within a cycle (nothing allocated
     * at cycle N can complete at cycle N), so repeats skip straight
     * to prefetch issue. Prefetch issue itself is NOT memoized: its
     * per-invocation issue budget is visible behaviour.
     */
    Cycle lastDrainCycle_ = ~Cycle(0);
    /** Guards against double-counting in repeated finalize() calls. */
    bool finalized_ = false;
    TraceSink *trace_ = nullptr;
};

} // namespace cbws

#endif // CBWS_MEM_HIERARCHY_HH
