/**
 * @file
 * Two-level inclusive cache hierarchy over a fixed-latency DRAM, with a
 * prefetch-into-L2 path and the per-demand-access timeliness/accuracy
 * classification of the paper's Fig. 13.
 *
 * Timing model: latency composition. A demand access resolves, at issue
 * time, to the cycle its data becomes available, by walking L1 -> L2 ->
 * DRAM and consulting the MSHR files for in-flight fills. Limited MSHRs
 * provide structural back-pressure (the access reports `ok == false`
 * and the core retries next cycle). Fills install into the tag arrays
 * when their MSHR entry drains, so replacement decisions happen at fill
 * time, in fill order.
 *
 * Per the paper's methodology, prefetchers fetch data into the L2 only.
 */

#ifndef CBWS_MEM_HIERARCHY_HH
#define CBWS_MEM_HIERARCHY_HH

#include <cstdint>
#include <deque>

#include "mem/cache.hh"
#include "mem/mshr.hh"
#include "mem/params.hh"

namespace cbws
{

/**
 * Fig. 13 classification of one demand L2 access (i.e., one L1D miss).
 */
enum class DemandClass : std::uint8_t
{
    None,       ///< not a demand L2 access (L1 hit / L1-MSHR merge)
    CachedHit,  ///< L2 hit on a line not owed to an unused prefetch
    Timely,     ///< L2 hit on a prefetched, not-yet-used line
    Shorter,    ///< merged into an in-flight prefetch (partial hiding)
    NonTimely,  ///< line was identified (queued) but not yet issued
    Missing,    ///< plain miss: no prefetch issued, or evicted early
    NumClasses,
};

/** Result of a demand access into the hierarchy. */
struct AccessOutcome
{
    bool ok = true;       ///< false: structural stall, retry next cycle
    Cycle readyAt = 0;    ///< cycle the data is usable by the core
    bool l1Hit = false;
    DemandClass cls = DemandClass::None;
};

/** Aggregate statistics of the hierarchy. */
struct HierarchyStats
{
    std::uint64_t l1dAccesses = 0;
    std::uint64_t l1dMisses = 0;
    std::uint64_t l1iAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t demandL2Accesses = 0;
    /** Primary demand misses in the LLC (drives Fig. 12 MPKI). */
    std::uint64_t llcDemandMisses = 0;
    std::uint64_t classCounts[static_cast<int>(
        DemandClass::NumClasses)] = {};
    /** Prefetched lines evicted (or left) without ever being used. */
    std::uint64_t wrongPrefetches = 0;
    std::uint64_t prefetchesRequested = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesFiltered = 0; ///< already cached/in flight
    std::uint64_t prefetchesDropped = 0;  ///< queue overflow
    std::uint64_t dramBytesRead = 0;
    std::uint64_t dramBytesWritten = 0;
    std::uint64_t mshrStalls = 0;

    std::uint64_t
    classCount(DemandClass cls) const
    {
        return classCounts[static_cast<int>(cls)];
    }
};

/**
 * The memory system: L1I + L1D backed by an inclusive L2 and DRAM.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params);

    /**
     * Advance bookkeeping to @p now: drain completed fills and issue
     * queued prefetches. Must be called with non-decreasing cycles;
     * the demand-access entry points call it internally as well.
     */
    void tick(Cycle now);

    /** Demand load from the core at cycle @p now. */
    AccessOutcome load(Addr addr, Cycle now);

    /**
     * Demand store (write-allocate, writeback). Stores never stall the
     * core in this model: if no MSHR is free the miss is counted but
     * the fill is skipped.
     */
    AccessOutcome store(Addr addr, Cycle now);

    /** Instruction fetch through the L1I. */
    AccessOutcome fetch(Addr pc, Cycle now);

    /**
     * Queue a prefetch request for @p line (issued to the L2 by
     * tick(), bandwidth- and MSHR-permitting). Oldest requests are
     * dropped on overflow.
     */
    void enqueuePrefetch(LineAddr line);

    /** True when @p line is in the L2 or already being fetched. */
    bool isCachedOrInFlightL2(LineAddr line) const;

    /** True when @p line is resident in the L1D. */
    bool isCachedL1D(LineAddr line) const;

    /**
     * End-of-run accounting: resident prefetched-but-unused lines are
     * counted as wrong prefetches.
     */
    void finalize();

    /** Zero the statistics (cache/MSHR state is preserved) — used at
     *  the end of the warm-up window. */
    void resetStats() { stats_ = HierarchyStats(); }

    const HierarchyStats &stats() const { return stats_; }
    const HierarchyParams &params() const { return params_; }

    /**
     * Earliest cycle at which any in-flight fill completes (a huge
     * sentinel when idle) — lets the core fast-forward idle stretches.
     */
    Cycle nextEventCycle() const;

    /**
     * True when queued prefetches could issue right now; the core must
     * not fast-forward past cycles in which the queue would drain.
     */
    bool prefetchWorkPending() const;

  private:
    /** Access the L2 on behalf of a data-side L1 miss. */
    Cycle l2DemandAccess(LineAddr line, Cycle t_l2, bool is_write,
                         bool is_data, DemandClass &cls, bool &stall);

    /** Common L1 + L2 demand path for loads, stores and fetches. */
    AccessOutcome demandAccess(LineAddr line, Cycle now, bool is_write,
                               bool is_data, bool can_stall);

    void drainL2(Cycle now);
    void drainL1(Cycle now);
    void issuePrefetches(Cycle now);

    /**
     * Completion cycle of a DRAM access requested at @p t, honouring
     * the bandwidth throttle (dramMinInterval) when enabled.
     */
    Cycle dramFillReady(Cycle t);
    bool prefetchQueued(LineAddr line) const;
    void removeQueuedPrefetch(LineAddr line);

    HierarchyParams params_;
    Cache l1d_;
    Cache l1i_;
    Cache l2_;
    MshrFile l1dMshr_;
    MshrFile l1iMshr_;
    MshrFile l2Mshr_;
    std::deque<LineAddr> prefetchQueue_;
    HierarchyStats stats_;
    /** Next cycle the DRAM accepts a request (bandwidth model). */
    Cycle nextDramFree_ = 0;
};

} // namespace cbws

#endif // CBWS_MEM_HIERARCHY_HH
